//! Property-based tests for the linear-algebra substrate.

use archrel_linalg::{iterative, Matrix, Vector};
use proptest::prelude::*;

/// Strategy: well-conditioned square matrices built as `D + E` where `D` is a
/// strongly dominant diagonal and `E` a small perturbation. This guarantees
/// invertibility and keeps iterative solvers convergent, matching the class of
/// systems the Markov engine actually produces.
fn dominant_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-1.0..1.0f64, n * n).prop_map(move |vals| {
        let mut m = Matrix::from_vec(n, n, vals).expect("shape is consistent");
        for i in 0..n {
            let row_sum: f64 = m.row(i).iter().map(|x| x.abs()).sum();
            m.set(i, i, row_sum + 1.0);
        }
        m
    })
}

fn vector(n: usize) -> impl Strategy<Value = Vector> {
    proptest::collection::vec(-10.0..10.0f64, n).prop_map(Vector::from)
}

proptest! {
    #[test]
    fn lu_solve_has_small_residual((a, b) in (2usize..8).prop_flat_map(|n| (dominant_matrix(n), vector(n)))) {
        let x = a.solve(&b).unwrap();
        let r = (&a.mul_vector(&x).unwrap() - &b).norm_inf();
        prop_assert!(r < 1e-8, "residual {r}");
    }

    #[test]
    fn inverse_times_matrix_is_identity(a in (2usize..7).prop_flat_map(dominant_matrix)) {
        let inv = a.inverse().unwrap();
        let prod = a.mul_matrix(&inv).unwrap();
        prop_assert!(prod.max_abs_diff(&Matrix::identity(a.rows())) < 1e-8);
    }

    #[test]
    fn transpose_is_involution(a in (1usize..6).prop_flat_map(dominant_matrix)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn determinant_of_product_is_product_of_determinants(
        (a, b) in (2usize..6).prop_flat_map(|n| (dominant_matrix(n), dominant_matrix(n)))
    ) {
        let da = a.determinant().unwrap();
        let db = b.determinant().unwrap();
        let dab = a.mul_matrix(&b).unwrap().determinant().unwrap();
        let scale = da.abs().max(db.abs()).max(1.0);
        prop_assert!((dab - da * db).abs() / (scale * scale) < 1e-6);
    }

    #[test]
    fn iterative_solvers_agree_with_lu(
        (a, b) in (2usize..7).prop_flat_map(|n| (dominant_matrix(n), vector(n)))
    ) {
        let exact = a.solve(&b).unwrap();
        let opts = iterative::IterOptions::default();
        let xj = iterative::jacobi(&a, &b, opts).unwrap();
        let xg = iterative::gauss_seidel(&a, &b, opts).unwrap();
        prop_assert!(xj.max_abs_diff(&exact) < 1e-7);
        prop_assert!(xg.max_abs_diff(&exact) < 1e-7);
    }

    #[test]
    fn matrix_vector_distributes_over_addition(
        (a, u, v) in (2usize..6).prop_flat_map(|n| (dominant_matrix(n), vector(n), vector(n)))
    ) {
        let lhs = a.mul_vector(&(&u + &v)).unwrap();
        let rhs = &a.mul_vector(&u).unwrap() + &a.mul_vector(&v).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-9);
    }

    #[test]
    fn dot_is_symmetric((u, v) in (1usize..8).prop_flat_map(|n| (vector(n), vector(n)))) {
        prop_assert!((u.dot(&v) - v.dot(&u)).abs() < 1e-12);
    }

    #[test]
    fn norms_satisfy_triangle_inequality((u, v) in (1usize..8).prop_flat_map(|n| (vector(n), vector(n)))) {
        prop_assert!((&u + &v).norm_2() <= u.norm_2() + v.norm_2() + 1e-12);
        prop_assert!((&u + &v).norm_1() <= u.norm_1() + v.norm_1() + 1e-12);
        prop_assert!((&u + &v).norm_inf() <= u.norm_inf() + v.norm_inf() + 1e-12);
    }
}
