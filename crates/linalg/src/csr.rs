//! Compressed sparse row (CSR) matrices.
//!
//! Flow DTMCs produced by the reliability engine are extremely sparse — a
//! state transitions to a handful of successors regardless of how many
//! thousands of states the flow has — so storing `I − Q` densely wastes
//! `O(n²)` memory and forces `O(n³)` LU solves. [`CsrMatrix`] stores only
//! the structural non-zeros (values, column indices, and per-row extents)
//! and supports the two operations the sparse solve path needs: `O(nnz)`
//! matrix–vector products and per-row iteration.

use crate::{LinalgError, Matrix, Result, Vector};

/// A sparse matrix in compressed sparse row format.
///
/// Within each row the stored entries are sorted by column index and
/// duplicate triplets have been summed, so [`CsrMatrix::row`] yields each
/// column at most once.
///
/// # Examples
///
/// ```
/// use archrel_linalg::{CsrMatrix, Vector};
///
/// # fn main() -> Result<(), archrel_linalg::LinalgError> {
/// let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (0, 1, 1.0), (1, 1, 3.0)])?;
/// let y = a.mul_vector(&Vector::from_slice(&[1.0, 1.0]))?;
/// assert_eq!(y.as_slice(), &[3.0, 3.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// `row_ptr[i]..row_ptr[i + 1]` bounds row `i` in `col_idx` / `values`.
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a matrix from `(row, col, value)` triplets.
    ///
    /// Triplets may arrive in any order; duplicates are summed and exact
    /// zeros (including duplicate groups that cancel) are dropped.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::IndexOutOfBounds`] when a triplet lies outside
    /// the `rows × cols` shape and [`LinalgError::InvalidShape`] for a
    /// zero-sized shape or a non-finite value.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(LinalgError::InvalidShape {
                reason: format!("csr matrix cannot have shape {rows}x{cols}"),
            });
        }
        for &(r, c, v) in triplets {
            if r >= rows || c >= cols {
                return Err(LinalgError::IndexOutOfBounds {
                    index: (r, c),
                    shape: (rows, cols),
                });
            }
            if !v.is_finite() {
                return Err(LinalgError::InvalidShape {
                    reason: format!("non-finite entry {v} at ({r}, {c})"),
                });
            }
        }

        // Counting sort by row, then sort each row's slice by column and
        // merge duplicates in place.
        let mut row_counts = vec![0usize; rows + 1];
        for &(r, _, _) in triplets {
            row_counts[r + 1] += 1;
        }
        for i in 0..rows {
            row_counts[i + 1] += row_counts[i];
        }
        let mut sorted: Vec<(usize, f64)> = vec![(0, 0.0); triplets.len()];
        let mut next = row_counts.clone();
        for &(r, c, v) in triplets {
            sorted[next[r]] = (c, v);
            next[r] += 1;
        }

        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        row_ptr.push(0);
        for i in 0..rows {
            let slice = &mut sorted[row_counts[i]..row_counts[i + 1]];
            slice.sort_unstable_by_key(|&(c, _)| c);
            let mut k = 0;
            while k < slice.len() {
                let col = slice[k].0;
                let mut sum = 0.0;
                while k < slice.len() && slice[k].0 == col {
                    sum += slice[k].1;
                    k += 1;
                }
                if sum != 0.0 {
                    col_idx.push(col);
                    values.push(sum);
                }
            }
            row_ptr.push(col_idx.len());
        }

        Ok(CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Converts a dense matrix, keeping entries with magnitude above
    /// `drop_tolerance` (use `0.0` to keep every non-zero).
    pub fn from_dense(dense: &Matrix, drop_tolerance: f64) -> Result<Self> {
        let mut triplets = Vec::new();
        for i in 0..dense.rows() {
            for (j, &v) in dense.row(i).iter().enumerate() {
                if v.abs() > drop_tolerance {
                    triplets.push((i, j, v));
                }
            }
        }
        CsrMatrix::from_triplets(dense.rows(), dense.cols(), &triplets)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored (structurally non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fill fraction `nnz / (rows · cols)`.
    pub fn density(&self) -> f64 {
        self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
    }

    /// Iterates the stored entries of row `i` as `(col, value)` pairs, in
    /// ascending column order.
    ///
    /// # Panics
    ///
    /// Panics when `i >= self.rows()`.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        self.col_idx[lo..hi]
            .iter()
            .zip(&self.values[lo..hi])
            .map(|(&c, &v)| (c, v))
    }

    /// The entry at `(i, j)`, `0.0` when not stored.
    ///
    /// # Panics
    ///
    /// Panics when `i >= self.rows()`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        match self.col_idx[lo..hi].binary_search(&j) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }

    /// Sparse matrix–vector product `A · x` in `O(nnz)`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `x.len() != cols`.
    pub fn mul_vector(&self, x: &Vector) -> Result<Vector> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "csr * vector",
                left: self.shape(),
                right: (x.len(), 1),
            });
        }
        let mut y = Vector::zeros(self.rows);
        for i in 0..self.rows {
            let mut s = 0.0;
            for (j, v) in self.row(i) {
                s += v * x[j];
            }
            y[i] = s;
        }
        Ok(y)
    }

    /// Expands to a dense [`Matrix`].
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for (j, v) in self.row(i) {
                m.set(i, j, v);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplets_in_any_order_with_duplicates() {
        let a = CsrMatrix::from_triplets(
            3,
            3,
            &[
                (2, 0, 5.0),
                (0, 1, 1.0),
                (0, 1, 2.0),
                (1, 1, 4.0),
                (0, 0, 1.0),
            ],
        )
        .unwrap();
        assert_eq!(a.nnz(), 4);
        assert_eq!(a.get(0, 1), 3.0); // duplicates summed
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(2, 0), 5.0);
        assert_eq!(a.get(2, 2), 0.0);
    }

    #[test]
    fn cancelling_duplicates_are_dropped() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, -1.0), (1, 1, 2.0)]).unwrap();
        assert_eq!(a.nnz(), 1);
        assert_eq!(a.get(0, 0), 0.0);
    }

    #[test]
    fn row_iteration_is_sorted_by_column() {
        let a = CsrMatrix::from_triplets(1, 4, &[(0, 3, 3.0), (0, 0, 1.0), (0, 2, 2.0)]).unwrap();
        let row: Vec<(usize, f64)> = a.row(0).collect();
        assert_eq!(row, vec![(0, 1.0), (2, 2.0), (3, 3.0)]);
        assert!(a.row(0).count() == 3);
    }

    #[test]
    fn spmv_matches_dense() {
        let dense =
            Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 0.0, 0.0], &[3.0, 4.0, 0.0]]).unwrap();
        let sparse = CsrMatrix::from_dense(&dense, 0.0).unwrap();
        assert_eq!(sparse.nnz(), 4);
        let x = Vector::from_slice(&[1.0, 2.0, 3.0]);
        let expected = dense.mul_vector(&x).unwrap();
        let got = sparse.mul_vector(&x).unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn dense_round_trip() {
        let dense = Matrix::from_rows(&[&[0.0, 1.5], &[-2.0, 0.0]]).unwrap();
        let back = CsrMatrix::from_dense(&dense, 0.0).unwrap().to_dense();
        assert_eq!(back, dense);
    }

    #[test]
    fn density_reflects_fill() {
        let a = CsrMatrix::from_triplets(4, 4, &[(0, 0, 1.0), (1, 1, 1.0)]).unwrap();
        assert_eq!(a.nnz(), 2);
        assert!((a.density() - 2.0 / 16.0).abs() < 1e-15);
    }

    #[test]
    fn shape_and_index_validation() {
        assert!(matches!(
            CsrMatrix::from_triplets(0, 3, &[]),
            Err(LinalgError::InvalidShape { .. })
        ));
        assert!(matches!(
            CsrMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]),
            Err(LinalgError::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            CsrMatrix::from_triplets(2, 2, &[(0, 0, f64::NAN)]),
            Err(LinalgError::InvalidShape { .. })
        ));
    }

    #[test]
    fn spmv_dimension_check() {
        let a = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0)]).unwrap();
        assert!(matches!(
            a.mul_vector(&Vector::zeros(2)),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn empty_rows_are_fine() {
        let a = CsrMatrix::from_triplets(3, 3, &[(1, 1, 1.0)]).unwrap();
        assert_eq!(a.row(0).count(), 0);
        assert_eq!(a.row(2).count(), 0);
        let y = a.mul_vector(&Vector::from_slice(&[1.0, 2.0, 3.0])).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 2.0, 0.0]);
    }
}
