use std::fmt;

/// Errors produced by linear-algebra operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    DimensionMismatch {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// Shape of the left/first operand, `(rows, cols)`.
        left: (usize, usize),
        /// Shape of the right/second operand, `(rows, cols)`.
        right: (usize, usize),
    },
    /// The matrix is singular (or numerically singular) and cannot be
    /// factored or inverted.
    Singular {
        /// Pivot column at which factorization broke down.
        pivot: usize,
    },
    /// A square matrix was required but a rectangular one was supplied.
    NotSquare {
        /// Actual shape, `(rows, cols)`.
        shape: (usize, usize),
    },
    /// Construction input was ragged or empty where a rectangular,
    /// non-empty layout was required.
    InvalidShape {
        /// Explanation of what was malformed.
        reason: String,
    },
    /// An iterative method failed to converge within its iteration budget.
    NoConvergence {
        /// Iterations performed before giving up.
        iterations: usize,
        /// Residual norm at the final iteration.
        residual: f64,
    },
    /// An index was out of bounds.
    IndexOutOfBounds {
        /// Offending index, `(row, col)`.
        index: (usize, usize),
        /// Shape of the matrix, `(rows, cols)`.
        shape: (usize, usize),
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, left, right } => write!(
                f,
                "dimension mismatch in {op}: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular at pivot column {pivot}")
            }
            LinalgError::NotSquare { shape } => {
                write!(f, "square matrix required, got {}x{}", shape.0, shape.1)
            }
            LinalgError::InvalidShape { reason } => write!(f, "invalid shape: {reason}"),
            LinalgError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "iterative method did not converge after {iterations} iterations (residual {residual:e})"
            ),
            LinalgError::IndexOutOfBounds { index, shape } => write!(
                f,
                "index ({}, {}) out of bounds for {}x{} matrix",
                index.0, index.1, shape.0, shape.1
            ),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LinalgError::DimensionMismatch {
            op: "mul",
            left: (2, 3),
            right: (4, 5),
        };
        assert!(e.to_string().contains("mul"));
        assert!(e.to_string().contains("2x3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
