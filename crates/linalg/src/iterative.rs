//! Iterative solvers and eigen-utilities.
//!
//! Direct LU solves are exact but cubic; for large chains (the scaling
//! benchmarks drive flows with thousands of states) the Jacobi and
//! Gauss–Seidel methods here converge quickly because `I - Q` of a
//! substochastic matrix is strictly diagonally dominant whenever every state
//! leaks probability toward absorption. Power iteration supports stationary
//! distributions of ergodic chains in `archrel-markov`.

use crate::{CsrMatrix, LinalgError, Matrix, Result, Vector};

/// Options controlling iterative solvers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterOptions {
    /// Maximum number of sweeps before giving up.
    pub max_iterations: usize,
    /// Convergence threshold on the infinity norm of the update.
    pub tolerance: f64,
}

impl Default for IterOptions {
    fn default() -> Self {
        IterOptions {
            max_iterations: 10_000,
            tolerance: 1e-12,
        }
    }
}

fn check_square_system(a: &Matrix, b: &Vector, op: &'static str) -> Result<()> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    if a.rows() != b.len() {
        return Err(LinalgError::DimensionMismatch {
            op,
            left: a.shape(),
            right: (b.len(), 1),
        });
    }
    Ok(())
}

/// Solves `A x = b` with the Jacobi method.
///
/// Convergence is guaranteed for strictly diagonally dominant `A` (which
/// includes `I - Q` for the substochastic transient blocks produced by the
/// reliability engine, whenever every transient state has a path to an
/// absorbing state).
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] / [`LinalgError::DimensionMismatch`]
/// on malformed input, [`LinalgError::Singular`] when a diagonal entry is
/// zero, and [`LinalgError::NoConvergence`] when the iteration budget is
/// exhausted.
pub fn jacobi(a: &Matrix, b: &Vector, opts: IterOptions) -> Result<Vector> {
    check_square_system(a, b, "jacobi")?;
    let n = a.rows();
    for i in 0..n {
        if a.get(i, i) == 0.0 {
            return Err(LinalgError::Singular { pivot: i });
        }
    }
    let mut x = Vector::zeros(n);
    let mut next = Vector::zeros(n);
    for it in 0..opts.max_iterations {
        for i in 0..n {
            let mut s = b[i];
            let row = a.row(i);
            for (j, &aij) in row.iter().enumerate() {
                if j != i {
                    s -= aij * x[j];
                }
            }
            next[i] = s / a.get(i, i);
        }
        let delta = x.max_abs_diff(&next);
        std::mem::swap(&mut x, &mut next);
        if delta <= opts.tolerance {
            return Ok(x);
        }
        let _ = it;
    }
    let residual = (&a.mul_vector(&x)? - b).norm_inf();
    Err(LinalgError::NoConvergence {
        iterations: opts.max_iterations,
        residual,
    })
}

/// Solves `A x = b` with the Gauss–Seidel method (in-place sweeps).
///
/// Typically converges about twice as fast as Jacobi on diagonally dominant
/// systems; same guarantees and error conditions as [`jacobi`].
///
/// # Errors
///
/// See [`jacobi`].
pub fn gauss_seidel(a: &Matrix, b: &Vector, opts: IterOptions) -> Result<Vector> {
    check_square_system(a, b, "gauss-seidel")?;
    let n = a.rows();
    for i in 0..n {
        if a.get(i, i) == 0.0 {
            return Err(LinalgError::Singular { pivot: i });
        }
    }
    let mut x = Vector::zeros(n);
    for _ in 0..opts.max_iterations {
        let mut delta = 0.0_f64;
        for i in 0..n {
            let mut s = b[i];
            let row = a.row(i);
            for (j, &aij) in row.iter().enumerate() {
                if j != i {
                    s -= aij * x[j];
                }
            }
            let new = s / a.get(i, i);
            delta = delta.max((new - x[i]).abs());
            x[i] = new;
        }
        if delta <= opts.tolerance {
            return Ok(x);
        }
    }
    let residual = (&a.mul_vector(&x)? - b).norm_inf();
    Err(LinalgError::NoConvergence {
        iterations: opts.max_iterations,
        residual,
    })
}

/// Solves `A x = b` with Gauss–Seidel sweeps over a sparse CSR matrix.
///
/// Each sweep costs `O(nnz)` instead of the dense solvers' `O(n²)`, which is
/// what makes iterative solves viable on flow chains with thousands of
/// states. Same convergence guarantees as the dense [`gauss_seidel`].
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] / [`LinalgError::DimensionMismatch`]
/// on malformed input, [`LinalgError::Singular`] when a diagonal entry is
/// missing or zero, and [`LinalgError::NoConvergence`] (carrying the sweep
/// count and final residual) when the iteration budget is exhausted.
pub fn gauss_seidel_sparse(a: &CsrMatrix, b: &Vector, opts: IterOptions) -> Result<Vector> {
    let diag = check_sparse_system(a, b, "gauss-seidel-sparse")?;
    let n = a.rows();
    let mut x = Vector::zeros(n);
    for sweeps in 1..=opts.max_iterations {
        let mut delta = 0.0_f64;
        for i in 0..n {
            let mut s = b[i];
            for (j, aij) in a.row(i) {
                if j != i {
                    s -= aij * x[j];
                }
            }
            let new = s / diag[i];
            delta = delta.max((new - x[i]).abs());
            x[i] = new;
        }
        if delta <= opts.tolerance {
            return Ok(x);
        }
        let _ = sweeps;
    }
    let residual = (&a.mul_vector(&x)? - b).norm_inf();
    Err(LinalgError::NoConvergence {
        iterations: opts.max_iterations,
        residual,
    })
}

/// Solves `A x = b` with the Jacobi method over a sparse CSR matrix.
///
/// Jacobi updates every component from the *previous* sweep's values, so it
/// converges about half as fast as [`gauss_seidel_sparse`] but its sweeps
/// are order-independent. Same guarantees and error conditions.
///
/// # Errors
///
/// See [`gauss_seidel_sparse`].
pub fn jacobi_sparse(a: &CsrMatrix, b: &Vector, opts: IterOptions) -> Result<Vector> {
    let diag = check_sparse_system(a, b, "jacobi-sparse")?;
    let n = a.rows();
    let mut x = Vector::zeros(n);
    let mut next = Vector::zeros(n);
    for _ in 0..opts.max_iterations {
        for i in 0..n {
            let mut s = b[i];
            for (j, aij) in a.row(i) {
                if j != i {
                    s -= aij * x[j];
                }
            }
            next[i] = s / diag[i];
        }
        let delta = x.max_abs_diff(&next);
        std::mem::swap(&mut x, &mut next);
        if delta <= opts.tolerance {
            return Ok(x);
        }
    }
    let residual = (&a.mul_vector(&x)? - b).norm_inf();
    Err(LinalgError::NoConvergence {
        iterations: opts.max_iterations,
        residual,
    })
}

/// Validates a sparse square system and extracts its diagonal.
fn check_sparse_system(a: &CsrMatrix, b: &Vector, op: &'static str) -> Result<Vec<f64>> {
    if a.rows() != a.cols() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    if a.rows() != b.len() {
        return Err(LinalgError::DimensionMismatch {
            op,
            left: a.shape(),
            right: (b.len(), 1),
        });
    }
    let mut diag = vec![0.0; a.rows()];
    for (i, d) in diag.iter_mut().enumerate() {
        *d = a.get(i, i);
        if *d == 0.0 {
            return Err(LinalgError::Singular { pivot: i });
        }
    }
    Ok(diag)
}

/// Result of a power-iteration run.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerIteration {
    /// Dominant eigenvalue estimate (Rayleigh quotient).
    pub eigenvalue: f64,
    /// Corresponding eigenvector, normalized to unit L1 norm.
    pub eigenvector: Vector,
    /// Iterations performed.
    pub iterations: usize,
}

/// Power iteration for the dominant eigenpair of `a`.
///
/// Starts from the uniform vector; used by the Markov substrate to compute
/// stationary distributions (iterating `π ← π P`) and spectral radii.
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] for rectangular input and
/// [`LinalgError::NoConvergence`] when the vector does not settle.
pub fn power_iteration(a: &Matrix, opts: IterOptions) -> Result<PowerIteration> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    let n = a.rows();
    if n == 0 {
        return Err(LinalgError::InvalidShape {
            reason: "power iteration on empty matrix".to_string(),
        });
    }
    let mut v = Vector::filled(n, 1.0 / n as f64);
    let mut eigenvalue = 0.0;
    for it in 1..=opts.max_iterations {
        let mut w = a.mul_vector(&v)?;
        let norm = w.norm_1();
        if norm == 0.0 {
            // a annihilates v: eigenvalue 0.
            return Ok(PowerIteration {
                eigenvalue: 0.0,
                eigenvector: v,
                iterations: it,
            });
        }
        w.scale_mut(1.0 / norm);
        let delta = v.max_abs_diff(&w);
        // Rayleigh-like estimate using L1 normalization.
        eigenvalue = norm;
        v = w;
        if delta <= opts.tolerance {
            return Ok(PowerIteration {
                eigenvalue,
                eigenvector: v,
                iterations: it,
            });
        }
    }
    Err(LinalgError::NoConvergence {
        iterations: opts.max_iterations,
        residual: eigenvalue,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dominant_system() -> (Matrix, Vector) {
        let a =
            Matrix::from_rows(&[&[4.0, -1.0, 0.0], &[-1.0, 4.0, -1.0], &[0.0, -1.0, 4.0]]).unwrap();
        let b = Vector::from_slice(&[2.0, 4.0, 10.0]);
        (a, b)
    }

    #[test]
    fn jacobi_matches_lu() {
        let (a, b) = dominant_system();
        let exact = a.solve(&b).unwrap();
        let x = jacobi(&a, &b, IterOptions::default()).unwrap();
        assert!(x.max_abs_diff(&exact) < 1e-10);
    }

    #[test]
    fn gauss_seidel_matches_lu() {
        let (a, b) = dominant_system();
        let exact = a.solve(&b).unwrap();
        let x = gauss_seidel(&a, &b, IterOptions::default()).unwrap();
        assert!(x.max_abs_diff(&exact) < 1e-10);
    }

    #[test]
    fn zero_diagonal_is_singular() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 1.0]]).unwrap();
        let b = Vector::from_slice(&[1.0, 1.0]);
        assert!(matches!(
            jacobi(&a, &b, IterOptions::default()),
            Err(LinalgError::Singular { .. })
        ));
        assert!(matches!(
            gauss_seidel(&a, &b, IterOptions::default()),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn non_convergent_reports_error() {
        // Not diagonally dominant; Jacobi diverges.
        let a = Matrix::from_rows(&[&[1.0, 3.0], &[4.0, 1.0]]).unwrap();
        let b = Vector::from_slice(&[1.0, 1.0]);
        let opts = IterOptions {
            max_iterations: 50,
            tolerance: 1e-14,
        };
        assert!(matches!(
            jacobi(&a, &b, opts),
            Err(LinalgError::NoConvergence { .. })
        ));
    }

    #[test]
    fn sparse_solvers_match_dense_lu() {
        let (a, b) = dominant_system();
        let sparse = CsrMatrix::from_dense(&a, 0.0).unwrap();
        let exact = a.solve(&b).unwrap();
        let gs = gauss_seidel_sparse(&sparse, &b, IterOptions::default()).unwrap();
        assert!(gs.max_abs_diff(&exact) < 1e-10);
        let j = jacobi_sparse(&sparse, &b, IterOptions::default()).unwrap();
        assert!(j.max_abs_diff(&exact) < 1e-10);
    }

    #[test]
    fn sparse_missing_diagonal_is_singular() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0), (1, 1, 1.0)]).unwrap();
        let b = Vector::from_slice(&[1.0, 1.0]);
        assert!(matches!(
            gauss_seidel_sparse(&a, &b, IterOptions::default()),
            Err(LinalgError::Singular { pivot: 0 })
        ));
        assert!(matches!(
            jacobi_sparse(&a, &b, IterOptions::default()),
            Err(LinalgError::Singular { pivot: 0 })
        ));
    }

    #[test]
    fn sparse_no_convergence_reports_budget_and_residual() {
        // Not diagonally dominant: both sparse methods diverge.
        let a = CsrMatrix::from_dense(
            &Matrix::from_rows(&[&[1.0, 3.0], &[4.0, 1.0]]).unwrap(),
            0.0,
        )
        .unwrap();
        let b = Vector::from_slice(&[1.0, 1.0]);
        let opts = IterOptions {
            max_iterations: 25,
            tolerance: 1e-14,
        };
        match gauss_seidel_sparse(&a, &b, opts) {
            Err(LinalgError::NoConvergence {
                iterations,
                residual,
            }) => {
                assert_eq!(iterations, 25);
                assert!(residual.is_finite());
            }
            other => panic!("expected NoConvergence, got {other:?}"),
        }
    }

    #[test]
    fn sparse_dimension_checks() {
        let a = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0)]).unwrap();
        let b = Vector::zeros(2);
        assert!(matches!(
            gauss_seidel_sparse(&a, &b, IterOptions::default()),
            Err(LinalgError::NotSquare { .. })
        ));
        let a = CsrMatrix::from_triplets(3, 3, &[(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)]).unwrap();
        assert!(matches!(
            jacobi_sparse(&a, &b, IterOptions::default()),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn power_iteration_finds_dominant_eigenvalue() {
        // Eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let r = power_iteration(&a, IterOptions::default()).unwrap();
        assert!((r.eigenvalue - 3.0).abs() < 1e-9);
        // Eigenvector proportional to (1, 1).
        assert!((r.eigenvector[0] - r.eigenvector[1]).abs() < 1e-9);
    }

    #[test]
    fn power_iteration_on_stochastic_matrix_gives_one() {
        let p = Matrix::from_rows(&[&[0.9, 0.1], &[0.4, 0.6]]).unwrap();
        let r = power_iteration(&p.transpose(), IterOptions::default()).unwrap();
        assert!((r.eigenvalue - 1.0).abs() < 1e-9);
        // Stationary distribution of this chain is (0.8, 0.2).
        assert!((r.eigenvector[0] - 0.8).abs() < 1e-6);
        assert!((r.eigenvector[1] - 0.2).abs() < 1e-6);
    }

    #[test]
    fn dimension_checks() {
        let a = Matrix::zeros(2, 3);
        let b = Vector::zeros(2);
        assert!(jacobi(&a, &b, IterOptions::default()).is_err());
        let a = Matrix::identity(3);
        assert!(gauss_seidel(&a, &b, IterOptions::default()).is_err());
    }
}
