#![allow(clippy::needless_range_loop)] // triangular index loops mirror the factorization math

use crate::{LinalgError, Matrix, Result, Vector};

/// LU decomposition with partial pivoting: `P * A = L * U`.
///
/// The factorization is stored compactly: `L` (unit lower triangular, implicit
/// unit diagonal) and `U` (upper triangular) share one matrix, and the row
/// permutation is stored as an index vector. A single factorization can be
/// reused for many right-hand sides — the absorbing-chain analysis in
/// `archrel-markov` exploits this to obtain absorption probabilities toward
/// every absorbing state from one decomposition of `I - Q`.
///
/// # Examples
///
/// ```
/// use archrel_linalg::{Lu, Matrix, Vector};
///
/// # fn main() -> Result<(), archrel_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]])?;
/// let lu = Lu::decompose(&a)?;
/// let x = lu.solve(&Vector::from_slice(&[3.0, 5.0]))?;
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined L (strictly lower, unit diagonal implied) and U (upper).
    factors: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    /// Stored as `u32` so the factorization can round-trip through the
    /// on-disk plan archive without an index-width conversion.
    perm: Vec<u32>,
    /// Number of row swaps performed (determinant sign).
    swaps: usize,
}

/// Pivots with absolute value below this threshold are treated as zero,
/// declaring the matrix numerically singular.
pub const SINGULARITY_EPS: f64 = 1e-300;

impl Lu {
    /// Factorizes `a` with partial (row) pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for rectangular input and
    /// [`LinalgError::Singular`] when a pivot collapses to (numerical) zero.
    pub fn decompose(a: &Matrix) -> Result<Lu> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        let mut f = a.clone();
        let mut perm: Vec<u32> = (0..n as u32).collect();
        let mut swaps = 0;

        for k in 0..n {
            // Select the pivot row: largest |entry| in column k at or below k.
            let mut pivot_row = k;
            let mut pivot_val = f.get(k, k).abs();
            for i in (k + 1)..n {
                let v = f.get(i, k).abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val < SINGULARITY_EPS {
                return Err(LinalgError::Singular { pivot: k });
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = f.get(k, j);
                    f.set(k, j, f.get(pivot_row, j));
                    f.set(pivot_row, j, tmp);
                }
                perm.swap(k, pivot_row);
                swaps += 1;
            }
            let pivot = f.get(k, k);
            for i in (k + 1)..n {
                let m = f.get(i, k) / pivot;
                f.set(i, k, m);
                if m == 0.0 {
                    continue;
                }
                for j in (k + 1)..n {
                    let v = f.get(i, j) - m * f.get(k, j);
                    f.set(i, j, v);
                }
            }
        }
        Ok(Lu {
            factors: f,
            perm,
            swaps,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.factors.rows()
    }

    /// The combined row-major `L`/`U` storage, for archival and view-based
    /// solves ([`crate::lu_solve_view`]).
    pub fn factors_data(&self) -> &[f64] {
        self.factors.as_slice()
    }

    /// The row permutation: `perm[i]` is the original row now in position
    /// `i`.
    pub fn perm(&self) -> &[u32] {
        &self.perm
    }

    /// Solves `A x = b` using the stored factorization.
    ///
    /// Delegates to [`crate::lu_solve_view`], the single implementation of
    /// the triangular solves shared with mapped (archived) factorizations.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `b.len() != self.dim()`.
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "LU solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        crate::view::lu_solve_view(n, self.factors.as_slice(), &self.perm, b.as_slice())
            .map(Vector::from)
    }

    /// Solves `A X = B` column by column.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `B.rows() != self.dim()`.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "LU matrix solve",
                left: (n, n),
                right: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = self.solve(&b.col(j))?;
            for i in 0..n {
                out.set(i, j, col[i]);
            }
        }
        Ok(out)
    }

    /// Computes `A^{-1}` by solving against the identity.
    ///
    /// # Errors
    ///
    /// Propagates dimension errors (none in practice for a valid `Lu`).
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// Determinant of the original matrix: product of `U`'s diagonal times
    /// the permutation sign.
    pub fn determinant(&self) -> f64 {
        let sign = if self.swaps.is_multiple_of(2) {
            1.0
        } else {
            -1.0
        };
        (0..self.dim()).fold(sign, |d, i| d * self.factors.get(i, i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Matrix, x: &Vector, b: &Vector) -> f64 {
        (&a.mul_vector(x).unwrap() - b).norm_inf()
    }

    #[test]
    fn solve_2x2() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let b = Vector::from_slice(&[3.0, 5.0]);
        let x = a.solve(&b).unwrap();
        assert!(residual(&a, &x, &b) < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let b = Vector::from_slice(&[2.0, 3.0]);
        let x = a.solve(&b).unwrap();
        assert_eq!(x.as_slice(), &[3.0, 2.0]);
    }

    #[test]
    fn singular_matrix_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(a.lu(), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn rectangular_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(a.lu(), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn inverse_roundtrip() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]).unwrap();
        let inv = a.inverse().unwrap();
        let prod = a.mul_matrix(&inv).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(2)) < 1e-12);
    }

    #[test]
    fn determinant_sign_with_swaps() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        assert!((a.determinant().unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_matrix_identity_gives_inverse() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 5.0]]).unwrap();
        let lu = a.lu().unwrap();
        let inv = lu.solve_matrix(&Matrix::identity(2)).unwrap();
        assert!(
            a.mul_matrix(&inv)
                .unwrap()
                .max_abs_diff(&Matrix::identity(2))
                < 1e-12
        );
    }

    #[test]
    fn solve_dimension_mismatch() {
        let a = Matrix::identity(3);
        let lu = a.lu().unwrap();
        assert!(matches!(
            lu.solve(&Vector::zeros(2)),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn larger_system_hilbert_like() {
        // A well-known moderately conditioned system.
        let n = 6;
        let a = Matrix::from_fn(n, n, |i, j| {
            1.0 / ((i + j + 1) as f64) + if i == j { 1.0 } else { 0.0 }
        });
        let xs = Vector::from_slice(&[1.0, -2.0, 3.0, -4.0, 5.0, -6.0]);
        let b = a.mul_vector(&xs).unwrap();
        let x = a.solve(&b).unwrap();
        assert!(x.max_abs_diff(&xs) < 1e-9);
    }
}
