//! Borrowed-storage LU solves: the same arithmetic as [`crate::Lu::solve`]
//! and [`crate::sherman_morrison_solve`], operating on raw `&[f64]` /
//! `&[u32]` views instead of an owned [`crate::Lu`].
//!
//! The compiled-plan archive (`archrel-store`) maps factorizations straight
//! from disk and must evaluate them without first copying into an owned
//! [`crate::Matrix`]. These free functions are the single implementation of
//! the triangular solves: the owned [`crate::Lu::solve`] and
//! [`crate::sherman_morrison_solve`] entry points delegate here, so owned
//! and mapped evaluations are bit-for-bit identical by construction.

use crate::{LinalgError, Result, Vector};

/// Solves `A x = b` from a borrowed factorization: `factors` is the combined
/// row-major `L` (unit diagonal implied) / `U` storage of an `n × n`
/// [`crate::Lu`], and `perm` its row permutation.
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] when `b`, `factors`, or `perm`
/// do not match `n`.
pub fn lu_solve_view(n: usize, factors: &[f64], perm: &[u32], b: &[f64]) -> Result<Vec<f64>> {
    if b.len() != n || factors.len() != n * n || perm.len() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "LU solve (view)",
            left: (n, n),
            right: (b.len(), 1),
        });
    }
    // Apply permutation: y = P b.
    let mut x: Vec<f64> = perm.iter().map(|&p| b[p as usize]).collect();
    // Forward substitution with unit-diagonal L.
    for i in 1..n {
        let mut s = x[i];
        for (j, xj) in x.iter().enumerate().take(i) {
            s -= factors[i * n + j] * xj;
        }
        x[i] = s;
    }
    // Back substitution with U.
    for i in (0..n).rev() {
        let mut s = x[i];
        for j in (i + 1)..n {
            s -= factors[i * n + j] * x[j];
        }
        x[i] = s / factors[i * n + i];
    }
    Ok(x)
}

/// Solves `(A + e_row vᵀ) x = b` from a borrowed factorization of `A` —
/// the view-storage twin of [`crate::sherman_morrison_solve`], with the
/// same `Ok(None)` numerical-refusal contract.
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] when any view or `row` does
/// not match `n`.
pub fn sherman_morrison_solve_view(
    n: usize,
    factors: &[f64],
    perm: &[u32],
    b: &[f64],
    row: usize,
    v: &[f64],
    refusal_eps: f64,
) -> Result<Option<Vec<f64>>> {
    if v.len() != n || row >= n {
        return Err(LinalgError::DimensionMismatch {
            op: "Sherman-Morrison solve",
            left: (n, n),
            right: (v.len(), 1),
        });
    }
    let y = lu_solve_view(n, factors, perm, b)?;
    let e = Vector::basis(n, row);
    let z = lu_solve_view(n, factors, perm, e.as_slice())?;
    let denom = 1.0 + dot(v, &z);
    if denom.abs() < refusal_eps {
        return Ok(None);
    }
    let scale = dot(v, &y) / denom;
    let x: Vec<f64> = y
        .iter()
        .zip(z.iter())
        .map(|(&yi, &zi)| yi - zi * scale)
        .collect();
    Ok(Some(x))
}

/// Sequential dot product with the exact summation order of
/// [`Vector::dot`].
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sherman_morrison_solve, Lu, Matrix, RANK1_REFUSAL_EPS};

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 0.25], &[0.5, 0.25, 5.0]]).unwrap()
    }

    #[test]
    fn view_solve_is_bitwise_identical_to_owned_solve() {
        let lu = Lu::decompose(&sample()).unwrap();
        let b = Vector::from_slice(&[1.0, -2.0, 3.0]);
        let owned = lu.solve(&b).unwrap();
        let viewed = lu_solve_view(lu.dim(), lu.factors_data(), lu.perm(), b.as_slice()).unwrap();
        for (o, v) in owned.iter().zip(&viewed) {
            assert_eq!(o.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn view_rank1_is_bitwise_identical_to_owned_rank1() {
        let lu = Lu::decompose(&sample()).unwrap();
        let b = Vector::from_slice(&[1.0, 2.0, 3.0]);
        let v = Vector::from_slice(&[0.3, -0.1, 0.2]);
        let owned = sherman_morrison_solve(&lu, &b, 1, &v, RANK1_REFUSAL_EPS)
            .unwrap()
            .unwrap();
        let viewed = sherman_morrison_solve_view(
            lu.dim(),
            lu.factors_data(),
            lu.perm(),
            b.as_slice(),
            1,
            v.as_slice(),
            RANK1_REFUSAL_EPS,
        )
        .unwrap()
        .unwrap();
        for (o, w) in owned.iter().zip(&viewed) {
            assert_eq!(o.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn view_solve_rejects_bad_shapes() {
        let lu = Lu::decompose(&Matrix::identity(3)).unwrap();
        assert!(lu_solve_view(3, lu.factors_data(), lu.perm(), &[1.0, 2.0]).is_err());
        assert!(lu_solve_view(2, lu.factors_data(), lu.perm(), &[1.0, 2.0]).is_err());
        assert!(sherman_morrison_solve_view(
            3,
            lu.factors_data(),
            lu.perm(),
            &[1.0; 3],
            3,
            &[0.0; 3],
            1e-9
        )
        .is_err());
    }
}
