//! Explicit SIMD kernels for the lane-8 blocked tape replay, plus the
//! runtime dispatch machinery (`ARCHREL_SIMD`) that selects them.
//!
//! The consumer is `archrel_markov::SolvePlan::evaluate_block`: an acyclic
//! absorbing-chain solve compiled to a back-substitution tape, replayed over
//! eight parameter lanes at once. The portable scalar replay (fixed-width
//! loops the compiler autovectorizes) is the **bitwise reference**; the
//! kernels here perform exactly the same arithmetic per lane — one multiply
//! and one add per term (no FMA contraction: the reference computes the
//! product and the sum as two separately rounded operations), one subtract
//! and one divide per self-loop (IEEE division is correctly rounded, so
//! `vdivpd` matches the scalar quotient bit for bit) — only batched four
//! (AVX2) or eight (AVX-512) lanes per instruction. Lane groups are
//! assembled from the eight staged parameter rows with plain scalar loads
//! (each tape slot is read exactly once, so a gather instruction or an eager
//! transpose would only add traffic), while the solution tile `x` is kept
//! lane-major in 64-byte-aligned [`Lane8`] groups so every intermediate
//! load/store is a single aligned vector move.
//!
//! This module is the crate's only `unsafe` surface: the intrinsics
//! themselves are memory-safe here (all indexing is bounds-checked slice
//! indexing; vector moves go through `[f64; 8]` references), and the sole
//! obligation — only executing a kernel on a CPU that supports it — is
//! enforced at the dispatch boundary ([`replay_tape_lane8`] asserts
//! [`SimdPath::is_available`] before entering a kernel).

#![allow(unsafe_code)]

/// Lane width of the blocked replay path (mirrors `archrel_markov::LANE`).
pub const LANE8: usize = 8;

/// One lane-major group of the blocked solution tile: the value of a single
/// transient state across all eight lanes, aligned so AVX2/AVX-512 kernels
/// can use aligned vector moves (`align(64)` keeps the low half 32-byte- and
/// the full group 64-byte-aligned).
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(C, align(64))]
pub struct Lane8(pub [f64; LANE8]);

impl Default for Lane8 {
    fn default() -> Self {
        Lane8([0.0; LANE8])
    }
}

impl std::ops::Index<usize> for Lane8 {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

impl std::ops::IndexMut<usize> for Lane8 {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.0[i]
    }
}

/// Requested SIMD dispatch mode for the blocked tape replay, settable
/// through the `ARCHREL_SIMD` environment variable (values `auto` /
/// `scalar` / `avx2` / `avx512`) mirroring the `ARCHREL_SOLVER` /
/// `ARCHREL_PLAN_LANES` forced-path conventions: `auto` picks the widest
/// instruction set the running CPU reports, the others force one path and
/// hard-error when it cannot run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimdMode {
    /// Runtime-detect: AVX-512 when available, else AVX2, else the portable
    /// scalar tape. Detection is per-process and never changes results —
    /// every path is bitwise-identical to the scalar reference.
    #[default]
    Auto,
    /// Force the portable scalar replay (the bitwise reference).
    Scalar,
    /// Force the AVX2 kernel (two `f64x4` groups per lane step); panics at
    /// resolution time when the CPU lacks AVX2.
    Avx2,
    /// Force the AVX-512 kernel (one `f64x8` group per lane step); panics at
    /// resolution time when the CPU lacks AVX-512F.
    Avx512,
}

impl SimdMode {
    /// Parses `auto` / `scalar` / `avx2` / `avx512` (case-insensitive).
    pub fn parse(s: &str) -> Option<SimdMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" => Some(SimdMode::Auto),
            "scalar" => Some(SimdMode::Scalar),
            "avx2" => Some(SimdMode::Avx2),
            "avx512" => Some(SimdMode::Avx512),
            _ => None,
        }
    }

    /// Parses a value of the `ARCHREL_SIMD` environment variable.
    ///
    /// # Panics
    ///
    /// Panics when the value is not a recognized mode spelling — mirroring
    /// the `ARCHREL_SOLVER` hard-error behavior, a typo'd override must not
    /// silently run an analysis on the wrong replay path.
    pub fn parse_env_value(raw: &str) -> SimdMode {
        SimdMode::parse(raw).unwrap_or_else(|| {
            panic!(
                "unrecognized ARCHREL_SIMD value `{raw}`: \
                 expected one of auto, scalar, avx2, avx512"
            )
        })
    }

    /// Mode forced by the `ARCHREL_SIMD` environment variable, if set. An
    /// empty value counts as unset (CI matrices expand absent entries to
    /// empty strings).
    ///
    /// # Panics
    ///
    /// Panics when the variable is set to an unrecognized value (see
    /// [`SimdMode::parse_env_value`]).
    pub fn from_env() -> Option<SimdMode> {
        std::env::var("ARCHREL_SIMD")
            .ok()
            .filter(|v| !v.trim().is_empty())
            .map(|v| SimdMode::parse_env_value(&v))
    }

    /// Resolves the mode against the running CPU: `Auto` picks the widest
    /// available kernel (falling back cleanly to scalar on machines without
    /// AVX2/AVX-512 and on non-x86_64 architectures); a forced mode is
    /// validated against the hardware.
    ///
    /// # Panics
    ///
    /// Panics when a forced `Avx2`/`Avx512` mode names an instruction set
    /// the running CPU (or target architecture) does not support, listing
    /// the usable alternatives.
    pub fn resolve(self) -> SimdPath {
        match self {
            SimdMode::Scalar => SimdPath::Scalar,
            SimdMode::Auto => {
                if SimdPath::Avx512.is_available() {
                    SimdPath::Avx512
                } else if SimdPath::Avx2.is_available() {
                    SimdPath::Avx2
                } else {
                    SimdPath::Scalar
                }
            }
            SimdMode::Avx2 => {
                assert!(
                    SimdPath::Avx2.is_available(),
                    "ARCHREL_SIMD forced `avx2`, but this CPU does not support AVX2 \
                     (use `auto` for clean fallback or `scalar` for the reference path)"
                );
                SimdPath::Avx2
            }
            SimdMode::Avx512 => {
                assert!(
                    SimdPath::Avx512.is_available(),
                    "ARCHREL_SIMD forced `avx512`, but this CPU does not support AVX-512F \
                     (use `auto` for clean fallback, or `avx2`/`scalar`)"
                );
                SimdPath::Avx512
            }
        }
    }

    /// The mode's canonical spelling.
    pub fn name(self) -> &'static str {
        match self {
            SimdMode::Auto => "auto",
            SimdMode::Scalar => "scalar",
            SimdMode::Avx2 => "avx2",
            SimdMode::Avx512 => "avx512",
        }
    }
}

impl std::fmt::Display for SimdMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A concrete, hardware-validated replay path (the outcome of
/// [`SimdMode::resolve`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdPath {
    /// The portable scalar tape — the bitwise reference, runs everywhere.
    Scalar,
    /// AVX2: each tape step advances the eight lanes as two `f64x4` groups.
    Avx2,
    /// AVX-512F: each tape step advances the eight lanes as one `f64x8`
    /// group.
    Avx512,
}

impl SimdPath {
    /// Whether the running CPU can execute this path.
    pub fn is_available(self) -> bool {
        match self {
            SimdPath::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            SimdPath::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "x86_64")]
            SimdPath::Avx512 => std::arch::is_x86_feature_detected!("avx512f"),
            #[cfg(not(target_arch = "x86_64"))]
            SimdPath::Avx2 | SimdPath::Avx512 => false,
        }
    }

    /// The path's canonical spelling.
    pub fn name(self) -> &'static str {
        match self {
            SimdPath::Scalar => "scalar",
            SimdPath::Avx2 => "avx2",
            SimdPath::Avx512 => "avx512",
        }
    }
}

impl std::fmt::Display for SimdPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Borrowed view of a compiled back-substitution tape, decoupling the
/// kernels from `archrel_markov`'s plan representation. One tape step `k`
/// computes state `pos[k]` from an optional direct-to-target slot
/// (`r_slot[k]`), the already-solved terms `term_slot/term_pos` in
/// `term_off[k]..term_off[k+1]`, and an optional self-loop division
/// (`self_slot[k]`); `slot_none` marks absent optional slots.
#[derive(Debug, Clone, Copy)]
pub struct TapeView<'a> {
    /// Solution-tile position written by each tape step.
    pub pos: &'a [u32],
    /// Direct transient→target parameter slot per step (or `slot_none`).
    pub r_slot: &'a [u32],
    /// Self-loop parameter slot per step (or `slot_none`).
    pub self_slot: &'a [u32],
    /// CSR offsets into `term_slot`/`term_pos`, length `pos.len() + 1`.
    pub term_off: &'a [u32],
    /// Parameter slot of each term.
    pub term_slot: &'a [u32],
    /// Solution-tile position of each term's already-solved state.
    pub term_pos: &'a [u32],
    /// Sentinel value marking an absent `r_slot`/`self_slot`.
    pub slot_none: u32,
}

/// Replays an acyclic tape over eight staged parameter rows with the given
/// (non-scalar) SIMD kernel, writing the lane-major solution tile into `x`.
///
/// `rows[l]` is lane `l`'s parameter row (all of equal width covering every
/// slot the tape names); lanes `occupied..` may hold stale values — they are
/// computed but excluded from the trapped-mass check, exactly like the
/// scalar block reference. On success `x[pos[k]]` holds every lane's value
/// for each solved state.
///
/// # Errors
///
/// Returns `Err(k)` — the tape step index — when an *occupied* lane's
/// self-loop denominator `1 - q` is not positive (trapped probability mass),
/// matching the scalar reference's error point.
///
/// # Panics
///
/// Panics when `path` is [`SimdPath::Scalar`] (the caller owns the scalar
/// reference loop) or names an instruction set the running CPU does not
/// support, and on out-of-bounds tape indices (indexing is bounds-checked).
pub fn replay_tape_lane8(
    path: SimdPath,
    tape: &TapeView<'_>,
    rows: &[&[f64]; LANE8],
    occupied: usize,
    x: &mut [Lane8],
) -> std::result::Result<(), usize> {
    assert!(
        path.is_available(),
        "SIMD path `{path}` is not supported on this CPU"
    );
    match path {
        SimdPath::Scalar => {
            panic!("replay_tape_lane8 dispatches vector kernels; the caller owns the scalar tape")
        }
        #[cfg(target_arch = "x86_64")]
        // SAFETY: availability asserted above; kernels use bounds-checked
        // indexing and aligned `Lane8` vector moves only.
        SimdPath::Avx2 => unsafe { kernels::replay_avx2(tape, rows, occupied, x) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        SimdPath::Avx512 => unsafe { kernels::replay_avx512(tape, rows, occupied, x) },
        #[cfg(not(target_arch = "x86_64"))]
        SimdPath::Avx2 | SimdPath::Avx512 => unreachable!("unavailable on this architecture"),
    }
}

/// Bitmask of the error-checked (occupied) lanes.
#[cfg(target_arch = "x86_64")]
fn lane_mask(occupied: usize) -> u32 {
    ((1u32 << occupied.min(LANE8)) - 1) & 0xff
}

#[cfg(target_arch = "x86_64")]
mod kernels {
    use super::{lane_mask, Lane8, TapeView, LANE8};
    use std::arch::x86_64::*;

    /// Lanes 0–3 and 4–7 of one parameter slot, assembled from the eight
    /// staged rows with scalar loads (each slot is read exactly once per
    /// replay, so gathers or an eager transpose would only add traffic).
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn slot_group_avx2(rows: &[&[f64]; LANE8], slot: usize) -> (__m256d, __m256d) {
        (
            _mm256_set_pd(rows[3][slot], rows[2][slot], rows[1][slot], rows[0][slot]),
            _mm256_set_pd(rows[7][slot], rows[6][slot], rows[5][slot], rows[4][slot]),
        )
    }

    /// AVX2 tape replay: per step, two `f64x4` groups carry the eight lanes
    /// through separately-rounded multiply/add (no FMA — the scalar
    /// reference rounds the product and the sum independently) and an IEEE
    /// `vdivpd` self-loop division that matches the scalar quotient bitwise.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn replay_avx2(
        tape: &TapeView<'_>,
        rows: &[&[f64]; LANE8],
        occupied: usize,
        x: &mut [Lane8],
    ) -> Result<(), usize> {
        let occ = lane_mask(occupied);
        let zero = _mm256_setzero_pd();
        let one = _mm256_set1_pd(1.0);
        for k in 0..tape.pos.len() {
            let (mut lo, mut hi) = match tape.r_slot[k] {
                s if s == tape.slot_none => (zero, zero),
                s => slot_group_avx2(rows, s as usize),
            };
            for t in tape.term_off[k] as usize..tape.term_off[k + 1] as usize {
                let (pl, ph) = slot_group_avx2(rows, tape.term_slot[t] as usize);
                let xj = x[tape.term_pos[t] as usize].0.as_ptr();
                lo = _mm256_add_pd(lo, _mm256_mul_pd(pl, _mm256_load_pd(xj)));
                hi = _mm256_add_pd(hi, _mm256_mul_pd(ph, _mm256_load_pd(xj.add(4))));
            }
            match tape.self_slot[k] {
                s if s == tape.slot_none => {
                    // The scalar reference skips the division outright:
                    // `s / (1.0 - 0.0)` is exact in IEEE 754.
                }
                s => {
                    let (ql, qh) = slot_group_avx2(rows, s as usize);
                    let dl = _mm256_sub_pd(one, ql);
                    let dh = _mm256_sub_pd(one, qh);
                    let bad_lo = _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_LE_OQ>(dl, zero)) as u32;
                    let bad_hi = _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_LE_OQ>(dh, zero)) as u32;
                    if (bad_lo | (bad_hi << 4)) & occ != 0 {
                        return Err(k);
                    }
                    lo = _mm256_div_pd(lo, dl);
                    hi = _mm256_div_pd(hi, dh);
                }
            }
            let out = x[tape.pos[k] as usize].0.as_mut_ptr();
            _mm256_store_pd(out, lo);
            _mm256_store_pd(out.add(4), hi);
        }
        Ok(())
    }

    /// All eight lanes of one parameter slot as a single `f64x8` group.
    #[target_feature(enable = "avx512f")]
    #[inline]
    unsafe fn slot_group_avx512(rows: &[&[f64]; LANE8], slot: usize) -> __m512d {
        _mm512_set_pd(
            rows[7][slot],
            rows[6][slot],
            rows[5][slot],
            rows[4][slot],
            rows[3][slot],
            rows[2][slot],
            rows[1][slot],
            rows[0][slot],
        )
    }

    /// AVX-512F tape replay: one `f64x8` group per step; same no-FMA,
    /// IEEE-division discipline as [`replay_avx2`], with the trapped-mass
    /// check taken from a native compare mask.
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn replay_avx512(
        tape: &TapeView<'_>,
        rows: &[&[f64]; LANE8],
        occupied: usize,
        x: &mut [Lane8],
    ) -> Result<(), usize> {
        let occ = lane_mask(occupied) as u8;
        let zero = _mm512_setzero_pd();
        let one = _mm512_set1_pd(1.0);
        for k in 0..tape.pos.len() {
            let mut s = match tape.r_slot[k] {
                s if s == tape.slot_none => zero,
                s => slot_group_avx512(rows, s as usize),
            };
            for t in tape.term_off[k] as usize..tape.term_off[k + 1] as usize {
                let p = slot_group_avx512(rows, tape.term_slot[t] as usize);
                let xj = _mm512_load_pd(x[tape.term_pos[t] as usize].0.as_ptr());
                s = _mm512_add_pd(s, _mm512_mul_pd(p, xj));
            }
            match tape.self_slot[k] {
                s if s == tape.slot_none => {}
                slot => {
                    let den = _mm512_sub_pd(one, slot_group_avx512(rows, slot as usize));
                    if _mm512_cmp_pd_mask::<_CMP_LE_OQ>(den, zero) & occ != 0 {
                        return Err(k);
                    }
                    s = _mm512_div_pd(s, den);
                }
            }
            _mm512_store_pd(x[tape.pos[k] as usize].0.as_mut_ptr(), s);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parsing_accepts_all_spellings() {
        assert_eq!(SimdMode::parse("auto"), Some(SimdMode::Auto));
        assert_eq!(SimdMode::parse(" Scalar "), Some(SimdMode::Scalar));
        assert_eq!(SimdMode::parse("AVX2"), Some(SimdMode::Avx2));
        assert_eq!(SimdMode::parse("avx512"), Some(SimdMode::Avx512));
        assert_eq!(SimdMode::parse("sse2"), None);
        assert_eq!(SimdMode::parse(""), None);
    }

    #[test]
    fn env_value_parsing_hard_errors_listing_accepted_values() {
        let err = std::panic::catch_unwind(|| SimdMode::parse_env_value("avx1024")).unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .expect("panic carries a String");
        assert!(msg.contains("ARCHREL_SIMD"), "{msg}");
        assert!(msg.contains("avx1024"), "{msg}");
        assert!(msg.contains("auto, scalar, avx2, avx512"), "{msg}");
    }

    #[test]
    fn auto_resolves_to_an_available_path() {
        let path = SimdMode::Auto.resolve();
        assert!(path.is_available());
    }

    #[test]
    fn scalar_resolves_everywhere() {
        assert_eq!(SimdMode::Scalar.resolve(), SimdPath::Scalar);
        assert!(SimdPath::Scalar.is_available());
    }

    #[test]
    fn forced_modes_resolve_or_panic_with_guidance() {
        for (mode, path) in [
            (SimdMode::Avx2, SimdPath::Avx2),
            (SimdMode::Avx512, SimdPath::Avx512),
        ] {
            if path.is_available() {
                assert_eq!(mode.resolve(), path);
            } else {
                let err = std::panic::catch_unwind(move || mode.resolve()).unwrap_err();
                let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
                assert!(msg.contains("ARCHREL_SIMD"), "{msg}");
            }
        }
    }

    #[test]
    fn lane8_is_sixtyfour_byte_aligned() {
        assert_eq!(std::mem::align_of::<Lane8>(), 64);
        assert_eq!(std::mem::size_of::<Lane8>(), 64);
        let tile = vec![Lane8::default(); 3];
        for group in &tile {
            assert_eq!(group.0.as_ptr() as usize % 64, 0);
        }
    }

    /// A hand-built 3-step tape (diamond with a self-loop) replayed by every
    /// available vector kernel against a straightforward scalar evaluation.
    #[test]
    fn vector_kernels_match_a_hand_rolled_scalar_replay() {
        // States: 2 (leaf, r=slot 4, self-loop slot 5), 1 (leaf, r=slot 3),
        // 0 (terms: slot 0 → state 1, slot 1 → state 2, r=slot 2).
        let tape = TapeView {
            pos: &[2, 1, 0],
            r_slot: &[4, 3, 2],
            self_slot: &[5, u32::MAX, u32::MAX],
            term_off: &[0, 0, 0, 2],
            term_slot: &[0, 1],
            term_pos: &[1, 2],
            slot_none: u32::MAX,
        };
        let base = [0.25, 0.5, 0.03, 0.9, 0.6, 0.2];
        let rows_data: Vec<Vec<f64>> = (0..LANE8)
            .map(|l| base.iter().map(|v| v * (1.0 + l as f64 * 0.01)).collect())
            .collect();
        let rows: [&[f64]; LANE8] = std::array::from_fn(|l| rows_data[l].as_slice());
        let expected: Vec<[f64; 3]> = (0..LANE8)
            .map(|l| {
                let p = rows[l];
                let x2 = p[4] / (1.0 - p[5]);
                let x1 = p[3];
                let x0 = ((p[2] + p[0] * x1) + p[1] * x2) / 1.0;
                [x0, x1, x2]
            })
            .collect();
        for path in [SimdPath::Avx2, SimdPath::Avx512] {
            if !path.is_available() {
                continue;
            }
            let mut x = vec![Lane8::default(); 3];
            replay_tape_lane8(path, &tape, &rows, LANE8, &mut x).unwrap();
            for (l, exp) in expected.iter().enumerate() {
                for (state, value) in exp.iter().enumerate() {
                    assert_eq!(
                        x[state][l].to_bits(),
                        value.to_bits(),
                        "path {path}, lane {l}, state {state}"
                    );
                }
            }
        }
    }

    /// A trapped self-loop on a stale lane is ignored; on an occupied lane
    /// it reports the tape step.
    #[test]
    fn trapped_mass_respects_lane_occupancy() {
        let tape = TapeView {
            pos: &[0],
            r_slot: &[0],
            self_slot: &[1],
            term_off: &[0, 0],
            term_slot: &[],
            term_pos: &[],
            slot_none: u32::MAX,
        };
        let healthy = [0.5, 0.25];
        let trapped = [0.5, 1.0];
        for path in [SimdPath::Avx2, SimdPath::Avx512] {
            if !path.is_available() {
                continue;
            }
            // Trapped parameters in the last (stale) lane only: fine.
            let mut rows_data = vec![healthy.to_vec(); LANE8];
            rows_data[LANE8 - 1] = trapped.to_vec();
            let rows: [&[f64]; LANE8] = std::array::from_fn(|l| rows_data[l].as_slice());
            let mut x = vec![Lane8::default(); 1];
            replay_tape_lane8(path, &tape, &rows, LANE8 - 1, &mut x).unwrap();
            assert_eq!(x[0][0].to_bits(), (0.5f64 / 0.75).to_bits());
            // The same lane occupied: step 0 reports trapped mass.
            assert_eq!(
                replay_tape_lane8(path, &tape, &rows, LANE8, &mut x),
                Err(0),
                "path {path}"
            );
        }
    }
}
