use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A dense vector of `f64` values.
///
/// `Vector` is the right-hand-side / solution type for the solvers in this
/// crate and the probability-distribution type for the Markov substrate.
///
/// # Examples
///
/// ```
/// use archrel_linalg::Vector;
///
/// let v = Vector::from_slice(&[3.0, 4.0]);
/// assert_eq!(v.norm_2(), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates a zero vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        Vector { data: vec![0.0; n] }
    }

    /// Creates a vector of length `n` filled with `value`.
    pub fn filled(n: usize, value: f64) -> Self {
        Vector {
            data: vec![value; n],
        }
    }

    /// Creates a vector by copying a slice.
    pub fn from_slice(values: &[f64]) -> Self {
        Vector {
            data: values.to_vec(),
        }
    }

    /// Creates a standard basis vector `e_i` of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn basis(n: usize, i: usize) -> Self {
        assert!(i < n, "basis index {i} out of bounds for length {n}");
        let mut v = Vector::zeros(n);
        v.data[i] = 1.0;
        v
    }

    /// Length of the vector.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the vector has length zero.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the underlying storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the vector, returning its storage.
    pub fn into_inner(self) -> Vec<f64> {
        self.data
    }

    /// Dot product with another vector.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ; this is a programmer error, not a data error.
    pub fn dot(&self, other: &Vector) -> f64 {
        assert_eq!(
            self.len(),
            other.len(),
            "dot product of vectors with different lengths"
        );
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }

    /// Euclidean (L2) norm.
    pub fn norm_2(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// L1 norm (sum of absolute values).
    pub fn norm_1(&self) -> f64 {
        self.data.iter().map(|x| x.abs()).sum()
    }

    /// Infinity norm (largest absolute value), `0.0` for the empty vector.
    pub fn norm_inf(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, x| m.max(x.abs()))
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Scale all entries in place.
    pub fn scale_mut(&mut self, factor: f64) {
        for x in &mut self.data {
            *x *= factor;
        }
    }

    /// Returns a scaled copy.
    pub fn scaled(&self, factor: f64) -> Vector {
        let mut v = self.clone();
        v.scale_mut(factor);
        v
    }

    /// Normalizes the vector in place so its entries sum to one, returning
    /// `false` (and leaving the vector untouched) when the sum is zero or
    /// non-finite.
    pub fn normalize_sum(&mut self) -> bool {
        let s = self.sum();
        if s == 0.0 || !s.is_finite() {
            return false;
        }
        self.scale_mut(1.0 / s);
        true
    }

    /// Iterates over entries.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.data.iter()
    }

    /// Maximum absolute difference between two vectors of the same length.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn max_abs_diff(&self, other: &Vector) -> f64 {
        assert_eq!(self.len(), other.len(), "max_abs_diff length mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()))
    }
}

impl From<Vec<f64>> for Vector {
    fn from(data: Vec<f64>) -> Self {
        Vector { data }
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Vector {
            data: iter.into_iter().collect(),
        }
    }
}

impl Index<usize> for Vector {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

impl Add for &Vector {
    type Output = Vector;
    fn add(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "vector addition length mismatch");
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect()
    }
}

impl Sub for &Vector {
    type Output = Vector;
    fn sub(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "vector subtraction length mismatch");
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect()
    }
}

impl AddAssign<&Vector> for Vector {
    fn add_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.len(), rhs.len(), "vector += length mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl SubAssign<&Vector> for Vector {
    fn sub_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.len(), rhs.len(), "vector -= length mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
    }
}

impl Mul<f64> for &Vector {
    type Output = Vector;
    fn mul(self, rhs: f64) -> Vector {
        self.scaled(rhs)
    }
}

impl Neg for &Vector {
    type Output = Vector;
    fn neg(self) -> Vector {
        self.scaled(-1.0)
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, x) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x:.6}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let mut v = Vector::zeros(3);
        assert_eq!(v.len(), 3);
        v[1] = 2.5;
        assert_eq!(v[1], 2.5);
        assert_eq!(v.sum(), 2.5);
    }

    #[test]
    fn basis_vector() {
        let e1 = Vector::basis(4, 1);
        assert_eq!(e1.as_slice(), &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn basis_out_of_bounds_panics() {
        let _ = Vector::basis(2, 2);
    }

    #[test]
    fn norms() {
        let v = Vector::from_slice(&[3.0, -4.0]);
        assert_eq!(v.norm_2(), 5.0);
        assert_eq!(v.norm_1(), 7.0);
        assert_eq!(v.norm_inf(), 4.0);
    }

    #[test]
    fn empty_norms_are_zero() {
        let v = Vector::zeros(0);
        assert!(v.is_empty());
        assert_eq!(v.norm_inf(), 0.0);
        assert_eq!(v.norm_2(), 0.0);
    }

    #[test]
    fn dot_product() {
        let a = Vector::from_slice(&[1.0, 2.0, 3.0]);
        let b = Vector::from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(a.dot(&b), 32.0);
    }

    #[test]
    fn arithmetic() {
        let a = Vector::from_slice(&[1.0, 2.0]);
        let b = Vector::from_slice(&[3.0, 5.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[4.0, 7.0]);
        c -= &b;
        assert_eq!(c.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn normalize_sum_ok() {
        let mut v = Vector::from_slice(&[1.0, 3.0]);
        assert!(v.normalize_sum());
        assert_eq!(v.as_slice(), &[0.25, 0.75]);
    }

    #[test]
    fn normalize_sum_zero_is_rejected() {
        let mut v = Vector::zeros(2);
        assert!(!v.normalize_sum());
        assert_eq!(v.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn max_abs_diff() {
        let a = Vector::from_slice(&[1.0, 2.0]);
        let b = Vector::from_slice(&[1.5, 1.0]);
        assert_eq!(a.max_abs_diff(&b), 1.0);
    }

    #[test]
    fn from_iterator() {
        let v: Vector = (0..3).map(|i| i as f64).collect();
        assert_eq!(v.as_slice(), &[0.0, 1.0, 2.0]);
    }
}
