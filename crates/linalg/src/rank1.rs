//! Rank-1 incremental solves against a fixed LU factorization.
//!
//! Parameter sweeps in the reliability engine perturb a *single* transient
//! state at a time, which changes exactly one row of `A = I − Q`. Writing the
//! perturbed matrix as `A' = A + e_i vᵀ`, the Sherman–Morrison identity
//!
//! ```text
//! A'⁻¹ b = y − z · (vᵀy) / (1 + vᵀz),   y = A⁻¹b,  z = A⁻¹e_i
//! ```
//!
//! answers each perturbed system with two back-substitutions against the
//! *original* factorization — `O(n²)` instead of the `O(n³)` refactorization
//! a fresh solve would pay.

use crate::{Lu, Result, Vector};

/// Default threshold below which `|1 + vᵀz|` is considered numerically zero
/// and the update is refused (the perturbed matrix is near-singular, or the
/// update formula would amplify rounding error unacceptably).
pub const RANK1_REFUSAL_EPS: f64 = 1e-9;

/// Solves `(A + e_row vᵀ) x = b` using a factorization of `A`.
///
/// Returns `Ok(None)` when the Sherman–Morrison denominator `1 + vᵀz` has
/// absolute value below `refusal_eps`: the caller must fall back to a full
/// refactorization (or report singularity). The refusal is a *numerical*
/// judgement, not an error — hence the `Option`.
///
/// # Errors
///
/// Returns [`crate::LinalgError::DimensionMismatch`] when `b` or `v` do not
/// match the factorization's dimension, or `row` is out of range.
pub fn sherman_morrison_solve(
    lu: &Lu,
    b: &Vector,
    row: usize,
    v: &Vector,
    refusal_eps: f64,
) -> Result<Option<Vector>> {
    crate::view::sherman_morrison_solve_view(
        lu.dim(),
        lu.factors_data(),
        lu.perm(),
        b.as_slice(),
        row,
        v.as_slice(),
        refusal_eps,
    )
    .map(|x| x.map(Vector::from))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    fn perturbed_row_solve(a: &Matrix, row: usize, delta: &[f64], b: &[f64]) -> Vector {
        let mut a2 = a.clone();
        for (j, d) in delta.iter().enumerate() {
            a2.set(row, j, a2.get(row, j) + d);
        }
        a2.solve(&Vector::from_slice(b)).unwrap()
    }

    #[test]
    fn matches_direct_solve_of_perturbed_matrix() {
        let a =
            Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 0.25], &[0.5, 0.25, 5.0]]).unwrap();
        let lu = Lu::decompose(&a).unwrap();
        let b = Vector::from_slice(&[1.0, 2.0, 3.0]);
        let delta = [0.3, -0.1, 0.2];
        let x = sherman_morrison_solve(&lu, &b, 1, &Vector::from_slice(&delta), RANK1_REFUSAL_EPS)
            .unwrap()
            .expect("well-conditioned update");
        let expected = perturbed_row_solve(&a, 1, &delta, &[1.0, 2.0, 3.0]);
        assert!(x.max_abs_diff(&expected) < 1e-12, "{x:?} vs {expected:?}");
    }

    #[test]
    fn zero_perturbation_reduces_to_plain_solve() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let lu = Lu::decompose(&a).unwrap();
        let b = Vector::from_slice(&[3.0, 5.0]);
        let x = sherman_morrison_solve(&lu, &b, 0, &Vector::zeros(2), RANK1_REFUSAL_EPS)
            .unwrap()
            .unwrap();
        let direct = lu.solve(&b).unwrap();
        assert!(x.max_abs_diff(&direct) < 1e-15);
    }

    #[test]
    fn singular_update_is_refused() {
        // A = I; perturbing row 0 by v = (-1, 0) makes the matrix singular:
        // 1 + v·z = 1 + (-1) = 0.
        let lu = Lu::decompose(&Matrix::identity(2)).unwrap();
        let b = Vector::from_slice(&[1.0, 1.0]);
        let v = Vector::from_slice(&[-1.0, 0.0]);
        let refused = sherman_morrison_solve(&lu, &b, 0, &v, RANK1_REFUSAL_EPS).unwrap();
        assert!(refused.is_none());
    }

    #[test]
    fn dimension_mismatch_is_an_error() {
        let lu = Lu::decompose(&Matrix::identity(3)).unwrap();
        let b = Vector::zeros(3);
        assert!(sherman_morrison_solve(&lu, &b, 0, &Vector::zeros(2), 1e-9).is_err());
        assert!(sherman_morrison_solve(&lu, &b, 3, &Vector::zeros(3), 1e-9).is_err());
    }
}
