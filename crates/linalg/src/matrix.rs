use std::fmt;
use std::ops::{Add, Mul, Sub};

use crate::{LinalgError, Lu, Result, Vector};

/// A dense, row-major matrix of `f64` values.
///
/// This is the workhorse type of the crate: the Markov substrate stores
/// transition matrices as `Matrix` and the reliability engine solves
/// `(I - Q) x = b` systems through [`Matrix::solve`].
///
/// # Examples
///
/// ```
/// use archrel_linalg::Matrix;
///
/// # fn main() -> Result<(), archrel_linalg::LinalgError> {
/// let a = Matrix::identity(3);
/// let b = a.mul_matrix(&a)?;
/// assert_eq!(a, b);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidShape`] when the input is empty or the
    /// rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        if rows.is_empty() {
            return Err(LinalgError::InvalidShape {
                reason: "no rows supplied".to_string(),
            });
        }
        let cols = rows[0].len();
        if cols == 0 {
            return Err(LinalgError::InvalidShape {
                reason: "rows are empty".to_string(),
            });
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinalgError::InvalidShape {
                    reason: format!("row {i} has length {}, expected {cols}", r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidShape`] when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidShape {
                reason: format!(
                    "buffer of length {} cannot form a {rows}x{cols} matrix",
                    data.len()
                ),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn diagonal(diag: &[f64]) -> Self {
        let mut m = Matrix::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m.set(i, i, d);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Reads the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when the index is out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row}, {col}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        self.data[row * self.cols + col]
    }

    /// Fallible entry read.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::IndexOutOfBounds`] when out of range.
    pub fn try_get(&self, row: usize, col: usize) -> Result<f64> {
        if row < self.rows && col < self.cols {
            Ok(self.data[row * self.cols + col])
        } else {
            Err(LinalgError::IndexOutOfBounds {
                index: (row, col),
                shape: self.shape(),
            })
        }
    }

    /// Writes the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when the index is out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row}, {col}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        self.data[row * self.cols + col] = value;
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics when `i >= rows`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row {i} out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics when `i >= rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row {i} out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new [`Vector`].
    ///
    /// # Panics
    ///
    /// Panics when `j >= cols`.
    pub fn col(&self, j: usize) -> Vector {
        assert!(j < self.cols, "column {j} out of bounds");
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// Borrows the backing row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// Matrix-matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when
    /// `self.cols() != rhs.rows()`.
    pub fn mul_matrix(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matrix multiplication",
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out.data[i * rhs.cols + j] += a * rhs.get(k, j);
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `self.cols() != v.len()`.
    pub fn mul_vector(&self, v: &Vector) -> Result<Vector> {
        if self.cols != v.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "matrix-vector multiplication",
                left: self.shape(),
                right: (v.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|i| {
                self.row(i)
                    .iter()
                    .zip(v.as_slice())
                    .map(|(a, b)| a * b)
                    .sum()
            })
            .collect())
    }

    /// Row-vector-matrix product `v^T * self`, returned as a vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `v.len() != self.rows()`.
    pub fn vector_mul(&self, v: &Vector) -> Result<Vector> {
        if self.rows != v.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "vector-matrix multiplication",
                left: (1, v.len()),
                right: self.shape(),
            });
        }
        let mut out = Vector::zeros(self.cols);
        for i in 0..self.rows {
            let vi = v[i];
            if vi == 0.0 {
                continue;
            }
            for j in 0..self.cols {
                out[j] += vi * self.get(i, j);
            }
        }
        Ok(out)
    }

    /// Scales every entry by `factor`, in place.
    pub fn scale_mut(&mut self, factor: f64) {
        for x in &mut self.data {
            *x *= factor;
        }
    }

    /// Returns `self` raised to the `n`-th power (square matrices only).
    ///
    /// Uses exponentiation by squaring; `pow(0)` is the identity.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for rectangular matrices.
    pub fn pow(&self, mut n: u32) -> Result<Matrix> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                shape: self.shape(),
            });
        }
        let mut result = Matrix::identity(self.rows);
        let mut base = self.clone();
        while n > 0 {
            if n & 1 == 1 {
                result = result.mul_matrix(&base)?;
            }
            n >>= 1;
            if n > 0 {
                base = base.mul_matrix(&base)?;
            }
        }
        Ok(result)
    }

    /// Infinity norm (maximum absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows).fold(0.0_f64, |m, i| {
            m.max(self.row(i).iter().map(|x| x.abs()).sum())
        })
    }

    /// Frobenius norm.
    pub fn norm_frobenius(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entrywise difference between two equally shaped
    /// matrices.
    ///
    /// # Panics
    ///
    /// Panics when shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()))
    }

    /// LU-factorizes the matrix (partial pivoting).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] or [`LinalgError::Singular`].
    pub fn lu(&self) -> Result<Lu> {
        Lu::decompose(self)
    }

    /// Solves `self * x = b` by LU decomposition.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`], [`LinalgError::Singular`], or
    /// [`LinalgError::DimensionMismatch`].
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        self.lu()?.solve(b)
    }

    /// Solves `self * X = B` for a matrix right-hand side.
    ///
    /// # Errors
    ///
    /// Same as [`Matrix::solve`].
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        self.lu()?.solve_matrix(b)
    }

    /// Computes the inverse by LU decomposition.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] or [`LinalgError::Singular`].
    pub fn inverse(&self) -> Result<Matrix> {
        self.lu()?.inverse()
    }

    /// Determinant via LU decomposition; `0.0` when singular.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for rectangular matrices.
    pub fn determinant(&self) -> Result<f64> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                shape: self.shape(),
            });
        }
        match self.lu() {
            Ok(lu) => Ok(lu.determinant()),
            Err(LinalgError::Singular { .. }) => Ok(0.0),
            Err(e) => Err(e),
        }
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix addition shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "matrix subtraction shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: f64) -> Matrix {
        let mut m = self.clone();
        m.scale_mut(rhs);
        m
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.6}", self.get(i, j))?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn identity_times_matrix_is_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(i.mul_matrix(&a).unwrap(), a);
        assert_eq!(a.mul_matrix(&i).unwrap(), a);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::InvalidShape { .. }));
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert!(Matrix::from_rows(&[]).is_err());
        let empty_row: &[f64] = &[];
        assert!(Matrix::from_rows(&[empty_row]).is_err());
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn multiplication_known_result() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.mul_matrix(&b).unwrap();
        assert_eq!(
            c,
            Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap()
        );
    }

    #[test]
    fn mul_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.mul_matrix(&b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn matrix_vector_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let v = Vector::from_slice(&[1.0, 1.0]);
        assert_eq!(a.mul_vector(&v).unwrap().as_slice(), &[3.0, 7.0]);
    }

    #[test]
    fn vector_matrix_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let v = Vector::from_slice(&[1.0, 1.0]);
        assert_eq!(a.vector_mul(&v).unwrap().as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let a = Matrix::from_rows(&[&[0.5, 0.5], &[0.25, 0.75]]).unwrap();
        let a3 = a.mul_matrix(&a).unwrap().mul_matrix(&a).unwrap();
        assert!(a.pow(3).unwrap().max_abs_diff(&a3) < 1e-15);
        assert_eq!(a.pow(0).unwrap(), Matrix::identity(2));
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]).unwrap();
        assert!(approx(a.norm_inf(), 7.0));
        assert!(approx(a.norm_frobenius(), 30.0_f64.sqrt()));
    }

    #[test]
    fn determinant_of_singular_matrix_is_zero() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert_eq!(a.determinant().unwrap(), 0.0);
    }

    #[test]
    fn determinant_known_value() {
        let a = Matrix::from_rows(&[&[3.0, 8.0], &[4.0, 6.0]]).unwrap();
        assert!(approx(a.determinant().unwrap(), -14.0));
    }

    #[test]
    fn try_get_bounds() {
        let a = Matrix::zeros(2, 2);
        assert!(a.try_get(1, 1).is_ok());
        assert!(matches!(
            a.try_get(2, 0),
            Err(LinalgError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn diagonal_matrix() {
        let d = Matrix::diagonal(&[1.0, 2.0, 3.0]);
        assert_eq!(d.get(1, 1), 2.0);
        assert_eq!(d.get(0, 1), 0.0);
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::identity(2);
        let s = &a + &b;
        assert_eq!(s.get(0, 0), 2.0);
        let d = &s - &b;
        assert_eq!(d, a);
        let scaled = &a * 2.0;
        assert_eq!(scaled.get(1, 1), 8.0);
    }

    #[test]
    fn col_extraction() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.col(1).as_slice(), &[2.0, 4.0]);
    }
}
