//! Dense linear algebra substrate for `archrel`.
//!
//! The reliability engine reduces every composite service flow to an absorbing
//! discrete-time Markov chain and computes absorption probabilities, which
//! requires solving linear systems of the form `(I - Q) x = b` ("standard
//! Markov methods", Grassi §3.2). This crate provides exactly the dense
//! machinery needed for that, implemented from scratch so the workspace stays
//! within its sanctioned dependency set:
//!
//! - [`Matrix`]: a dense row-major `f64` matrix with the usual arithmetic.
//! - [`Vector`]: a dense `f64` vector.
//! - [`Lu`]: LU decomposition with partial pivoting; exact solves, inverses,
//!   determinants.
//! - [`iterative`]: Jacobi and Gauss–Seidel solvers and power iteration, used
//!   for large chains and for stationary distributions.
//! - [`CsrMatrix`]: a compressed-sparse-row matrix with `O(nnz)` SpMV and the
//!   sparse Gauss–Seidel / Jacobi solvers behind the engine's sparse path.
//! - [`sherman_morrison_solve`]: rank-1 incremental re-solve against a fixed
//!   [`Lu`] factorization, used by the compiled evaluation plans to answer
//!   single-row parameter perturbations in `O(n²)`.
//! - [`simd`]: runtime-dispatched AVX2/AVX-512 kernels for the lane-8 blocked
//!   tape replay, selected via `ARCHREL_SIMD` and pinned bitwise-identical to
//!   the portable scalar reference.
//!
//! # Examples
//!
//! ```
//! use archrel_linalg::{Matrix, Vector};
//!
//! # fn main() -> Result<(), archrel_linalg::LinalgError> {
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[2.0, 3.0]])?;
//! let b = Vector::from_slice(&[1.0, 2.0]);
//! let x = a.solve(&b)?;
//! let r = &a.mul_vector(&x)? - &b;
//! assert!(r.norm_inf() < 1e-12);
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: the `simd` module is the crate's single,
// narrowly-scoped `unsafe` surface (CPU intrinsics behind a checked dispatch
// boundary); everything else still refuses unsafe code outright.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod csr;
mod error;
pub mod iterative;
mod lu;
mod matrix;
mod rank1;
pub mod simd;
mod vector;
mod view;

pub use csr::CsrMatrix;
pub use error::LinalgError;
pub use lu::{Lu, SINGULARITY_EPS};
pub use matrix::Matrix;
pub use rank1::{sherman_morrison_solve, RANK1_REFUSAL_EPS};
pub use vector::Vector;
pub use view::{lu_solve_view, sherman_morrison_solve_view};

/// Convenience result alias for fallible linear-algebra operations.
pub type Result<T> = std::result::Result<T, LinalgError>;
