//! Textbook validation of the baseline models: architectures with known
//! closed-form reliabilities from the architecture-based reliability
//! literature.

use archrel_baselines::{Component, ComponentModel, PathOptions, END};

fn c(name: &str, reliability: f64) -> Component {
    Component {
        name: name.into(),
        reliability,
    }
}

/// Cheung's original 1980 example shape: three components, branch and merge.
#[test]
fn cheung_branch_and_merge() {
    let model = ComponentModel::new(
        vec![c("n1", 0.98), c("n2", 0.96), c("n3", 0.99)],
        vec![
            ("n1".into(), "n2".into(), 0.6),
            ("n1".into(), "n3".into(), 0.4),
            ("n2".into(), "n3".into(), 1.0),
            ("n3".into(), END.into(), 1.0),
        ],
        "n1",
    )
    .unwrap();
    // Hand computation:
    //   via n2: 0.98 * 0.6 * 0.96 * 0.99
    //   direct: 0.98 * 0.4 * 0.99
    let expected = 0.98 * 0.6 * 0.96 * 0.99 + 0.98 * 0.4 * 0.99;
    let r = model.cheung_reliability().unwrap();
    assert!((r - expected).abs() < 1e-12, "{r} vs {expected}");
    let p = model
        .path_based_reliability(PathOptions::default())
        .unwrap();
    assert!((p - expected).abs() < 1e-12);
}

/// Nested loops: retry around a two-component body.
#[test]
fn cheung_nested_retry_loop() {
    let (r1, r2, retry) = (0.9, 0.95, 0.3);
    let model = ComponentModel::new(
        vec![c("a", r1), c("b", r2)],
        vec![
            ("a".into(), "b".into(), 1.0),
            ("b".into(), "a".into(), retry),
            ("b".into(), END.into(), 1.0 - retry),
        ],
        "a",
    )
    .unwrap();
    // Closed form: one pass succeeds with r1*r2; after a successful pass the
    // loop repeats with probability `retry`. R = r1 r2 (1-retry) / (1 - r1 r2 retry).
    let pass = r1 * r2;
    let expected = pass * (1.0 - retry) / (1.0 - pass * retry);
    let r = model.cheung_reliability().unwrap();
    assert!((r - expected).abs() < 1e-12, "{r} vs {expected}");
    // Path-based converges to the same value with tight cutoffs.
    let p = model
        .path_based_reliability(PathOptions {
            min_probability: 1e-14,
            max_depth: 512,
            max_paths: 2_000_000,
        })
        .unwrap();
    assert!((p - expected).abs() < 1e-8, "{p} vs {expected}");
}

/// A perfectly reliable architecture has reliability one regardless of the
/// control structure.
#[test]
fn perfect_components_give_reliability_one() {
    let model = ComponentModel::new(
        vec![c("a", 1.0), c("b", 1.0)],
        vec![
            ("a".into(), "a".into(), 0.5),
            ("a".into(), "b".into(), 0.5),
            ("b".into(), END.into(), 1.0),
        ],
        "a",
    )
    .unwrap();
    assert!((model.cheung_reliability().unwrap() - 1.0).abs() < 1e-12);
}

/// A component that never terminates (no path to END) drives Cheung's
/// reliability to the probability of avoiding it entirely.
#[test]
fn absorbing_sink_component() {
    let model = ComponentModel::new(
        vec![c("start", 1.0), c("good", 0.99), c("stuck", 1.0)],
        vec![
            ("start".into(), "good".into(), 0.8),
            ("start".into(), "stuck".into(), 0.2),
            ("good".into(), END.into(), 1.0),
            ("stuck".into(), "stuck".into(), 1.0),
        ],
        "start",
    )
    .unwrap();
    let r = model.cheung_reliability().unwrap();
    assert!((r - 0.8 * 0.99).abs() < 1e-12);
}

/// Path-based estimates are monotone in the cutoff: loosening the options
/// can only recover more probability mass.
#[test]
fn path_based_monotone_in_cutoff() {
    let model = ComponentModel::new(
        vec![c("loop", 0.97)],
        vec![
            ("loop".into(), "loop".into(), 0.6),
            ("loop".into(), END.into(), 0.4),
        ],
        "loop",
    )
    .unwrap();
    let mut last = 0.0;
    for depth in [1usize, 2, 4, 8, 16, 64] {
        let p = model
            .path_based_reliability(PathOptions {
                min_probability: 0.0,
                max_depth: depth,
                max_paths: 1_000_000,
            })
            .unwrap();
        assert!(p >= last - 1e-15, "depth {depth}: {p} < {last}");
        last = p;
    }
    let exact = model.cheung_reliability().unwrap();
    assert!(last <= exact + 1e-12);
}
