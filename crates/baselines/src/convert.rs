//! Lowering an `archrel` assembly into the baselines' component abstraction.
//!
//! The classical models know nothing about parametric dependencies, shared
//! services, or connectors: they see *components with fixed reliabilities*
//! and a control-flow matrix. This lowering therefore has to freeze exactly
//! the information Grassi's model keeps symbolic:
//!
//! - each **flow state** of the target service becomes a component whose
//!   reliability is `1 − p(i, Fail)` *at the given parameter bindings*
//!   (changing the bindings requires re-lowering — the paper's §5 point that
//!   "none of the models discussed above introduce explicitly the service
//!   parameters");
//! - the flow's transition probabilities (evaluated at the bindings) become
//!   the control-flow matrix.
//!
//! On flows whose per-state failure model the baselines can represent, the
//! lowered Cheung model reproduces the engine exactly (see tests); the gap
//! appears as soon as sharing couples states or parameters change.

use archrel_expr::Bindings;
use archrel_model::{Service, ServiceId, StateId};

use crate::component::{Component, ComponentModel, END};
use crate::{BaselineError, Result};

/// Lowers `service` (at fixed `env`) into a [`ComponentModel`].
///
/// # Errors
///
/// - [`BaselineError::NotComposite`] when the target is a simple service;
/// - engine errors while resolving per-state failure probabilities.
pub fn from_assembly(
    assembly: &archrel_model::Assembly,
    service: &ServiceId,
    env: &Bindings,
) -> Result<ComponentModel> {
    let Service::Composite(composite) = assembly.require(service)? else {
        return Err(BaselineError::NotComposite {
            service: service.to_string(),
        });
    };

    // Freeze per-state reliabilities with the reference engine.
    let evaluator = archrel_core::Evaluator::new(assembly);
    let report = evaluator.report(service, env)?;

    let mut components = vec![Component {
        name: "Start".to_string(),
        reliability: 1.0, // Start carries no behavior (paper §3.2)
    }];
    for state in &report.states {
        components.push(Component {
            name: state.state.to_string(),
            reliability: state.failure_probability.complement().value(),
        });
    }

    let mut transitions = Vec::new();
    for t in composite.flow().transitions() {
        let p = t
            .probability
            .eval(env)
            .map_err(archrel_model::ModelError::from)?;
        if p == 0.0 {
            continue;
        }
        let from = t.from.to_string();
        let to = match &t.to {
            StateId::End => END.to_string(),
            other => other.to_string(),
        };
        transitions.push((from, to, p));
    }

    ComponentModel::new(components, transitions, "Start")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::PathOptions;
    use archrel_core::Evaluator;
    use archrel_model::paper;

    /// On the paper's own example the lowered Cheung model reproduces the
    /// engine exactly: the flow is acyclic and every state's failure has
    /// been frozen at the same bindings.
    #[test]
    fn cheung_matches_engine_on_fixed_bindings() {
        let params = paper::PaperParams::default();
        let env = paper::search_bindings(4.0, 2048.0, 1.0);
        for assembly in [
            paper::local_assembly(&params).unwrap(),
            paper::remote_assembly(&params).unwrap(),
        ] {
            let engine = Evaluator::new(&assembly)
                .reliability(&paper::SEARCH.into(), &env)
                .unwrap()
                .value();
            let lowered = from_assembly(&assembly, &paper::SEARCH.into(), &env).unwrap();
            let cheung = lowered.cheung_reliability().unwrap();
            assert!(
                (engine - cheung).abs() < 1e-12,
                "engine {engine} vs cheung {cheung}"
            );
            let path = lowered
                .path_based_reliability(PathOptions::default())
                .unwrap();
            assert!((engine - path).abs() < 1e-12);
        }
    }

    /// ... but the frozen model is *stale* for any other binding: the
    /// baselines must be re-derived per parameter value, while the engine's
    /// analytic interface stays parametric (§5's compositional-analysis
    /// argument).
    #[test]
    fn lowered_model_is_stale_for_other_bindings() {
        let params = paper::PaperParams::default();
        let assembly = paper::local_assembly(&params).unwrap();
        let env_small = paper::search_bindings(4.0, 64.0, 1.0);
        let env_large = paper::search_bindings(4.0, 65536.0, 1.0);

        let lowered_small = from_assembly(&assembly, &paper::SEARCH.into(), &env_small).unwrap();
        let engine_large = Evaluator::new(&assembly)
            .reliability(&paper::SEARCH.into(), &env_large)
            .unwrap()
            .value();
        let stale = lowered_small.cheung_reliability().unwrap();
        // The stale model noticeably overestimates the large-list reliability.
        assert!(
            stale > engine_large + 1e-6,
            "stale {stale} vs {engine_large}"
        );
    }

    #[test]
    fn simple_service_cannot_be_lowered() {
        let params = paper::PaperParams::default();
        let assembly = paper::local_assembly(&params).unwrap();
        let err = from_assembly(
            &assembly,
            &paper::CPU1.into(),
            &archrel_expr::Bindings::new().with("n", 1.0),
        )
        .unwrap_err();
        assert!(matches!(err, BaselineError::NotComposite { .. }));
    }
}
