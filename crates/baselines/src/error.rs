use std::fmt;

use archrel_core::CoreError;
use archrel_markov::MarkovError;
use archrel_model::ModelError;

/// Errors produced by the baseline models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BaselineError {
    /// A component reliability was outside `[0, 1]` or non-finite.
    InvalidReliability {
        /// Component name.
        component: String,
        /// The offending value.
        value: f64,
    },
    /// A transition references an undeclared component.
    UnknownComponent {
        /// The missing name.
        name: String,
    },
    /// The model has no start component or no path to the end marker.
    Malformed {
        /// Explanation of the defect.
        reason: String,
    },
    /// The target service must be composite to be lowered to a component
    /// model.
    NotComposite {
        /// The offending service.
        service: String,
    },
    /// An underlying Markov operation failed.
    Markov(MarkovError),
    /// An underlying model operation failed.
    Model(ModelError),
    /// An underlying engine operation failed.
    Core(CoreError),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::InvalidReliability { component, value } => {
                write!(f, "invalid reliability {value} for component `{component}`")
            }
            BaselineError::UnknownComponent { name } => {
                write!(f, "unknown component `{name}`")
            }
            BaselineError::Malformed { reason } => write!(f, "malformed model: {reason}"),
            BaselineError::NotComposite { service } => {
                write!(f, "service `{service}` is not composite")
            }
            BaselineError::Markov(e) => write!(f, "markov error: {e}"),
            BaselineError::Model(e) => write!(f, "model error: {e}"),
            BaselineError::Core(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for BaselineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BaselineError::Markov(e) => Some(e),
            BaselineError::Model(e) => Some(e),
            BaselineError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MarkovError> for BaselineError {
    fn from(e: MarkovError) -> Self {
        BaselineError::Markov(e)
    }
}

impl From<ModelError> for BaselineError {
    fn from(e: ModelError) -> Self {
        BaselineError::Model(e)
    }
}

impl From<CoreError> for BaselineError {
    fn from(e: CoreError) -> Self {
        BaselineError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = BaselineError::InvalidReliability {
            component: "sort".into(),
            value: 1.5,
        };
        assert!(e.to_string().contains("sort"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BaselineError>();
    }
}
