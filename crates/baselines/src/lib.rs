//! Baseline architecture-based reliability models from the paper's related
//! work (§5), implemented for head-to-head comparison with Grassi's model:
//!
//! - [`ComponentModel::cheung_reliability`]: the classic **state-based**
//!   model (Cheung 1980, the basis of Wang–Wu–Chen \[19\] and Reussner \[15\]):
//!   components with fixed reliabilities `R_i` and a probabilistic control
//!   flow; system reliability is the probability of absorbing in the success
//!   state of the chain whose transitions are `R_i · p_ij`.
//! - [`ComponentModel::path_based_reliability`]: the **path-based** model of
//!   Dolbec–Shepard \[5\]: enumerate execution paths, weight each path's
//!   component-reliability product by its occurrence probability. Exact on
//!   acyclic architectures, truncation-biased on cyclic ones.
//! - [`evaluate_without_sharing`]: Grassi's own engine with every `Shared`
//!   dependency downgraded to `Independent` — the implicit assumption of
//!   \[15\] and \[19\], which §5 points out ("both models do not consider the
//!   possible dependency between services caused by service sharing").
//!
//! [`from_assembly`] lowers an `archrel` assembly (at fixed parameter
//! bindings) into a [`ComponentModel`], freezing each flow state's failure
//! probability into a context-independent component reliability — exactly
//! the information loss the baselines' abstraction imposes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod component;
mod convert;
mod error;
mod nosharing;

pub use component::{Component, ComponentModel, PathOptions, END};
pub use convert::from_assembly;
pub use error::BaselineError;
pub use nosharing::evaluate_without_sharing;

/// Convenience result alias for fallible baseline operations.
pub type Result<T> = std::result::Result<T, BaselineError>;
