use std::collections::BTreeMap;

use archrel_markov::{paths, AbsorbingAnalysis, DtmcBuilder};

use crate::{BaselineError, Result};

/// Marker name of the successful-termination pseudo-component.
pub const END: &str = "__END__";

/// A component of the classical architecture-based models: a name plus a
/// context-independent reliability.
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    /// Component name.
    pub name: String,
    /// Probability that one execution of the component succeeds.
    pub reliability: f64,
}

/// Options for the path-based estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathOptions {
    /// Paths with occurrence probability below this value are pruned.
    pub min_probability: f64,
    /// Maximum number of transitions per path.
    pub max_depth: usize,
    /// Cap on enumerated paths.
    pub max_paths: usize,
}

impl Default for PathOptions {
    fn default() -> Self {
        PathOptions {
            min_probability: 1e-12,
            max_depth: 256,
            max_paths: 1_000_000,
        }
    }
}

/// A component-level architecture: components with fixed reliabilities and a
/// probabilistic control flow between them (the shared input format of the
/// Cheung and Dolbec–Shepard baselines).
///
/// Control flow starts at `start` and terminates by a transition to the
/// [`END`] marker.
///
/// # Examples
///
/// ```
/// use archrel_baselines::{Component, ComponentModel};
///
/// # fn main() -> Result<(), archrel_baselines::BaselineError> {
/// let model = ComponentModel::new(
///     vec![
///         Component { name: "a".into(), reliability: 0.99 },
///         Component { name: "b".into(), reliability: 0.95 },
///     ],
///     vec![
///         ("a".into(), "b".into(), 1.0),
///         ("b".into(), archrel_baselines::ComponentModel::END.into(), 1.0),
///     ],
///     "a",
/// )?;
/// let r = model.cheung_reliability()?;
/// assert!((r - 0.99 * 0.95).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentModel {
    components: Vec<Component>,
    transitions: Vec<(String, String, f64)>,
    start: String,
}

impl ComponentModel {
    /// Name of the termination marker accepted in transitions.
    pub const END: &'static str = END;

    /// Creates and validates a component model.
    ///
    /// # Errors
    ///
    /// - [`BaselineError::InvalidReliability`] for out-of-range
    ///   reliabilities;
    /// - [`BaselineError::UnknownComponent`] for dangling transition
    ///   endpoints or an unknown start;
    /// - [`BaselineError::Malformed`] for rows that do not sum to one.
    pub fn new(
        components: Vec<Component>,
        transitions: Vec<(String, String, f64)>,
        start: impl Into<String>,
    ) -> Result<Self> {
        let start = start.into();
        let mut known: BTreeMap<&str, f64> = BTreeMap::new();
        for c in &components {
            if !c.reliability.is_finite() || !(0.0..=1.0).contains(&c.reliability) {
                return Err(BaselineError::InvalidReliability {
                    component: c.name.clone(),
                    value: c.reliability,
                });
            }
            known.insert(&c.name, c.reliability);
        }
        if !known.contains_key(start.as_str()) {
            return Err(BaselineError::UnknownComponent { name: start });
        }
        let mut row_sums: BTreeMap<&str, f64> = BTreeMap::new();
        for (from, to, p) in &transitions {
            if !known.contains_key(from.as_str()) {
                return Err(BaselineError::UnknownComponent { name: from.clone() });
            }
            if to != END && !known.contains_key(to.as_str()) {
                return Err(BaselineError::UnknownComponent { name: to.clone() });
            }
            if !p.is_finite() || !(0.0..=1.0).contains(p) {
                return Err(BaselineError::Malformed {
                    reason: format!("transition probability {p} on `{from}` -> `{to}`"),
                });
            }
            *row_sums.entry(from.as_str()).or_insert(0.0) += p;
        }
        for c in &components {
            let sum = row_sums.get(c.name.as_str()).copied().unwrap_or(0.0);
            if (sum - 1.0).abs() > 1e-9 {
                return Err(BaselineError::Malformed {
                    reason: format!("outgoing probabilities of `{}` sum to {sum}", c.name),
                });
            }
        }
        Ok(ComponentModel {
            components,
            transitions,
            start,
        })
    }

    /// The components.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    fn reliability_of(&self, name: &str) -> f64 {
        self.components
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.reliability)
            .expect("validated model has no dangling names")
    }

    /// System reliability by **Cheung's state-based model**: build the chain
    /// with transitions `R_i · p_ij`, success transitions `R_i · p_i,END`
    /// into an absorbing `C` state, and failure transitions `1 − R_i` into an
    /// absorbing `F` state; return the absorption probability into `C`.
    ///
    /// # Errors
    ///
    /// Propagates Markov-chain failures (e.g. trapped probability mass).
    pub fn cheung_reliability(&self) -> Result<f64> {
        #[derive(Debug, Clone, PartialEq, Eq, Hash)]
        enum S {
            Comp(String),
            Success,
            Failure,
        }
        let mut builder = DtmcBuilder::new().state(S::Success).state(S::Failure);
        let mut merged: BTreeMap<(String, String), f64> = BTreeMap::new();
        for (from, to, p) in &self.transitions {
            *merged.entry((from.clone(), to.clone())).or_insert(0.0) += p;
        }
        for ((from, to), p) in merged {
            if p == 0.0 {
                continue;
            }
            let r = self.reliability_of(&from);
            let target = if to == END { S::Success } else { S::Comp(to) };
            builder = builder.transition(S::Comp(from), target, r * p);
        }
        for c in &self.components {
            if c.reliability < 1.0 {
                builder =
                    builder.transition(S::Comp(c.name.clone()), S::Failure, 1.0 - c.reliability);
            }
        }
        let chain = builder.build()?;
        let analysis = AbsorbingAnalysis::new(&chain)?;
        Ok(analysis.absorption_probability(&S::Comp(self.start.clone()), &S::Success)?)
    }

    /// System reliability by the **path-based model** (Dolbec–Shepard):
    /// enumerate control-flow paths from `start` to [`END`] and sum
    /// `P(path) · Π R_i` over them, counting a component's reliability once
    /// per visit.
    ///
    /// Exact for acyclic architectures (given loose-enough options); a lower
    /// bound under truncation for cyclic ones — the structural weakness §5
    /// attributes to path-based models.
    ///
    /// # Errors
    ///
    /// Propagates Markov-chain failures.
    pub fn path_based_reliability(&self, opts: PathOptions) -> Result<f64> {
        // Bare control-flow chain (no failure states): components + End.
        let mut builder = DtmcBuilder::new().state(END.to_string());
        let mut merged: BTreeMap<(String, String), f64> = BTreeMap::new();
        for (from, to, p) in &self.transitions {
            *merged.entry((from.clone(), to.clone())).or_insert(0.0) += p;
        }
        for ((from, to), p) in merged {
            builder = builder.transition(from, to, p);
        }
        let chain = builder.build()?;
        let found = paths::enumerate_paths(
            &chain,
            &self.start.to_string(),
            &[END.to_string()],
            paths::PathOptions {
                min_probability: opts.min_probability,
                max_depth: opts.max_depth,
                max_paths: opts.max_paths,
            },
        )?;
        let mut total = 0.0;
        for path in found {
            let mut reliability = 1.0;
            for state in &path.states {
                if state != END {
                    reliability *= self.reliability_of(state);
                }
            }
            total += path.probability * reliability;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(r1: f64, r2: f64) -> ComponentModel {
        ComponentModel::new(
            vec![
                Component {
                    name: "a".into(),
                    reliability: r1,
                },
                Component {
                    name: "b".into(),
                    reliability: r2,
                },
            ],
            vec![("a".into(), "b".into(), 1.0), ("b".into(), END.into(), 1.0)],
            "a",
        )
        .unwrap()
    }

    #[test]
    fn series_system_multiplies_reliabilities() {
        let m = series(0.9, 0.8);
        assert!((m.cheung_reliability().unwrap() - 0.72).abs() < 1e-12);
        assert!((m.path_based_reliability(PathOptions::default()).unwrap() - 0.72).abs() < 1e-12);
    }

    #[test]
    fn branching_weights_by_probability() {
        let m = ComponentModel::new(
            vec![
                Component {
                    name: "s".into(),
                    reliability: 1.0,
                },
                Component {
                    name: "fast".into(),
                    reliability: 0.9,
                },
                Component {
                    name: "slow".into(),
                    reliability: 0.99,
                },
            ],
            vec![
                ("s".into(), "fast".into(), 0.7),
                ("s".into(), "slow".into(), 0.3),
                ("fast".into(), END.into(), 1.0),
                ("slow".into(), END.into(), 1.0),
            ],
            "s",
        )
        .unwrap();
        let expected = 0.7 * 0.9 + 0.3 * 0.99;
        assert!((m.cheung_reliability().unwrap() - expected).abs() < 1e-12);
        assert!(
            (m.path_based_reliability(PathOptions::default()).unwrap() - expected).abs() < 1e-12
        );
    }

    #[test]
    fn cyclic_model_cheung_closed_form() {
        // One component retried with probability c: R_sys = R(1-c)/(1-Rc).
        let (r, c) = (0.95, 0.4);
        let m = ComponentModel::new(
            vec![Component {
                name: "loop".into(),
                reliability: r,
            }],
            vec![
                ("loop".into(), "loop".into(), c),
                ("loop".into(), END.into(), 1.0 - c),
            ],
            "loop",
        )
        .unwrap();
        let expected = r * (1.0 - c) / (1.0 - r * c);
        assert!((m.cheung_reliability().unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn path_based_underestimates_cyclic_models_under_truncation() {
        let (r, c) = (0.95, 0.5);
        let m = ComponentModel::new(
            vec![Component {
                name: "loop".into(),
                reliability: r,
            }],
            vec![
                ("loop".into(), "loop".into(), c),
                ("loop".into(), END.into(), 1.0 - c),
            ],
            "loop",
        )
        .unwrap();
        let exact = m.cheung_reliability().unwrap();
        let truncated = m
            .path_based_reliability(PathOptions {
                min_probability: 1e-3,
                max_depth: 64,
                max_paths: 100_000,
            })
            .unwrap();
        assert!(truncated < exact);
        // Tightening the cutoff converges toward the exact value.
        let tighter = m
            .path_based_reliability(PathOptions {
                min_probability: 1e-12,
                max_depth: 256,
                max_paths: 1_000_000,
            })
            .unwrap();
        assert!((tighter - exact).abs() < 1e-9);
    }

    #[test]
    fn validation_errors() {
        assert!(matches!(
            ComponentModel::new(
                vec![Component {
                    name: "a".into(),
                    reliability: 1.5
                }],
                vec![],
                "a"
            ),
            Err(BaselineError::InvalidReliability { .. })
        ));
        assert!(matches!(
            ComponentModel::new(vec![], vec![], "ghost"),
            Err(BaselineError::UnknownComponent { .. })
        ));
        assert!(matches!(
            ComponentModel::new(
                vec![Component {
                    name: "a".into(),
                    reliability: 0.9
                }],
                vec![("a".into(), END.into(), 0.5)],
                "a"
            ),
            Err(BaselineError::Malformed { .. })
        ));
        assert!(matches!(
            ComponentModel::new(
                vec![Component {
                    name: "a".into(),
                    reliability: 0.9
                }],
                vec![("a".into(), "ghost".into(), 1.0)],
                "a"
            ),
            Err(BaselineError::UnknownComponent { .. })
        ));
    }
}
