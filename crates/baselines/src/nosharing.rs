//! The "no sharing" baseline: Grassi's engine with every `Shared`
//! dependency downgraded to `Independent`.
//!
//! This is the implicit assumption of the state-based related work
//! (Reussner \[15\], Wang–Wu–Chen \[19\]): §5 notes that "both models do not
//! consider the possible dependency between services caused by service
//! sharing, thus implying that they implicitly assume a no sharing
//! dependency model". Comparing this baseline against the full engine
//! quantifies exactly what that assumption costs — nothing for AND
//! completion (the paper's eq. 11 ≡ eq. 6+8 result) and an optimistic bias
//! for OR completion (eq. 12 vs eq. 7).

use archrel_expr::Bindings;
use archrel_model::{
    Assembly, AssemblyBuilder, CompositeService, DependencyModel, FlowBuilder, Probability,
    Service, ServiceId,
};

use crate::Result;

/// Evaluates `Pfail(service, env)` under the no-sharing assumption.
///
/// # Errors
///
/// Propagates model-reconstruction and engine errors.
pub fn evaluate_without_sharing(
    assembly: &Assembly,
    service: &ServiceId,
    env: &Bindings,
) -> Result<Probability> {
    let stripped = strip_sharing(assembly)?;
    let evaluator = archrel_core::Evaluator::new(&stripped);
    Ok(evaluator.failure_probability(service, env)?)
}

/// Rebuilds the assembly with every flow state's dependency model forced to
/// [`DependencyModel::Independent`].
///
/// # Errors
///
/// Propagates validation errors (none in practice: removing sharing only
/// relaxes constraints).
pub fn strip_sharing(assembly: &Assembly) -> Result<Assembly> {
    let mut builder = AssemblyBuilder::new();
    for service in assembly.services() {
        let rebuilt = match service {
            Service::Simple(_) => service.clone(),
            Service::Composite(c) => {
                let mut flow = FlowBuilder::new();
                for state in c.flow().states() {
                    flow = flow.state(state.clone().with_dependency(DependencyModel::Independent));
                }
                for t in c.flow().transitions() {
                    flow = flow.transition(t.from.clone(), t.to.clone(), t.probability.clone());
                }
                Service::Composite(CompositeService::new(
                    c.id().clone(),
                    c.formal_params().to_vec(),
                    flow.build()?,
                )?)
            }
        };
        builder = builder.service(rebuilt);
    }
    Ok(builder.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use archrel_core::Evaluator;
    use archrel_expr::Expr;
    use archrel_model::{catalog, CompletionModel, FlowState, ServiceCall, StateId};

    fn replicated_assembly(
        completion: CompletionModel,
        dependency: DependencyModel,
        replicas: usize,
        pfail: f64,
    ) -> Assembly {
        let calls: Vec<ServiceCall> = (0..replicas)
            .map(|_| ServiceCall::new("backend").with_param("x", Expr::num(1.0)))
            .collect();
        let flow = FlowBuilder::new()
            .state(
                FlowState::new("replicated", calls)
                    .with_completion(completion)
                    .with_dependency(dependency),
            )
            .transition(StateId::Start, "replicated", Expr::one())
            .transition("replicated", StateId::End, Expr::one())
            .build()
            .unwrap();
        AssemblyBuilder::new()
            .service(catalog::blackbox_service("backend", "x", pfail))
            .service(Service::Composite(
                CompositeService::new("app", vec![], flow).unwrap(),
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn no_sharing_matches_engine_when_nothing_is_shared() {
        let assembly =
            replicated_assembly(CompletionModel::Or, DependencyModel::Independent, 3, 0.1);
        let full = Evaluator::new(&assembly)
            .failure_probability(&"app".into(), &Bindings::new())
            .unwrap();
        let baseline =
            evaluate_without_sharing(&assembly, &"app".into(), &Bindings::new()).unwrap();
        assert_eq!(full, baseline);
    }

    /// AND completion: sharing does not matter (paper's eq. 11 ≡ eq. 6+8),
    /// so the baseline is exact.
    #[test]
    fn baseline_exact_for_and_completion_with_sharing() {
        let assembly = replicated_assembly(CompletionModel::And, DependencyModel::Shared, 3, 0.1);
        let full = Evaluator::new(&assembly)
            .failure_probability(&"app".into(), &Bindings::new())
            .unwrap();
        let baseline =
            evaluate_without_sharing(&assembly, &"app".into(), &Bindings::new()).unwrap();
        assert!((full.value() - baseline.value()).abs() < 1e-15);
    }

    /// OR completion: the baseline is optimistic — it believes the replicas
    /// are redundant although they share one backend.
    #[test]
    fn baseline_optimistic_for_or_completion_with_sharing() {
        let assembly = replicated_assembly(CompletionModel::Or, DependencyModel::Shared, 3, 0.1);
        let full = Evaluator::new(&assembly)
            .failure_probability(&"app".into(), &Bindings::new())
            .unwrap();
        let baseline =
            evaluate_without_sharing(&assembly, &"app".into(), &Bindings::new()).unwrap();
        // Full model: 1 - (1-0.1)^3 external survival = 0.271; baseline: 0.1^3.
        assert!((full.value() - (1.0 - 0.9f64.powi(3))).abs() < 1e-12);
        assert!((baseline.value() - 0.001).abs() < 1e-12);
        assert!(full.value() > baseline.value() * 100.0);
    }

    #[test]
    fn strip_sharing_preserves_structure() {
        let assembly = replicated_assembly(CompletionModel::Or, DependencyModel::Shared, 2, 0.1);
        let stripped = strip_sharing(&assembly).unwrap();
        assert_eq!(stripped.len(), assembly.len());
        let app = stripped.require(&"app".into()).unwrap();
        let flow = app.as_composite().unwrap().flow();
        assert!(flow
            .states()
            .iter()
            .all(|s| s.dependency == DependencyModel::Independent));
    }
}
