//! Property-based tests for the expression engine.

use archrel_expr::{parse, Bindings, Expr};
use proptest::prelude::*;

/// Strategy for random expressions over parameters `x`, `y`, `z` with
/// operations kept in safe numeric ranges (positive parameters, no division).
fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0.1..10.0f64).prop_map(Expr::num),
        prop_oneof![Just("x"), Just("y"), Just("z")].prop_map(Expr::param),
    ];
    leaf.prop_recursive(4, 64, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a * b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.min(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.max(b)),
            inner.clone().prop_map(|a| a.sqrt()),
            inner.clone().prop_map(|a| (a + Expr::num(1.0)).ln()),
            inner.prop_map(|a| (a + Expr::num(1.0)).log2()),
        ]
    })
}

fn env_strategy() -> impl Strategy<Value = Bindings> {
    (0.1..100.0f64, 0.1..100.0f64, 0.1..100.0f64)
        .prop_map(|(x, y, z)| Bindings::new().with("x", x).with("y", y).with("z", z))
}

proptest! {
    #[test]
    fn simplify_preserves_value((e, env) in (expr_strategy(), env_strategy())) {
        let original = e.eval(&env);
        let simplified = e.simplify().eval(&env);
        match (original, simplified) {
            (Ok(a), Ok(b)) => {
                let scale = a.abs().max(1.0);
                prop_assert!((a - b).abs() / scale < 1e-9, "{a} vs {b} for {e}");
            }
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "divergent outcomes: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn simplify_never_grows(e in expr_strategy()) {
        prop_assert!(e.simplify().node_count() <= e.node_count());
    }

    #[test]
    fn simplify_is_idempotent(e in expr_strategy()) {
        let once = e.simplify();
        let twice = once.simplify();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn display_parse_roundtrip((e, env) in (expr_strategy(), env_strategy())) {
        let printed = e.to_string();
        let reparsed = parse(&printed).unwrap();
        match (e.eval(&env), reparsed.eval(&env)) {
            (Ok(a), Ok(b)) => {
                let scale = a.abs().max(1.0);
                prop_assert!((a - b).abs() / scale < 1e-9, "`{printed}`: {a} vs {b}");
            }
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "divergent outcomes for `{printed}`: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn substitution_matches_binding((e, env) in (expr_strategy(), env_strategy())) {
        // Substituting x := <const> equals evaluating with that binding.
        let xv = env.get("x").unwrap();
        let substituted = e.substitute("x", &Expr::num(xv));
        prop_assert!(!substituted.free_params().contains("x"));
        match (e.eval(&env), substituted.eval(&env)) {
            (Ok(a), Ok(b)) => prop_assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0)),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "divergent outcomes: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn compiled_matches_interpreted((e, env) in (expr_strategy(), env_strategy())) {
        let compiled = e.compile();
        match (e.eval(&env), compiled.eval_bindings(&env)) {
            (Ok(a), Ok(b)) => {
                let scale = a.abs().max(1.0);
                prop_assert!((a - b).abs() / scale < 1e-12, "{a} vs {b} for {e}");
            }
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "divergent outcomes: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn derivative_matches_finite_differences((e, env) in (expr_strategy(), env_strategy())) {
        // The strategy avoids min/max-free expressions? No: it includes them,
        // so skip non-differentiable cases.
        let Ok(d) = e.differentiate("x") else { return Ok(()) };
        let x0 = env.get("x").unwrap();
        let h = (x0.abs() * 1e-6).max(1e-9);
        let mut up = env.clone();
        up.insert("x", x0 + h);
        let mut down = env.clone();
        down.insert("x", x0 - h);
        if let (Ok(fu), Ok(fd), Ok(exact)) = (e.eval(&up), e.eval(&down), d.eval(&env)) {
            let fd_est = (fu - fd) / (2.0 * h);
            let scale = exact.abs().max(fd_est.abs()).max(1.0);
            prop_assert!(
                (fd_est - exact).abs() / scale < 1e-3,
                "finite-diff {fd_est} vs exact {exact} for {e}"
            );
        } // otherwise: domain edge, skip
    }

    #[test]
    fn serde_roundtrip_preserves_value((e, env) in (expr_strategy(), env_strategy())) {
        // Exercise the Serialize/Deserialize derives used by the model crate.
        let via_debug_eval = e.eval(&env);
        let cloned = e.clone();
        match (via_debug_eval, cloned.eval(&env)) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false),
        }
    }
}
