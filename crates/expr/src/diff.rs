//! Symbolic differentiation.
//!
//! The reliability formulas produced by `archrel-core`'s symbolic engine are
//! compositions of `+ − × ÷`, `exp`, `ln`, `log2`, `sqrt`, and powers —
//! all smooth wherever they are defined — so exact parameter sensitivities
//! (`∂Pfail/∂list`, `∂Pfail/∂γ`, ...) come from straightforward recursive
//! differentiation instead of finite differences. `min`/`max` are only
//! piecewise differentiable; differentiating them is a typed error.

use crate::{BinaryOp, Expr, ExprError, Result, UnaryOp};

impl Expr {
    /// Returns `∂self/∂param` as a new (simplified) expression.
    ///
    /// # Errors
    ///
    /// Returns [`ExprError::NonDifferentiable`] when the expression contains
    /// `min`/`max` nodes whose value depends on `param` (kink points have no
    /// derivative).
    ///
    /// # Examples
    ///
    /// ```
    /// use archrel_expr::{Bindings, Expr};
    ///
    /// # fn main() -> Result<(), archrel_expr::ExprError> {
    /// // d/dn [n * log2(n)] = log2(n) + 1/ln(2)
    /// let cost = Expr::param("n") * Expr::param("n").log2();
    /// let d = cost.differentiate("n")?;
    /// let at8 = d.eval(&Bindings::new().with("n", 8.0))?;
    /// assert!((at8 - (3.0 + 1.0 / 2f64.ln())).abs() < 1e-12);
    /// # Ok(())
    /// # }
    /// ```
    pub fn differentiate(&self, param: &str) -> Result<Expr> {
        Ok(self.diff_inner(param)?.simplify())
    }

    fn diff_inner(&self, param: &str) -> Result<Expr> {
        match self {
            Expr::Num(_) => Ok(Expr::zero()),
            Expr::Param(name) => Ok(if name.as_ref() == param {
                Expr::one()
            } else {
                Expr::zero()
            }),
            Expr::Unary { op, operand } => {
                let u = (**operand).clone();
                let du = operand.diff_inner(param)?;
                Ok(match op {
                    UnaryOp::Neg => -du,
                    // d exp(u) = exp(u) du
                    UnaryOp::Exp => u.exp() * du,
                    // d ln(u) = du / u
                    UnaryOp::Ln => du / u,
                    // d log2(u) = du / (u ln 2)
                    UnaryOp::Log2 => du / (u * Expr::num(std::f64::consts::LN_2)),
                    // d sqrt(u) = du / (2 sqrt(u))
                    UnaryOp::Sqrt => du / (Expr::num(2.0) * u.sqrt()),
                })
            }
            Expr::Binary { op, left, right } => {
                let f = (**left).clone();
                let g = (**right).clone();
                match op {
                    BinaryOp::Add => Ok(left.diff_inner(param)? + right.diff_inner(param)?),
                    BinaryOp::Sub => Ok(left.diff_inner(param)? - right.diff_inner(param)?),
                    BinaryOp::Mul => {
                        let df = left.diff_inner(param)?;
                        let dg = right.diff_inner(param)?;
                        Ok(df * g + f * dg)
                    }
                    BinaryOp::Div => {
                        let df = left.diff_inner(param)?;
                        let dg = right.diff_inner(param)?;
                        Ok((df * g.clone() - f * dg) / (g.clone() * g))
                    }
                    BinaryOp::Pow => {
                        let df = left.diff_inner(param)?;
                        let dg = right.diff_inner(param)?;
                        // Constant exponent: power rule (valid for f < 0 too).
                        if dg.is_const(0.0) {
                            // d f^c = c f^(c-1) df
                            return Ok(g.clone() * f.pow(g - Expr::one()) * df);
                        }
                        // Constant base: d c^g = c^g ln(c) dg.
                        if df.is_const(0.0) {
                            return Ok(f.clone().pow(g) * f.ln() * dg);
                        }
                        // General case: f^g = exp(g ln f), requires f > 0 at
                        // evaluation time (ln errors otherwise, matching the
                        // domain of the rewrite).
                        Ok(f.clone().pow(g.clone()) * (dg * f.clone().ln() + g * df / f))
                    }
                    BinaryOp::Min | BinaryOp::Max => {
                        // Only an error when the kink can actually move with
                        // the parameter.
                        let f_dep = f.free_params().contains(param);
                        let g_dep = g.free_params().contains(param);
                        if !f_dep && !g_dep {
                            return Ok(Expr::zero());
                        }
                        Err(ExprError::NonDifferentiable {
                            operation: self.to_string(),
                            param: param.to_string(),
                        })
                    }
                }
            }
        }
    }
}

// Dedicated module so the helper stays close to the implementation.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::Bindings;

    fn x() -> Expr {
        Expr::param("x")
    }

    fn check_at(expr: &Expr, param: &str, at: f64, expected: f64) {
        let d = expr.differentiate(param).unwrap();
        let v = d
            .eval(&Bindings::new().with("x", at).with("y", 2.0))
            .unwrap();
        assert!(
            (v - expected).abs() < 1e-9 * expected.abs().max(1.0),
            "d/d{param} {expr} at {at}: got {v}, expected {expected}"
        );
    }

    #[test]
    fn polynomial_rules() {
        // d/dx (x^2 + 3x + 7) = 2x + 3
        let e = x().pow(Expr::num(2.0)) + Expr::num(3.0) * x() + Expr::num(7.0);
        check_at(&e, "x", 5.0, 13.0);
    }

    #[test]
    fn product_and_quotient_rules() {
        // d/dx (x * ln x) = ln x + 1
        let e = x() * x().ln();
        check_at(&e, "x", std::f64::consts::E, 2.0);
        // d/dx (1 / x) = -1/x^2
        let e = Expr::one() / x();
        check_at(&e, "x", 2.0, -0.25);
    }

    #[test]
    fn chain_rule_through_unaries() {
        // d/dx exp(-2x) = -2 exp(-2x)
        let e = (-(Expr::num(2.0) * x())).exp();
        check_at(&e, "x", 0.5, -2.0 * (-1.0f64).exp());
        // d/dx sqrt(x^2 + 1) = x / sqrt(x^2 + 1)
        let e = (x().pow(Expr::num(2.0)) + Expr::one()).sqrt();
        check_at(&e, "x", 3.0, 3.0 / 10f64.sqrt());
        // d/dx log2(x) = 1 / (x ln 2)
        let e = x().log2();
        check_at(&e, "x", 4.0, 1.0 / (4.0 * 2f64.ln()));
    }

    #[test]
    fn constant_base_power() {
        // d/dx 0.999^x = 0.999^x ln(0.999) — the eq. 14 software law shape.
        let e = Expr::num(0.999).pow(x());
        let expected = 0.999f64.powf(10.0) * 0.999f64.ln();
        check_at(&e, "x", 10.0, expected);
    }

    #[test]
    fn general_power() {
        // d/dx x^x = x^x (ln x + 1)
        let e = x().pow(x());
        let expected = 27.0 * (3f64.ln() + 1.0);
        check_at(&e, "x", 3.0, expected);
    }

    #[test]
    fn other_params_are_constants() {
        let e = Expr::param("y") * x();
        check_at(&e, "x", 1.0, 2.0); // y bound to 2.0 in check_at
        let d = e.differentiate("z").unwrap();
        assert_eq!(d, Expr::zero());
    }

    #[test]
    fn min_max_independent_of_param_is_zero() {
        let e = Expr::param("y").min(Expr::num(4.0)) + x();
        let d = e.differentiate("x").unwrap();
        assert_eq!(
            d.eval(&Bindings::new().with("x", 1.0).with("y", 9.0))
                .unwrap(),
            1.0
        );
    }

    #[test]
    fn min_max_depending_on_param_is_an_error() {
        let e = x().min(Expr::num(4.0));
        assert!(matches!(
            e.differentiate("x"),
            Err(ExprError::NonDifferentiable { .. })
        ));
    }

    #[test]
    fn reliability_shaped_formula() {
        // d/dx [1 - (1-phi)^(x log2 x) * exp(-l*x/s)] — the eq. 18 shape —
        // cross-checked against finite differences.
        let phi = 1e-4;
        let lam_over_s = 1e-6;
        let ops = x() * x().log2();
        let e = Expr::one()
            - Expr::num(1.0 - phi).pow(ops.clone()) * (-(Expr::num(lam_over_s) * ops)).exp();
        let d = e.differentiate("x").unwrap();
        let at = 1000.0;
        let h = 1e-3;
        let f = |v: f64| e.eval(&Bindings::new().with("x", v)).unwrap();
        let fd = (f(at + h) - f(at - h)) / (2.0 * h);
        let exact = d.eval(&Bindings::new().with("x", at)).unwrap();
        assert!(
            (fd - exact).abs() < 1e-6 * exact.abs().max(1e-12),
            "finite diff {fd} vs exact {exact}"
        );
    }

    #[test]
    fn derivative_of_derivative() {
        // d²/dx² x³ = 6x
        let e = x().pow(Expr::num(3.0));
        let d2 = e.differentiate("x").unwrap().differentiate("x").unwrap();
        let v = d2.eval(&Bindings::new().with("x", 4.0)).unwrap();
        assert!((v - 24.0).abs() < 1e-9);
    }
}
