use std::collections::BTreeSet;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::{Bindings, ExprError, Result};

/// Unary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// Natural logarithm (errors on non-positive input).
    Ln,
    /// Base-2 logarithm (errors on non-positive input).
    Log2,
    /// Exponential `e^x`.
    Exp,
    /// Square root (errors on negative input).
    Sqrt,
}

/// Binary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinaryOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (errors on division by zero).
    Div,
    /// Exponentiation.
    Pow,
    /// Minimum of the operands.
    Min,
    /// Maximum of the operands.
    Max,
}

/// A symbolic expression over named parameters.
///
/// `Expr` is immutable and cheaply cloneable (shared subtrees via [`Arc`]).
/// Build expressions with the constructors and operator overloads:
///
/// ```
/// use archrel_expr::{Bindings, Expr};
///
/// # fn main() -> Result<(), archrel_expr::ExprError> {
/// // Marshalling cost of the paper's RPC connector: c * (ip + op)
/// let cost = Expr::num(50.0) * (Expr::param("ip") + Expr::param("op"));
/// let v = cost.eval(&Bindings::new().with("ip", 8.0).with("op", 2.0))?;
/// assert_eq!(v, 500.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A numeric literal.
    Num(f64),
    /// A named parameter, resolved against a [`Bindings`] at evaluation time.
    Param(Arc<str>),
    /// A unary operation.
    Unary {
        /// The operation.
        op: UnaryOp,
        /// The operand.
        operand: Arc<Expr>,
    },
    /// A binary operation.
    Binary {
        /// The operation.
        op: BinaryOp,
        /// Left operand.
        left: Arc<Expr>,
        /// Right operand.
        right: Arc<Expr>,
    },
}

impl Expr {
    /// Numeric literal.
    pub fn num(value: f64) -> Expr {
        Expr::Num(value)
    }

    /// Named parameter.
    pub fn param(name: impl AsRef<str>) -> Expr {
        Expr::Param(Arc::from(name.as_ref()))
    }

    /// The constant zero.
    pub fn zero() -> Expr {
        Expr::Num(0.0)
    }

    /// The constant one.
    pub fn one() -> Expr {
        Expr::Num(1.0)
    }

    fn unary(op: UnaryOp, operand: Expr) -> Expr {
        Expr::Unary {
            op,
            operand: Arc::new(operand),
        }
    }

    fn binary(op: BinaryOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Arc::new(left),
            right: Arc::new(right),
        }
    }

    /// Natural logarithm.
    pub fn ln(self) -> Expr {
        Expr::unary(UnaryOp::Ln, self)
    }

    /// Base-2 logarithm.
    pub fn log2(self) -> Expr {
        Expr::unary(UnaryOp::Log2, self)
    }

    /// Exponential.
    pub fn exp(self) -> Expr {
        Expr::unary(UnaryOp::Exp, self)
    }

    /// Square root.
    pub fn sqrt(self) -> Expr {
        Expr::unary(UnaryOp::Sqrt, self)
    }

    /// Exponentiation `self ^ rhs`.
    pub fn pow(self, rhs: Expr) -> Expr {
        Expr::binary(BinaryOp::Pow, self, rhs)
    }

    /// Minimum of `self` and `rhs`.
    pub fn min(self, rhs: Expr) -> Expr {
        Expr::binary(BinaryOp::Min, self, rhs)
    }

    /// Maximum of `self` and `rhs`.
    pub fn max(self, rhs: Expr) -> Expr {
        Expr::binary(BinaryOp::Max, self, rhs)
    }

    /// Whether the expression is the literal `value`.
    pub fn is_const(&self, value: f64) -> bool {
        matches!(self, Expr::Num(v) if *v == value)
    }

    /// The literal value, if the expression is a constant.
    pub fn as_const(&self) -> Option<f64> {
        match self {
            Expr::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Evaluates the expression against an environment.
    ///
    /// # Errors
    ///
    /// - [`ExprError::UnboundParameter`] when a parameter has no binding;
    /// - [`ExprError::NonFinite`] when an operation produces NaN/∞ (division
    ///   by zero, logarithm of a non-positive value, overflow, ...).
    pub fn eval(&self, env: &Bindings) -> Result<f64> {
        let v = match self {
            Expr::Num(v) => *v,
            Expr::Param(name) => env.get(name).ok_or_else(|| ExprError::UnboundParameter {
                name: name.to_string(),
            })?,
            Expr::Unary { op, operand } => {
                let x = operand.eval(env)?;
                match op {
                    UnaryOp::Neg => -x,
                    UnaryOp::Ln => x.ln(),
                    UnaryOp::Log2 => x.log2(),
                    UnaryOp::Exp => x.exp(),
                    UnaryOp::Sqrt => x.sqrt(),
                }
            }
            Expr::Binary { op, left, right } => {
                let a = left.eval(env)?;
                let b = right.eval(env)?;
                match op {
                    BinaryOp::Add => a + b,
                    BinaryOp::Sub => a - b,
                    BinaryOp::Mul => a * b,
                    BinaryOp::Div => a / b,
                    BinaryOp::Pow => a.powf(b),
                    BinaryOp::Min => a.min(b),
                    BinaryOp::Max => a.max(b),
                }
            }
        };
        if v.is_finite() {
            Ok(v)
        } else {
            Err(ExprError::NonFinite {
                operation: self.to_string(),
            })
        }
    }

    /// The set of parameter names occurring in the expression.
    pub fn free_params(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_params(&mut out);
        out
    }

    fn collect_params(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::Num(_) => {}
            Expr::Param(name) => {
                out.insert(name.to_string());
            }
            Expr::Unary { operand, .. } => operand.collect_params(out),
            Expr::Binary { left, right, .. } => {
                left.collect_params(out);
                right.collect_params(out);
            }
        }
    }

    /// Whether the expression contains no parameters.
    pub fn is_closed(&self) -> bool {
        self.free_params().is_empty()
    }

    /// Substitutes `replacement` for every occurrence of parameter `name`.
    ///
    /// This is how the engine composes analytic interfaces: a callee's cost
    /// formula in terms of *its* formal parameters is substituted with the
    /// caller's actual-parameter expressions (`ap_j(fp)`), producing a
    /// formula in the caller's formal parameters.
    pub fn substitute(&self, name: &str, replacement: &Expr) -> Expr {
        match self {
            Expr::Num(_) => self.clone(),
            Expr::Param(p) => {
                if p.as_ref() == name {
                    replacement.clone()
                } else {
                    self.clone()
                }
            }
            Expr::Unary { op, operand } => Expr::Unary {
                op: *op,
                operand: Arc::new(operand.substitute(name, replacement)),
            },
            Expr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Arc::new(left.substitute(name, replacement)),
                right: Arc::new(right.substitute(name, replacement)),
            },
        }
    }

    /// Substitutes several parameters at once (simultaneous, not sequential:
    /// replacements are not themselves rewritten).
    pub fn substitute_all(&self, substitutions: &[(&str, &Expr)]) -> Expr {
        match self {
            Expr::Num(_) => self.clone(),
            Expr::Param(p) => substitutions
                .iter()
                .find(|(name, _)| *name == p.as_ref())
                .map(|(_, e)| (*e).clone())
                .unwrap_or_else(|| self.clone()),
            Expr::Unary { op, operand } => Expr::Unary {
                op: *op,
                operand: Arc::new(operand.substitute_all(substitutions)),
            },
            Expr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Arc::new(left.substitute_all(substitutions)),
                right: Arc::new(right.substitute_all(substitutions)),
            },
        }
    }

    /// Number of AST nodes — a size metric used by simplifier tests and the
    /// symbolic-evaluation benchmarks.
    pub fn node_count(&self) -> usize {
        match self {
            Expr::Num(_) | Expr::Param(_) => 1,
            Expr::Unary { operand, .. } => 1 + operand.node_count(),
            Expr::Binary { left, right, .. } => 1 + left.node_count() + right.node_count(),
        }
    }

    fn precedence(&self) -> u8 {
        match self {
            Expr::Num(v) if *v < 0.0 => 1,
            Expr::Num(_) | Expr::Param(_) => 4,
            Expr::Unary {
                op: UnaryOp::Neg, ..
            } => 1,
            Expr::Unary { .. } => 4, // function call syntax
            Expr::Binary { op, .. } => match op {
                BinaryOp::Add | BinaryOp::Sub => 1,
                BinaryOp::Mul | BinaryOp::Div => 2,
                BinaryOp::Pow => 3,
                BinaryOp::Min | BinaryOp::Max => 4, // function call syntax
            },
        }
    }

    fn fmt_child(&self, child: &Expr, min_prec: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if child.precedence() < min_prec {
            write!(f, "({child})")
        } else {
            write!(f, "{child}")
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Num(v) => write!(f, "{v}"),
            Expr::Param(name) => write!(f, "{name}"),
            Expr::Unary { op, operand } => match op {
                UnaryOp::Neg => {
                    write!(f, "-")?;
                    self.fmt_child(operand, 4, f)
                }
                UnaryOp::Ln => write!(f, "ln({operand})"),
                UnaryOp::Log2 => write!(f, "log2({operand})"),
                UnaryOp::Exp => write!(f, "exp({operand})"),
                UnaryOp::Sqrt => write!(f, "sqrt({operand})"),
            },
            Expr::Binary { op, left, right } => match op {
                BinaryOp::Add => {
                    self.fmt_child(left, 1, f)?;
                    write!(f, " + ")?;
                    self.fmt_child(right, 1, f)
                }
                BinaryOp::Sub => {
                    self.fmt_child(left, 1, f)?;
                    write!(f, " - ")?;
                    self.fmt_child(right, 2, f)
                }
                BinaryOp::Mul => {
                    self.fmt_child(left, 2, f)?;
                    write!(f, " * ")?;
                    self.fmt_child(right, 2, f)
                }
                BinaryOp::Div => {
                    self.fmt_child(left, 2, f)?;
                    write!(f, " / ")?;
                    self.fmt_child(right, 3, f)
                }
                BinaryOp::Pow => {
                    self.fmt_child(left, 4, f)?;
                    write!(f, " ^ ")?;
                    self.fmt_child(right, 3, f)
                }
                BinaryOp::Min => write!(f, "min({left}, {right})"),
                BinaryOp::Max => write!(f, "max({left}, {right})"),
            },
        }
    }
}

impl From<f64> for Expr {
    fn from(v: f64) -> Expr {
        Expr::Num(v)
    }
}

impl Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::binary(BinaryOp::Add, self, rhs)
    }
}

impl Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::binary(BinaryOp::Sub, self, rhs)
    }
}

impl Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::binary(BinaryOp::Mul, self, rhs)
    }
}

impl Div for Expr {
    type Output = Expr;
    fn div(self, rhs: Expr) -> Expr {
        Expr::binary(BinaryOp::Div, self, rhs)
    }
}

impl Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::unary(UnaryOp::Neg, self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_and_param_eval() {
        let env = Bindings::new().with("x", 3.0);
        assert_eq!(Expr::num(2.5).eval(&env).unwrap(), 2.5);
        assert_eq!(Expr::param("x").eval(&env).unwrap(), 3.0);
    }

    #[test]
    fn unbound_parameter_errors() {
        let err = Expr::param("nope").eval(&Bindings::new()).unwrap_err();
        assert!(matches!(err, ExprError::UnboundParameter { .. }));
    }

    #[test]
    fn arithmetic_eval() {
        let env = Bindings::new().with("x", 4.0);
        let e = (Expr::param("x") + Expr::num(2.0)) * Expr::num(3.0) - Expr::num(1.0);
        assert_eq!(e.eval(&env).unwrap(), 17.0);
        let d = Expr::param("x") / Expr::num(2.0);
        assert_eq!(d.eval(&env).unwrap(), 2.0);
        assert_eq!((-Expr::param("x")).eval(&env).unwrap(), -4.0);
    }

    #[test]
    fn functions_eval() {
        let env = Bindings::new().with("n", 1024.0);
        assert_eq!(Expr::param("n").log2().eval(&env).unwrap(), 10.0);
        assert!((Expr::param("n").ln().eval(&env).unwrap() - 1024f64.ln()).abs() < 1e-12);
        assert_eq!(Expr::param("n").sqrt().eval(&env).unwrap(), 32.0);
        assert_eq!(Expr::num(0.0).exp().eval(&env).unwrap(), 1.0);
        assert_eq!(
            Expr::param("n").pow(Expr::num(0.5)).eval(&env).unwrap(),
            32.0
        );
        assert_eq!(
            Expr::param("n").min(Expr::num(5.0)).eval(&env).unwrap(),
            5.0
        );
        assert_eq!(
            Expr::param("n").max(Expr::num(5.0)).eval(&env).unwrap(),
            1024.0
        );
    }

    #[test]
    fn non_finite_is_an_error() {
        let env = Bindings::new();
        assert!(matches!(
            (Expr::num(1.0) / Expr::num(0.0)).eval(&env),
            Err(ExprError::NonFinite { .. })
        ));
        assert!(matches!(
            Expr::num(-1.0).ln().eval(&env),
            Err(ExprError::NonFinite { .. })
        ));
        assert!(matches!(
            Expr::num(-1.0).sqrt().eval(&env),
            Err(ExprError::NonFinite { .. })
        ));
        assert!(matches!(
            Expr::num(1e308).exp().eval(&env),
            Err(ExprError::NonFinite { .. })
        ));
    }

    #[test]
    fn free_params_collected() {
        let e = Expr::param("a") * (Expr::param("b") + Expr::param("a")).ln();
        let params = e.free_params();
        assert_eq!(
            params.into_iter().collect::<Vec<_>>(),
            vec!["a".to_string(), "b".to_string()]
        );
        assert!(!e.is_closed());
        assert!(Expr::num(4.0).is_closed());
    }

    #[test]
    fn substitution() {
        // sort's cost in its own formal param: list * log2(list).
        let cost = Expr::param("list") * Expr::param("list").log2();
        // caller passes list = 2 * n
        let actual = Expr::num(2.0) * Expr::param("n");
        let composed = cost.substitute("list", &actual);
        let env = Bindings::new().with("n", 8.0);
        assert_eq!(composed.eval(&env).unwrap(), 16.0 * 4.0);
        // original untouched
        assert_eq!(cost.free_params().len(), 1);
    }

    #[test]
    fn simultaneous_substitution_does_not_chain() {
        // x -> y, y -> 3 simultaneously: x + y becomes y + 3, not 3 + 3.
        let e = Expr::param("x") + Expr::param("y");
        let ey = Expr::param("y");
        let e3 = Expr::num(3.0);
        let result = e.substitute_all(&[("x", &ey), ("y", &e3)]);
        let env = Bindings::new().with("y", 10.0);
        assert_eq!(result.eval(&env).unwrap(), 13.0);
    }

    #[test]
    fn display_respects_precedence() {
        let e = (Expr::param("a") + Expr::param("b")) * Expr::param("c");
        assert_eq!(e.to_string(), "(a + b) * c");
        let e = Expr::param("a") + Expr::param("b") * Expr::param("c");
        assert_eq!(e.to_string(), "a + b * c");
        let e = Expr::param("a") - (Expr::param("b") - Expr::param("c"));
        assert_eq!(e.to_string(), "a - (b - c)");
        let e = Expr::param("n") * Expr::param("n").log2();
        assert_eq!(e.to_string(), "n * log2(n)");
    }

    #[test]
    fn node_count() {
        let e = Expr::param("a") + Expr::num(1.0);
        assert_eq!(e.node_count(), 3);
    }

    #[test]
    fn expr_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Expr>();
    }
}
