//! Compilation of expressions to a flat stack-machine program.
//!
//! Parameter sweeps (Figure 6 runs 64 grid points; selection and sensitivity
//! loops run thousands) re-evaluate the same closed-form formula with
//! different bindings. Walking the [`Expr`] tree costs a pointer chase per
//! node and a name lookup per parameter; [`CompiledExpr`] replaces that with
//! a linear instruction array and positional parameter slots.
//!
//! ```
//! use archrel_expr::{parse, Bindings};
//!
//! # fn main() -> Result<(), archrel_expr::ExprError> {
//! let formula = parse("1 - exp(-(x * log2(x)) / 1e9)")?;
//! let compiled = formula.compile();
//! assert_eq!(compiled.params(), ["x"]);
//! let fast = compiled.eval(&[4096.0])?;
//! let slow = formula.eval(&Bindings::new().with("x", 4096.0))?;
//! assert!((fast - slow).abs() < 1e-15);
//! # Ok(())
//! # }
//! ```

use crate::{BinaryOp, Expr, ExprError, Result, UnaryOp};

/// One stack-machine instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Instr {
    /// Push a constant.
    Push(f64),
    /// Push parameter slot `i`.
    Load(usize),
    Add,
    Sub,
    Mul,
    Div,
    Pow,
    Min,
    Max,
    Neg,
    Ln,
    Log2,
    Exp,
    Sqrt,
}

/// A compiled expression: flat instructions plus a positional parameter
/// table (sorted by first occurrence in a left-to-right walk).
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledExpr {
    instrs: Vec<Instr>,
    params: Vec<String>,
    max_stack: usize,
}

impl Expr {
    /// Compiles the expression for repeated evaluation.
    pub fn compile(&self) -> CompiledExpr {
        let mut instrs = Vec::new();
        let mut params: Vec<String> = Vec::new();
        fn emit(e: &Expr, instrs: &mut Vec<Instr>, params: &mut Vec<String>) {
            match e {
                Expr::Num(v) => instrs.push(Instr::Push(*v)),
                Expr::Param(name) => {
                    let slot = match params.iter().position(|p| p == name.as_ref()) {
                        Some(i) => i,
                        None => {
                            params.push(name.to_string());
                            params.len() - 1
                        }
                    };
                    instrs.push(Instr::Load(slot));
                }
                Expr::Unary { op, operand } => {
                    emit(operand, instrs, params);
                    instrs.push(match op {
                        UnaryOp::Neg => Instr::Neg,
                        UnaryOp::Ln => Instr::Ln,
                        UnaryOp::Log2 => Instr::Log2,
                        UnaryOp::Exp => Instr::Exp,
                        UnaryOp::Sqrt => Instr::Sqrt,
                    });
                }
                Expr::Binary { op, left, right } => {
                    emit(left, instrs, params);
                    emit(right, instrs, params);
                    instrs.push(match op {
                        BinaryOp::Add => Instr::Add,
                        BinaryOp::Sub => Instr::Sub,
                        BinaryOp::Mul => Instr::Mul,
                        BinaryOp::Div => Instr::Div,
                        BinaryOp::Pow => Instr::Pow,
                        BinaryOp::Min => Instr::Min,
                        BinaryOp::Max => Instr::Max,
                    });
                }
            }
        }
        emit(self, &mut instrs, &mut params);
        // Static stack-depth analysis.
        let mut depth = 0usize;
        let mut max_stack = 0usize;
        for i in &instrs {
            match i {
                Instr::Push(_) | Instr::Load(_) => depth += 1,
                Instr::Add
                | Instr::Sub
                | Instr::Mul
                | Instr::Div
                | Instr::Pow
                | Instr::Min
                | Instr::Max => depth -= 1,
                _ => {}
            }
            max_stack = max_stack.max(depth);
        }
        CompiledExpr {
            instrs,
            params,
            max_stack,
        }
    }
}

impl CompiledExpr {
    /// Parameter names, in slot order; [`CompiledExpr::eval`] takes values
    /// in exactly this order.
    pub fn params(&self) -> &[String] {
        &self.params
    }

    /// Evaluates with positional parameter values.
    ///
    /// # Errors
    ///
    /// - [`ExprError::UnboundParameter`] when `values.len()` differs from
    ///   the parameter count;
    /// - [`ExprError::NonFinite`] when the result (or any intermediate) is
    ///   NaN/∞ — the same contract as [`Expr::eval`].
    pub fn eval(&self, values: &[f64]) -> Result<f64> {
        let mut stack = Vec::with_capacity(self.max_stack);
        self.eval_with_stack(values, &mut stack)
    }

    /// Evaluates reusing a caller-owned stack buffer (zero allocations in
    /// steady state — the inner loop of sweeps).
    ///
    /// # Errors
    ///
    /// See [`CompiledExpr::eval`].
    pub fn eval_with_stack(&self, values: &[f64], stack: &mut Vec<f64>) -> Result<f64> {
        if values.len() != self.params.len() {
            return Err(ExprError::UnboundParameter {
                name: format!(
                    "expected {} positional values, got {}",
                    self.params.len(),
                    values.len()
                ),
            });
        }
        stack.clear();
        stack.reserve(self.max_stack);
        for instr in &self.instrs {
            match *instr {
                Instr::Push(v) => stack.push(v),
                Instr::Load(slot) => stack.push(values[slot]),
                Instr::Neg => {
                    let a = stack.last_mut().expect("compiler emitted valid program");
                    *a = -*a;
                }
                Instr::Ln => {
                    let a = stack.last_mut().expect("compiler emitted valid program");
                    *a = a.ln();
                }
                Instr::Log2 => {
                    let a = stack.last_mut().expect("compiler emitted valid program");
                    *a = a.log2();
                }
                Instr::Exp => {
                    let a = stack.last_mut().expect("compiler emitted valid program");
                    *a = a.exp();
                }
                Instr::Sqrt => {
                    let a = stack.last_mut().expect("compiler emitted valid program");
                    *a = a.sqrt();
                }
                binary => {
                    let b = stack.pop().expect("compiler emitted valid program");
                    let a = stack.last_mut().expect("compiler emitted valid program");
                    *a = match binary {
                        Instr::Add => *a + b,
                        Instr::Sub => *a - b,
                        Instr::Mul => *a * b,
                        Instr::Div => *a / b,
                        Instr::Pow => a.powf(b),
                        Instr::Min => a.min(b),
                        Instr::Max => a.max(b),
                        _ => unreachable!("unary ops handled above"),
                    };
                }
            }
        }
        let result = stack.pop().expect("program leaves one value");
        if result.is_finite() {
            Ok(result)
        } else {
            Err(ExprError::NonFinite {
                operation: "compiled expression".to_string(),
            })
        }
    }

    /// Evaluates against a caller-owned register file through pre-resolved
    /// slot indices: parameter `i` reads `regs[slots[i]]`.
    ///
    /// This is the zero-allocation, zero-lookup entry for evaluation loops
    /// that keep all parameter values in one flat register file (the
    /// assembly-program evaluator): the caller resolves each parameter name
    /// to a register index once at compile time and replays the mapping per
    /// point. Unlike [`CompiledExpr::eval_with_stack`], every intermediate
    /// value is checked for finiteness, matching [`Expr::eval`]'s per-node
    /// contract exactly (the same inputs succeed and fail).
    ///
    /// # Errors
    ///
    /// - [`ExprError::UnboundParameter`] when `slots.len()` differs from the
    ///   parameter count;
    /// - [`ExprError::NonFinite`] when any intermediate is NaN/∞.
    ///
    /// # Panics
    ///
    /// Panics when a slot index is out of bounds for `regs`.
    pub fn eval_slots(&self, slots: &[usize], regs: &[f64], stack: &mut Vec<f64>) -> Result<f64> {
        if slots.len() != self.params.len() {
            return Err(ExprError::UnboundParameter {
                name: format!(
                    "expected {} slot indices, got {}",
                    self.params.len(),
                    slots.len()
                ),
            });
        }
        fn non_finite() -> ExprError {
            ExprError::NonFinite {
                operation: "compiled expression".to_string(),
            }
        }
        fn checked_push(stack: &mut Vec<f64>, v: f64) -> Result<()> {
            if !v.is_finite() {
                return Err(non_finite());
            }
            stack.push(v);
            Ok(())
        }
        fn checked_unary(stack: &mut [f64], f: impl Fn(f64) -> f64) -> Result<()> {
            let a = stack.last_mut().expect("compiler emitted valid program");
            *a = f(*a);
            if !a.is_finite() {
                return Err(non_finite());
            }
            Ok(())
        }
        stack.clear();
        stack.reserve(self.max_stack);
        for instr in &self.instrs {
            match *instr {
                Instr::Push(v) => checked_push(stack, v)?,
                Instr::Load(slot) => checked_push(stack, regs[slots[slot]])?,
                Instr::Neg => checked_unary(stack, |a| -a)?,
                Instr::Ln => checked_unary(stack, f64::ln)?,
                Instr::Log2 => checked_unary(stack, f64::log2)?,
                Instr::Exp => checked_unary(stack, f64::exp)?,
                Instr::Sqrt => checked_unary(stack, f64::sqrt)?,
                binary => {
                    let b = stack.pop().expect("compiler emitted valid program");
                    let a = stack.last_mut().expect("compiler emitted valid program");
                    *a = match binary {
                        Instr::Add => *a + b,
                        Instr::Sub => *a - b,
                        Instr::Mul => *a * b,
                        Instr::Div => *a / b,
                        Instr::Pow => a.powf(b),
                        Instr::Min => a.min(b),
                        Instr::Max => a.max(b),
                        _ => unreachable!("unary ops handled above"),
                    };
                    if !a.is_finite() {
                        return Err(non_finite());
                    }
                }
            }
        }
        Ok(stack.pop().expect("program leaves one value"))
    }

    /// Evaluates against a [`crate::Bindings`] environment (convenience,
    /// slower than positional).
    ///
    /// # Errors
    ///
    /// [`ExprError::UnboundParameter`] for missing names, plus the
    /// conditions of [`CompiledExpr::eval`].
    pub fn eval_bindings(&self, env: &crate::Bindings) -> Result<f64> {
        let values: Vec<f64> = self
            .params
            .iter()
            .map(|p| {
                env.get(p)
                    .ok_or_else(|| ExprError::UnboundParameter { name: p.clone() })
            })
            .collect::<Result<_>>()?;
        self.eval(&values)
    }

    /// Number of instructions — a size metric for benchmarks.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program is empty (never true for compiled expressions).
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Bindings;

    #[test]
    fn compiles_and_evaluates_basic_arithmetic() {
        let e = crate::parse("2 + 3 * x - y / 2").unwrap();
        let c = e.compile();
        assert_eq!(c.params(), ["x", "y"]);
        assert_eq!(c.eval(&[4.0, 6.0]).unwrap(), 11.0);
    }

    #[test]
    fn parameter_slots_deduplicate() {
        let e = crate::parse("x * x + x").unwrap();
        let c = e.compile();
        assert_eq!(c.params(), ["x"]);
        assert_eq!(c.eval(&[3.0]).unwrap(), 12.0);
    }

    #[test]
    fn functions_match_interpreter() {
        let sources = [
            "ln(x) + log2(y)",
            "exp(-(x / 1000))",
            "sqrt(x * y)",
            "min(x, y) * max(x, 2)",
            "x ^ y",
            "1 - (1 - 0.001) ^ (x * log2(x))",
        ];
        let env = Bindings::new().with("x", 37.5).with("y", 4.25);
        for src in sources {
            let e = crate::parse(src).unwrap();
            let interpreted = e.eval(&env).unwrap();
            let compiled = e.compile().eval_bindings(&env).unwrap();
            assert!(
                (interpreted - compiled).abs() < 1e-12,
                "`{src}`: {interpreted} vs {compiled}"
            );
        }
    }

    #[test]
    fn wrong_arity_rejected() {
        let c = crate::parse("x + y").unwrap().compile();
        assert!(matches!(
            c.eval(&[1.0]),
            Err(ExprError::UnboundParameter { .. })
        ));
    }

    #[test]
    fn missing_binding_rejected() {
        let c = crate::parse("x + y").unwrap().compile();
        let env = Bindings::new().with("x", 1.0);
        assert!(matches!(
            c.eval_bindings(&env),
            Err(ExprError::UnboundParameter { .. })
        ));
    }

    #[test]
    fn non_finite_detected() {
        let c = crate::parse("1 / x").unwrap().compile();
        assert!(matches!(c.eval(&[0.0]), Err(ExprError::NonFinite { .. })));
        let c = crate::parse("ln(x)").unwrap().compile();
        assert!(matches!(c.eval(&[-1.0]), Err(ExprError::NonFinite { .. })));
    }

    #[test]
    fn reusable_stack_buffer() {
        let c = crate::parse("x * log2(x) + sqrt(x)").unwrap().compile();
        let mut stack = Vec::new();
        for x in [2.0, 64.0, 4096.0] {
            let fast = c.eval_with_stack(&[x], &mut stack).unwrap();
            let slow = crate::parse("x * log2(x) + sqrt(x)")
                .unwrap()
                .eval(&Bindings::new().with("x", x))
                .unwrap();
            assert!((fast - slow).abs() < 1e-12);
        }
    }

    #[test]
    fn eval_slots_reads_through_register_indirection() {
        let c = crate::parse("x * y + x").unwrap().compile();
        assert_eq!(c.params(), ["x", "y"]);
        // Registers hold unrelated values around the two we care about.
        let regs = [99.0, 3.0, 99.0, 5.0, 99.0];
        let mut stack = Vec::new();
        let got = c.eval_slots(&[1, 3], &regs, &mut stack).unwrap();
        assert_eq!(got, 18.0);
    }

    #[test]
    fn eval_slots_matches_eval_bitwise() {
        let sources = [
            "1 - exp(-(x * log2(x)) / 1e9)",
            "min(x, y) * max(x, 2) + sqrt(y)",
            "x ^ y - ln(x)",
        ];
        let mut stack = Vec::new();
        for src in sources {
            let c = crate::parse(src).unwrap().compile();
            let values: Vec<f64> = (0..c.params().len()).map(|i| 2.5 + i as f64).collect();
            let slots: Vec<usize> = (0..values.len()).collect();
            let direct = c.eval(&values).unwrap();
            let slotted = c.eval_slots(&slots, &values, &mut stack).unwrap();
            assert_eq!(direct.to_bits(), slotted.to_bits(), "`{src}`");
        }
    }

    #[test]
    fn eval_slots_checks_intermediates_like_tree_eval() {
        // 1/x overflows mid-expression but the final result is finite; the
        // tree evaluator rejects it per node and eval_slots must agree.
        let e = crate::parse("min(1 / x, 5)").unwrap();
        let env = Bindings::new().with("x", 0.0);
        assert!(matches!(e.eval(&env), Err(ExprError::NonFinite { .. })));
        let c = e.compile();
        let mut stack = Vec::new();
        assert!(matches!(
            c.eval_slots(&[0], &[0.0], &mut stack),
            Err(ExprError::NonFinite { .. })
        ));
        // eval_with_stack only checks the final value — documents the gap
        // eval_slots closes.
        assert!(c.eval(&[0.0]).is_ok());
    }

    #[test]
    fn eval_slots_wrong_arity_rejected() {
        let c = crate::parse("x + y").unwrap().compile();
        let mut stack = Vec::new();
        assert!(matches!(
            c.eval_slots(&[0], &[1.0, 2.0], &mut stack),
            Err(ExprError::UnboundParameter { .. })
        ));
    }

    #[test]
    fn program_metrics() {
        let c = crate::parse("x + 1").unwrap().compile();
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
    }
}
