//! Algebraic simplification: constant folding plus identity rewrites.
//!
//! The symbolic reliability evaluator in `archrel-core` composes per-request
//! failure expressions into large products; simplification keeps them
//! readable (the paper's eqs. 15–22 are exactly such simplified forms) and
//! cheap to re-evaluate in parameter sweeps.

use std::sync::Arc;

use crate::{BinaryOp, Expr, UnaryOp};

impl Expr {
    /// Returns an equivalent, usually smaller expression.
    ///
    /// Performs bottom-up constant folding and the standard identities
    /// (`x+0`, `x*1`, `x*0`, `x/1`, `x^1`, `x^0`, `exp(0)`, `ln(1)`,
    /// double negation). Folding only happens when the folded constant is
    /// finite, so expressions that would error at evaluation time keep their
    /// structure (and still error, preserving semantics).
    ///
    /// # Examples
    ///
    /// ```
    /// use archrel_expr::Expr;
    ///
    /// let e = (Expr::param("x") + Expr::num(0.0)) * Expr::num(1.0);
    /// assert_eq!(e.simplify().to_string(), "x");
    /// ```
    pub fn simplify(&self) -> Expr {
        match self {
            Expr::Num(_) | Expr::Param(_) => self.clone(),
            Expr::Unary { op, operand } => {
                let x = operand.simplify();
                simplify_unary(*op, x)
            }
            Expr::Binary { op, left, right } => {
                let l = left.simplify();
                let r = right.simplify();
                simplify_binary(*op, l, r)
            }
        }
    }
}

fn simplify_unary(op: UnaryOp, x: Expr) -> Expr {
    // Constant folding (guarded by finiteness).
    if let Some(v) = x.as_const() {
        let folded = match op {
            UnaryOp::Neg => -v,
            UnaryOp::Ln => v.ln(),
            UnaryOp::Log2 => v.log2(),
            UnaryOp::Exp => v.exp(),
            UnaryOp::Sqrt => v.sqrt(),
        };
        if folded.is_finite() {
            return Expr::Num(folded);
        }
    }
    // Structural identities.
    match (op, &x) {
        // --x = x
        (
            UnaryOp::Neg,
            Expr::Unary {
                op: UnaryOp::Neg,
                operand,
            },
        ) => (**operand).clone(),
        // ln(exp(x)) = x ; exp(ln(x)) is NOT rewritten (domain differs).
        (
            UnaryOp::Ln,
            Expr::Unary {
                op: UnaryOp::Exp,
                operand,
            },
        ) => (**operand).clone(),
        _ => Expr::Unary {
            op,
            operand: Arc::new(x),
        },
    }
}

fn simplify_binary(op: BinaryOp, l: Expr, r: Expr) -> Expr {
    // Constant folding first.
    if let (Some(a), Some(b)) = (l.as_const(), r.as_const()) {
        let folded = match op {
            BinaryOp::Add => a + b,
            BinaryOp::Sub => a - b,
            BinaryOp::Mul => a * b,
            BinaryOp::Div => a / b,
            BinaryOp::Pow => a.powf(b),
            BinaryOp::Min => a.min(b),
            BinaryOp::Max => a.max(b),
        };
        if folded.is_finite() {
            return Expr::Num(folded);
        }
    }
    match op {
        BinaryOp::Add => {
            if l.is_const(0.0) {
                return r;
            }
            if r.is_const(0.0) {
                return l;
            }
        }
        BinaryOp::Sub => {
            if r.is_const(0.0) {
                return l;
            }
            if l == r {
                return Expr::Num(0.0);
            }
        }
        BinaryOp::Mul => {
            if l.is_const(0.0) || r.is_const(0.0) {
                return Expr::Num(0.0);
            }
            if l.is_const(1.0) {
                return r;
            }
            if r.is_const(1.0) {
                return l;
            }
        }
        BinaryOp::Div => {
            if r.is_const(1.0) {
                return l;
            }
            if l.is_const(0.0) && !r.is_const(0.0) {
                return Expr::Num(0.0);
            }
        }
        BinaryOp::Pow => {
            if r.is_const(1.0) {
                return l;
            }
            if r.is_const(0.0) {
                // x^0 = 1 (0^0 treated as 1, matching f64::powf).
                return Expr::Num(1.0);
            }
            if l.is_const(1.0) {
                return Expr::Num(1.0);
            }
        }
        BinaryOp::Min | BinaryOp::Max => {
            if l == r {
                return l;
            }
        }
    }
    Expr::Binary {
        op,
        left: Arc::new(l),
        right: Arc::new(r),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Bindings;

    fn x() -> Expr {
        Expr::param("x")
    }

    #[test]
    fn constant_folding() {
        let e = Expr::num(2.0) + Expr::num(3.0) * Expr::num(4.0);
        assert_eq!(e.simplify(), Expr::num(14.0));
        let e = Expr::num(8.0).log2();
        assert_eq!(e.simplify(), Expr::num(3.0));
    }

    #[test]
    fn additive_identities() {
        assert_eq!((x() + Expr::num(0.0)).simplify(), x());
        assert_eq!((Expr::num(0.0) + x()).simplify(), x());
        assert_eq!((x() - Expr::num(0.0)).simplify(), x());
        assert_eq!((x() - x()).simplify(), Expr::num(0.0));
    }

    #[test]
    fn multiplicative_identities() {
        assert_eq!((x() * Expr::num(1.0)).simplify(), x());
        assert_eq!((Expr::num(1.0) * x()).simplify(), x());
        assert_eq!((x() * Expr::num(0.0)).simplify(), Expr::num(0.0));
        assert_eq!((x() / Expr::num(1.0)).simplify(), x());
        assert_eq!((Expr::num(0.0) / x()).simplify(), Expr::num(0.0));
    }

    #[test]
    fn power_identities() {
        assert_eq!(x().pow(Expr::num(1.0)).simplify(), x());
        assert_eq!(x().pow(Expr::num(0.0)).simplify(), Expr::num(1.0));
        assert_eq!(Expr::num(1.0).pow(x()).simplify(), Expr::num(1.0));
    }

    #[test]
    fn unary_identities() {
        assert_eq!((-(-x())).simplify(), x());
        assert_eq!(x().exp().ln().simplify(), x());
        // exp(ln(x)) must be preserved: domains differ for x <= 0.
        let e = x().ln().exp();
        assert_eq!(e.simplify(), e);
    }

    #[test]
    fn min_max_of_equal_operands() {
        assert_eq!(x().min(x()).simplify(), x());
        assert_eq!(x().max(x()).simplify(), x());
    }

    #[test]
    fn division_by_zero_is_not_folded() {
        let e = Expr::num(1.0) / Expr::num(0.0);
        // Structure preserved so evaluation still reports the error.
        assert!(e.simplify().as_const().is_none());
        assert!(e.simplify().eval(&Bindings::new()).is_err());
    }

    #[test]
    fn ln_of_negative_constant_is_not_folded() {
        let e = Expr::num(-2.0).ln();
        assert!(e.simplify().as_const().is_none());
    }

    #[test]
    fn simplification_never_grows_the_tree() {
        let e = ((x() + Expr::num(0.0)) * Expr::num(1.0)).pow(Expr::num(1.0));
        let s = e.simplify();
        assert!(s.node_count() <= e.node_count());
        assert_eq!(s, x());
    }

    #[test]
    fn nested_simplification() {
        // (x * 1 + 0) / 1 -> x
        let e = (x() * Expr::num(1.0) + Expr::num(0.0)) / Expr::num(1.0);
        assert_eq!(e.simplify(), x());
    }
}
