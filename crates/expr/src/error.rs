use std::fmt;

/// Errors produced while parsing or evaluating expressions.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ExprError {
    /// A parameter had no value in the supplied [`crate::Bindings`].
    UnboundParameter {
        /// Name of the missing parameter.
        name: String,
    },
    /// Evaluation produced a non-finite value (division by zero, `ln` of a
    /// non-positive number, overflow, ...).
    NonFinite {
        /// The operation that produced the non-finite value.
        operation: String,
    },
    /// Differentiation hit a `min`/`max` node whose value depends on the
    /// differentiation parameter (no derivative at the kink).
    NonDifferentiable {
        /// Display form of the offending subexpression.
        operation: String,
        /// The differentiation parameter.
        param: String,
    },
    /// The parser rejected the input.
    Parse {
        /// Byte offset of the failure in the input.
        position: usize,
        /// Explanation of what was expected.
        message: String,
    },
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::UnboundParameter { name } => write!(f, "unbound parameter `{name}`"),
            ExprError::NonFinite { operation } => {
                write!(f, "non-finite result in {operation}")
            }
            ExprError::NonDifferentiable { operation, param } => {
                write!(f, "`{operation}` is not differentiable in `{param}`")
            }
            ExprError::Parse { position, message } => {
                write!(f, "parse error at byte {position}: {message}")
            }
        }
    }
}

impl std::error::Error for ExprError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_parameter() {
        let e = ExprError::UnboundParameter {
            name: "list".to_string(),
        };
        assert!(e.to_string().contains("list"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ExprError>();
    }
}
