//! Symbolic parametric expressions for `archrel`.
//!
//! Grassi's model (§2) requires that the *actual parameters* of the cascading
//! requests a service issues, and the transition probabilities of its flow,
//! be expressible as **functions of the formal parameters** of the service
//! (`ap_j = ap_j(fp)`). The paper's own evaluation (§4, eqs. 15–22) is carried
//! out symbolically. This crate provides that machinery:
//!
//! - [`Expr`]: an expression AST over named parameters with arithmetic,
//!   `ln`/`log2`/`exp`/`sqrt`/`pow`, and `min`/`max`.
//! - [`Bindings`]: parameter environments for numeric evaluation.
//! - [`parse`]: a parser for the surface syntax used by the `archrel-dsl`
//!   crate (e.g. `list * log2(list)`).
//! - [`Expr::simplify`]: constant folding and algebraic identities, used to
//!   keep the symbolic reliability formulas produced by `archrel-core`
//!   readable.
//!
//! # Examples
//!
//! The cost expression of the paper's `sort` service, `list · log₂(list)`:
//!
//! ```
//! use archrel_expr::{Bindings, Expr};
//!
//! # fn main() -> Result<(), archrel_expr::ExprError> {
//! let cost = Expr::param("list") * Expr::param("list").log2();
//! let env = Bindings::new().with("list", 1024.0);
//! assert_eq!(cost.eval(&env)?, 1024.0 * 10.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod bindings;
mod compile;
mod diff;
mod error;
mod parser;
mod simplify;

pub use ast::{BinaryOp, Expr, UnaryOp};
pub use bindings::Bindings;
pub use compile::CompiledExpr;
pub use error::ExprError;
pub use parser::parse;

/// Convenience result alias for fallible expression operations.
pub type Result<T> = std::result::Result<T, ExprError>;
