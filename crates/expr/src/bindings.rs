use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// An environment mapping parameter names to numeric values.
///
/// Used when a symbolic expression — e.g. an actual-parameter function
/// `ap_j(fp)` — is evaluated for a concrete service invocation.
///
/// # Examples
///
/// ```
/// use archrel_expr::Bindings;
///
/// let env = Bindings::new().with("list", 100.0).with("elem", 4.0);
/// assert_eq!(env.get("list"), Some(100.0));
/// assert_eq!(env.get("missing"), None);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Bindings {
    values: BTreeMap<String, f64>,
}

impl Bindings {
    /// Creates an empty environment.
    pub fn new() -> Self {
        Bindings::default()
    }

    /// Builder-style insertion.
    #[must_use]
    pub fn with(mut self, name: impl Into<String>, value: f64) -> Self {
        self.values.insert(name.into(), value);
        self
    }

    /// Inserts a binding, returning the previous value if any.
    pub fn insert(&mut self, name: impl Into<String>, value: f64) -> Option<f64> {
        self.values.insert(name.into(), value)
    }

    /// Looks up a parameter.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.values.get(name).copied()
    }

    /// Whether the environment binds `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.values.contains_key(name)
    }

    /// Number of bound parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the environment is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Merges `other` into `self`; `other` wins on conflicts.
    pub fn extend(&mut self, other: &Bindings) {
        for (k, v) in &other.values {
            self.values.insert(k.clone(), *v);
        }
    }

    /// A stable fingerprint of the environment, used by the evaluation cache
    /// in `archrel-core` to memoize per-(service, parameters) results.
    ///
    /// Two environments with identical contents produce identical keys.
    pub fn cache_key(&self) -> String {
        let mut s = String::new();
        for (k, v) in &self.values {
            s.push_str(k);
            s.push('=');
            // Bit-exact formatting so 0.1 and 0.1000000001 never collide.
            s.push_str(&format!("{:x}", v.to_bits()));
            s.push(';');
        }
        s
    }
}

impl FromIterator<(String, f64)> for Bindings {
    fn from_iter<I: IntoIterator<Item = (String, f64)>>(iter: I) -> Self {
        Bindings {
            values: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut b = Bindings::new();
        assert!(b.is_empty());
        assert_eq!(b.insert("x", 1.0), None);
        assert_eq!(b.insert("x", 2.0), Some(1.0));
        assert_eq!(b.get("x"), Some(2.0));
        assert_eq!(b.len(), 1);
        assert!(b.contains("x"));
    }

    #[test]
    fn extend_overwrites() {
        let mut a = Bindings::new().with("x", 1.0).with("y", 2.0);
        let b = Bindings::new().with("y", 9.0).with("z", 3.0);
        a.extend(&b);
        assert_eq!(a.get("y"), Some(9.0));
        assert_eq!(a.get("z"), Some(3.0));
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn cache_key_is_order_independent_and_exact() {
        let a = Bindings::new().with("x", 0.1).with("y", 2.0);
        let b = Bindings::new().with("y", 2.0).with("x", 0.1);
        assert_eq!(a.cache_key(), b.cache_key());
        let c = Bindings::new().with("x", 0.1 + 1e-12).with("y", 2.0);
        assert_ne!(a.cache_key(), c.cache_key());
    }

    #[test]
    fn from_iterator() {
        let b: Bindings = vec![("a".to_string(), 1.0)].into_iter().collect();
        assert_eq!(b.get("a"), Some(1.0));
    }
}
