//! Recursive-descent parser for the expression surface syntax.
//!
//! Grammar (standard precedence, `^` right-associative):
//!
//! ```text
//! expr    := term (('+' | '-') term)*
//! term    := factor (('*' | '/') factor)*
//! factor  := unary ('^' factor)?
//! unary   := '-' unary | atom
//! atom    := NUMBER | IDENT | IDENT '(' args ')' | '(' expr ')'
//! args    := expr (',' expr)*
//! ```
//!
//! Recognized functions: `ln`, `log2`, `exp`, `sqrt` (1 argument) and `min`,
//! `max` (2 arguments). Any other identifier is a parameter reference. This
//! is the syntax embedded in `archrel-dsl` assembly files, e.g.
//! `cpu(list * log2(list))`.

use crate::{Expr, ExprError, Result};

/// Parses an expression from its surface syntax.
///
/// # Errors
///
/// Returns [`ExprError::Parse`] with a byte position and message when the
/// input is malformed.
///
/// # Examples
///
/// ```
/// use archrel_expr::{parse, Bindings};
///
/// # fn main() -> Result<(), archrel_expr::ExprError> {
/// let e = parse("list * log2(list) + 2")?;
/// assert_eq!(e.eval(&Bindings::new().with("list", 8.0))?, 26.0);
/// # Ok(())
/// # }
/// ```
pub fn parse(input: &str) -> Result<Expr> {
    let mut p = Parser {
        input,
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let e = p.expr()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("unexpected trailing input"));
    }
    Ok(e)
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> ExprError {
        ExprError::Parse {
            position: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            self.skip_ws();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Result<()> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", c as char)))
        }
    }

    fn expr(&mut self) -> Result<Expr> {
        let mut left = self.term()?;
        loop {
            if self.eat(b'+') {
                left = left + self.term()?;
            } else if self.eat(b'-') {
                left = left - self.term()?;
            } else {
                return Ok(left);
            }
        }
    }

    fn term(&mut self) -> Result<Expr> {
        let mut left = self.factor()?;
        loop {
            if self.eat(b'*') {
                left = left * self.factor()?;
            } else if self.eat(b'/') {
                left = left / self.factor()?;
            } else {
                return Ok(left);
            }
        }
    }

    fn factor(&mut self) -> Result<Expr> {
        let base = self.unary()?;
        if self.eat(b'^') {
            // Right-associative.
            let exponent = self.factor()?;
            return Ok(base.pow(exponent));
        }
        Ok(base)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat(b'-') {
            return Ok(-self.unary()?);
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Expr> {
        match self.peek() {
            Some(b'(') => {
                self.expect(b'(')?;
                let e = self.expr()?;
                self.expect(b')')?;
                Ok(e)
            }
            Some(c) if c.is_ascii_digit() || c == b'.' => self.number(),
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => self.ident_or_call(),
            Some(c) => Err(self.error(format!("unexpected character `{}`", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Expr> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit() || c == b'.') {
            self.pos += 1;
        }
        // Scientific notation: e / E followed by optional sign and digits.
        if self.peek().is_some_and(|c| c == b'e' || c == b'E') {
            let mark = self.pos;
            self.pos += 1;
            if self.peek().is_some_and(|c| c == b'+' || c == b'-') {
                self.pos += 1;
            }
            if self.peek().is_some_and(|c| c.is_ascii_digit()) {
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.pos += 1;
                }
            } else {
                // Not an exponent after all (e.g. `2eps` would be weird but
                // the `e` belongs to an identifier only if numbers can't be
                // adjacent to identifiers; reject cleanly instead).
                self.pos = mark;
            }
        }
        let text = &self.input[start..self.pos];
        let value: f64 = text
            .parse()
            .map_err(|_| self.error(format!("invalid number `{text}`")))?;
        self.skip_ws();
        Ok(Expr::num(value))
    }

    fn ident_or_call(&mut self) -> Result<Expr> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
        {
            self.pos += 1;
        }
        let name = &self.input[start..self.pos];
        self.skip_ws();
        if !self.eat(b'(') {
            return Ok(Expr::param(name));
        }
        let mut args = vec![self.expr()?];
        while self.eat(b',') {
            args.push(self.expr()?);
        }
        self.expect(b')')?;
        self.apply_function(name, args)
    }

    fn apply_function(&mut self, name: &str, mut args: Vec<Expr>) -> Result<Expr> {
        let arity_error = |p: &Self, expected: usize, got: usize| {
            p.error(format!("`{name}` takes {expected} argument(s), got {got}"))
        };
        match name {
            "ln" | "log2" | "exp" | "sqrt" => {
                if args.len() != 1 {
                    return Err(arity_error(self, 1, args.len()));
                }
                let a = args.pop().expect("length checked");
                Ok(match name {
                    "ln" => a.ln(),
                    "log2" => a.log2(),
                    "exp" => a.exp(),
                    _ => a.sqrt(),
                })
            }
            "min" | "max" => {
                if args.len() != 2 {
                    return Err(arity_error(self, 2, args.len()));
                }
                let b = args.pop().expect("length checked");
                let a = args.pop().expect("length checked");
                Ok(if name == "min" { a.min(b) } else { a.max(b) })
            }
            "pow" => {
                if args.len() != 2 {
                    return Err(arity_error(self, 2, args.len()));
                }
                let b = args.pop().expect("length checked");
                let a = args.pop().expect("length checked");
                Ok(a.pow(b))
            }
            other => Err(self.error(format!("unknown function `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Bindings;

    fn eval(src: &str, env: &Bindings) -> f64 {
        parse(src).unwrap().eval(env).unwrap()
    }

    #[test]
    fn numbers() {
        let env = Bindings::new();
        assert_eq!(eval("42", &env), 42.0);
        assert_eq!(eval("3.5", &env), 3.5);
        assert_eq!(eval("1e3", &env), 1000.0);
        assert_eq!(eval("2.5e-2", &env), 0.025);
        assert_eq!(eval("1E+2", &env), 100.0);
    }

    #[test]
    fn precedence_and_associativity() {
        let env = Bindings::new();
        assert_eq!(eval("2 + 3 * 4", &env), 14.0);
        assert_eq!(eval("(2 + 3) * 4", &env), 20.0);
        assert_eq!(eval("10 - 2 - 3", &env), 5.0); // left-assoc
        assert_eq!(eval("16 / 4 / 2", &env), 2.0); // left-assoc
        assert_eq!(eval("2 ^ 3 ^ 2", &env), 512.0); // right-assoc
        assert_eq!(eval("-2 ^ 2", &env), 4.0); // (-2)^2: unary binds tighter
    }

    #[test]
    fn parameters_and_functions() {
        let env = Bindings::new().with("list", 8.0).with("elem", 2.0);
        assert_eq!(eval("list * log2(list)", &env), 24.0);
        assert_eq!(eval("elem + list", &env), 10.0);
        assert_eq!(eval("min(list, elem)", &env), 2.0);
        assert_eq!(eval("max(list, elem)", &env), 8.0);
        assert_eq!(eval("sqrt(list + 1)", &env), 3.0);
        assert_eq!(eval("pow(elem, 3)", &env), 8.0);
        assert_eq!(eval("exp(0)", &env), 1.0);
        assert!((eval("ln(list)", &env) - 8f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn unary_minus() {
        let env = Bindings::new().with("x", 3.0);
        assert_eq!(eval("-x", &env), -3.0);
        assert_eq!(eval("--x", &env), 3.0);
        assert_eq!(eval("4 - -x", &env), 7.0);
    }

    #[test]
    fn whitespace_is_insignificant() {
        let env = Bindings::new().with("n", 4.0);
        assert_eq!(eval("  n *  log2( n )  ", &env), 8.0);
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(parse("2 +"), Err(ExprError::Parse { .. })));
        assert!(matches!(parse("(2 + 3"), Err(ExprError::Parse { .. })));
        assert!(matches!(parse("2 + 3)"), Err(ExprError::Parse { .. })));
        assert!(matches!(parse("foo(1)"), Err(ExprError::Parse { .. })));
        assert!(matches!(parse("ln(1, 2)"), Err(ExprError::Parse { .. })));
        assert!(matches!(parse("min(1)"), Err(ExprError::Parse { .. })));
        assert!(matches!(parse(""), Err(ExprError::Parse { .. })));
        assert!(matches!(parse("2 @ 3"), Err(ExprError::Parse { .. })));
    }

    #[test]
    fn error_position_is_meaningful() {
        let err = parse("1 + @").unwrap_err();
        match err {
            ExprError::Parse { position, .. } => assert_eq!(position, 4),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn roundtrip_display_parse() {
        let sources = [
            "a + b * c",
            "(a + b) * c",
            "n * log2(n)",
            "min(a, b) + max(a, 2)",
            "a ^ b ^ c",
            "a / (b / c)",
            "-a + 3",
        ];
        let env = Bindings::new()
            .with("a", 3.0)
            .with("b", 5.0)
            .with("c", 2.0)
            .with("n", 16.0);
        for src in sources {
            let e = parse(src).unwrap();
            let printed = e.to_string();
            let reparsed = parse(&printed).unwrap();
            assert_eq!(
                e.eval(&env).unwrap(),
                reparsed.eval(&env).unwrap(),
                "source `{src}` printed as `{printed}`"
            );
        }
    }
}
