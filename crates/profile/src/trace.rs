//! Execution-trace generation from a known DTMC.
//!
//! Stands in for the monitoring logs a deployed SOC platform would produce:
//! the experiments sample traces from a ground-truth usage profile and then
//! check how much data the estimator needs to recover it.

use archrel_markov::{Dtmc, StateLabel};
use rand::Rng;

use crate::{ProfileError, Result};

/// A single execution trace: the sequence of visited states, starting at the
/// start state and ending when an absorbing state is entered (or the length
/// cap is hit).
pub type Trace<S> = Vec<S>;

/// Samples one trace from `chain` starting at `start`.
///
/// The walk stops after entering an absorbing state, or after `max_len`
/// states.
///
/// # Errors
///
/// Returns [`ProfileError::UnknownState`] when `start` is absent and
/// propagates chain access errors.
pub fn sample_trace<S: StateLabel, R: Rng + ?Sized>(
    chain: &Dtmc<S>,
    start: &S,
    max_len: usize,
    rng: &mut R,
) -> Result<Trace<S>> {
    chain.require_index(start).map_err(ProfileError::from)?;
    let mut trace = vec![start.clone()];
    let mut current = start.clone();
    while trace.len() < max_len {
        if chain.is_absorbing(&current)? {
            break;
        }
        let successors = chain.successors(&current)?;
        let mut draw = rng.gen::<f64>();
        let mut next = successors
            .last()
            .map(|(s, _)| (*s).clone())
            .expect("non-absorbing state has successors");
        for (s, p) in successors {
            if draw < p {
                next = s.clone();
                break;
            }
            draw -= p;
        }
        trace.push(next.clone());
        current = next;
    }
    Ok(trace)
}

/// Samples `count` independent traces.
///
/// # Errors
///
/// See [`sample_trace`].
pub fn sample_traces<S: StateLabel, R: Rng + ?Sized>(
    chain: &Dtmc<S>,
    start: &S,
    count: usize,
    max_len: usize,
    rng: &mut R,
) -> Result<Vec<Trace<S>>> {
    (0..count)
        .map(|_| sample_trace(chain, start, max_len, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use archrel_markov::DtmcBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain() -> Dtmc<&'static str> {
        DtmcBuilder::new()
            .transition("s", "a", 0.5)
            .transition("s", "b", 0.5)
            .transition("a", "end", 1.0)
            .transition("b", "end", 1.0)
            .build()
            .unwrap()
    }

    #[test]
    fn traces_start_at_start_and_end_absorbed() {
        let c = chain();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let t = sample_trace(&c, &"s", 100, &mut rng).unwrap();
            assert_eq!(t[0], "s");
            assert_eq!(*t.last().unwrap(), "end");
            assert_eq!(t.len(), 3);
        }
    }

    #[test]
    fn branch_frequencies_match_probabilities() {
        let c = chain();
        let mut rng = StdRng::seed_from_u64(4);
        let traces = sample_traces(&c, &"s", 10_000, 10, &mut rng).unwrap();
        let via_a = traces.iter().filter(|t| t[1] == "a").count() as f64;
        let frac = via_a / traces.len() as f64;
        assert!((frac - 0.5).abs() < 0.02, "fraction {frac}");
    }

    #[test]
    fn length_cap_stops_nonabsorbing_walks() {
        let c = DtmcBuilder::new()
            .transition("x", "y", 1.0)
            .transition("y", "x", 1.0)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let t = sample_trace(&c, &"x", 7, &mut rng).unwrap();
        assert_eq!(t.len(), 7);
    }

    #[test]
    fn unknown_start_rejected() {
        let c = chain();
        let mut rng = StdRng::seed_from_u64(6);
        assert!(sample_trace(&c, &"ghost", 10, &mut rng).is_err());
    }
}
