//! Streaming usage-profile estimation: ingest call traces incrementally,
//! maintain transition sufficient statistics online, and emit **delta
//! sets** — only the rows whose transition probabilities actually moved —
//! so downstream consumers (the fleet-refresh driver, the `stream` CLI
//! command) can re-evaluate dirty cones instead of whole fleets.
//!
//! # Batch equivalence
//!
//! [`StreamingEstimator`] is pinned to [`estimate_dtmc`]: after ingesting
//! traces `t₁ … tₙ` in any split, [`StreamingEstimator::estimate`] produces
//! a chain whose state set (in first-occurrence order) and per-edge
//! transition probabilities are **bitwise** equal to
//! `estimate_dtmc(&[t₁, …, tₙ])`. This holds because both sides compute
//! every probability as `(count + smoothing) / (row_total + smoothing · n)`
//! from integer-valued `f64` counts: integer sums below 2⁵³ are exact in
//! any order, so the division sees identical operands. The differential
//! suite (`tests/streaming_differential.rs`) replays random traces against
//! random split boundaries to enforce the pin.
//!
//! # Delta sets
//!
//! [`StreamingEstimator::drain_deltas`] compares the current estimate
//! against the last drained snapshot and emits changed rows **atomically**:
//! when any edge of a source state moved past the threshold, the whole
//! row's current probabilities are emitted together. Row atomicity is what
//! keeps downstream parameter patches stochastic — a single-edge patch
//! would break the row-sum invariant mid-application. At threshold `0.0`
//! every numerically changed row is emitted, so applying every drained
//! delta reproduces the full batch estimate exactly.

use std::collections::HashMap;

use archrel_markov::{Dtmc, DtmcBuilder, StateLabel};

use crate::estimate::EstimatorOptions;
use crate::{ProfileError, Result};

/// Environment variable naming the default delta-set threshold.
pub const DELTA_THRESHOLD_ENV: &str = "ARCHREL_DELTA_THRESHOLD";

/// Parses a delta-set threshold: a finite probability movement in
/// `[0, 1)`. Returns `None` on anything else (non-numeric, negative, ≥ 1,
/// NaN/inf).
pub fn parse_delta_threshold(raw: &str) -> Option<f64> {
    let value: f64 = raw.trim().parse().ok()?;
    (value.is_finite() && (0.0..1.0).contains(&value)).then_some(value)
}

/// Reads [`DELTA_THRESHOLD_ENV`], defaulting to `0.0` (emit every change)
/// when unset or empty.
///
/// # Panics
///
/// Panics on an unparseable value, naming the accepted range — the repo's
/// hard-error convention for environment toggles (silently ignoring a typo
/// would re-evaluate far more or far less than the operator asked for).
pub fn delta_threshold_from_env() -> f64 {
    match std::env::var(DELTA_THRESHOLD_ENV) {
        Ok(raw) if !raw.trim().is_empty() => parse_delta_threshold(&raw).unwrap_or_else(|| {
            panic!(
                "unrecognized {DELTA_THRESHOLD_ENV} value `{raw}`: expected a \
                 finite probability threshold in [0, 1)"
            )
        }),
        _ => 0.0,
    }
}

/// One source state's refreshed outgoing distribution: every observed
/// successor with its **current** estimated probability. Emitted whole so
/// the row stays stochastic under any downstream patching scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct RowDelta<S> {
    /// The source state whose row moved.
    pub from: S,
    /// `(successor, new probability)` in first-observation order.
    pub edges: Vec<(S, f64)>,
}

/// The rows that moved past the threshold since the previous drain.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeltaSet<S> {
    /// Changed rows, in first-observation order of their source states.
    pub rows: Vec<RowDelta<S>>,
}

impl<S> DeltaSet<S> {
    /// `true` when nothing moved past the threshold.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Total `(edge, probability)` pairs across all emitted rows.
    pub fn edge_count(&self) -> usize {
        self.rows.iter().map(|r| r.edges.len()).sum()
    }
}

/// Sufficient statistics of one source state: successor counts in
/// first-observation order (for deterministic emission), the row total,
/// and the probabilities last emitted through a delta set.
#[derive(Debug, Clone)]
struct RowCounts<S> {
    /// `(successor, count)` in first-observation order.
    successors: Vec<(S, f64)>,
    /// Successor → index into `successors`.
    index: HashMap<S, usize>,
    /// Per-successor probability at the last drain (`0.0` before the
    /// successor was ever emitted).
    emitted: Vec<f64>,
}

impl<S: StateLabel> RowCounts<S> {
    fn new() -> Self {
        RowCounts {
            successors: Vec::new(),
            index: HashMap::new(),
            emitted: Vec::new(),
        }
    }

    fn observe(&mut self, to: &S) {
        match self.index.get(to) {
            Some(&i) => self.successors[i].1 += 1.0,
            None => {
                self.index.insert(to.clone(), self.successors.len());
                self.successors.push((to.clone(), 1.0));
                self.emitted.push(0.0);
            }
        }
    }

    /// Current estimated probability of successor `i` —
    /// [`estimate_dtmc`]'s arithmetic on the same operands: the row total
    /// is an exact integer sum, so any accumulation order yields the same
    /// `f64`, and the division is then bit-identical.
    fn probability(&self, i: usize, smoothing: f64) -> f64 {
        let total: f64 = self.successors.iter().map(|(_, c)| c).sum::<f64>()
            + smoothing * self.successors.len() as f64;
        (self.successors[i].1 + smoothing) / total
    }
}

/// Incremental (streaming) counterpart of [`estimate_dtmc`]: ingests traces
/// one at a time, keeps transition counts online, and reports changed rows
/// as [`DeltaSet`]s. See the module docs for the batch-equivalence and
/// row-atomicity contracts.
///
/// [`estimate_dtmc`]: crate::estimate::estimate_dtmc
#[derive(Debug, Clone)]
pub struct StreamingEstimator<S: StateLabel> {
    opts: EstimatorOptions,
    /// Every state ever observed, in first-occurrence order — the order
    /// batch estimation interns states in.
    states: Vec<S>,
    state_index: HashMap<S, usize>,
    /// Source states with at least one observed outgoing transition, in
    /// first-observation order.
    rows: Vec<S>,
    counts: HashMap<S, RowCounts<S>>,
    traces: u64,
    transitions: u64,
}

impl<S: StateLabel> StreamingEstimator<S> {
    /// A streaming estimator with the pure-MLE options.
    pub fn new() -> Self {
        StreamingEstimator::with_options(EstimatorOptions::default())
    }

    /// A streaming estimator with explicit [`EstimatorOptions`].
    pub fn with_options(opts: EstimatorOptions) -> Self {
        StreamingEstimator {
            opts,
            states: Vec::new(),
            state_index: HashMap::new(),
            rows: Vec::new(),
            counts: HashMap::new(),
            traces: 0,
            transitions: 0,
        }
    }

    /// Ingests one trace (a visited-state sequence), updating the
    /// transition counts. Empty and single-state traces still declare
    /// their states (matching batch estimation's "stable presence" pass)
    /// but contribute no transitions.
    pub fn observe(&mut self, trace: &[S]) {
        self.traces += 1;
        for s in trace {
            if !self.state_index.contains_key(s) {
                self.state_index.insert(s.clone(), self.states.len());
                self.states.push(s.clone());
            }
        }
        for w in trace.windows(2) {
            self.transitions += 1;
            if !self.counts.contains_key(&w[0]) {
                self.rows.push(w[0].clone());
            }
            self.counts
                .entry(w[0].clone())
                .or_insert_with(RowCounts::new)
                .observe(&w[1]);
        }
    }

    /// Ingests every trace of a batch, in order.
    pub fn observe_all<T: AsRef<[S]>>(&mut self, traces: impl IntoIterator<Item = T>) {
        for trace in traces {
            self.observe(trace.as_ref());
        }
    }

    /// Number of traces ingested so far.
    pub fn traces_ingested(&self) -> u64 {
        self.traces
    }

    /// Number of transitions (trace windows) observed so far.
    pub fn transitions_observed(&self) -> u64 {
        self.transitions
    }

    /// Number of distinct states observed so far.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// The current estimated probability of `from → to`, or `None` when
    /// the transition was never observed.
    pub fn transition_probability(&self, from: &S, to: &S) -> Option<f64> {
        let row = self.counts.get(from)?;
        let &i = row.index.get(to)?;
        Some(row.probability(i, self.opts.smoothing))
    }

    /// Builds the full current estimate — bitwise what
    /// [`estimate_dtmc`](crate::estimate::estimate_dtmc) returns on the
    /// concatenation of every ingested trace: identical state set in
    /// identical (first-occurrence) intern order, identical edge support,
    /// identical per-edge probability bits.
    ///
    /// # Errors
    ///
    /// [`ProfileError::NoData`] when no transition has been observed.
    pub fn estimate(&self) -> Result<Dtmc<S>> {
        if self.transitions == 0 {
            return Err(ProfileError::NoData);
        }
        let mut builder = DtmcBuilder::new();
        for s in &self.states {
            builder = builder.state(s.clone());
        }
        for from in &self.rows {
            let row = &self.counts[from];
            for (i, (to, _)) in row.successors.iter().enumerate() {
                builder = builder.transition(
                    from.clone(),
                    to.clone(),
                    row.probability(i, self.opts.smoothing),
                );
            }
        }
        Ok(builder.build()?)
    }

    /// Emits the rows whose estimated probabilities moved past `threshold`
    /// since the previous drain, and marks them emitted. A row is emitted
    /// **whole** (every observed successor with its current probability)
    /// when any of its edges moved by strictly more than `threshold` in
    /// absolute value — including edges appearing for the first time,
    /// whose previous emitted probability counts as `0.0`. At threshold
    /// `0.0` every numeric change is emitted.
    ///
    /// # Panics
    ///
    /// Panics when `threshold` is outside `[0, 1)` — the same contract
    /// [`parse_delta_threshold`] enforces for operator input.
    pub fn drain_deltas(&mut self, threshold: f64) -> DeltaSet<S> {
        assert!(
            threshold.is_finite() && (0.0..1.0).contains(&threshold),
            "delta threshold must lie in [0, 1), got {threshold}"
        );
        let mut rows = Vec::new();
        for from in &self.rows {
            let row = self.counts.get_mut(from).expect("row exists");
            let moved = (0..row.successors.len()).any(|i| {
                let p = row.probability(i, self.opts.smoothing);
                (p - row.emitted[i]).abs() > threshold
            });
            if !moved {
                continue;
            }
            let mut edges = Vec::with_capacity(row.successors.len());
            for i in 0..row.successors.len() {
                let p = row.probability(i, self.opts.smoothing);
                row.emitted[i] = p;
                edges.push((row.successors[i].0.clone(), p));
            }
            rows.push(RowDelta {
                from: from.clone(),
                edges,
            });
        }
        DeltaSet { rows }
    }
}

impl<S: StateLabel> Default for StreamingEstimator<S> {
    fn default() -> Self {
        StreamingEstimator::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::estimate_dtmc;

    fn traces() -> Vec<Vec<&'static str>> {
        vec![
            vec!["s", "a", "end"],
            vec!["s", "b", "end"],
            vec!["s", "a", "s", "a", "end"],
            vec!["s", "b", "end"],
            vec!["s", "a", "end"],
        ]
    }

    /// Per-edge bitwise comparison over the union of both chains' edges,
    /// plus state-set/order equality — the batch-equivalence contract.
    fn assert_chains_equal(streamed: &Dtmc<&'static str>, batch: &Dtmc<&'static str>) {
        assert_eq!(streamed.states(), batch.states(), "state intern order");
        for from in batch.states() {
            for (to, p) in batch.successors(from).unwrap() {
                let q = streamed.transition_probability(from, to).unwrap();
                assert_eq!(p.to_bits(), q.to_bits(), "{from:?} -> {to:?}");
            }
            assert_eq!(
                streamed.successors(from).unwrap().len(),
                batch.successors(from).unwrap().len(),
                "support of {from:?}"
            );
        }
    }

    #[test]
    fn flush_matches_batch_estimate_bitwise() {
        let all = traces();
        for split in 0..=all.len() {
            let mut est = StreamingEstimator::new();
            est.observe_all(&all[..split]);
            est.observe_all(&all[split..]);
            let streamed = est.estimate().unwrap();
            let batch = estimate_dtmc(&all, EstimatorOptions::default()).unwrap();
            assert_chains_equal(&streamed, &batch);
        }
    }

    #[test]
    fn smoothing_matches_batch_estimate_bitwise() {
        let all = traces();
        let opts = EstimatorOptions { smoothing: 0.7 };
        let mut est = StreamingEstimator::with_options(opts);
        est.observe_all(&all);
        assert_chains_equal(
            &est.estimate().unwrap(),
            &estimate_dtmc(&all, opts).unwrap(),
        );
    }

    #[test]
    fn no_data_rejected() {
        let est: StreamingEstimator<&str> = StreamingEstimator::new();
        assert!(matches!(est.estimate(), Err(ProfileError::NoData)));
        let mut est = StreamingEstimator::new();
        est.observe(&["only"]);
        assert!(matches!(est.estimate(), Err(ProfileError::NoData)));
        assert_eq!(est.state_count(), 1);
    }

    #[test]
    fn deltas_are_row_atomic_and_complete_at_zero_threshold() {
        let mut est = StreamingEstimator::new();
        est.observe(&["s", "a", "end"]);
        let first = est.drain_deltas(0.0);
        // Both observed rows emitted whole.
        assert_eq!(first.rows.len(), 2);
        assert_eq!(first.rows[0].from, "s");
        assert_eq!(first.rows[0].edges, vec![("a", 1.0)]);
        // Nothing moved since: drain is empty.
        assert!(est.drain_deltas(0.0).is_empty());
        // A new successor of `s` re-emits the whole `s` row (both edges),
        // but leaves the untouched `a` row alone.
        est.observe(&["s", "b", "end"]);
        let second = est.drain_deltas(0.0);
        let s_row: Vec<&RowDelta<&str>> = second.rows.iter().filter(|r| r.from == "s").collect();
        assert_eq!(s_row.len(), 1);
        assert_eq!(s_row[0].edges, vec![("a", 0.5), ("b", 0.5)]);
        assert!(!second.rows.iter().any(|r| r.from == "a"));
        // The emitted probabilities are exactly the current estimate.
        let b_row = second.rows.iter().find(|r| r.from == "b").unwrap();
        assert_eq!(b_row.edges, vec![("end", 1.0)]);
    }

    #[test]
    fn threshold_suppresses_small_moves() {
        let mut est = StreamingEstimator::new();
        for _ in 0..100 {
            est.observe(&["s", "a", "end"]);
        }
        est.observe(&["s", "b", "end"]);
        est.drain_deltas(0.0);
        // One more a-observation moves p(s→a) from 100/101 to 101/102:
        // a ~1e-4 move, below a 0.05 threshold.
        est.observe(&["s", "a", "end"]);
        assert!(est.drain_deltas(0.05).is_empty());
        // But the move is still pending: a zero-threshold drain emits it.
        let pending = est.drain_deltas(0.0);
        assert_eq!(pending.rows.len(), 1);
        assert_eq!(pending.rows[0].from, "s");
        assert_eq!(pending.edge_count(), 2);
    }

    #[test]
    fn proportional_growth_emits_nothing() {
        let mut est = StreamingEstimator::new();
        est.observe(&["s", "a", "s", "b", "end"]);
        est.drain_deltas(0.0);
        // Doubling every count of the `s` row leaves its probabilities
        // bit-identical; only rows that numerically moved are emitted.
        est.observe(&["s", "a", "s", "b", "end"]);
        assert!(est.drain_deltas(0.0).is_empty());
    }

    #[test]
    fn counters_track_ingestion() {
        let mut est = StreamingEstimator::new();
        est.observe_all(traces());
        assert_eq!(est.traces_ingested(), 5);
        assert_eq!(est.transitions_observed(), 12);
        assert_eq!(est.state_count(), 4);
        assert!(est.transition_probability(&"s", &"a").is_some());
        assert!(est.transition_probability(&"a", &"b").is_none());
    }

    #[test]
    fn threshold_parsing_accepts_the_documented_range() {
        assert_eq!(parse_delta_threshold("0"), Some(0.0));
        assert_eq!(parse_delta_threshold(" 0.25 "), Some(0.25));
        assert_eq!(parse_delta_threshold("1e-6"), Some(1e-6));
        assert_eq!(parse_delta_threshold("1.0"), None);
        assert_eq!(parse_delta_threshold("-0.1"), None);
        assert_eq!(parse_delta_threshold("NaN"), None);
        assert_eq!(parse_delta_threshold("inf"), None);
        assert_eq!(parse_delta_threshold("fast"), None);
    }

    #[test]
    #[should_panic(expected = "delta threshold must lie in [0, 1)")]
    fn drain_rejects_out_of_range_thresholds() {
        let mut est: StreamingEstimator<&str> = StreamingEstimator::new();
        est.drain_deltas(1.5);
    }
}
