//! Usage-profile estimation for `archrel`.
//!
//! Grassi's model assumes "that the Markov model specifying the service
//! usage profile is completely known", and points (§5) at Roshandel &
//! Medvidovic \[16\] for how such a model is obtained in practice — from
//! observed executions, possibly with imperfect knowledge handled by a
//! **hidden Markov model**. This crate supplies that tooling:
//!
//! - [`trace`]: execution-trace generation from a known DTMC (the synthetic
//!   stand-in for production monitoring logs);
//! - [`estimate`]: maximum-likelihood estimation of transition
//!   probabilities from traces, with Laplace smoothing;
//! - [`hmm`]: a discrete hidden Markov model with forward/backward,
//!   Viterbi, and Baum–Welch re-estimation, for the imperfect-observability
//!   case where flow states are only seen through noisy observations;
//! - [`streaming`]: an incremental estimator that ingests traces online and
//!   emits delta sets of moved transition rows, bitwise-pinned to
//!   [`estimate::estimate_dtmc`] on the concatenated traces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod estimate;
pub mod hmm;
pub mod streaming;
pub mod trace;

mod error;

pub use error::ProfileError;

/// Convenience result alias for fallible profile operations.
pub type Result<T> = std::result::Result<T, ProfileError>;
