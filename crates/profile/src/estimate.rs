//! Maximum-likelihood estimation of usage-profile transition probabilities
//! from execution traces.

use std::collections::HashMap;

use archrel_markov::{Dtmc, DtmcBuilder, StateLabel};

use crate::{ProfileError, Result};

/// Options controlling the estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimatorOptions {
    /// Laplace smoothing pseudo-count added to every *observed-state* pair;
    /// `0.0` gives the pure MLE. Smoothing keeps the estimated chain
    /// strictly positive on observed support and stabilizes small samples.
    pub smoothing: f64,
}

impl Default for EstimatorOptions {
    fn default() -> Self {
        EstimatorOptions { smoothing: 0.0 }
    }
}

/// Estimates a DTMC from traces.
///
/// States are taken from the traces themselves; the estimated chain contains
/// every state that occurs, with transition probabilities proportional to
/// observed transition counts (plus smoothing over the *observed* successor
/// sets). Terminal states with no observed outgoing transitions become
/// absorbing.
///
/// # Errors
///
/// Returns [`ProfileError::NoData`] when no transition was observed at all.
pub fn estimate_dtmc<S: StateLabel>(traces: &[Vec<S>], opts: EstimatorOptions) -> Result<Dtmc<S>> {
    let mut counts: HashMap<S, HashMap<S, f64>> = HashMap::new();
    let mut any = false;
    for trace in traces {
        for w in trace.windows(2) {
            any = true;
            *counts
                .entry(w[0].clone())
                .or_default()
                .entry(w[1].clone())
                .or_insert(0.0) += 1.0;
        }
    }
    if !any {
        return Err(ProfileError::NoData);
    }
    let mut builder = DtmcBuilder::new();
    // Declare all states (including pure sinks) first for stable presence.
    for trace in traces {
        for s in trace {
            builder = builder.state(s.clone());
        }
    }
    for (from, successors) in counts {
        let total: f64 =
            successors.values().sum::<f64>() + opts.smoothing * successors.len() as f64;
        for (to, c) in successors {
            builder = builder.transition(from.clone(), to, (c + opts.smoothing) / total);
        }
    }
    Ok(builder.build()?)
}

/// Largest absolute difference between the transition probabilities of two
/// chains over the union of `reference`'s edges (missing edges count as 0).
///
/// # Errors
///
/// Propagates state-lookup failures.
pub fn max_transition_error<S: StateLabel>(
    reference: &Dtmc<S>,
    estimated: &Dtmc<S>,
) -> Result<f64> {
    let mut worst = 0.0_f64;
    for from in reference.states() {
        if reference.is_absorbing(from)? {
            continue;
        }
        for (to, p_ref) in reference.successors(from)? {
            let p_est = match estimated.index_of(from).and(estimated.index_of(to)) {
                Some(_) => estimated.transition_probability(from, to)?,
                None => 0.0,
            };
            worst = worst.max((p_ref - p_est).abs());
        }
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::sample_traces;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ground_truth() -> Dtmc<&'static str> {
        DtmcBuilder::new()
            .transition("s", "a", 0.7)
            .transition("s", "b", 0.3)
            .transition("a", "s", 0.2)
            .transition("a", "end", 0.8)
            .transition("b", "end", 1.0)
            .build()
            .unwrap()
    }

    #[test]
    fn recovers_known_chain_with_enough_data() {
        let truth = ground_truth();
        let mut rng = StdRng::seed_from_u64(11);
        let traces = sample_traces(&truth, &"s", 20_000, 100, &mut rng).unwrap();
        let est = estimate_dtmc(&traces, EstimatorOptions::default()).unwrap();
        let err = max_transition_error(&truth, &est).unwrap();
        assert!(err < 0.02, "max error {err}");
    }

    #[test]
    fn error_shrinks_with_more_data() {
        let truth = ground_truth();
        let mut rng = StdRng::seed_from_u64(12);
        let small = sample_traces(&truth, &"s", 50, 100, &mut rng).unwrap();
        let large = sample_traces(&truth, &"s", 50_000, 100, &mut rng).unwrap();
        let e_small = max_transition_error(
            &truth,
            &estimate_dtmc(&small, EstimatorOptions::default()).unwrap(),
        )
        .unwrap();
        let e_large = max_transition_error(
            &truth,
            &estimate_dtmc(&large, EstimatorOptions::default()).unwrap(),
        )
        .unwrap();
        assert!(e_large < e_small, "{e_large} !< {e_small}");
    }

    #[test]
    fn exact_counts_small_example() {
        // s->a twice, s->b once.
        let traces = vec![vec!["s", "a"], vec!["s", "a"], vec!["s", "b"]];
        let est = estimate_dtmc(&traces, EstimatorOptions::default()).unwrap();
        assert!((est.transition_probability(&"s", &"a").unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((est.transition_probability(&"s", &"b").unwrap() - 1.0 / 3.0).abs() < 1e-12);
        // a and b become absorbing.
        assert!(est.is_absorbing(&"a").unwrap());
    }

    #[test]
    fn smoothing_flattens_small_samples() {
        let traces = vec![vec!["s", "a"], vec!["s", "a"], vec!["s", "b"]];
        let plain = estimate_dtmc(&traces, EstimatorOptions::default()).unwrap();
        let smooth = estimate_dtmc(&traces, EstimatorOptions { smoothing: 10.0 }).unwrap();
        let pa_plain = plain.transition_probability(&"s", &"a").unwrap();
        let pa_smooth = smooth.transition_probability(&"s", &"a").unwrap();
        assert!(pa_smooth < pa_plain);
        assert!(pa_smooth > 0.5); // still leaning toward "a"
    }

    #[test]
    fn no_data_rejected() {
        let empty: Vec<Vec<&str>> = vec![];
        assert!(matches!(
            estimate_dtmc(&empty, EstimatorOptions::default()),
            Err(ProfileError::NoData)
        ));
        let single: Vec<Vec<&str>> = vec![vec!["only"]];
        assert!(matches!(
            estimate_dtmc(&single, EstimatorOptions::default()),
            Err(ProfileError::NoData)
        ));
    }
}
