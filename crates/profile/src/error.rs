use std::fmt;

use archrel_markov::MarkovError;

/// Errors produced by usage-profile estimation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ProfileError {
    /// No traces (or only empty traces) were supplied.
    NoData,
    /// A trace contains a state that the estimator was not told about.
    UnknownState {
        /// Display form of the state.
        state: String,
    },
    /// An observation index is outside the model's alphabet.
    InvalidObservation {
        /// The offending symbol.
        symbol: usize,
        /// Alphabet size.
        alphabet: usize,
    },
    /// HMM dimensions are inconsistent (empty state set, ragged matrices, or
    /// rows that do not sum to one).
    InvalidHmm {
        /// Explanation of the defect.
        reason: String,
    },
    /// Baum–Welch failed to improve the likelihood within its budget.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
    },
    /// An underlying Markov operation failed.
    Markov(MarkovError),
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::NoData => write!(f, "no trace data supplied"),
            ProfileError::UnknownState { state } => write!(f, "unknown state {state}"),
            ProfileError::InvalidObservation { symbol, alphabet } => {
                write!(
                    f,
                    "observation {symbol} outside alphabet of size {alphabet}"
                )
            }
            ProfileError::InvalidHmm { reason } => write!(f, "invalid HMM: {reason}"),
            ProfileError::NoConvergence { iterations } => {
                write!(
                    f,
                    "Baum-Welch did not converge after {iterations} iterations"
                )
            }
            ProfileError::Markov(e) => write!(f, "markov error: {e}"),
        }
    }
}

impl std::error::Error for ProfileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProfileError::Markov(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MarkovError> for ProfileError {
    fn from(e: MarkovError) -> Self {
        ProfileError::Markov(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(ProfileError::NoData.to_string().contains("no trace data"));
        let e = ProfileError::InvalidObservation {
            symbol: 9,
            alphabet: 4,
        };
        assert!(e.to_string().contains('9'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ProfileError>();
    }
}
