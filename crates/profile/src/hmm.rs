//! A discrete hidden Markov model with scaled forward/backward, Viterbi
//! decoding, and Baum–Welch re-estimation.
//!
//! This is the imperfect-knowledge tool the paper's §5 cites from \[16\]:
//! when flow states cannot be observed directly (only noisy events — log
//! lines, message types — are visible), the usage profile is fitted as an
//! HMM and its transition structure then feeds the reliability model.

#![allow(clippy::needless_range_loop)] // index loops mirror the textbook HMM formulas

use rand::Rng;

use crate::{ProfileError, Result};

/// A discrete HMM with `n` hidden states and an observation alphabet of `m`
/// symbols.
#[derive(Debug, Clone, PartialEq)]
pub struct Hmm {
    /// Initial state distribution π (length n).
    initial: Vec<f64>,
    /// Transition matrix A (n × n, row-stochastic).
    transition: Vec<Vec<f64>>,
    /// Emission matrix B (n × m, row-stochastic).
    emission: Vec<Vec<f64>>,
}

/// Result of a Baum–Welch fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitReport {
    /// Iterations performed.
    pub iterations: usize,
    /// Final total log-likelihood of the training sequences.
    pub log_likelihood: f64,
}

fn is_distribution(row: &[f64]) -> bool {
    row.iter().all(|p| p.is_finite() && *p >= 0.0) && (row.iter().sum::<f64>() - 1.0).abs() < 1e-9
}

impl Hmm {
    /// Creates and validates an HMM.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::InvalidHmm`] for empty or ragged inputs or
    /// rows that are not probability distributions.
    pub fn new(
        initial: Vec<f64>,
        transition: Vec<Vec<f64>>,
        emission: Vec<Vec<f64>>,
    ) -> Result<Self> {
        let n = initial.len();
        if n == 0 {
            return Err(ProfileError::InvalidHmm {
                reason: "no states".to_string(),
            });
        }
        if transition.len() != n || emission.len() != n {
            return Err(ProfileError::InvalidHmm {
                reason: "matrix row counts disagree with the state count".to_string(),
            });
        }
        let m = emission[0].len();
        if m == 0 {
            return Err(ProfileError::InvalidHmm {
                reason: "empty observation alphabet".to_string(),
            });
        }
        if !is_distribution(&initial) {
            return Err(ProfileError::InvalidHmm {
                reason: "initial vector is not a distribution".to_string(),
            });
        }
        for (i, row) in transition.iter().enumerate() {
            if row.len() != n || !is_distribution(row) {
                return Err(ProfileError::InvalidHmm {
                    reason: format!("transition row {i} is not a distribution over {n} states"),
                });
            }
        }
        for (i, row) in emission.iter().enumerate() {
            if row.len() != m || !is_distribution(row) {
                return Err(ProfileError::InvalidHmm {
                    reason: format!("emission row {i} is not a distribution over {m} symbols"),
                });
            }
        }
        Ok(Hmm {
            initial,
            transition,
            emission,
        })
    }

    /// Number of hidden states.
    pub fn n_states(&self) -> usize {
        self.initial.len()
    }

    /// Size of the observation alphabet.
    pub fn n_symbols(&self) -> usize {
        self.emission[0].len()
    }

    /// The transition matrix (row-stochastic, n × n).
    pub fn transition_matrix(&self) -> &[Vec<f64>] {
        &self.transition
    }

    /// The emission matrix (row-stochastic, n × m).
    pub fn emission_matrix(&self) -> &[Vec<f64>] {
        &self.emission
    }

    fn check_observations(&self, obs: &[usize]) -> Result<()> {
        if obs.is_empty() {
            return Err(ProfileError::NoData);
        }
        let m = self.n_symbols();
        for &o in obs {
            if o >= m {
                return Err(ProfileError::InvalidObservation {
                    symbol: o,
                    alphabet: m,
                });
            }
        }
        Ok(())
    }

    /// Scaled forward pass. Returns per-step scaled α vectors and the
    /// scaling factors `c_t` with `Σ_t ln c_t = log-likelihood`.
    fn forward_scaled(&self, obs: &[usize]) -> Result<(Vec<Vec<f64>>, Vec<f64>)> {
        self.check_observations(obs)?;
        let n = self.n_states();
        let mut alphas = Vec::with_capacity(obs.len());
        let mut scales = Vec::with_capacity(obs.len());

        let mut alpha: Vec<f64> = (0..n)
            .map(|i| self.initial[i] * self.emission[i][obs[0]])
            .collect();
        let c0: f64 = alpha.iter().sum();
        let c0 = if c0 > 0.0 { c0 } else { f64::MIN_POSITIVE };
        for a in &mut alpha {
            *a /= c0;
        }
        scales.push(c0);
        alphas.push(alpha.clone());

        for &o in &obs[1..] {
            let mut next = vec![0.0; n];
            for (j, nj) in next.iter_mut().enumerate() {
                let mut s = 0.0;
                for i in 0..n {
                    s += alpha[i] * self.transition[i][j];
                }
                *nj = s * self.emission[j][o];
            }
            let c: f64 = next.iter().sum();
            let c = if c > 0.0 { c } else { f64::MIN_POSITIVE };
            for x in &mut next {
                *x /= c;
            }
            scales.push(c);
            alphas.push(next.clone());
            alpha = next;
        }
        Ok((alphas, scales))
    }

    /// Scaled backward pass using the forward scaling factors.
    fn backward_scaled(&self, obs: &[usize], scales: &[f64]) -> Vec<Vec<f64>> {
        let n = self.n_states();
        let t_max = obs.len();
        let mut betas = vec![vec![0.0; n]; t_max];
        for b in &mut betas[t_max - 1] {
            *b = 1.0 / scales[t_max - 1];
        }
        for t in (0..t_max - 1).rev() {
            for i in 0..n {
                let mut s = 0.0;
                for j in 0..n {
                    s += self.transition[i][j] * self.emission[j][obs[t + 1]] * betas[t + 1][j];
                }
                betas[t][i] = s / scales[t];
            }
        }
        betas
    }

    /// Log-likelihood of an observation sequence.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::NoData`] for empty input and
    /// [`ProfileError::InvalidObservation`] for out-of-alphabet symbols.
    pub fn log_likelihood(&self, obs: &[usize]) -> Result<f64> {
        let (_, scales) = self.forward_scaled(obs)?;
        Ok(scales.iter().map(|c| c.ln()).sum())
    }

    /// Most likely hidden state sequence (Viterbi decoding, in log space).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Hmm::log_likelihood`].
    pub fn viterbi(&self, obs: &[usize]) -> Result<Vec<usize>> {
        self.check_observations(obs)?;
        let n = self.n_states();
        let t_max = obs.len();
        let ln = |p: f64| {
            if p > 0.0 {
                p.ln()
            } else {
                f64::NEG_INFINITY
            }
        };

        let mut delta: Vec<f64> = (0..n)
            .map(|i| ln(self.initial[i]) + ln(self.emission[i][obs[0]]))
            .collect();
        let mut backpointers: Vec<Vec<usize>> = Vec::with_capacity(t_max);
        backpointers.push(vec![0; n]);

        for &o in &obs[1..] {
            let mut next = vec![f64::NEG_INFINITY; n];
            let mut bp = vec![0; n];
            for j in 0..n {
                for i in 0..n {
                    let cand = delta[i] + ln(self.transition[i][j]);
                    if cand > next[j] {
                        next[j] = cand;
                        bp[j] = i;
                    }
                }
                next[j] += ln(self.emission[j][o]);
            }
            backpointers.push(bp);
            delta = next;
        }

        let mut best = 0;
        for i in 1..n {
            if delta[i] > delta[best] {
                best = i;
            }
        }
        let mut path = vec![best; t_max];
        for t in (1..t_max).rev() {
            path[t - 1] = backpointers[t][path[t]];
        }
        Ok(path)
    }

    /// Baum–Welch re-estimation over multiple sequences.
    ///
    /// Runs until the total log-likelihood improves by less than `tolerance`
    /// or `max_iterations` is reached; returns the final likelihood. The
    /// likelihood is guaranteed non-decreasing per EM iteration, which the
    /// tests assert.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::NoData`] when no sequence is usable, plus
    /// observation-validation errors.
    pub fn baum_welch(
        &mut self,
        sequences: &[Vec<usize>],
        max_iterations: usize,
        tolerance: f64,
    ) -> Result<FitReport> {
        let usable: Vec<&Vec<usize>> = sequences.iter().filter(|s| !s.is_empty()).collect();
        if usable.is_empty() {
            return Err(ProfileError::NoData);
        }
        let n = self.n_states();
        let m = self.n_symbols();
        let mut last_ll = f64::NEG_INFINITY;
        let mut iterations = 0;

        for it in 1..=max_iterations {
            iterations = it;
            let mut new_initial = vec![0.0; n];
            let mut trans_num = vec![vec![0.0; n]; n];
            let mut trans_den = vec![0.0; n];
            let mut emit_num = vec![vec![0.0; m]; n];
            let mut emit_den = vec![0.0; n];
            let mut total_ll = 0.0;

            for obs in &usable {
                let (alphas, scales) = self.forward_scaled(obs)?;
                let betas = self.backward_scaled(obs, &scales);
                total_ll += scales.iter().map(|c| c.ln()).sum::<f64>();
                let t_max = obs.len();

                // γ_t(i) ∝ α_t(i) β_t(i); with this scaling the product needs
                // renormalization per t.
                for t in 0..t_max {
                    let mut gamma: Vec<f64> = (0..n).map(|i| alphas[t][i] * betas[t][i]).collect();
                    let norm: f64 = gamma.iter().sum();
                    if norm > 0.0 {
                        for g in &mut gamma {
                            *g /= norm;
                        }
                    }
                    if t == 0 {
                        for i in 0..n {
                            new_initial[i] += gamma[i];
                        }
                    }
                    for i in 0..n {
                        emit_num[i][obs[t]] += gamma[i];
                        emit_den[i] += gamma[i];
                        if t + 1 < t_max {
                            trans_den[i] += gamma[i];
                        }
                    }
                }
                // ξ_t(i, j) accumulation.
                for t in 0..t_max - 1 {
                    let mut xi = vec![vec![0.0; n]; n];
                    let mut norm = 0.0;
                    for (i, xi_i) in xi.iter_mut().enumerate() {
                        for (j, x) in xi_i.iter_mut().enumerate() {
                            *x = alphas[t][i]
                                * self.transition[i][j]
                                * self.emission[j][obs[t + 1]]
                                * betas[t + 1][j];
                            norm += *x;
                        }
                    }
                    if norm > 0.0 {
                        for (i, xi_i) in xi.iter().enumerate() {
                            for (j, x) in xi_i.iter().enumerate() {
                                trans_num[i][j] += x / norm;
                            }
                        }
                    }
                }
            }

            // M-step with guards for unvisited states.
            let seqs = usable.len() as f64;
            for i in 0..n {
                self.initial[i] = new_initial[i] / seqs;
                if trans_den[i] > 0.0 {
                    for j in 0..n {
                        self.transition[i][j] = trans_num[i][j] / trans_den[i];
                    }
                }
                if emit_den[i] > 0.0 {
                    for k in 0..m {
                        self.emission[i][k] = emit_num[i][k] / emit_den[i];
                    }
                }
            }
            // Renormalize against accumulated float drift.
            normalize_rows(std::slice::from_mut(&mut self.initial));
            normalize_rows(&mut self.transition);
            normalize_rows(&mut self.emission);

            if (total_ll - last_ll).abs() < tolerance {
                return Ok(FitReport {
                    iterations,
                    log_likelihood: total_ll,
                });
            }
            last_ll = total_ll;
        }
        Ok(FitReport {
            iterations,
            log_likelihood: last_ll,
        })
    }

    /// Samples a `(states, observations)` pair of the given length.
    pub fn sample<R: Rng + ?Sized>(&self, len: usize, rng: &mut R) -> (Vec<usize>, Vec<usize>) {
        let mut states = Vec::with_capacity(len);
        let mut observations = Vec::with_capacity(len);
        if len == 0 {
            return (states, observations);
        }
        let mut state = sample_index(&self.initial, rng);
        for _ in 0..len {
            states.push(state);
            observations.push(sample_index(&self.emission[state], rng));
            state = sample_index(&self.transition[state], rng);
        }
        (states, observations)
    }
}

fn sample_index<R: Rng + ?Sized>(dist: &[f64], rng: &mut R) -> usize {
    let mut draw = rng.gen::<f64>();
    for (i, p) in dist.iter().enumerate() {
        if draw < *p {
            return i;
        }
        draw -= p;
    }
    dist.len() - 1
}

fn normalize_rows(rows: &mut [Vec<f64>]) {
    for row in rows {
        let s: f64 = row.iter().sum();
        if s > 0.0 {
            for x in row.iter_mut() {
                *x /= s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A well-separated two-state model: state 0 mostly emits symbol 0,
    /// state 1 mostly emits symbol 1.
    fn two_state() -> Hmm {
        Hmm::new(
            vec![0.6, 0.4],
            vec![vec![0.7, 0.3], vec![0.4, 0.6]],
            vec![vec![0.9, 0.1], vec![0.2, 0.8]],
        )
        .unwrap()
    }

    #[test]
    fn validation() {
        assert!(Hmm::new(vec![], vec![], vec![]).is_err());
        assert!(Hmm::new(vec![0.5, 0.4], vec![vec![1.0, 0.0]; 2], vec![vec![1.0]; 2]).is_err());
        assert!(Hmm::new(vec![1.0], vec![vec![0.9]], vec![vec![1.0]]).is_err());
        assert!(two_state().n_states() == 2 && two_state().n_symbols() == 2);
    }

    #[test]
    fn forward_likelihood_matches_hand_computation() {
        let hmm = two_state();
        // P(obs = [0]) = 0.6*0.9 + 0.4*0.2 = 0.62.
        let ll = hmm.log_likelihood(&[0]).unwrap();
        assert!((ll - 0.62f64.ln()).abs() < 1e-12);
        // P(obs = [0, 1]):
        // alpha1(0) = 0.54, alpha1(1) = 0.08
        // alpha2(0) = (0.54*0.7 + 0.08*0.4) * 0.1 = 0.041
        // alpha2(1) = (0.54*0.3 + 0.08*0.6) * 0.8 = 0.168
        let ll = hmm.log_likelihood(&[0, 1]).unwrap();
        assert!((ll - (0.041f64 + 0.168).ln()).abs() < 1e-12);
    }

    #[test]
    fn invalid_observation_rejected() {
        let hmm = two_state();
        assert!(matches!(
            hmm.log_likelihood(&[0, 5]),
            Err(ProfileError::InvalidObservation { .. })
        ));
        assert!(matches!(hmm.log_likelihood(&[]), Err(ProfileError::NoData)));
    }

    #[test]
    fn viterbi_tracks_clear_emissions() {
        let hmm = Hmm::new(
            vec![0.5, 0.5],
            vec![vec![0.9, 0.1], vec![0.1, 0.9]],
            // Nearly deterministic emissions.
            vec![vec![0.99, 0.01], vec![0.01, 0.99]],
        )
        .unwrap();
        let path = hmm.viterbi(&[0, 0, 1, 1, 1, 0]).unwrap();
        assert_eq!(path, vec![0, 0, 1, 1, 1, 0]);
    }

    #[test]
    fn baum_welch_increases_likelihood() {
        let truth = two_state();
        let mut rng = StdRng::seed_from_u64(21);
        let sequences: Vec<Vec<usize>> = (0..40).map(|_| truth.sample(60, &mut rng).1).collect();

        // Start from a perturbed model.
        let mut fitted = Hmm::new(
            vec![0.5, 0.5],
            vec![vec![0.5, 0.5], vec![0.5, 0.5]],
            vec![vec![0.6, 0.4], vec![0.4, 0.6]],
        )
        .unwrap();
        let before: f64 = sequences
            .iter()
            .map(|s| fitted.log_likelihood(s).unwrap())
            .sum();
        let report = fitted.baum_welch(&sequences, 100, 1e-6).unwrap();
        let after: f64 = sequences
            .iter()
            .map(|s| fitted.log_likelihood(s).unwrap())
            .sum();
        assert!(after >= before, "{after} < {before}");
        assert!(report.iterations >= 1);
        // Rows stay stochastic.
        for row in fitted.transition_matrix() {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        for row in fitted.emission_matrix() {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn baum_welch_monotone_across_iterations() {
        let truth = two_state();
        let mut rng = StdRng::seed_from_u64(33);
        let sequences: Vec<Vec<usize>> = (0..20).map(|_| truth.sample(40, &mut rng).1).collect();
        let mut model = Hmm::new(
            vec![0.7, 0.3],
            vec![vec![0.6, 0.4], vec![0.3, 0.7]],
            vec![vec![0.55, 0.45], vec![0.45, 0.55]],
        )
        .unwrap();
        let mut last: f64 = sequences
            .iter()
            .map(|s| model.log_likelihood(s).unwrap())
            .sum();
        for _ in 0..10 {
            model.baum_welch(&sequences, 1, 0.0).unwrap();
            let ll: f64 = sequences
                .iter()
                .map(|s| model.log_likelihood(s).unwrap())
                .sum();
            assert!(ll >= last - 1e-9, "likelihood decreased: {ll} < {last}");
            last = ll;
        }
    }

    #[test]
    fn fitted_model_beats_uniform_on_heldout_data() {
        let truth = two_state();
        let mut rng = StdRng::seed_from_u64(55);
        let train: Vec<Vec<usize>> = (0..60).map(|_| truth.sample(50, &mut rng).1).collect();
        let heldout: Vec<Vec<usize>> = (0..10).map(|_| truth.sample(50, &mut rng).1).collect();

        let uniform = Hmm::new(
            vec![0.5, 0.5],
            vec![vec![0.5, 0.5]; 2],
            vec![vec![0.5, 0.5]; 2],
        )
        .unwrap();
        let mut fitted = Hmm::new(
            vec![0.5, 0.5],
            vec![vec![0.55, 0.45], vec![0.45, 0.55]],
            vec![vec![0.7, 0.3], vec![0.3, 0.7]],
        )
        .unwrap();
        fitted.baum_welch(&train, 200, 1e-8).unwrap();

        let score = |m: &Hmm| -> f64 { heldout.iter().map(|s| m.log_likelihood(s).unwrap()).sum() };
        assert!(score(&fitted) > score(&uniform));
    }

    #[test]
    fn sample_shapes() {
        let hmm = two_state();
        let mut rng = StdRng::seed_from_u64(2);
        let (states, obs) = hmm.sample(25, &mut rng);
        assert_eq!(states.len(), 25);
        assert_eq!(obs.len(), 25);
        assert!(states.iter().all(|&s| s < 2));
        assert!(obs.iter().all(|&o| o < 2));
        let (s0, o0) = hmm.sample(0, &mut rng);
        assert!(s0.is_empty() && o0.is_empty());
    }

    #[test]
    fn baum_welch_rejects_empty_input() {
        let mut hmm = two_state();
        let empty: Vec<Vec<usize>> = vec![vec![]];
        assert!(matches!(
            hmm.baum_welch(&empty, 10, 1e-6),
            Err(ProfileError::NoData)
        ));
    }
}
