//! Streaming ↔ batch differential suite: a [`StreamingEstimator`] fed a
//! random trace set in arbitrarily split increments must be
//! indistinguishable — **bitwise** — from [`estimate_dtmc`] on the whole
//! batch, and its threshold-0 delta sets must reconstruct the full current
//! estimate exactly.

use std::collections::HashMap;

use archrel_profile::estimate::{estimate_dtmc, EstimatorOptions};
use archrel_profile::streaming::StreamingEstimator;
use proptest::prelude::*;

/// Strategy: a random trace set over a small alphabet — `1..24` traces of
/// `0..8` states each, so empty and single-state traces (no transitions)
/// are generated alongside real sessions.
fn trace_set() -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(proptest::collection::vec(0u32..6, 0..8), 1..24)
}

/// Asserts two estimated chains are bitwise identical: same states in the
/// same intern order, same per-edge probability bits.
fn assert_chains_bitwise(streamed: &archrel_markov::Dtmc<u32>, batch: &archrel_markov::Dtmc<u32>) {
    prop_assert_eq!(streamed.states(), batch.states());
    for from in batch.states() {
        for to in batch.states() {
            let s = streamed.transition_probability(from, to).unwrap();
            let b = batch.transition_probability(from, to).unwrap();
            prop_assert_eq!(
                s.to_bits(),
                b.to_bits(),
                "{} -> {}: streamed {} vs batch {}",
                from,
                to,
                s,
                b
            );
        }
    }
}

proptest! {
    /// Flushing the stream reproduces the batch estimate bitwise, no
    /// matter where the trace set is split into ingestion increments —
    /// including drains between the increments (draining must not disturb
    /// the counts).
    #[test]
    fn flush_matches_batch_at_every_split(
        traces in trace_set(),
        split_frac in 0.0..1.0f64,
        smoothing_idx in 0usize..3,
    ) {
        let opts = EstimatorOptions { smoothing: [0.0, 0.5, 1.0][smoothing_idx] };
        let split = (split_frac * traces.len() as f64) as usize;
        let mut estimator = StreamingEstimator::with_options(opts);
        estimator.observe_all(traces[..split].iter());
        let _ = estimator.drain_deltas(0.0);
        estimator.observe_all(traces[split..].iter());
        match (estimator.estimate(), estimate_dtmc(&traces, opts)) {
            (Ok(streamed), Ok(batch)) => assert_chains_bitwise(&streamed, &batch),
            (Err(s), Err(b)) => prop_assert_eq!(s.to_string(), b.to_string()),
            (s, b) => prop_assert!(false, "paths disagree: {:?} vs {:?}", s.is_ok(), b.is_ok()),
        }
    }

    /// Threshold-0 delta sets are complete: folding every drained row into
    /// a probability map reconstructs the final estimate bitwise (no moved
    /// edge is ever suppressed), and a drain with nothing new is empty.
    #[test]
    fn threshold_zero_deltas_reconstruct_the_estimate(
        traces in trace_set(),
        splits in proptest::collection::vec(0.0..1.0f64, 1..4),
    ) {
        let mut estimator = StreamingEstimator::new();
        let mut reconstructed: HashMap<(u32, u32), f64> = HashMap::new();
        let mut fold = |estimator: &mut StreamingEstimator<u32>| {
            for row in estimator.drain_deltas(0.0).rows {
                for (to, p) in row.edges {
                    reconstructed.insert((row.from, to), p);
                }
            }
        };
        // Ingest in `splits.len() + 1` increments, draining after each.
        let mut start = 0usize;
        let mut bounds: Vec<usize> = splits
            .iter()
            .map(|f| (f * traces.len() as f64) as usize)
            .collect();
        bounds.sort_unstable();
        bounds.push(traces.len());
        for end in bounds {
            estimator.observe_all(traces[start..end].iter());
            fold(&mut estimator);
            start = end;
        }
        // Nothing moved since the last drain.
        prop_assert!(estimator.drain_deltas(0.0).is_empty());
        match estimator.estimate() {
            Ok(chain) => {
                let mut edges = 0usize;
                for from in chain.states() {
                    for to in chain.states() {
                        let p = chain.transition_probability(from, to).unwrap();
                        if let Some(&r) = reconstructed.get(&(*from, *to)) {
                            prop_assert_eq!(r.to_bits(), p.to_bits());
                            edges += 1;
                        } else {
                            // Unobserved pairs carry no delta; absorbing
                            // states report an implicit self-loop.
                            prop_assert!(
                                p == 0.0 || (*from == *to && p == 1.0),
                                "missing delta for {} -> {} = {}", from, to, p
                            );
                        }
                    }
                }
                prop_assert_eq!(edges, reconstructed.len());
            }
            Err(_) => prop_assert!(reconstructed.is_empty()),
        }
    }

    /// Ingesting trace-by-trace and all-at-once agree with each other (the
    /// increment boundaries above are coarse; this pins the finest split).
    #[test]
    fn per_trace_ingestion_matches_bulk(traces in trace_set()) {
        let mut one_by_one = StreamingEstimator::new();
        for t in &traces {
            one_by_one.observe(t);
        }
        let mut bulk = StreamingEstimator::new();
        bulk.observe_all(traces.iter());
        prop_assert_eq!(one_by_one.traces_ingested(), bulk.traces_ingested());
        prop_assert_eq!(one_by_one.transitions_observed(), bulk.transitions_observed());
        if let (Ok(a), Ok(b)) = (one_by_one.estimate(), bulk.estimate()) {
            assert_chains_bitwise(&a, &b);
        }
    }
}
