//! Differential property tests for compiled assembly programs.
//!
//! Random layered DAG assemblies — parametric CPU leaves, three to four
//! composite layers with diamond sharing (a node calls the previous layer
//! *and* a leaf directly) and shared sub-services (several parents calling
//! the same child) — are evaluated through the compiled program path and
//! the recursive evaluator. The two must agree **bitwise** under every
//! [`SolverPolicy`], with the per-service memo on or off, and at any
//! batch worker count.
//!
//! A second generator produces random *cyclic* assemblies — stacked
//! mutually-recursive mesh groups (single- and multi-service SCCs,
//! self-loops, extra back edges) over the same leaf tier — and pins the
//! compiled fixed-point driver bitwise to the recursive
//! [`CycleMode::FixedPoint`] sweeps under plain substitution, across the
//! same solver/memo/worker matrix.

use archrel_core::{
    BatchEvaluator, CoreError, CycleMode, EvalOptions, Evaluator, ProgramMode, Query, SolverPolicy,
};
use archrel_expr::{Bindings, Expr};
use archrel_model::{
    catalog, Assembly, AssemblyBuilder, CompletionModel, CompositeService, DependencyModel,
    FlowBuilder, FlowState, Service, ServiceCall, StateId,
};
use proptest::prelude::*;

/// One composite node in a mid layer of the random DAG.
#[derive(Debug, Clone)]
struct NodeSpec {
    /// Calls into the previous layer: (index modulo layer width, demand
    /// coefficient). Several nodes picking the same index is how shared
    /// sub-services arise.
    calls: Vec<(usize, f64)>,
    /// 0 = And, 1 = Or, 2.. = KOutOfN.
    completion: usize,
    /// Optional direct call to a layer-0 leaf, closing a diamond: the leaf
    /// is then reachable both through the previous layer and directly.
    extra_leaf: Option<(usize, f64)>,
}

#[derive(Debug, Clone)]
struct DagSpec {
    /// Failure rates of the CPU leaf resources (capacity fixed at 1e9).
    leaf_rates: Vec<f64>,
    /// Mid layers, bottom-up. Three or more layers plus the implicit `top`
    /// keeps the composite call depth at four or deeper.
    layers: Vec<Vec<NodeSpec>>,
}

fn spec_strategy() -> impl Strategy<Value = DagSpec> {
    let node = (
        proptest::collection::vec((0usize..8, 0.5..4.0f64), 1..3),
        0usize..4,
        (proptest::bool::ANY, 0usize..8, 0.5..4.0f64),
    )
        .prop_map(|(calls, completion, (diamond, leaf, coeff))| NodeSpec {
            calls,
            completion,
            extra_leaf: diamond.then_some((leaf, coeff)),
        });
    let layer = proptest::collection::vec(node, 1..4);
    (
        proptest::collection::vec(1e-6..1e-3f64, 2..5),
        proptest::collection::vec(layer, 3..5),
    )
        .prop_map(|(leaf_rates, layers)| DagSpec { leaf_rates, layers })
}

/// Single-state flow: Start -> s0 -> End with the given calls.
fn one_state_flow(calls: Vec<ServiceCall>, completion: CompletionModel) -> archrel_model::Flow {
    FlowBuilder::new()
        .state(
            FlowState::new("s0", calls)
                .with_completion(completion)
                .with_dependency(DependencyModel::Independent),
        )
        .transition(StateId::Start, "s0", Expr::one())
        .transition(StateId::named("s0"), StateId::End, Expr::one())
        .build()
        .expect("flow is valid")
}

fn build(spec: &DagSpec) -> Assembly {
    let mut builder = AssemblyBuilder::new();
    for (i, rate) in spec.leaf_rates.iter().enumerate() {
        builder = builder.service(catalog::cpu_resource(format!("leaf{i}"), 1e9, *rate));
    }
    let mut prev: Vec<String> = (0..spec.leaf_rates.len())
        .map(|i| format!("leaf{i}"))
        .collect();
    for (li, layer) in spec.layers.iter().enumerate() {
        let mut names = Vec::with_capacity(layer.len());
        for (ni, node) in layer.iter().enumerate() {
            let name = format!("m{li}_{ni}");
            let mut calls: Vec<ServiceCall> = node
                .calls
                .iter()
                .map(|(idx, coeff)| {
                    ServiceCall::new(prev[idx % prev.len()].clone()).with_param(
                        catalog::CPU_PARAM,
                        Expr::param(catalog::CPU_PARAM) * Expr::num(*coeff) + Expr::num(1.0),
                    )
                })
                .collect();
            if let Some((leaf, coeff)) = node.extra_leaf {
                calls.push(
                    ServiceCall::new(format!("leaf{}", leaf % spec.leaf_rates.len())).with_param(
                        catalog::CPU_PARAM,
                        Expr::param(catalog::CPU_PARAM) * Expr::num(coeff),
                    ),
                );
            }
            let completion = match node.completion {
                0 => CompletionModel::And,
                1 => CompletionModel::Or,
                k => CompletionModel::KOutOfN {
                    k: ((k - 1) % calls.len()) + 1,
                },
            };
            builder = builder.service(Service::Composite(
                CompositeService::new(
                    name.clone(),
                    vec![catalog::CPU_PARAM.to_string()],
                    one_state_flow(calls, completion),
                )
                .expect("service is valid"),
            ));
            names.push(name);
        }
        prev = names;
    }
    // `top` calls every node of the last layer, so the whole DAG is live.
    let calls: Vec<ServiceCall> = prev
        .iter()
        .enumerate()
        .map(|(i, name)| {
            ServiceCall::new(name.clone()).with_param(
                catalog::CPU_PARAM,
                Expr::param(catalog::CPU_PARAM) + Expr::num(i as f64),
            )
        })
        .collect();
    builder
        .service(Service::Composite(
            CompositeService::new(
                "top",
                vec![catalog::CPU_PARAM.to_string()],
                one_state_flow(calls, CompletionModel::And),
            )
            .expect("service is valid"),
        ))
        .build()
        .expect("assembly is valid")
}

fn opts(program: ProgramMode, solver: SolverPolicy, memo: bool) -> EvalOptions {
    EvalOptions {
        program,
        solver,
        program_memo: memo,
        ..EvalOptions::default()
    }
}

/// Like [`opts`], but evaluating cycles by fixed point (the only mode a
/// cyclic assembly evaluates under).
fn fp_opts(program: ProgramMode, solver: SolverPolicy, memo: bool) -> EvalOptions {
    EvalOptions {
        cycle_mode: CycleMode::FixedPoint {
            max_iterations: 1000,
            tolerance: 1e-10,
        },
        ..opts(program, solver, memo)
    }
}

/// Evaluates `top` at each demand point, returning the raw f64 bits.
fn eval_bits(assembly: &Assembly, options: EvalOptions, points: &[f64]) -> Vec<u64> {
    let evaluator = Evaluator::with_options(assembly, options);
    points
        .iter()
        .map(|&n| {
            evaluator
                .failure_probability(&"top".into(), &Bindings::new().with(catalog::CPU_PARAM, n))
                .expect("evaluation succeeds")
                .value()
                .to_bits()
        })
        .collect()
}

const POINTS: [f64; 5] = [1.0, 1e3, 4.5e4, 1e6, 1e6];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The compiled program path is bitwise identical to the recursive
    /// evaluator under every solver policy.
    #[test]
    fn program_matches_recursive_under_every_solver(spec in spec_strategy()) {
        let assembly = build(&spec);
        for solver in [
            SolverPolicy::Auto,
            SolverPolicy::Dense,
            SolverPolicy::Sparse,
            SolverPolicy::Compiled,
        ] {
            let recursive = eval_bits(&assembly, opts(ProgramMode::Off, solver, true), &POINTS);
            let program = eval_bits(&assembly, opts(ProgramMode::On, solver, true), &POINTS);
            prop_assert_eq!(
                &recursive,
                &program,
                "program path diverged from recursive under {:?}",
                solver
            );
        }
    }

    /// Disabling the per-service memo only re-evaluates — it never changes
    /// a bit (the memo key is the exact parameter bit pattern).
    #[test]
    fn memo_on_and_off_are_bitwise_equal(spec in spec_strategy()) {
        let assembly = build(&spec);
        // Repeated points exercise both the top-level cache and the
        // per-service memo tables.
        let points = [1e3, 1e3, 2e4, 2e4, 1e6];
        let with_memo =
            eval_bits(&assembly, opts(ProgramMode::On, SolverPolicy::Auto, true), &points);
        let without_memo =
            eval_bits(&assembly, opts(ProgramMode::On, SolverPolicy::Auto, false), &points);
        prop_assert_eq!(with_memo, without_memo);
    }

    /// Batch evaluation through the program path is bitwise identical to
    /// the scalar recursive path at every worker count.
    #[test]
    fn batch_workers_match_scalar_recursive(spec in spec_strategy()) {
        let assembly = build(&spec);
        let points: Vec<f64> = (0..16).map(|i| 1e3 * (i as f64 + 1.0)).collect();
        let expected = eval_bits(
            &assembly,
            opts(ProgramMode::Off, SolverPolicy::Auto, true),
            &points,
        );
        let queries: Vec<Query> = points
            .iter()
            .map(|&n| Query::new("top", Bindings::new().with(catalog::CPU_PARAM, n)))
            .collect();
        for workers in [1, 2, 4] {
            let batch = BatchEvaluator::with_options(
                &assembly,
                opts(ProgramMode::On, SolverPolicy::Auto, true),
            )
            .with_workers(workers);
            let got: Vec<u64> = batch
                .evaluate_all(&queries)
                .into_iter()
                .map(|r| r.expect("evaluation succeeds").value().to_bits())
                .collect();
            prop_assert_eq!(
                &expected,
                &got,
                "batch program path diverged at {} workers",
                workers
            );
        }
    }
}

/// One mutually-recursive mesh group of the cyclic generator. Member `m`
/// enters its recursion state with probability `q` (calling member
/// `(m+1) % size`, plus optional self-loop and back edges) and otherwise
/// calls down into the previous tier — so the group is a strongly
/// connected component with a contraction factor of roughly `q`.
#[derive(Debug, Clone)]
struct GroupSpec {
    size: usize,
    /// Member 0 additionally calls itself (a self-loop inside the SCC).
    selfloop: bool,
    /// The last member additionally calls member 0 (an extra back edge —
    /// a diamond feeding back into its ancestor).
    back: bool,
    /// Probability of entering the recursion state.
    q: f64,
    /// Demand transform coefficient for the downward (exit) call.
    down_coeff: f64,
}

#[derive(Debug, Clone)]
struct CycleSpec {
    leaf_rates: Vec<f64>,
    /// Mesh groups, bottom-up: each group's exit calls land in the
    /// previous group (or the leaves), so the condensation is a chain of
    /// nontrivial SCCs.
    groups: Vec<GroupSpec>,
}

fn cycle_strategy() -> impl Strategy<Value = CycleSpec> {
    let group = (
        1usize..=3,
        proptest::bool::ANY,
        proptest::bool::ANY,
        0.05..0.45f64,
        0.5..4.0f64,
    )
        .prop_map(|(size, selfloop, back, q, down_coeff)| GroupSpec {
            size,
            selfloop,
            back,
            q,
            down_coeff,
        });
    (
        proptest::collection::vec(1e-6..1e-3f64, 1..3),
        proptest::collection::vec(group, 1..3),
    )
        .prop_map(|(leaf_rates, groups)| CycleSpec { leaf_rates, groups })
}

fn build_cyclic(spec: &CycleSpec) -> Assembly {
    let mut builder = AssemblyBuilder::new();
    for (i, rate) in spec.leaf_rates.iter().enumerate() {
        builder = builder.service(catalog::cpu_resource(format!("leaf{i}"), 1e9, *rate));
    }
    let mut prev: Vec<String> = (0..spec.leaf_rates.len())
        .map(|i| format!("leaf{i}"))
        .collect();
    for (gi, group) in spec.groups.iter().enumerate() {
        let names: Vec<String> = (0..group.size).map(|m| format!("g{gi}_{m}")).collect();
        for m in 0..group.size {
            // In-SCC calls forward the formal unchanged: the recursion
            // keys then repeat per sweep, exactly like the recursive
            // evaluator's `(service, bindings)` keys.
            let forward = |target: &String| {
                ServiceCall::new(target.clone())
                    .with_param(catalog::CPU_PARAM, Expr::param(catalog::CPU_PARAM))
            };
            let mut loop_calls = vec![forward(&names[(m + 1) % group.size])];
            if m == 0 && group.selfloop {
                loop_calls.push(forward(&names[0]));
            }
            if m + 1 == group.size && group.back && group.size > 1 {
                loop_calls.push(forward(&names[0]));
            }
            let down_call = ServiceCall::new(prev[m % prev.len()].clone()).with_param(
                catalog::CPU_PARAM,
                Expr::param(catalog::CPU_PARAM) * Expr::num(group.down_coeff) + Expr::num(1.0),
            );
            let flow = FlowBuilder::new()
                .state(
                    FlowState::new("loop", loop_calls)
                        .with_completion(CompletionModel::And)
                        .with_dependency(DependencyModel::Independent),
                )
                .state(
                    FlowState::new("down", vec![down_call])
                        .with_completion(CompletionModel::And)
                        .with_dependency(DependencyModel::Independent),
                )
                .transition(StateId::Start, "loop", Expr::num(group.q))
                .transition(StateId::Start, "down", Expr::num(1.0 - group.q))
                .transition(StateId::named("loop"), StateId::End, Expr::one())
                .transition(StateId::named("down"), StateId::End, Expr::one())
                .build()
                .expect("flow is valid");
            builder = builder.service(Service::Composite(
                CompositeService::new(names[m].clone(), vec![catalog::CPU_PARAM.to_string()], flow)
                    .expect("service is valid"),
            ));
        }
        prev = names;
    }
    let calls: Vec<ServiceCall> = prev
        .iter()
        .enumerate()
        .map(|(i, name)| {
            ServiceCall::new(name.clone()).with_param(
                catalog::CPU_PARAM,
                Expr::param(catalog::CPU_PARAM) + Expr::num(i as f64),
            )
        })
        .collect();
    builder
        .service(Service::Composite(
            CompositeService::new(
                "top",
                vec![catalog::CPU_PARAM.to_string()],
                one_state_flow(calls, CompletionModel::And),
            )
            .expect("service is valid"),
        ))
        .build()
        .expect("assembly is valid")
}

const CYCLE_POINTS: [f64; 4] = [1.0, 1e3, 4.5e4, 1e6];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The compiled fixed-point driver is bitwise identical to the
    /// recursive `CycleMode::FixedPoint` sweeps under every solver policy.
    #[test]
    fn cyclic_program_matches_recursive_under_every_solver(spec in cycle_strategy()) {
        let assembly = build_cyclic(&spec);
        for solver in [
            SolverPolicy::Auto,
            SolverPolicy::Dense,
            SolverPolicy::Sparse,
            SolverPolicy::Compiled,
        ] {
            let recursive =
                eval_bits(&assembly, fp_opts(ProgramMode::Off, solver, true), &CYCLE_POINTS);
            let program =
                eval_bits(&assembly, fp_opts(ProgramMode::On, solver, true), &CYCLE_POINTS);
            prop_assert_eq!(
                &recursive,
                &program,
                "cyclic program path diverged from recursive under {:?}",
                solver
            );
        }
    }

    /// The per-service memo only caches out-of-loop-cone values, so
    /// toggling it never changes a bit of a cyclic fixed point.
    #[test]
    fn cyclic_memo_on_and_off_are_bitwise_equal(spec in cycle_strategy()) {
        let assembly = build_cyclic(&spec);
        let points = [1e3, 1e3, 2e4, 2e4];
        let with_memo =
            eval_bits(&assembly, fp_opts(ProgramMode::On, SolverPolicy::Auto, true), &points);
        let without_memo =
            eval_bits(&assembly, fp_opts(ProgramMode::On, SolverPolicy::Auto, false), &points);
        prop_assert_eq!(with_memo, without_memo);
    }

    /// Batch evaluation of cyclic targets is bitwise identical to the
    /// scalar recursive path at every worker count.
    #[test]
    fn cyclic_batch_workers_match_scalar_recursive(spec in cycle_strategy()) {
        let assembly = build_cyclic(&spec);
        let points: Vec<f64> = (0..8).map(|i| 1e3 * (i as f64 + 1.0)).collect();
        let expected = eval_bits(
            &assembly,
            fp_opts(ProgramMode::Off, SolverPolicy::Auto, true),
            &points,
        );
        let queries: Vec<Query> = points
            .iter()
            .map(|&n| Query::new("top", Bindings::new().with(catalog::CPU_PARAM, n)))
            .collect();
        for workers in [1, 2, 4] {
            let batch = BatchEvaluator::with_options(
                &assembly,
                fp_opts(ProgramMode::On, SolverPolicy::Auto, true),
            )
            .with_workers(workers);
            let got: Vec<u64> = batch
                .evaluate_all(&queries)
                .into_iter()
                .map(|r| r.expect("evaluation succeeds").value().to_bits())
                .collect();
            prop_assert_eq!(
                &expected,
                &got,
                "cyclic batch program path diverged at {} workers",
                workers
            );
        }
    }
}

/// A cyclic assembly compiles, errors under the default `CycleMode::Error`
/// with the offending path (exactly like the recursive evaluator reports
/// it), and evaluates under `CycleMode::FixedPoint` bitwise equal to the
/// recursive sweeps.
#[test]
fn cyclic_assembly_errors_by_default_and_evaluates_by_fixed_point() {
    let calls_to = |target: &str| {
        one_state_flow(
            vec![ServiceCall::new(target.to_string())],
            CompletionModel::And,
        )
    };
    let assembly = AssemblyBuilder::new()
        .service(Service::Composite(
            CompositeService::new("a", vec![], calls_to("b")).expect("service is valid"),
        ))
        .service(Service::Composite(
            CompositeService::new("b", vec![], calls_to("a")).expect("service is valid"),
        ))
        .build()
        .expect("assembly is valid");
    let evaluator =
        Evaluator::with_options(&assembly, opts(ProgramMode::On, SolverPolicy::Auto, true));
    let err = evaluator
        .failure_probability(&"a".into(), &Bindings::new())
        .unwrap_err();
    match err {
        CoreError::RecursiveAssembly { cycle } => {
            assert_eq!(
                cycle,
                vec!["a".to_string(), "b".to_string(), "a".to_string()]
            );
        }
        other => panic!("expected RecursiveAssembly, got {other:?}"),
    }
    // Under fixed-point mode the same assembly evaluates; program and
    // recursive paths agree bitwise.
    let recursive = Evaluator::with_options(
        &assembly,
        fp_opts(ProgramMode::Off, SolverPolicy::Auto, true),
    )
    .failure_probability(&"a".into(), &Bindings::new())
    .expect("fixed point converges");
    let program = Evaluator::with_options(
        &assembly,
        fp_opts(ProgramMode::On, SolverPolicy::Auto, true),
    )
    .failure_probability(&"a".into(), &Bindings::new())
    .expect("fixed point converges");
    assert_eq!(recursive.value().to_bits(), program.value().to_bits());
}
