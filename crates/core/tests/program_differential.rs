//! Differential property tests for compiled assembly programs.
//!
//! Random layered DAG assemblies — parametric CPU leaves, three to four
//! composite layers with diamond sharing (a node calls the previous layer
//! *and* a leaf directly) and shared sub-services (several parents calling
//! the same child) — are evaluated through the compiled program path and
//! the recursive evaluator. The two must agree **bitwise** under every
//! [`SolverPolicy`], with the per-service memo on or off, and at any
//! batch worker count. Cyclic assemblies must be rejected at compile time
//! with the offending call path.

use archrel_core::{
    BatchEvaluator, CoreError, EvalOptions, Evaluator, ProgramMode, Query, SolverPolicy,
};
use archrel_expr::{Bindings, Expr};
use archrel_model::{
    catalog, Assembly, AssemblyBuilder, CompletionModel, CompositeService, DependencyModel,
    FlowBuilder, FlowState, Service, ServiceCall, StateId,
};
use proptest::prelude::*;

/// One composite node in a mid layer of the random DAG.
#[derive(Debug, Clone)]
struct NodeSpec {
    /// Calls into the previous layer: (index modulo layer width, demand
    /// coefficient). Several nodes picking the same index is how shared
    /// sub-services arise.
    calls: Vec<(usize, f64)>,
    /// 0 = And, 1 = Or, 2.. = KOutOfN.
    completion: usize,
    /// Optional direct call to a layer-0 leaf, closing a diamond: the leaf
    /// is then reachable both through the previous layer and directly.
    extra_leaf: Option<(usize, f64)>,
}

#[derive(Debug, Clone)]
struct DagSpec {
    /// Failure rates of the CPU leaf resources (capacity fixed at 1e9).
    leaf_rates: Vec<f64>,
    /// Mid layers, bottom-up. Three or more layers plus the implicit `top`
    /// keeps the composite call depth at four or deeper.
    layers: Vec<Vec<NodeSpec>>,
}

fn spec_strategy() -> impl Strategy<Value = DagSpec> {
    let node = (
        proptest::collection::vec((0usize..8, 0.5..4.0f64), 1..3),
        0usize..4,
        (proptest::bool::ANY, 0usize..8, 0.5..4.0f64),
    )
        .prop_map(|(calls, completion, (diamond, leaf, coeff))| NodeSpec {
            calls,
            completion,
            extra_leaf: diamond.then_some((leaf, coeff)),
        });
    let layer = proptest::collection::vec(node, 1..4);
    (
        proptest::collection::vec(1e-6..1e-3f64, 2..5),
        proptest::collection::vec(layer, 3..5),
    )
        .prop_map(|(leaf_rates, layers)| DagSpec { leaf_rates, layers })
}

/// Single-state flow: Start -> s0 -> End with the given calls.
fn one_state_flow(calls: Vec<ServiceCall>, completion: CompletionModel) -> archrel_model::Flow {
    FlowBuilder::new()
        .state(
            FlowState::new("s0", calls)
                .with_completion(completion)
                .with_dependency(DependencyModel::Independent),
        )
        .transition(StateId::Start, "s0", Expr::one())
        .transition(StateId::named("s0"), StateId::End, Expr::one())
        .build()
        .expect("flow is valid")
}

fn build(spec: &DagSpec) -> Assembly {
    let mut builder = AssemblyBuilder::new();
    for (i, rate) in spec.leaf_rates.iter().enumerate() {
        builder = builder.service(catalog::cpu_resource(format!("leaf{i}"), 1e9, *rate));
    }
    let mut prev: Vec<String> = (0..spec.leaf_rates.len())
        .map(|i| format!("leaf{i}"))
        .collect();
    for (li, layer) in spec.layers.iter().enumerate() {
        let mut names = Vec::with_capacity(layer.len());
        for (ni, node) in layer.iter().enumerate() {
            let name = format!("m{li}_{ni}");
            let mut calls: Vec<ServiceCall> = node
                .calls
                .iter()
                .map(|(idx, coeff)| {
                    ServiceCall::new(prev[idx % prev.len()].clone()).with_param(
                        catalog::CPU_PARAM,
                        Expr::param(catalog::CPU_PARAM) * Expr::num(*coeff) + Expr::num(1.0),
                    )
                })
                .collect();
            if let Some((leaf, coeff)) = node.extra_leaf {
                calls.push(
                    ServiceCall::new(format!("leaf{}", leaf % spec.leaf_rates.len())).with_param(
                        catalog::CPU_PARAM,
                        Expr::param(catalog::CPU_PARAM) * Expr::num(coeff),
                    ),
                );
            }
            let completion = match node.completion {
                0 => CompletionModel::And,
                1 => CompletionModel::Or,
                k => CompletionModel::KOutOfN {
                    k: ((k - 1) % calls.len()) + 1,
                },
            };
            builder = builder.service(Service::Composite(
                CompositeService::new(
                    name.clone(),
                    vec![catalog::CPU_PARAM.to_string()],
                    one_state_flow(calls, completion),
                )
                .expect("service is valid"),
            ));
            names.push(name);
        }
        prev = names;
    }
    // `top` calls every node of the last layer, so the whole DAG is live.
    let calls: Vec<ServiceCall> = prev
        .iter()
        .enumerate()
        .map(|(i, name)| {
            ServiceCall::new(name.clone()).with_param(
                catalog::CPU_PARAM,
                Expr::param(catalog::CPU_PARAM) + Expr::num(i as f64),
            )
        })
        .collect();
    builder
        .service(Service::Composite(
            CompositeService::new(
                "top",
                vec![catalog::CPU_PARAM.to_string()],
                one_state_flow(calls, CompletionModel::And),
            )
            .expect("service is valid"),
        ))
        .build()
        .expect("assembly is valid")
}

fn opts(program: ProgramMode, solver: SolverPolicy, memo: bool) -> EvalOptions {
    EvalOptions {
        program,
        solver,
        program_memo: memo,
        ..EvalOptions::default()
    }
}

/// Evaluates `top` at each demand point, returning the raw f64 bits.
fn eval_bits(assembly: &Assembly, options: EvalOptions, points: &[f64]) -> Vec<u64> {
    let evaluator = Evaluator::with_options(assembly, options);
    points
        .iter()
        .map(|&n| {
            evaluator
                .failure_probability(&"top".into(), &Bindings::new().with(catalog::CPU_PARAM, n))
                .expect("evaluation succeeds")
                .value()
                .to_bits()
        })
        .collect()
}

const POINTS: [f64; 5] = [1.0, 1e3, 4.5e4, 1e6, 1e6];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The compiled program path is bitwise identical to the recursive
    /// evaluator under every solver policy.
    #[test]
    fn program_matches_recursive_under_every_solver(spec in spec_strategy()) {
        let assembly = build(&spec);
        for solver in [
            SolverPolicy::Auto,
            SolverPolicy::Dense,
            SolverPolicy::Sparse,
            SolverPolicy::Compiled,
        ] {
            let recursive = eval_bits(&assembly, opts(ProgramMode::Off, solver, true), &POINTS);
            let program = eval_bits(&assembly, opts(ProgramMode::On, solver, true), &POINTS);
            prop_assert_eq!(
                &recursive,
                &program,
                "program path diverged from recursive under {:?}",
                solver
            );
        }
    }

    /// Disabling the per-service memo only re-evaluates — it never changes
    /// a bit (the memo key is the exact parameter bit pattern).
    #[test]
    fn memo_on_and_off_are_bitwise_equal(spec in spec_strategy()) {
        let assembly = build(&spec);
        // Repeated points exercise both the top-level cache and the
        // per-service memo tables.
        let points = [1e3, 1e3, 2e4, 2e4, 1e6];
        let with_memo =
            eval_bits(&assembly, opts(ProgramMode::On, SolverPolicy::Auto, true), &points);
        let without_memo =
            eval_bits(&assembly, opts(ProgramMode::On, SolverPolicy::Auto, false), &points);
        prop_assert_eq!(with_memo, without_memo);
    }

    /// Batch evaluation through the program path is bitwise identical to
    /// the scalar recursive path at every worker count.
    #[test]
    fn batch_workers_match_scalar_recursive(spec in spec_strategy()) {
        let assembly = build(&spec);
        let points: Vec<f64> = (0..16).map(|i| 1e3 * (i as f64 + 1.0)).collect();
        let expected = eval_bits(
            &assembly,
            opts(ProgramMode::Off, SolverPolicy::Auto, true),
            &points,
        );
        let queries: Vec<Query> = points
            .iter()
            .map(|&n| Query::new("top", Bindings::new().with(catalog::CPU_PARAM, n)))
            .collect();
        for workers in [1, 2, 4] {
            let batch = BatchEvaluator::with_options(
                &assembly,
                opts(ProgramMode::On, SolverPolicy::Auto, true),
            )
            .with_workers(workers);
            let got: Vec<u64> = batch
                .evaluate_all(&queries)
                .into_iter()
                .map(|r| r.expect("evaluation succeeds").value().to_bits())
                .collect();
            prop_assert_eq!(
                &expected,
                &got,
                "batch program path diverged at {} workers",
                workers
            );
        }
    }
}

/// A service-call cycle is rejected at program compile time with the
/// offending path, exactly like the recursive evaluator reports it.
#[test]
fn cyclic_assembly_is_rejected_with_the_offending_path() {
    let calls_to = |target: &str| {
        one_state_flow(
            vec![ServiceCall::new(target.to_string())],
            CompletionModel::And,
        )
    };
    let assembly = AssemblyBuilder::new()
        .service(Service::Composite(
            CompositeService::new("a", vec![], calls_to("b")).expect("service is valid"),
        ))
        .service(Service::Composite(
            CompositeService::new("b", vec![], calls_to("a")).expect("service is valid"),
        ))
        .build()
        .expect("assembly is valid");
    let evaluator =
        Evaluator::with_options(&assembly, opts(ProgramMode::On, SolverPolicy::Auto, true));
    let err = evaluator
        .failure_probability(&"a".into(), &Bindings::new())
        .unwrap_err();
    match err {
        CoreError::RecursiveAssembly { cycle } => {
            assert_eq!(
                cycle,
                vec!["a".to_string(), "b".to_string(), "a".to_string()]
            );
        }
        other => panic!("expected RecursiveAssembly, got {other:?}"),
    }
}
