//! Differential tests for the fixed-point acceleration schemes.
//!
//! Plain successive substitution is the bitwise reference for cyclic
//! assemblies; Aitken Δ² ([`FixedPointMode::Aitken`]) must agree with it
//! to 1e-10 on converging meshes, fall back to the raw iterate on
//! degenerate denominators without changing results, and surface
//! [`CoreError::FixedPointDiverged`] (with the iteration budget) instead
//! of returning garbage when the budget is too small — on both the
//! recursive and the compiled-program engines.

use archrel_core::{
    CoreError, CycleMode, EvalOptions, Evaluator, FixedPointMode, ProgramMode, SolverPolicy,
};
use archrel_expr::{Bindings, Expr};
use archrel_model::{
    catalog, Assembly, AssemblyBuilder, CompositeService, FlowBuilder, FlowState, Service,
    ServiceCall, StateId,
};

/// A two-member mutually recursive mesh over one blackbox leaf: each
/// member re-enters the cycle with probability `q` and otherwise calls the
/// leaf, so the fixed point contracts at rate ~`q` per sweep.
fn two_member_mesh(q: f64, leaf_fail: f64) -> Assembly {
    let member = |name: &str, partner: &str| {
        let flow = FlowBuilder::new()
            .state(FlowState::new(
                "loop",
                vec![ServiceCall::new(partner.to_string())],
            ))
            .state(FlowState::new(
                "down",
                vec![ServiceCall::new("leaf").with_param("x", Expr::num(1.0))],
            ))
            .transition(StateId::Start, "loop", Expr::num(q))
            .transition(StateId::Start, "down", Expr::num(1.0 - q))
            .transition(StateId::named("loop"), StateId::End, Expr::one())
            .transition(StateId::named("down"), StateId::End, Expr::one())
            .build()
            .expect("flow is valid");
        Service::Composite(CompositeService::new(name, vec![], flow).expect("service is valid"))
    };
    AssemblyBuilder::new()
        .service(catalog::blackbox_service("leaf", "x", leaf_fail))
        .service(member("a", "b"))
        .service(member("b", "a"))
        .build()
        .expect("assembly is valid")
}

/// A self-recursive service whose recursion state is *probabilistically*
/// unreachable (`Start → again` carries probability zero) but structurally
/// present: every sweep still breaks the self-call and records the cycle
/// key, yet the raw iterate is constant — the exact shape that makes
/// Aitken's Δ² denominator vanish. `top` pairs it with the slowly
/// converging mesh so the iteration keeps running long enough for the
/// three-point history to fill.
fn degenerate_plus_mesh(q: f64) -> Assembly {
    let flow = FlowBuilder::new()
        .state(FlowState::new("again", vec![ServiceCall::new("ghost")]))
        .state(FlowState::new(
            "base",
            vec![ServiceCall::new("leaf").with_param("x", Expr::num(2.0))],
        ))
        .transition(StateId::Start, "again", Expr::num(0.0))
        .transition(StateId::Start, "base", Expr::one())
        .transition(StateId::named("again"), StateId::End, Expr::one())
        .transition(StateId::named("base"), StateId::End, Expr::one())
        .build()
        .expect("flow is valid");
    let mesh = two_member_mesh(q, 1e-3);
    let mut builder = AssemblyBuilder::new();
    for service in mesh.services() {
        builder = builder.service(service.clone());
    }
    let top_flow = FlowBuilder::new()
        .state(FlowState::new(
            "s0",
            vec![ServiceCall::new("ghost"), ServiceCall::new("a")],
        ))
        .transition(StateId::Start, "s0", Expr::one())
        .transition(StateId::named("s0"), StateId::End, Expr::one())
        .build()
        .expect("flow is valid");
    builder
        .service(Service::Composite(
            CompositeService::new("ghost", vec![], flow).expect("service is valid"),
        ))
        .service(Service::Composite(
            CompositeService::new("top", vec![], top_flow).expect("service is valid"),
        ))
        .build()
        .expect("assembly is valid")
}

fn options(
    program: ProgramMode,
    mode: FixedPointMode,
    max_iterations: usize,
    tolerance: f64,
) -> EvalOptions {
    EvalOptions {
        cycle_mode: CycleMode::FixedPoint {
            max_iterations,
            tolerance,
        },
        program,
        solver: SolverPolicy::Auto,
        fixed_point: mode,
        ..EvalOptions::default()
    }
}

fn run(assembly: &Assembly, target: &str, options: EvalOptions) -> (f64, archrel_core::CacheStats) {
    let evaluator = Evaluator::with_options(assembly, options);
    let p = evaluator
        .failure_probability(&target.into(), &Bindings::new())
        .expect("fixed point converges")
        .value();
    (p, evaluator.cache_stats())
}

#[test]
fn aitken_agrees_with_plain_to_1e_10_on_converging_meshes() {
    for q in [0.3, 0.6, 0.8] {
        let assembly = two_member_mesh(q, 1e-3);
        for program in [ProgramMode::Off, ProgramMode::On] {
            let (plain, plain_stats) = run(
                &assembly,
                "a",
                options(program, FixedPointMode::Plain, 5000, 1e-12),
            );
            let (aitken, aitken_stats) = run(
                &assembly,
                "a",
                options(program, FixedPointMode::Aitken, 5000, 1e-12),
            );
            assert!(
                (plain - aitken).abs() < 1e-10,
                "q={q} {program:?}: plain {plain} vs aitken {aitken}"
            );
            assert!(
                aitken_stats.aitken_accels > 0,
                "q={q} {program:?}: {aitken_stats:?}"
            );
            assert_eq!(plain_stats.aitken_accels, 0, "plain must never accelerate");
        }
    }
}

#[test]
fn aitken_is_engine_agnostic_bitwise() {
    // The recursive and compiled drivers share one solver, so Aitken's
    // accelerated trajectory is bitwise identical across engines — same
    // guarantee the plain differential proptests pin.
    for mode in [FixedPointMode::Plain, FixedPointMode::Aitken] {
        let assembly = two_member_mesh(0.6, 1e-3);
        let (recursive, _) = run(&assembly, "a", options(ProgramMode::Off, mode, 5000, 1e-12));
        let (program, _) = run(&assembly, "a", options(ProgramMode::On, mode, 5000, 1e-12));
        assert_eq!(
            recursive.to_bits(),
            program.to_bits(),
            "{mode:?}: engines disagree"
        );
    }
}

#[test]
fn aitken_falls_back_on_degenerate_denominators_without_changing_results() {
    let assembly = degenerate_plus_mesh(0.6);
    for program in [ProgramMode::Off, ProgramMode::On] {
        let (plain, _) = run(
            &assembly,
            "top",
            options(program, FixedPointMode::Plain, 5000, 1e-12),
        );
        let (aitken, stats) = run(
            &assembly,
            "top",
            options(program, FixedPointMode::Aitken, 5000, 1e-12),
        );
        assert!(
            stats.aitken_fallbacks > 0,
            "{program:?}: the constant ghost iterate must trip the \
             degenerate-denominator guard: {stats:?}"
        );
        assert!(
            (plain - aitken).abs() < 1e-10,
            "{program:?}: plain {plain} vs aitken {aitken}"
        );
    }
}

#[test]
fn both_engines_and_modes_surface_diverged_with_the_iteration_budget() {
    let assembly = two_member_mesh(0.5, 1e-3);
    for program in [ProgramMode::Off, ProgramMode::On] {
        for mode in [FixedPointMode::Plain, FixedPointMode::Aitken] {
            // Two sweeps cannot reach a 1e-18 residual at contraction 0.5.
            let evaluator = Evaluator::with_options(&assembly, options(program, mode, 2, 1e-18));
            let err = evaluator
                .failure_probability(&"a".into(), &Bindings::new())
                .unwrap_err();
            match err {
                CoreError::FixedPointDiverged {
                    iterations,
                    residual,
                } => {
                    assert_eq!(iterations, 2, "{program:?}/{mode:?}");
                    assert!(residual.is_finite(), "{program:?}/{mode:?}");
                }
                other => panic!("{program:?}/{mode:?}: expected FixedPointDiverged, got {other:?}"),
            }
        }
    }
}
