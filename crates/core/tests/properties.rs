//! Property-based tests of the reliability engine over randomly generated
//! assemblies: a random set of black-box leaf services and a random
//! chain-structured flow with random completion/dependency models per state.
//!
//! Invariants checked:
//!
//! - `Pfail` is a probability;
//! - the symbolic engine agrees with the numeric engine;
//! - fixed-point mode agrees with error mode on acyclic assemblies;
//! - raising any leaf's failure probability never lowers the assembly's;
//! - AND states are invariant under the sharing declaration (the §3.2
//!   analytical result, at whole-assembly level);
//! - the path-based/Cheung lowering agrees at frozen bindings.

use archrel_core::{symbolic, CycleMode, EvalOptions, Evaluator};
use archrel_expr::{Bindings, Expr};
use archrel_model::{
    catalog, Assembly, AssemblyBuilder, CompletionModel, CompositeService, DependencyModel,
    FlowBuilder, FlowState, Service, ServiceCall, StateId,
};
use proptest::prelude::*;

/// Declarative description of one random flow state.
#[derive(Debug, Clone)]
struct StateSpec {
    /// Leaf index of each call; under `shared` all calls use `calls[0]`.
    calls: Vec<usize>,
    /// 0 = And, 1 = Or, 2.. = KOutOfN { k = completion - 1 }.
    completion: usize,
    shared: bool,
    /// Probability of skipping straight to the next-next state.
    skip: f64,
}

#[derive(Debug, Clone)]
struct AssemblySpec {
    leaf_pfails: Vec<f64>,
    states: Vec<StateSpec>,
}

fn spec_strategy() -> impl Strategy<Value = AssemblySpec> {
    let leaves = proptest::collection::vec(0.0..0.5f64, 2..6);
    leaves.prop_flat_map(|leaf_pfails| {
        let n_leaves = leaf_pfails.len();
        let state = (
            proptest::collection::vec(0..n_leaves, 1..4),
            0usize..5,
            proptest::bool::ANY,
            0.0..0.9f64,
        )
            .prop_map(|(calls, completion, shared, skip)| StateSpec {
                calls,
                completion,
                shared,
                skip,
            });
        proptest::collection::vec(state, 1..5).prop_map(move |states| AssemblySpec {
            leaf_pfails: leaf_pfails.clone(),
            states,
        })
    })
}

fn build(spec: &AssemblySpec) -> Assembly {
    let mut builder = AssemblyBuilder::new();
    for (i, p) in spec.leaf_pfails.iter().enumerate() {
        builder = builder.service(catalog::blackbox_service(format!("leaf{i}"), "x", *p));
    }
    let mut flow = FlowBuilder::new();
    let n = spec.states.len();
    for (i, s) in spec.states.iter().enumerate() {
        let calls: Vec<ServiceCall> = s
            .calls
            .iter()
            .enumerate()
            .map(|(j, &leaf)| {
                let target = if s.shared { s.calls[0] } else { leaf };
                ServiceCall::new(format!("leaf{target}")).with_param("x", Expr::num(j as f64 + 1.0))
            })
            .collect();
        let completion = match s.completion {
            0 => CompletionModel::And,
            1 => CompletionModel::Or,
            k => CompletionModel::KOutOfN {
                k: ((k - 1) % calls.len().max(1)) + 1,
            },
        };
        let dependency = if s.shared {
            DependencyModel::Shared
        } else {
            DependencyModel::Independent
        };
        flow = flow.state(
            FlowState::new(format!("s{i}"), calls)
                .with_completion(completion)
                .with_dependency(dependency),
        );
        // Chain edge plus an optional skip edge two states ahead (or to End).
        let next: StateId = if i + 1 < n {
            StateId::named(format!("s{}", i + 1))
        } else {
            StateId::End
        };
        if s.skip > 0.0 && i + 2 <= n {
            let skip_target: StateId = if i + 2 < n {
                StateId::named(format!("s{}", i + 2))
            } else {
                StateId::End
            };
            if skip_target == next {
                flow = flow.transition(StateId::named(format!("s{i}")), next, Expr::one());
            } else {
                flow = flow
                    .transition(
                        StateId::named(format!("s{i}")),
                        next,
                        Expr::num(1.0 - s.skip),
                    )
                    .transition(
                        StateId::named(format!("s{i}")),
                        skip_target,
                        Expr::num(s.skip),
                    );
            }
        } else {
            flow = flow.transition(StateId::named(format!("s{i}")), next, Expr::one());
        }
    }
    flow = flow.transition(StateId::Start, "s0", Expr::one());
    let top = Service::Composite(
        CompositeService::new("top", vec![], flow.build().expect("flow is valid"))
            .expect("service is valid"),
    );
    builder.service(top).build().expect("assembly is valid")
}

fn pfail(assembly: &Assembly) -> f64 {
    Evaluator::new(assembly)
        .failure_probability(&"top".into(), &Bindings::new())
        .expect("evaluation succeeds")
        .value()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pfail_is_a_probability(spec in spec_strategy()) {
        let p = pfail(&build(&spec));
        prop_assert!((0.0..=1.0).contains(&p), "Pfail = {p}");
    }

    #[test]
    fn symbolic_matches_numeric(spec in spec_strategy()) {
        let assembly = build(&spec);
        let numeric = pfail(&assembly);
        let formula = symbolic::failure_expression(&assembly, &"top".into()).unwrap();
        let symbolic_value = formula.eval(&Bindings::new()).unwrap();
        prop_assert!(
            (numeric - symbolic_value).abs() < 1e-9,
            "numeric {numeric} vs symbolic {symbolic_value}"
        );
    }

    #[test]
    fn fixed_point_matches_error_mode_on_acyclic(spec in spec_strategy()) {
        let assembly = build(&spec);
        let exact = pfail(&assembly);
        let fp = Evaluator::with_options(
            &assembly,
            EvalOptions {
                cycle_mode: CycleMode::FixedPoint {
                    max_iterations: 50,
                    tolerance: 1e-12,
                },
                ..EvalOptions::default()
            },
        )
        .failure_probability(&"top".into(), &Bindings::new())
        .unwrap()
        .value();
        prop_assert!((exact - fp).abs() < 1e-12);
    }

    #[test]
    fn pfail_is_monotone_in_leaf_unreliability(
        spec in spec_strategy(),
        leaf_choice in 0usize..8,
        bump in 0.01..0.4f64,
    ) {
        let baseline = pfail(&build(&spec));
        let mut worse = spec.clone();
        let idx = leaf_choice % worse.leaf_pfails.len();
        worse.leaf_pfails[idx] = (worse.leaf_pfails[idx] + bump).min(1.0);
        let degraded = pfail(&build(&worse));
        prop_assert!(
            degraded >= baseline - 1e-12,
            "bumping leaf{idx} lowered Pfail: {baseline} -> {degraded}"
        );
    }

    #[test]
    fn and_states_are_invariant_under_sharing(spec in spec_strategy()) {
        // Force every state to AND; flipping the sharing flags must not
        // change the assembly's failure probability (eq. 11 = eq. 6+8).
        let mut and_spec = spec.clone();
        for s in &mut and_spec.states {
            s.completion = 0;
        }
        let mut shared = and_spec.clone();
        for s in &mut shared.states {
            s.shared = true;
        }
        let mut unshared = and_spec;
        for s in &mut unshared.states {
            s.shared = false;
        }
        // NOTE: the shared variant redirects every call in a state to one
        // leaf, so compare shared=true against the same call pattern with
        // the flag off.
        let mut unshared_same_calls = shared.clone();
        for s in &mut unshared_same_calls.states {
            let target = s.calls[0];
            for c in &mut s.calls {
                *c = target;
            }
            s.shared = false;
        }
        let _ = unshared; // pattern differs; not comparable
        let p_shared = pfail(&build(&shared));
        let p_plain = pfail(&build(&unshared_same_calls));
        prop_assert!(
            (p_shared - p_plain).abs() < 1e-12,
            "AND sharing changed Pfail: {p_plain} vs {p_shared}"
        );
    }

    #[test]
    fn or_sharing_never_helps(spec in spec_strategy()) {
        // Force OR everywhere with replicated calls: shared >= independent.
        let mut or_spec = spec.clone();
        for s in &mut or_spec.states {
            s.completion = 1;
            let target = s.calls[0];
            for c in &mut s.calls {
                *c = target;
            }
        }
        let mut shared = or_spec.clone();
        for s in &mut shared.states {
            s.shared = true;
        }
        let mut unshared = or_spec;
        for s in &mut unshared.states {
            s.shared = false;
        }
        let p_shared = pfail(&build(&shared));
        let p_unshared = pfail(&build(&unshared));
        prop_assert!(
            p_shared >= p_unshared - 1e-12,
            "sharing helped an OR state: {p_unshared} vs {p_shared}"
        );
    }

    #[test]
    fn evaluation_report_is_consistent(spec in spec_strategy()) {
        let assembly = build(&spec);
        let evaluator = Evaluator::new(&assembly);
        let report = evaluator.report(&"top".into(), &Bindings::new()).unwrap();
        // The report's headline number equals the direct evaluation, every
        // per-state probability is a probability, and request externals are
        // bounded by the state failure under AND completion.
        let direct = evaluator
            .failure_probability(&"top".into(), &Bindings::new())
            .unwrap();
        prop_assert_eq!(report.failure_probability, direct);
        for state in &report.states {
            let f = state.failure_probability.value();
            prop_assert!((0.0..=1.0).contains(&f));
            for r in &state.requests {
                prop_assert!((0.0..=1.0).contains(&r.internal.value()));
                prop_assert!((0.0..=1.0).contains(&r.external.value()));
            }
        }
    }
}
