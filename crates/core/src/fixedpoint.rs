//! The shared fixed-point iteration driver behind [`crate::CycleMode::FixedPoint`].
//!
//! Both engines that solve recursive assemblies — the recursive evaluator's
//! global sweeps (`Evaluator::eval_fixed_point`, keyed by
//! `(service, resolved parameters)`) and the compiled program's loop driver
//! (`AssemblyProgram::evaluate_fixed_point`, keyed by
//! `(node, input-register bits)`) — fold their sweeps through one generic
//! [`FixedPointSolver`]. Sharing the arithmetic is what makes the two paths
//! bitwise identical: the estimate bookkeeping, the residual computation,
//! and the stopping rule are literally the same code, only the key type and
//! the sweep procedure differ.
//!
//! Two update schemes are offered (see [`FixedPointMode`]):
//!
//! - **plain** successive substitution: each broken key's next estimate is
//!   its raw sweep value. Converges monotonically from the optimistic
//!   estimate 0 because `Pfail` is monotone in the estimates and bounded by
//!   1 — this is the bitwise reference the differential suites pin against.
//! - **Aitken Δ²** (Steffensen-restart flavor): per key, three consecutive
//!   raw iterates extrapolate the geometric tail
//!   `x₂ − (x₂−x₁)² / ((x₂−x₁) − (x₁−x₀))`; the window then restarts from
//!   the next raw iterate. A degenerate denominator (relative to the
//!   iterates' magnitude) falls back to the plain update for that key and
//!   slides the window by one — acceleration may only change *how fast* the
//!   iteration reaches the fixed point, never *which* fixed point, so the
//!   two modes agree to within the convergence tolerance.
//!
//! Convergence is always judged on **raw** sweep values against the
//! previous estimates (plus the top-level value's change), before any
//! acceleration replaces an estimate: an extrapolated jump must prove
//! itself by producing a quiet next sweep.

use std::collections::HashMap;
use std::hash::Hash;

use crate::CoreError;

/// How fixed-point estimates advance between sweeps.
///
/// Threaded through [`crate::EvalOptions`], the `--fixed-point` CLI flag,
/// and the `ARCHREL_FIXED_POINT` environment variable (which, like
/// `ARCHREL_SOLVER`, hard-errors on unrecognized values so a typo'd CI row
/// cannot silently run the suite under the wrong scheme).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FixedPointMode {
    /// Plain successive substitution — the bitwise-reference default.
    #[default]
    Plain,
    /// Aitken Δ² acceleration with per-key Steffensen restarts; falls back
    /// to the plain update on degenerate denominators.
    Aitken,
}

impl FixedPointMode {
    /// Parses `plain` / `aitken` (case-insensitive).
    pub fn parse(s: &str) -> Option<FixedPointMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "plain" => Some(FixedPointMode::Plain),
            "aitken" => Some(FixedPointMode::Aitken),
            _ => None,
        }
    }

    /// Parses a value of the `ARCHREL_FIXED_POINT` environment variable.
    ///
    /// # Panics
    ///
    /// Panics when the value is not a recognized mode spelling — mirroring
    /// the `ARCHREL_SOLVER` hard-error behavior, a typo'd override must not
    /// silently run an analysis under the wrong update scheme.
    pub fn parse_env_value(raw: &str) -> FixedPointMode {
        FixedPointMode::parse(raw).unwrap_or_else(|| {
            panic!(
                "unrecognized ARCHREL_FIXED_POINT value `{raw}`: \
                 expected one of plain, aitken"
            )
        })
    }

    /// Mode forced by the `ARCHREL_FIXED_POINT` environment variable, if
    /// set. An empty value counts as unset (CI matrices expand absent
    /// entries to empty strings).
    ///
    /// # Panics
    ///
    /// Panics when the variable is set to an unrecognized value (see
    /// [`FixedPointMode::parse_env_value`]).
    pub fn from_env() -> Option<FixedPointMode> {
        std::env::var("ARCHREL_FIXED_POINT")
            .ok()
            .filter(|v| !v.trim().is_empty())
            .map(|v| FixedPointMode::parse_env_value(&v))
    }
}

/// Per-key raw-iterate window for the Aitken Δ² update.
#[derive(Debug, Clone, Copy, Default)]
struct History {
    vals: [f64; 3],
    len: usize,
}

impl History {
    fn push(&mut self, v: f64) {
        debug_assert!(self.len < 3);
        self.vals[self.len] = v;
        self.len += 1;
    }

    /// Drops the oldest iterate (degenerate-denominator fallback).
    fn slide(&mut self) {
        self.vals[0] = self.vals[1];
        self.vals[1] = self.vals[2];
        self.len = 2;
    }

    /// Restarts the window (after an accelerated step the next raw iterate
    /// starts a fresh Steffensen cycle).
    fn clear(&mut self) {
        self.len = 0;
    }
}

/// Generic fixed-point driver: owns the estimates map, folds one sweep's
/// raw values at a time, and decides convergence / divergence exactly like
/// the historical recursive loop (same residual arithmetic, same stopping
/// rule, same [`CoreError::FixedPointDiverged`] payload).
#[derive(Debug)]
pub(crate) struct FixedPointSolver<K> {
    mode: FixedPointMode,
    max_iterations: usize,
    tolerance: f64,
    estimates: HashMap<K, f64>,
    history: HashMap<K, History>,
    last_top: f64,
    sweeps: u64,
    accels: u64,
    fallbacks: u64,
}

impl<K> FixedPointSolver<K> {
    /// Counts a sweep that broke no cycle (the value was exact): no
    /// estimate bookkeeping, but the sweep still happened.
    pub(crate) fn note_exact_sweep(&mut self) {
        self.sweeps += 1;
    }

    /// The divergence error after the iteration budget is exhausted —
    /// same payload as the historical loop (`residual` is the last
    /// top-level value, mirroring the pre-driver behavior).
    pub(crate) fn diverged(&self) -> CoreError {
        CoreError::FixedPointDiverged {
            iterations: self.max_iterations,
            residual: self.last_top,
        }
    }

    pub(crate) fn sweeps(&self) -> u64 {
        self.sweeps
    }

    pub(crate) fn accels(&self) -> u64 {
        self.accels
    }

    pub(crate) fn fallbacks(&self) -> u64 {
        self.fallbacks
    }
}

impl<K: Hash + Eq + Clone> FixedPointSolver<K> {
    pub(crate) fn new(
        mode: FixedPointMode,
        max_iterations: usize,
        tolerance: f64,
    ) -> FixedPointSolver<K> {
        FixedPointSolver {
            mode,
            max_iterations,
            tolerance,
            estimates: HashMap::new(),
            history: HashMap::new(),
            last_top: 0.0,
            sweeps: 0,
            accels: 0,
            fallbacks: 0,
        }
    }

    /// Current estimates, borrowed for the next sweep (keys absent from the
    /// map read as the optimistic estimate 0).
    pub(crate) fn estimates(&self) -> &HashMap<K, f64> {
        &self.estimates
    }

    /// Folds one sweep: the top-level value plus each cycle-broken key's
    /// raw sweep value. Returns `true` when the largest change (top-level
    /// delta or any key's raw-vs-previous-estimate delta) dropped below the
    /// tolerance.
    ///
    /// In [`FixedPointMode::Plain`] this is, operation for operation, the
    /// historical recursive loop: `delta = max(|top − last_top|,
    /// maxₖ |rawₖ − estₖ|)` and `estₖ ← rawₖ`. The fold is
    /// iteration-order-robust (a max of finite absolute values and keyed
    /// inserts), so both engines produce identical estimates regardless of
    /// how their key sets iterate.
    pub(crate) fn record_sweep<I>(&mut self, top: f64, raw: I) -> bool
    where
        I: IntoIterator<Item = (K, f64)>,
    {
        self.sweeps += 1;
        let mut delta = (top - self.last_top).abs();
        for (key, v) in raw {
            let old = self.estimates.get(&key).copied().unwrap_or(0.0);
            delta = delta.max((v - old).abs());
            let next = self.next_estimate(&key, v);
            self.estimates.insert(key, next);
        }
        self.last_top = top;
        delta < self.tolerance
    }

    /// The next stored estimate for `key` given its raw sweep value.
    fn next_estimate(&mut self, key: &K, raw: f64) -> f64 {
        if self.mode == FixedPointMode::Plain {
            return raw;
        }
        let h = self.history.entry(key.clone()).or_default();
        h.push(raw);
        if h.len < 3 {
            return raw;
        }
        let [x0, x1, x2] = h.vals;
        let den = (x2 - x1) - (x1 - x0);
        // Degenerate denominator, relative to the iterates' magnitude: the
        // second difference carries no usable contraction signal (constant
        // or near-linear iterates), so extrapolating would divide noise by
        // noise. Fall back to the plain update and slide the window.
        let scale = x0.abs().max(x1.abs()).max(x2.abs()).max(1.0);
        if den.abs() <= 16.0 * f64::EPSILON * scale {
            self.fallbacks += 1;
            h.slide();
            return raw;
        }
        self.accels += 1;
        h.clear();
        let step = x2 - x1;
        // Probabilities live in [0, 1]; an extrapolation overshooting the
        // interval is clamped (the next raw sweep corrects any remainder).
        (x2 - step * step / den).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `x ← a·x + b` — a linear contraction with fixed point `b / (1 − a)`.
    fn run(mode: FixedPointMode, a: f64, b: f64, budget: usize, tol: f64) -> (f64, u64, u64, u64) {
        let mut solver: FixedPointSolver<u32> = FixedPointSolver::new(mode, budget, tol);
        for _ in 0..budget {
            let x = solver.estimates().get(&0).copied().unwrap_or(0.0);
            let raw = a * x + b;
            if solver.record_sweep(raw, [(0u32, raw)]) {
                return (raw, solver.sweeps(), solver.accels(), solver.fallbacks());
            }
        }
        panic!("did not converge: {:?}", solver.diverged());
    }

    #[test]
    fn plain_reproduces_successive_substitution() {
        let (x, sweeps, accels, fallbacks) = run(FixedPointMode::Plain, 0.5, 0.25, 200, 1e-12);
        assert!((x - 0.5).abs() < 1e-10, "{x}");
        assert_eq!(accels, 0);
        assert_eq!(fallbacks, 0);
        assert!(sweeps > 10, "{sweeps}");
    }

    #[test]
    fn aitken_accelerates_a_geometric_tail() {
        let (x_plain, sweeps_plain, ..) = run(FixedPointMode::Plain, 0.9, 0.05, 500, 1e-12);
        let (x_aitken, sweeps_aitken, accels, _) =
            run(FixedPointMode::Aitken, 0.9, 0.05, 500, 1e-12);
        assert!(
            (x_plain - x_aitken).abs() < 1e-10,
            "{x_plain} vs {x_aitken}"
        );
        assert!(accels >= 1, "no accelerated steps taken");
        assert!(
            sweeps_aitken < sweeps_plain / 2,
            "aitken {sweeps_aitken} sweeps vs plain {sweeps_plain}"
        );
    }

    #[test]
    fn aitken_falls_back_on_a_constant_sequence() {
        // A key whose raw value never moves while another key still
        // converges: its second difference is exactly zero, so every window
        // must fall back rather than divide by zero.
        let mut solver: FixedPointSolver<u32> =
            FixedPointSolver::new(FixedPointMode::Aitken, 500, 1e-12);
        let mut x = 0.0;
        for _ in 0..500 {
            x = 0.9 * x + 0.05;
            if solver.record_sweep(x, [(0u32, x), (1u32, 0.25)]) {
                break;
            }
        }
        assert!(solver.fallbacks() >= 1, "no fallbacks recorded");
        assert_eq!(solver.estimates().get(&1).copied(), Some(0.25));
    }

    #[test]
    fn diverged_carries_budget_and_residual() {
        let mut solver: FixedPointSolver<u32> =
            FixedPointSolver::new(FixedPointMode::Plain, 2, 1e-18);
        solver.record_sweep(0.3, [(0u32, 0.3)]);
        solver.record_sweep(0.4, [(0u32, 0.4)]);
        match solver.diverged() {
            CoreError::FixedPointDiverged {
                iterations,
                residual,
            } => {
                assert_eq!(iterations, 2);
                assert_eq!(residual, 0.4);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }
}
