//! Sensitivity analysis: how strongly the predicted unreliability reacts to
//! each input.
//!
//! Two flavors:
//!
//! - [`binding_sensitivities`]: finite-difference derivatives and
//!   elasticities of `Pfail` with respect to the **formal parameters** of the
//!   invocation (e.g. the list size of the paper's search service);
//! - [`finite_difference`]: a generic helper for sensitivities with respect
//!   to **model attributes** (failure rates, speeds, bandwidths) — the caller
//!   supplies a closure that rebuilds the assembly with a perturbed
//!   attribute, which is how the Figure 6 harness explores γ and ϕ₁.

use std::sync::Arc;
use std::time::Instant;

use archrel_expr::Bindings;
use archrel_model::{Assembly, Probability, ServiceId};

use crate::batch::blocked_probabilities;
use crate::eval::FlowBlockAccumulator;
use crate::staged::{StagedSweep, Staging};
use crate::{symbolic, CoreError, Evaluator, Result};

/// Sensitivity of `Pfail` with respect to one input.
#[derive(Debug, Clone, PartialEq)]
pub struct Sensitivity {
    /// Name of the input (binding name or caller-chosen attribute label).
    pub name: String,
    /// Value at which the derivative was taken.
    pub at: f64,
    /// Central finite-difference derivative `dPfail/dx`.
    pub derivative: f64,
    /// Elasticity `(dPfail/dx) · (x / Pfail)` — the unitless "% change in
    /// unreliability per % change in input"; `0` when `Pfail` is zero.
    pub elasticity: f64,
}

/// Relative step used for central differences.
const REL_STEP: f64 = 1e-4;

/// Central finite-difference derivative of an arbitrary scalar map, plus the
/// elasticity at `x0`.
///
/// # Errors
///
/// Propagates errors from `f`.
pub fn finite_difference(
    name: impl Into<String>,
    x0: f64,
    mut f: impl FnMut(f64) -> Result<f64>,
) -> Result<Sensitivity> {
    let h = step(x0);
    let up = f(x0 + h)?;
    let down = f(x0 - h)?;
    let value = f(x0)?;
    let derivative = (up - down) / (2.0 * h);
    let elasticity = if value == 0.0 {
        0.0
    } else {
        derivative * x0 / value
    };
    Ok(Sensitivity {
        name: name.into(),
        at: x0,
        derivative,
        elasticity,
    })
}

/// Sensitivities of `Pfail(service, env)` with respect to every binding in
/// `env`, sorted by descending absolute elasticity (most influential first).
///
/// Runs on the batch path: the finite-difference stencil (two perturbed
/// probes per binding plus the shared center point) is expanded up front and
/// evaluated across worker threads against one shared evaluator, so probes
/// that resolve to the same `(service, parameters)` fingerprint — notably
/// every binding's center probe — are solved once. The evaluator's
/// [`crate::SolverPolicy`] (and every other [`crate::EvalOptions`] field)
/// applies to all probes: build the evaluator with
/// [`Evaluator::with_options`] to force a solver. Because all probes run on
/// **one** evaluator, they also share its compiled-plan cache: a stencil
/// only perturbs parameter *values*, so under [`crate::SolverPolicy::Auto`]
/// (after promotion) or [`crate::SolverPolicy::Compiled`] every probe after
/// the first replays a compiled evaluation tape instead of re-eliminating
/// the chain.
///
/// # Errors
///
/// Propagates evaluation errors (e.g. a perturbed parameter leaving a
/// function's domain).
pub fn binding_sensitivities(
    evaluator: &Evaluator<'_>,
    service: &ServiceId,
    env: &Bindings,
) -> Result<Vec<Sensitivity>> {
    binding_sensitivities_with_workers(evaluator, service, env, default_workers())
}

/// [`binding_sensitivities`] with an explicit worker-thread count.
///
/// # Errors
///
/// See [`binding_sensitivities`].
pub fn binding_sensitivities_with_workers(
    evaluator: &Evaluator<'_>,
    service: &ServiceId,
    env: &Bindings,
    workers: usize,
) -> Result<Vec<Sensitivity>> {
    struct Probe {
        name: String,
        x0: f64,
        h: f64,
        // Probe value for each stencil point: [x0 + h, x0 - h, x0].
        envs: [Bindings; 3],
    }
    let probes: Vec<Probe> = env
        .iter()
        .map(|(name, x0)| {
            let h = step(x0);
            let at = |x: f64| {
                let mut perturbed = env.clone();
                perturbed.insert(name, x);
                perturbed
            };
            Probe {
                name: name.to_string(),
                x0,
                h,
                envs: [at(x0 + h), at(x0 - h), at(x0)],
            }
        })
        .collect();

    // All stencil points target one service: the blocked path packs them
    // into lane-sized parameter blocks per compiled structure, so a whole
    // stencil's probes are replayed by a handful of tape passes. The probes
    // only move the stencil's own parameters, so declare them varied:
    // services fed purely by constants pin outside the dirty cone when the
    // assembly-program path answers.
    let varied: Vec<String> = env.iter().map(|(name, _)| name.to_string()).collect();
    evaluator.declare_varied(service, &varied);
    let flat: Vec<&Bindings> = probes.iter().flat_map(|p| p.envs.iter()).collect();
    // Which binding each flattened probe perturbs — the staged path uses
    // it to restage only that binding's dependency cone per probe.
    let names: Vec<&str> = probes.iter().flat_map(|p| [p.name.as_str(); 3]).collect();
    // Staged fast path: when the target compiles to a staged sweep, every
    // probe's parameter row is generated directly from the stencil env —
    // no per-probe state resolution, chain build, or extraction. A sweep
    // that declines (or a compile error) routes through the generic
    // blocked path unchanged.
    let staged = StagedSweep::compile(
        evaluator.assembly(),
        service,
        env,
        evaluator.plan_cache(),
        evaluator.options(),
    )
    .unwrap_or(None);
    let values = match &staged {
        Some(sweep) => staged_probes(sweep, evaluator, service, env, &names, &flat, workers),
        None => blocked_probabilities(evaluator, service, &flat, workers),
    };
    let mut values = values.into_iter().map(|r| r.map(|p| p.value()));
    let mut out = Vec::with_capacity(probes.len());
    for probe in &probes {
        let up = values.next().expect("one value per probe")?;
        let down = values.next().expect("one value per probe")?;
        let value = values.next().expect("one value per probe")?;
        let derivative = (up - down) / (2.0 * probe.h);
        let elasticity = if value == 0.0 {
            0.0
        } else {
            derivative * probe.x0 / value
        };
        out.push(Sensitivity {
            name: probe.name.clone(),
            at: probe.x0,
            derivative,
            elasticity,
        });
    }
    out.sort_by(|a, b| {
        b.elasticity
            .abs()
            .partial_cmp(&a.elasticity.abs())
            .expect("elasticities are finite")
    });
    Ok(out)
}

fn step(x0: f64) -> f64 {
    if x0 == 0.0 {
        REL_STEP
    } else {
        x0.abs() * REL_STEP
    }
}

pub(crate) fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Evaluate every probe env through a staged sweep: each row is generated
/// straight from the stencil env — no per-probe state resolution, chain
/// build, or extraction — then replayed through lane-blocked tapes. The
/// stencil contract (each probe moves exactly one binding, `names[i]`)
/// lets the sweep stage the center once and restage only each probe's
/// dependency cone — bitwise what full staging computes. Probes whose
/// values change the flow structure fall back to the generic evaluator,
/// which is bitwise-identical on compiled structures.
fn staged_probes(
    sweep: &StagedSweep,
    evaluator: &Evaluator<'_>,
    service: &ServiceId,
    center_env: &Bindings,
    names: &[&str],
    envs: &[&Bindings],
    workers: usize,
) -> Vec<Result<Probability>> {
    debug_assert_eq!(names.len(), envs.len());
    let options = evaluator.options();
    let plans = evaluator.plan_cache();
    // A center that fails to stage sends every probe through full
    // staging, which reports any error probe by probe exactly as before.
    let center = {
        let mut scratch = sweep.new_scratch();
        sweep
            .prepare_env_center(center_env, &mut scratch)
            .unwrap_or(None)
    };
    let center = center.as_ref();
    let run_stripe = |stripe: Vec<usize>| -> Vec<(usize, Result<Probability>)> {
        let mut acc =
            FlowBlockAccumulator::new(Arc::clone(plans), options.plan_lanes, options.simd);
        let mut success = vec![f64::NAN; stripe.len()];
        let mut results: Vec<Option<Result<Probability>>> = Vec::with_capacity(stripe.len());
        results.resize_with(stripe.len(), || None);
        let mut deferred: Vec<usize> = Vec::new();
        let mut scratch = sweep.new_scratch();
        let mut stage_nanos = 0u64;
        for (pos, &i) in stripe.iter().enumerate() {
            let stage_started = Instant::now();
            let staging = match center {
                Some(c) => sweep.stage_env_delta(c, names[i], envs[i], &mut scratch),
                None => sweep.stage_env(envs[i], &mut scratch),
            };
            stage_nanos += u64::try_from(stage_started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            match staging {
                Ok(Staging::Row) => {
                    match acc.submit_row(sweep.plan(), &scratch.row, pos, &mut success) {
                        Ok(()) => deferred.push(pos),
                        Err(err) => results[pos] = Some(Err(err.into())),
                    }
                }
                Ok(Staging::Fallback) => {
                    results[pos] = Some(evaluator.failure_probability(service, envs[i]));
                }
                Err(err) => results[pos] = Some(Err(err)),
            }
        }
        plans.record_stage_nanos(stage_nanos);
        acc.finish(&mut success);
        for (tag, err) in acc.take_errors() {
            results[tag] = Some(Err(err));
        }
        for pos in deferred {
            if results[pos].is_some() {
                continue;
            }
            results[pos] = Some(
                Probability::new(success[pos])
                    .map(|p| p.complement())
                    .map_err(CoreError::from),
            );
        }
        stripe
            .into_iter()
            .zip(results)
            .map(|(i, r)| (i, r.expect("every probe resolved")))
            .collect()
    };

    let workers = workers.max(1).min(envs.len().max(1));
    let mut results: Vec<Option<Result<Probability>>> = Vec::with_capacity(envs.len());
    results.resize_with(envs.len(), || None);
    if workers == 1 {
        for (i, r) in run_stripe((0..envs.len()).collect()) {
            results[i] = Some(r);
        }
    } else {
        let run_stripe = &run_stripe;
        let collected: Vec<Vec<(usize, Result<Probability>)>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let stripe: Vec<usize> = (w..envs.len()).step_by(workers).collect();
                    scope.spawn(move |_| run_stripe(stripe))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sensitivity worker panicked"))
                .collect()
        })
        .expect("sensitivity worker panicked");
        for stripe in collected {
            for (i, r) in stripe {
                results[i] = Some(r);
            }
        }
    }
    results
        .into_iter()
        .map(|r| r.expect("every probe resolved"))
        .collect()
}

/// **Exact** sensitivities of `Pfail(service, ·)` with respect to every
/// formal parameter, obtained by symbolically differentiating the
/// closed-form failure expression (no truncation error, unlike
/// [`binding_sensitivities`]). Requires an acyclic assembly (symbolic
/// evaluation's domain); results are sorted by descending absolute
/// elasticity.
///
/// # Errors
///
/// - [`crate::CoreError::SymbolicUnsupported`] for recursive assemblies or
///   cyclic flows;
/// - expression errors when a derivative cannot be formed (`min`/`max`
///   kinks) or evaluated at `env`.
pub fn symbolic_sensitivities(
    assembly: &Assembly,
    service: &ServiceId,
    env: &Bindings,
) -> Result<Vec<Sensitivity>> {
    let formula = symbolic::failure_expression(assembly, service)?;
    let value = formula.eval(env)?;
    let mut out = Vec::new();
    for param in formula.free_params() {
        let x0 = env.get(&param).ok_or_else(|| {
            crate::CoreError::Expr(archrel_expr::ExprError::UnboundParameter {
                name: param.clone(),
            })
        })?;
        let derivative_expr = formula.differentiate(&param)?;
        let derivative = derivative_expr.eval(env)?;
        let elasticity = if value == 0.0 {
            0.0
        } else {
            derivative * x0 / value
        };
        out.push(Sensitivity {
            name: param,
            at: x0,
            derivative,
            elasticity,
        });
    }
    out.sort_by(|a, b| {
        b.elasticity
            .abs()
            .partial_cmp(&a.elasticity.abs())
            .expect("elasticities are finite")
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use archrel_model::paper;

    #[test]
    fn finite_difference_of_quadratic() {
        let s = finite_difference("x", 3.0, |x| Ok(x * x)).unwrap();
        assert!((s.derivative - 6.0).abs() < 1e-6);
        // elasticity of x^2 is 2 everywhere.
        assert!((s.elasticity - 2.0).abs() < 1e-6);
    }

    #[test]
    fn finite_difference_at_zero_uses_absolute_step() {
        let s = finite_difference("x", 0.0, |x| Ok(2.0 * x)).unwrap();
        assert!((s.derivative - 2.0).abs() < 1e-9);
        assert_eq!(s.elasticity, 0.0);
    }

    #[test]
    fn list_size_dominates_search_sensitivity() {
        let params = paper::PaperParams::default();
        let assembly = paper::local_assembly(&params).unwrap();
        let eval = Evaluator::new(&assembly);
        let env = paper::search_bindings(4.0, 4096.0, 1.0);
        let sens = binding_sensitivities(&eval, &paper::SEARCH.into(), &env).unwrap();
        // The most influential parameter is the list size: the sort leg costs
        // list·log(list) operations while elem/res only feed the connector.
        assert_eq!(sens[0].name, "list");
        assert!(
            sens[0].derivative > 0.0,
            "unreliability grows with list size"
        );
    }

    #[test]
    fn gamma_sensitivity_via_attribute_closure() {
        // Sensitivity w.r.t. the network failure rate γ by rebuilding the
        // remote assembly per probe.
        let base = paper::PaperParams::default();
        let env = paper::search_bindings(4.0, 2048.0, 1.0);
        let s = finite_difference("gamma", base.gamma, |gamma| {
            let params = base.clone().with_gamma(gamma);
            let assembly = paper::remote_assembly(&params).unwrap();
            Ok(Evaluator::new(&assembly)
                .failure_probability(&paper::SEARCH.into(), &env)?
                .value())
        })
        .unwrap();
        assert!(s.derivative > 0.0, "unreliability grows with γ");
        assert!(s.elasticity > 0.0);
    }

    #[test]
    fn symbolic_sensitivities_match_finite_differences() {
        let params = paper::PaperParams::default();
        let assembly = paper::remote_assembly(&params).unwrap();
        let env = paper::search_bindings(4.0, 2048.0, 1.0);
        let exact = symbolic_sensitivities(&assembly, &paper::SEARCH.into(), &env).unwrap();
        let eval = Evaluator::new(&assembly);
        let approx = binding_sensitivities(&eval, &paper::SEARCH.into(), &env).unwrap();
        for e in &exact {
            let a = approx
                .iter()
                .find(|s| s.name == e.name)
                .expect("same parameter set");
            let scale = e.derivative.abs().max(1e-12);
            assert!(
                (e.derivative - a.derivative).abs() / scale < 1e-3,
                "{}: exact {} vs finite-difference {}",
                e.name,
                e.derivative,
                a.derivative
            );
        }
        // list dominates, exactly as in the finite-difference ranking.
        assert_eq!(exact[0].name, "list");
    }

    #[test]
    fn symbolic_sensitivities_reject_recursive_assemblies() {
        use archrel_expr::Expr;
        use archrel_model::{
            AssemblyBuilder, CompositeService, FlowBuilder, FlowState, Service, ServiceCall,
            StateId,
        };
        let make = |name: &str, target: &str| {
            let flow = FlowBuilder::new()
                .state(FlowState::new("1", vec![ServiceCall::new(target)]))
                .transition(StateId::Start, "1", Expr::one())
                .transition("1", StateId::End, Expr::one())
                .build()
                .unwrap();
            Service::Composite(CompositeService::new(name, vec![], flow).unwrap())
        };
        let assembly = AssemblyBuilder::new()
            .service(make("a", "b"))
            .service(make("b", "a"))
            .build()
            .unwrap();
        assert!(symbolic_sensitivities(&assembly, &"a".into(), &Bindings::new()).is_err());
    }

    #[test]
    fn worker_count_does_not_change_sensitivities() {
        let params = paper::PaperParams::default();
        let assembly = paper::remote_assembly(&params).unwrap();
        let env = paper::search_bindings(4.0, 2048.0, 1.0);
        let reference = {
            let eval = Evaluator::new(&assembly);
            binding_sensitivities_with_workers(&eval, &paper::SEARCH.into(), &env, 1).unwrap()
        };
        for workers in [2, 8] {
            let eval = Evaluator::new(&assembly);
            let got =
                binding_sensitivities_with_workers(&eval, &paper::SEARCH.into(), &env, workers)
                    .unwrap();
            assert_eq!(reference.len(), got.len());
            for (r, g) in reference.iter().zip(&got) {
                assert_eq!(r.name, g.name);
                assert_eq!(r.derivative.to_bits(), g.derivative.to_bits());
                assert_eq!(r.elasticity.to_bits(), g.elasticity.to_bits());
            }
        }
    }

    #[test]
    fn solver_policy_flows_through_the_shared_evaluator() {
        use crate::{EvalOptions, SolverPolicy};
        let params = paper::PaperParams::default();
        let assembly = paper::remote_assembly(&params).unwrap();
        let env = paper::search_bindings(4.0, 2048.0, 1.0);
        let dense = {
            let eval = Evaluator::with_options(
                &assembly,
                EvalOptions {
                    solver: SolverPolicy::Dense,
                    ..EvalOptions::default()
                },
            );
            binding_sensitivities(&eval, &paper::SEARCH.into(), &env).unwrap()
        };
        let sparse = {
            let eval = Evaluator::with_options(
                &assembly,
                EvalOptions {
                    solver: SolverPolicy::Sparse,
                    ..EvalOptions::default()
                },
            );
            binding_sensitivities(&eval, &paper::SEARCH.into(), &env).unwrap()
        };
        assert_eq!(dense.len(), sparse.len());
        for (d, s) in dense.iter().zip(&sparse) {
            assert_eq!(d.name, s.name);
            let scale = d.derivative.abs().max(1e-12);
            assert!(
                (d.derivative - s.derivative).abs() / scale < 1e-6,
                "{}: dense {} vs sparse {}",
                d.name,
                d.derivative,
                s.derivative
            );
        }
    }

    /// An acyclic assembly the staged sweep compiler accepts. Acyclic on
    /// purpose: the bitwise block ≡ scalar contract the reference values
    /// rely on covers the straight-line tape, not incremental re-solves.
    fn stageable_assembly() -> (Assembly, Bindings) {
        use archrel_expr::Expr;
        use archrel_model::{
            AssemblyBuilder, CompositeService, FailureModel, FlowBuilder, FlowState,
            InternalFailureModel, Service, ServiceCall, SimpleService, StateId,
        };
        let call_a = ServiceCall {
            target: "cpu".into(),
            actual_params: vec![("ops".to_string(), Expr::param("n"))],
            connector: None,
            internal_failure: InternalFailureModel::PerOperation { phi: 1e-4 },
        };
        let call_b = ServiceCall {
            target: "disk".into(),
            actual_params: vec![("ops".to_string(), Expr::param("m"))],
            connector: None,
            internal_failure: InternalFailureModel::None,
        };
        let flow = FlowBuilder::new()
            .state(FlowState::new("a", vec![call_a]))
            .state(FlowState::new("b", vec![call_b]))
            .transition(StateId::Start, "a", Expr::num(0.6))
            .transition(StateId::Start, "b", Expr::num(0.4))
            .transition("a", "b", Expr::one())
            .transition("b", StateId::End, Expr::one())
            .build()
            .unwrap();
        let assembly = AssemblyBuilder::new()
            .service(Service::Simple(SimpleService::new(
                "cpu",
                "ops",
                FailureModel::ExponentialRate {
                    rate: 0.02,
                    capacity: 1.0,
                },
            )))
            .service(Service::Simple(SimpleService::new(
                "disk",
                "ops",
                FailureModel::PerUnit { probability: 1e-3 },
            )))
            .service(Service::Composite(
                CompositeService::new("app", vec!["n".to_string(), "m".to_string()], flow).unwrap(),
            ))
            .build()
            .unwrap();
        (assembly, Bindings::new().with("n", 6.0).with("m", 3.0))
    }

    /// The staged probe sweep must be **bitwise** identical to the generic
    /// blocked path under the same compiled-plan policy — same stencil,
    /// same probabilities, at every worker count.
    #[test]
    fn staged_probes_match_blocked_path_bitwise() {
        use crate::{EvalOptions, SolverPolicy};
        let (assembly, env) = stageable_assembly();
        let service: ServiceId = "app".into();
        let options = EvalOptions {
            solver: SolverPolicy::Compiled,
            ..EvalOptions::default()
        };
        // Perturbed stencil points, like binding_sensitivities builds.
        let mut flat_owned: Vec<(String, Bindings)> = Vec::new();
        for (name, x0) in env.iter() {
            let h = step(x0);
            for x in [x0 + h, x0 - h, x0] {
                let mut p = env.clone();
                p.insert(name, x);
                flat_owned.push((name.to_string(), p));
            }
        }
        let names: Vec<&str> = flat_owned.iter().map(|(n, _)| n.as_str()).collect();
        let flat: Vec<&Bindings> = flat_owned.iter().map(|(_, p)| p).collect();
        let reference = {
            let eval = Evaluator::with_options(&assembly, options);
            blocked_probabilities(&eval, &service, &flat, 1)
        };
        for workers in [1usize, 3] {
            let eval = Evaluator::with_options(&assembly, options);
            let sweep = StagedSweep::compile(&assembly, &service, &env, eval.plan_cache(), options)
                .unwrap()
                .expect("assembly is stageable");
            let staged = staged_probes(&sweep, &eval, &service, &env, &names, &flat, workers);
            assert_eq!(reference.len(), staged.len());
            for (r, s) in reference.iter().zip(&staged) {
                let (r, s) = (r.as_ref().unwrap(), s.as_ref().unwrap());
                assert_eq!(r.value().to_bits(), s.value().to_bits());
            }
        }
        // End to end: the public entry point (which takes the staged path
        // here) agrees with itself across worker counts.
        let reference = {
            let eval = Evaluator::with_options(&assembly, options);
            binding_sensitivities_with_workers(&eval, &service, &env, 1).unwrap()
        };
        for workers in [2usize, 5] {
            let eval = Evaluator::with_options(&assembly, options);
            let got = binding_sensitivities_with_workers(&eval, &service, &env, workers).unwrap();
            assert_eq!(reference.len(), got.len());
            for (r, g) in reference.iter().zip(&got) {
                assert_eq!(r.name, g.name);
                assert_eq!(r.derivative.to_bits(), g.derivative.to_bits());
                assert_eq!(r.elasticity.to_bits(), g.elasticity.to_bits());
            }
        }
    }

    #[test]
    fn sensitivities_sorted_by_elasticity() {
        let params = paper::PaperParams::default();
        let assembly = paper::remote_assembly(&params).unwrap();
        let eval = Evaluator::new(&assembly);
        let env = paper::search_bindings(4.0, 1024.0, 1.0);
        let sens = binding_sensitivities(&eval, &paper::SEARCH.into(), &env).unwrap();
        for w in sens.windows(2) {
            assert!(w[0].elasticity.abs() >= w[1].elasticity.abs());
        }
    }
}
