//! Sensitivity analysis: how strongly the predicted unreliability reacts to
//! each input.
//!
//! Two flavors:
//!
//! - [`binding_sensitivities`]: finite-difference derivatives and
//!   elasticities of `Pfail` with respect to the **formal parameters** of the
//!   invocation (e.g. the list size of the paper's search service);
//! - [`finite_difference`]: a generic helper for sensitivities with respect
//!   to **model attributes** (failure rates, speeds, bandwidths) — the caller
//!   supplies a closure that rebuilds the assembly with a perturbed
//!   attribute, which is how the Figure 6 harness explores γ and ϕ₁.

use archrel_expr::Bindings;
use archrel_model::{Assembly, ServiceId};

use crate::batch::blocked_probabilities;
use crate::{symbolic, Evaluator, Result};

/// Sensitivity of `Pfail` with respect to one input.
#[derive(Debug, Clone, PartialEq)]
pub struct Sensitivity {
    /// Name of the input (binding name or caller-chosen attribute label).
    pub name: String,
    /// Value at which the derivative was taken.
    pub at: f64,
    /// Central finite-difference derivative `dPfail/dx`.
    pub derivative: f64,
    /// Elasticity `(dPfail/dx) · (x / Pfail)` — the unitless "% change in
    /// unreliability per % change in input"; `0` when `Pfail` is zero.
    pub elasticity: f64,
}

/// Relative step used for central differences.
const REL_STEP: f64 = 1e-4;

/// Central finite-difference derivative of an arbitrary scalar map, plus the
/// elasticity at `x0`.
///
/// # Errors
///
/// Propagates errors from `f`.
pub fn finite_difference(
    name: impl Into<String>,
    x0: f64,
    mut f: impl FnMut(f64) -> Result<f64>,
) -> Result<Sensitivity> {
    let h = step(x0);
    let up = f(x0 + h)?;
    let down = f(x0 - h)?;
    let value = f(x0)?;
    let derivative = (up - down) / (2.0 * h);
    let elasticity = if value == 0.0 {
        0.0
    } else {
        derivative * x0 / value
    };
    Ok(Sensitivity {
        name: name.into(),
        at: x0,
        derivative,
        elasticity,
    })
}

/// Sensitivities of `Pfail(service, env)` with respect to every binding in
/// `env`, sorted by descending absolute elasticity (most influential first).
///
/// Runs on the batch path: the finite-difference stencil (two perturbed
/// probes per binding plus the shared center point) is expanded up front and
/// evaluated across worker threads against one shared evaluator, so probes
/// that resolve to the same `(service, parameters)` fingerprint — notably
/// every binding's center probe — are solved once. The evaluator's
/// [`crate::SolverPolicy`] (and every other [`crate::EvalOptions`] field)
/// applies to all probes: build the evaluator with
/// [`Evaluator::with_options`] to force a solver. Because all probes run on
/// **one** evaluator, they also share its compiled-plan cache: a stencil
/// only perturbs parameter *values*, so under [`crate::SolverPolicy::Auto`]
/// (after promotion) or [`crate::SolverPolicy::Compiled`] every probe after
/// the first replays a compiled evaluation tape instead of re-eliminating
/// the chain.
///
/// # Errors
///
/// Propagates evaluation errors (e.g. a perturbed parameter leaving a
/// function's domain).
pub fn binding_sensitivities(
    evaluator: &Evaluator<'_>,
    service: &ServiceId,
    env: &Bindings,
) -> Result<Vec<Sensitivity>> {
    binding_sensitivities_with_workers(evaluator, service, env, default_workers())
}

/// [`binding_sensitivities`] with an explicit worker-thread count.
///
/// # Errors
///
/// See [`binding_sensitivities`].
pub fn binding_sensitivities_with_workers(
    evaluator: &Evaluator<'_>,
    service: &ServiceId,
    env: &Bindings,
    workers: usize,
) -> Result<Vec<Sensitivity>> {
    struct Probe {
        name: String,
        x0: f64,
        h: f64,
        // Probe value for each stencil point: [x0 + h, x0 - h, x0].
        envs: [Bindings; 3],
    }
    let probes: Vec<Probe> = env
        .iter()
        .map(|(name, x0)| {
            let h = step(x0);
            let at = |x: f64| {
                let mut perturbed = env.clone();
                perturbed.insert(name, x);
                perturbed
            };
            Probe {
                name: name.to_string(),
                x0,
                h,
                envs: [at(x0 + h), at(x0 - h), at(x0)],
            }
        })
        .collect();

    // All stencil points target one service: the blocked path packs them
    // into lane-sized parameter blocks per compiled structure, so a whole
    // stencil's probes are replayed by a handful of tape passes. The probes
    // only move the stencil's own parameters, so declare them varied:
    // services fed purely by constants pin outside the dirty cone when the
    // assembly-program path answers.
    let varied: Vec<String> = env.iter().map(|(name, _)| name.to_string()).collect();
    evaluator.declare_varied(service, &varied);
    let flat: Vec<&Bindings> = probes.iter().flat_map(|p| p.envs.iter()).collect();
    let values = blocked_probabilities(evaluator, service, &flat, workers);
    let mut values = values.into_iter().map(|r| r.map(|p| p.value()));
    let mut out = Vec::with_capacity(probes.len());
    for probe in &probes {
        let up = values.next().expect("one value per probe")?;
        let down = values.next().expect("one value per probe")?;
        let value = values.next().expect("one value per probe")?;
        let derivative = (up - down) / (2.0 * probe.h);
        let elasticity = if value == 0.0 {
            0.0
        } else {
            derivative * probe.x0 / value
        };
        out.push(Sensitivity {
            name: probe.name.clone(),
            at: probe.x0,
            derivative,
            elasticity,
        });
    }
    out.sort_by(|a, b| {
        b.elasticity
            .abs()
            .partial_cmp(&a.elasticity.abs())
            .expect("elasticities are finite")
    });
    Ok(out)
}

fn step(x0: f64) -> f64 {
    if x0 == 0.0 {
        REL_STEP
    } else {
        x0.abs() * REL_STEP
    }
}

pub(crate) fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// **Exact** sensitivities of `Pfail(service, ·)` with respect to every
/// formal parameter, obtained by symbolically differentiating the
/// closed-form failure expression (no truncation error, unlike
/// [`binding_sensitivities`]). Requires an acyclic assembly (symbolic
/// evaluation's domain); results are sorted by descending absolute
/// elasticity.
///
/// # Errors
///
/// - [`crate::CoreError::SymbolicUnsupported`] for recursive assemblies or
///   cyclic flows;
/// - expression errors when a derivative cannot be formed (`min`/`max`
///   kinks) or evaluated at `env`.
pub fn symbolic_sensitivities(
    assembly: &Assembly,
    service: &ServiceId,
    env: &Bindings,
) -> Result<Vec<Sensitivity>> {
    let formula = symbolic::failure_expression(assembly, service)?;
    let value = formula.eval(env)?;
    let mut out = Vec::new();
    for param in formula.free_params() {
        let x0 = env.get(&param).ok_or_else(|| {
            crate::CoreError::Expr(archrel_expr::ExprError::UnboundParameter {
                name: param.clone(),
            })
        })?;
        let derivative_expr = formula.differentiate(&param)?;
        let derivative = derivative_expr.eval(env)?;
        let elasticity = if value == 0.0 {
            0.0
        } else {
            derivative * x0 / value
        };
        out.push(Sensitivity {
            name: param,
            at: x0,
            derivative,
            elasticity,
        });
    }
    out.sort_by(|a, b| {
        b.elasticity
            .abs()
            .partial_cmp(&a.elasticity.abs())
            .expect("elasticities are finite")
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use archrel_model::paper;

    #[test]
    fn finite_difference_of_quadratic() {
        let s = finite_difference("x", 3.0, |x| Ok(x * x)).unwrap();
        assert!((s.derivative - 6.0).abs() < 1e-6);
        // elasticity of x^2 is 2 everywhere.
        assert!((s.elasticity - 2.0).abs() < 1e-6);
    }

    #[test]
    fn finite_difference_at_zero_uses_absolute_step() {
        let s = finite_difference("x", 0.0, |x| Ok(2.0 * x)).unwrap();
        assert!((s.derivative - 2.0).abs() < 1e-9);
        assert_eq!(s.elasticity, 0.0);
    }

    #[test]
    fn list_size_dominates_search_sensitivity() {
        let params = paper::PaperParams::default();
        let assembly = paper::local_assembly(&params).unwrap();
        let eval = Evaluator::new(&assembly);
        let env = paper::search_bindings(4.0, 4096.0, 1.0);
        let sens = binding_sensitivities(&eval, &paper::SEARCH.into(), &env).unwrap();
        // The most influential parameter is the list size: the sort leg costs
        // list·log(list) operations while elem/res only feed the connector.
        assert_eq!(sens[0].name, "list");
        assert!(
            sens[0].derivative > 0.0,
            "unreliability grows with list size"
        );
    }

    #[test]
    fn gamma_sensitivity_via_attribute_closure() {
        // Sensitivity w.r.t. the network failure rate γ by rebuilding the
        // remote assembly per probe.
        let base = paper::PaperParams::default();
        let env = paper::search_bindings(4.0, 2048.0, 1.0);
        let s = finite_difference("gamma", base.gamma, |gamma| {
            let params = base.clone().with_gamma(gamma);
            let assembly = paper::remote_assembly(&params).unwrap();
            Ok(Evaluator::new(&assembly)
                .failure_probability(&paper::SEARCH.into(), &env)?
                .value())
        })
        .unwrap();
        assert!(s.derivative > 0.0, "unreliability grows with γ");
        assert!(s.elasticity > 0.0);
    }

    #[test]
    fn symbolic_sensitivities_match_finite_differences() {
        let params = paper::PaperParams::default();
        let assembly = paper::remote_assembly(&params).unwrap();
        let env = paper::search_bindings(4.0, 2048.0, 1.0);
        let exact = symbolic_sensitivities(&assembly, &paper::SEARCH.into(), &env).unwrap();
        let eval = Evaluator::new(&assembly);
        let approx = binding_sensitivities(&eval, &paper::SEARCH.into(), &env).unwrap();
        for e in &exact {
            let a = approx
                .iter()
                .find(|s| s.name == e.name)
                .expect("same parameter set");
            let scale = e.derivative.abs().max(1e-12);
            assert!(
                (e.derivative - a.derivative).abs() / scale < 1e-3,
                "{}: exact {} vs finite-difference {}",
                e.name,
                e.derivative,
                a.derivative
            );
        }
        // list dominates, exactly as in the finite-difference ranking.
        assert_eq!(exact[0].name, "list");
    }

    #[test]
    fn symbolic_sensitivities_reject_recursive_assemblies() {
        use archrel_expr::Expr;
        use archrel_model::{
            AssemblyBuilder, CompositeService, FlowBuilder, FlowState, Service, ServiceCall,
            StateId,
        };
        let make = |name: &str, target: &str| {
            let flow = FlowBuilder::new()
                .state(FlowState::new("1", vec![ServiceCall::new(target)]))
                .transition(StateId::Start, "1", Expr::one())
                .transition("1", StateId::End, Expr::one())
                .build()
                .unwrap();
            Service::Composite(CompositeService::new(name, vec![], flow).unwrap())
        };
        let assembly = AssemblyBuilder::new()
            .service(make("a", "b"))
            .service(make("b", "a"))
            .build()
            .unwrap();
        assert!(symbolic_sensitivities(&assembly, &"a".into(), &Bindings::new()).is_err());
    }

    #[test]
    fn worker_count_does_not_change_sensitivities() {
        let params = paper::PaperParams::default();
        let assembly = paper::remote_assembly(&params).unwrap();
        let env = paper::search_bindings(4.0, 2048.0, 1.0);
        let reference = {
            let eval = Evaluator::new(&assembly);
            binding_sensitivities_with_workers(&eval, &paper::SEARCH.into(), &env, 1).unwrap()
        };
        for workers in [2, 8] {
            let eval = Evaluator::new(&assembly);
            let got =
                binding_sensitivities_with_workers(&eval, &paper::SEARCH.into(), &env, workers)
                    .unwrap();
            assert_eq!(reference.len(), got.len());
            for (r, g) in reference.iter().zip(&got) {
                assert_eq!(r.name, g.name);
                assert_eq!(r.derivative.to_bits(), g.derivative.to_bits());
                assert_eq!(r.elasticity.to_bits(), g.elasticity.to_bits());
            }
        }
    }

    #[test]
    fn solver_policy_flows_through_the_shared_evaluator() {
        use crate::{EvalOptions, SolverPolicy};
        let params = paper::PaperParams::default();
        let assembly = paper::remote_assembly(&params).unwrap();
        let env = paper::search_bindings(4.0, 2048.0, 1.0);
        let dense = {
            let eval = Evaluator::with_options(
                &assembly,
                EvalOptions {
                    solver: SolverPolicy::Dense,
                    ..EvalOptions::default()
                },
            );
            binding_sensitivities(&eval, &paper::SEARCH.into(), &env).unwrap()
        };
        let sparse = {
            let eval = Evaluator::with_options(
                &assembly,
                EvalOptions {
                    solver: SolverPolicy::Sparse,
                    ..EvalOptions::default()
                },
            );
            binding_sensitivities(&eval, &paper::SEARCH.into(), &env).unwrap()
        };
        assert_eq!(dense.len(), sparse.len());
        for (d, s) in dense.iter().zip(&sparse) {
            assert_eq!(d.name, s.name);
            let scale = d.derivative.abs().max(1e-12);
            assert!(
                (d.derivative - s.derivative).abs() / scale < 1e-6,
                "{}: dense {} vs sparse {}",
                d.name,
                d.derivative,
                s.derivative
            );
        }
    }

    #[test]
    fn sensitivities_sorted_by_elasticity() {
        let params = paper::PaperParams::default();
        let assembly = paper::remote_assembly(&params).unwrap();
        let eval = Evaluator::new(&assembly);
        let env = paper::search_bindings(4.0, 1024.0, 1.0);
        let sens = binding_sensitivities(&eval, &paper::SEARCH.into(), &env).unwrap();
        for w in sens.windows(2) {
            assert!(w[0].elasticity.abs() >= w[1].elasticity.abs());
        }
    }
}
