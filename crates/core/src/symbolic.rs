//! Symbolic reliability evaluation — the paper's §4 style.
//!
//! For acyclic assemblies with acyclic flows, the engine can produce the
//! failure probability of a service as a **closed-form expression over its
//! formal parameters** (like the paper's eqs. 15–22), by substituting each
//! callee's symbolic formula with the caller's actual-parameter expressions
//! (`ap_j(fp)`). The result can be printed, simplified, differentiated by
//! sweeping, and re-evaluated cheaply across parameter sweeps.
//!
//! Cyclic flows and recursive assemblies need the numeric engine
//! ([`crate::Evaluator`]); requesting a symbolic formula for them yields
//! [`CoreError::SymbolicUnsupported`].

use std::collections::{BTreeMap, HashMap};

use archrel_expr::Expr;
use archrel_model::{
    Assembly, CompletionModel, DependencyModel, FailureModel, InternalFailureModel, Service,
    ServiceCall, ServiceId, StateId,
};

use crate::{CoreError, Result};

/// Maximum number of requests in a state for which the symbolic k-out-of-n
/// expansion (a sum over subsets) is attempted.
const MAX_SYMBOLIC_QUORUM_REQUESTS: usize = 12;

/// Produces the symbolic failure probability `Pfail(S, fp)` of `service` as
/// an expression over its formal parameters.
///
/// # Errors
///
/// - [`CoreError::SymbolicUnsupported`] for recursive assemblies, cyclic
///   flows, or oversized k-out-of-n states;
/// - model errors for dangling references.
///
/// # Examples
///
/// ```
/// use archrel_core::symbolic;
/// use archrel_model::paper;
///
/// # fn main() -> Result<(), archrel_core::CoreError> {
/// let assembly = paper::local_assembly(&paper::PaperParams::default()).unwrap();
/// let formula = symbolic::failure_expression(&assembly, &paper::SORT_LOCAL.into())?;
/// // Same shape as eq. 18: depends only on `list`.
/// assert_eq!(formula.free_params().into_iter().collect::<Vec<_>>(), vec!["list"]);
/// # Ok(())
/// # }
/// ```
pub fn failure_expression(assembly: &Assembly, service: &ServiceId) -> Result<Expr> {
    let mut ctx = SymbolicCtx {
        assembly,
        stack: Vec::new(),
        memo: HashMap::new(),
    };
    Ok(ctx.service_failure(service)?.simplify())
}

struct SymbolicCtx<'a> {
    assembly: &'a Assembly,
    stack: Vec<ServiceId>,
    memo: HashMap<ServiceId, Expr>,
}

impl SymbolicCtx<'_> {
    fn service_failure(&mut self, id: &ServiceId) -> Result<Expr> {
        if let Some(e) = self.memo.get(id) {
            return Ok(e.clone());
        }
        if self.stack.contains(id) {
            return Err(CoreError::SymbolicUnsupported {
                service: id.to_string(),
                reason: "recursive assembly; use the numeric fixed-point evaluator".to_string(),
            });
        }
        self.stack.push(id.clone());
        let result = self.service_failure_inner(id);
        self.stack.pop();
        let e = result?;
        self.memo.insert(id.clone(), e.clone());
        Ok(e)
    }

    fn service_failure_inner(&mut self, id: &ServiceId) -> Result<Expr> {
        match self.assembly.require(id)? {
            Service::Simple(simple) => {
                let d = Expr::param(simple.formal_param());
                Ok(match *simple.model() {
                    FailureModel::ExponentialRate { rate, capacity } => {
                        Expr::one() - (-(Expr::num(rate / capacity) * d)).exp()
                    }
                    FailureModel::Perfect => Expr::zero(),
                    FailureModel::Constant { probability } => Expr::num(probability),
                    FailureModel::PerUnit { probability } => {
                        Expr::one() - Expr::num(1.0 - probability).pow(d)
                    }
                })
            }
            Service::Composite(composite) => {
                // Per-state failure expressions in the *caller's* formals.
                let mut state_failures: BTreeMap<StateId, Expr> = BTreeMap::new();
                for state in composite.flow().states() {
                    let mut request_failures: Vec<(Expr, Expr)> = Vec::new(); // (int, ext)
                    for call in &state.calls {
                        request_failures.push(self.request_failure(call)?);
                    }
                    let f = state_failure_expr(
                        state.completion,
                        state.dependency,
                        &request_failures,
                        composite.id(),
                    )?;
                    state_failures.insert(state.id.clone(), f);
                }
                flow_failure_expr(composite, &state_failures)
            }
        }
    }

    /// Returns `(Pfail_int, Pfail_ext)` of one request, both as expressions
    /// over the caller's formal parameters.
    fn request_failure(&mut self, call: &ServiceCall) -> Result<(Expr, Expr)> {
        // Callee formula in callee formals, substituted with ap_j(fp).
        let substitute = |formula: &Expr, actuals: &[(String, Expr)]| -> Expr {
            let pairs: Vec<(&str, &Expr)> = actuals.iter().map(|(n, e)| (n.as_str(), e)).collect();
            formula.substitute_all(&pairs)
        };

        let target_formula = self.service_failure(&call.target)?;
        let target = substitute(&target_formula, &call.actual_params);

        let connector = match &call.connector {
            None => Expr::zero(),
            Some(binding) => {
                let f = self.service_failure(&binding.connector)?;
                substitute(&f, &binding.actual_params)
            }
        };
        // eq. 13: ext = 1 - (1 - target)(1 - connector).
        let external = Expr::one() - (Expr::one() - target) * (Expr::one() - connector);

        let internal = match call.internal_failure {
            InternalFailureModel::None => Expr::zero(),
            InternalFailureModel::Constant { probability } => Expr::num(probability),
            InternalFailureModel::PerOperation { phi } => {
                // eq. 14 with N = the request's first actual parameter.
                let demand = call
                    .actual_params
                    .first()
                    .map(|(_, e)| e.clone())
                    .unwrap_or_else(Expr::zero);
                Expr::one() - Expr::num(1.0 - phi).pow(demand)
            }
        };
        Ok((internal, external))
    }
}

/// Product of `1 - e` over expressions.
fn product_of_complements<'e>(exprs: impl Iterator<Item = &'e Expr>) -> Expr {
    exprs.fold(Expr::one(), |acc, e| acc * (Expr::one() - e.clone()))
}

/// Product of the expressions themselves.
fn product<'e>(exprs: impl Iterator<Item = &'e Expr>) -> Expr {
    exprs.fold(Expr::one(), |acc, e| acc * e.clone())
}

/// Symbolic `p(i, Fail)` per the paper's equations (mirrors
/// [`crate::state_failure_probability`]).
fn state_failure_expr(
    completion: CompletionModel,
    dependency: DependencyModel,
    requests: &[(Expr, Expr)],
    service: &ServiceId,
) -> Result<Expr> {
    if requests.is_empty() {
        return Ok(Expr::zero());
    }
    let n = requests.len();
    let total_failures: Vec<Expr> = requests
        .iter()
        // eq. 8: 1 - (1-int)(1-ext)
        .map(|(int, ext)| Expr::one() - (Expr::one() - int.clone()) * (Expr::one() - ext.clone()))
        .collect();

    let expr = match (completion, dependency) {
        (CompletionModel::And, DependencyModel::Independent) => {
            // eq. 6: 1 - prod(1 - Pr{fail}).
            Expr::one() - product_of_complements(total_failures.iter())
        }
        (CompletionModel::Or, DependencyModel::Independent) => {
            // eq. 7: prod Pr{fail}.
            product(total_failures.iter())
        }
        (CompletionModel::And, DependencyModel::Shared) => {
            // eq. 11: 1 - prod(1-int) * prod(1-ext).
            Expr::one()
                - product_of_complements(requests.iter().map(|(i, _)| i))
                    * product_of_complements(requests.iter().map(|(_, e)| e))
        }
        (CompletionModel::Or, DependencyModel::Shared) => {
            // eq. 12: 1 - prod(1-ext) * (1 - prod(int)).
            Expr::one()
                - product_of_complements(requests.iter().map(|(_, e)| e))
                    * (Expr::one() - product(requests.iter().map(|(i, _)| i)))
        }
        (CompletionModel::KOutOfN { k }, dep) => {
            if n > MAX_SYMBOLIC_QUORUM_REQUESTS {
                return Err(CoreError::SymbolicUnsupported {
                    service: service.to_string(),
                    reason: format!(
                        "symbolic k-out-of-n expansion over {n} requests exceeds the cap of {MAX_SYMBOLIC_QUORUM_REQUESTS}"
                    ),
                });
            }
            let successes: Vec<Expr> = match dep {
                DependencyModel::Independent => total_failures
                    .iter()
                    .map(|f| Expr::one() - f.clone())
                    .collect(),
                DependencyModel::Shared => requests
                    .iter()
                    .map(|(i, _)| Expr::one() - i.clone())
                    .collect(),
            };
            let at_least_k = subset_at_least(k, &successes);
            match dep {
                DependencyModel::Independent => Expr::one() - at_least_k,
                DependencyModel::Shared => {
                    let no_ext = product_of_complements(requests.iter().map(|(_, e)| e));
                    Expr::one() - no_ext * at_least_k
                }
            }
        }
    };
    Ok(expr)
}

/// Symbolic Poisson-binomial tail: probability that at least `k` of the
/// independent events with success expressions `s` occur, as a sum over
/// outcome subsets.
fn subset_at_least(k: usize, s: &[Expr]) -> Expr {
    let n = s.len();
    let mut total = Expr::zero();
    for mask in 0u32..(1 << n) {
        if (mask.count_ones() as usize) < k {
            continue;
        }
        let mut term = Expr::one();
        for (i, si) in s.iter().enumerate() {
            term = if mask & (1 << i) != 0 {
                term * si.clone()
            } else {
                term * (Expr::one() - si.clone())
            };
        }
        total = total + term;
    }
    total
}

/// Success probability `p*(Start → End)` of an acyclic flow, symbolically:
/// `success(i) = (1 − f_i) · Σ_j p(i, j) · success(j)` with `success(End) = 1`
/// (and no failure in `Start`). Returns `Pfail = 1 − success(Start)`.
fn flow_failure_expr(
    composite: &archrel_model::CompositeService,
    state_failures: &BTreeMap<StateId, Expr>,
) -> Result<Expr> {
    let flow = composite.flow();

    // Memoized DFS with cycle detection over flow states.
    fn success(
        flow: &archrel_model::Flow,
        state: &StateId,
        failures: &BTreeMap<StateId, Expr>,
        memo: &mut HashMap<StateId, Expr>,
        visiting: &mut Vec<StateId>,
        service: &ServiceId,
    ) -> Result<Expr> {
        if *state == StateId::End {
            return Ok(Expr::one());
        }
        if let Some(e) = memo.get(state) {
            return Ok(e.clone());
        }
        if visiting.contains(state) {
            return Err(CoreError::SymbolicUnsupported {
                service: service.to_string(),
                reason: format!(
                    "flow contains a cycle through state `{state}`; use the numeric evaluator"
                ),
            });
        }
        visiting.push(state.clone());
        let mut continuation = Expr::zero();
        for t in flow.outgoing(state) {
            let succ = success(flow, &t.to, failures, memo, visiting, service)?;
            continuation = continuation + t.probability.clone() * succ;
        }
        visiting.pop();
        let result = match state {
            StateId::Start => continuation, // no failure in Start
            other => {
                let f = failures.get(other).cloned().unwrap_or_else(Expr::zero);
                (Expr::one() - f) * continuation
            }
        };
        memo.insert(state.clone(), result.clone());
        Ok(result)
    }

    let mut memo = HashMap::new();
    let mut visiting = Vec::new();
    let s = success(
        flow,
        &StateId::Start,
        state_failures,
        &mut memo,
        &mut visiting,
        composite.id(),
    )?;
    Ok(Expr::one() - s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Evaluator;
    use archrel_expr::Bindings;
    use archrel_model::{paper, AssemblyBuilder, CompositeService, FlowBuilder, FlowState};

    /// Symbolic and numeric evaluation agree on the full paper example.
    #[test]
    fn symbolic_matches_numeric_on_paper_example() {
        for (gamma, phi1) in [(5e-3, 1e-6), (2.5e-2, 5e-6)] {
            let params = paper::PaperParams::default()
                .with_gamma(gamma)
                .with_phi_sort1(phi1);
            for assembly in [
                paper::local_assembly(&params).unwrap(),
                paper::remote_assembly(&params).unwrap(),
            ] {
                let formula = failure_expression(&assembly, &paper::SEARCH.into()).unwrap();
                let eval = Evaluator::new(&assembly);
                for list in [64.0, 1024.0, 8192.0] {
                    let env = paper::search_bindings(4.0, list, 1.0);
                    let symbolic = formula.eval(&env).unwrap();
                    let numeric = eval
                        .failure_probability(&paper::SEARCH.into(), &env)
                        .unwrap()
                        .value();
                    assert!(
                        (symbolic - numeric).abs() < 1e-12,
                        "γ={gamma} ϕ₁={phi1} list={list}: {symbolic} vs {numeric}"
                    );
                }
            }
        }
    }

    #[test]
    fn simple_service_formulas() {
        let assembly = paper::remote_assembly(&paper::PaperParams::default()).unwrap();
        let cpu = failure_expression(&assembly, &paper::CPU1.into()).unwrap();
        assert_eq!(cpu.free_params().into_iter().collect::<Vec<_>>(), vec!["n"]);
        let net = failure_expression(&assembly, &paper::NET.into()).unwrap();
        assert_eq!(net.free_params().into_iter().collect::<Vec<_>>(), vec!["b"]);
        // Perfect connectors collapse to the constant zero.
        let loc = failure_expression(&assembly, &paper::LOC1.into()).unwrap();
        assert_eq!(loc, Expr::zero());
    }

    #[test]
    fn search_formula_mentions_only_search_formals() {
        let assembly = paper::remote_assembly(&paper::PaperParams::default()).unwrap();
        let formula = failure_expression(&assembly, &paper::SEARCH.into()).unwrap();
        let free = formula.free_params();
        for p in &free {
            assert!(
                ["elem", "list", "res"].contains(&p.as_str()),
                "unexpected free parameter {p}"
            );
        }
    }

    #[test]
    fn recursive_assembly_is_unsupported() {
        let make = |name: &str, target: &str| {
            let flow = FlowBuilder::new()
                .state(FlowState::new(
                    "1",
                    vec![archrel_model::ServiceCall::new(target)],
                ))
                .transition(StateId::Start, "1", Expr::one())
                .transition("1", StateId::End, Expr::one())
                .build()
                .unwrap();
            Service::Composite(CompositeService::new(name, vec![], flow).unwrap())
        };
        let assembly = AssemblyBuilder::new()
            .service(make("a", "b"))
            .service(make("b", "a"))
            .build()
            .unwrap();
        let err = failure_expression(&assembly, &"a".into()).unwrap_err();
        assert!(matches!(err, CoreError::SymbolicUnsupported { .. }));
    }

    #[test]
    fn cyclic_flow_is_unsupported() {
        let flow = FlowBuilder::new()
            .state(FlowState::new("a", vec![]))
            .transition(StateId::Start, "a", Expr::one())
            .transition("a", "a", Expr::num(0.5))
            .transition("a", StateId::End, Expr::num(0.5))
            .build()
            .unwrap();
        let assembly = AssemblyBuilder::new()
            .service(Service::Composite(
                CompositeService::new("looper", vec![], flow).unwrap(),
            ))
            .build()
            .unwrap();
        let err = failure_expression(&assembly, &"looper".into()).unwrap_err();
        assert!(matches!(err, CoreError::SymbolicUnsupported { .. }));
    }

    #[test]
    fn k_out_of_n_symbolic_matches_numeric() {
        use archrel_model::{catalog, CompletionModel, DependencyModel, ServiceCall};
        let calls: Vec<ServiceCall> = (0..3)
            .map(|i| ServiceCall::new(format!("s{i}")).with_param("x", Expr::num(1.0)))
            .collect();
        let flow = FlowBuilder::new()
            .state(
                FlowState::new("q", calls)
                    .with_completion(CompletionModel::KOutOfN { k: 2 })
                    .with_dependency(DependencyModel::Independent),
            )
            .transition(StateId::Start, "q", Expr::one())
            .transition("q", StateId::End, Expr::one())
            .build()
            .unwrap();
        let mut builder = AssemblyBuilder::new();
        for (i, p) in [0.1, 0.2, 0.3].iter().enumerate() {
            builder = builder.service(catalog::blackbox_service(format!("s{i}"), "x", *p));
        }
        let assembly = builder
            .service(Service::Composite(
                CompositeService::new("quorum", vec![], flow).unwrap(),
            ))
            .build()
            .unwrap();
        let formula = failure_expression(&assembly, &"quorum".into()).unwrap();
        let symbolic = formula.eval(&Bindings::new()).unwrap();
        let numeric = Evaluator::new(&assembly)
            .failure_probability(&"quorum".into(), &Bindings::new())
            .unwrap()
            .value();
        assert!((symbolic - numeric).abs() < 1e-12);
    }

    #[test]
    fn formula_reuse_is_cheaper_than_it_looks() {
        // The memo ensures shared services are expanded once.
        let assembly = paper::remote_assembly(&paper::PaperParams::default()).unwrap();
        let formula = failure_expression(&assembly, &paper::SEARCH.into()).unwrap();
        // A formula of sane size (simplification keeps it bounded).
        assert!(formula.node_count() < 2000, "{}", formula.node_count());
    }
}
