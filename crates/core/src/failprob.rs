//! Per-state failure probability `p(i, Fail)` — the paper's equations
//! (4)–(13) plus the k-out-of-n extension.
//!
//! A flow state holds requests `Ai1 ... Ain`; each request can fail
//! *internally* (in the caller's own operations, `Pfail_int`) or
//! *externally* (in the requested service or its connector, `Pfail_ext`,
//! eq. 13). How the individual failures combine into the state's failure
//! probability depends on the completion model (AND / OR / k-out-of-n) and
//! on whether the requests share their external service (§3.2).

use archrel_model::{CompletionModel, DependencyModel, ModelError, Probability};

use crate::Result;

/// Failure probabilities of one service request, already resolved:
/// `internal` is `Pfail_int(Aij)`, `external` is `Pfail_ext(Aij)` — the
/// combined connector + target failure of eq. 13.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestFailure {
    /// Probability of an internal (caller-side) failure.
    pub internal: Probability,
    /// Probability of an external (connector or target) failure.
    pub external: Probability,
}

impl RequestFailure {
    /// Creates a request-failure record.
    pub fn new(internal: Probability, external: Probability) -> Self {
        RequestFailure { internal, external }
    }

    /// Total failure probability of the request under independence of its
    /// internal and external failure causes (eq. 8):
    /// `Pr{fail} = 1 − (1 − Pint)(1 − Pext)`.
    pub fn total(&self) -> Probability {
        self.internal.either(self.external)
    }

    /// Combines a target-service failure probability and a connector failure
    /// probability into the external failure probability of eq. 13:
    /// `Pfail_ext = 1 − (1 − Pfail(S, ap))(1 − Pfail(C, [S, ap]))`.
    pub fn external_of(target: Probability, connector: Probability) -> Probability {
        target.either(connector)
    }
}

/// Computes `p(i, Fail)` for a state with the given requests, completion
/// model, and dependency model.
///
/// - **Independent** (no sharing): AND is eq. 6, OR is eq. 7, k-out-of-n is
///   the Poisson-binomial tail over per-request success probabilities.
/// - **Shared** (all requests address one service through one connector):
///   AND is eq. 11, OR is eq. 12. The general k-out-of-n form conditions on
///   the external-failure event exactly as eqs. 9–10: with no external
///   failure only internal failures matter (independent); with an external
///   failure every request fails.
///
/// A state with no requests never fails (`p = 0`): it models pure routing.
///
/// # Errors
///
/// Returns [`ModelError::InvalidKOutOfN`] (wrapped) when `k` is out of
/// range — normally prevented by flow validation.
pub fn state_failure_probability(
    completion: CompletionModel,
    dependency: DependencyModel,
    requests: &[RequestFailure],
) -> Result<Probability> {
    if requests.is_empty() {
        return Ok(Probability::ZERO);
    }
    let k = match completion {
        CompletionModel::And => requests.len(),
        CompletionModel::Or => 1,
        CompletionModel::KOutOfN { k } => {
            if k == 0 || k > requests.len() {
                return Err(ModelError::InvalidKOutOfN {
                    k,
                    n: requests.len(),
                }
                .into());
            }
            k
        }
    };
    let p = match dependency {
        DependencyModel::Independent => {
            // Success probability of each request: (1 - Pint)(1 - Pext).
            let successes: Vec<Probability> =
                requests.iter().map(|r| r.total().complement()).collect();
            Probability::at_least(k, &successes).complement()
        }
        DependencyModel::Shared => {
            // Condition on the external-failure event (eqs. 9-10):
            //   P(no external failure) = prod_j (1 - Pext_j);
            //   given an external failure, all requests fail (no repair);
            //   given none, requests fail independently with Pint_j.
            let no_ext = Probability::all(requests.iter().map(|r| r.external.complement()));
            let internal_successes: Vec<Probability> =
                requests.iter().map(|r| r.internal.complement()).collect();
            let k_succeed_given_no_ext = Probability::at_least(k, &internal_successes);
            no_ext.both(k_succeed_given_no_ext).complement()
        }
    };
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    fn req(int: f64, ext: f64) -> RequestFailure {
        RequestFailure::new(p(int), p(ext))
    }

    const EPS: f64 = 1e-12;

    #[test]
    fn eq8_total_failure_of_one_request() {
        let r = req(0.1, 0.2);
        // 1 - 0.9 * 0.8 = 0.28
        assert!((r.total().value() - 0.28).abs() < EPS);
    }

    #[test]
    fn eq13_external_combination() {
        let e = RequestFailure::external_of(p(0.1), p(0.2));
        assert!((e.value() - 0.28).abs() < EPS);
    }

    #[test]
    fn empty_state_never_fails() {
        let f = state_failure_probability(CompletionModel::And, DependencyModel::Independent, &[])
            .unwrap();
        assert!(f.is_zero());
    }

    #[test]
    fn eq6_and_independent() {
        let rs = [req(0.1, 0.2), req(0.0, 0.3)];
        let f = state_failure_probability(CompletionModel::And, DependencyModel::Independent, &rs)
            .unwrap();
        // 1 - (1-0.28)(1-0.3)
        assert!((f.value() - (1.0 - 0.72 * 0.7)).abs() < EPS);
    }

    #[test]
    fn eq7_or_independent() {
        let rs = [req(0.1, 0.2), req(0.0, 0.3)];
        let f = state_failure_probability(CompletionModel::Or, DependencyModel::Independent, &rs)
            .unwrap();
        // product of per-request failures: 0.28 * 0.3
        assert!((f.value() - 0.28 * 0.3).abs() < EPS);
    }

    #[test]
    fn eq11_and_shared() {
        let rs = [req(0.1, 0.2), req(0.05, 0.25)];
        let f =
            state_failure_probability(CompletionModel::And, DependencyModel::Shared, &rs).unwrap();
        // 1 - prod(1-Pint) * prod(1-Pext)
        let expected = 1.0 - (0.9 * 0.95) * (0.8 * 0.75);
        assert!((f.value() - expected).abs() < EPS);
    }

    #[test]
    fn eq12_or_shared() {
        let rs = [req(0.1, 0.2), req(0.05, 0.25)];
        let f =
            state_failure_probability(CompletionModel::Or, DependencyModel::Shared, &rs).unwrap();
        // 1 - prod(1-Pext) * (1 - prod(Pint))
        let expected = 1.0 - (0.8 * 0.75) * (1.0 - 0.1 * 0.05);
        assert!((f.value() - expected).abs() < EPS);
    }

    /// The paper's §3.2 analytical observation: under fail-stop/no-repair,
    /// AND completion is *unaffected* by sharing (eq. 11 equals eq. 6+8).
    #[test]
    fn and_is_invariant_under_sharing() {
        let rs = [req(0.1, 0.2), req(0.05, 0.2), req(0.3, 0.2)];
        let independent =
            state_failure_probability(CompletionModel::And, DependencyModel::Independent, &rs)
                .unwrap();
        let shared =
            state_failure_probability(CompletionModel::And, DependencyModel::Shared, &rs).unwrap();
        assert!((independent.value() - shared.value()).abs() < EPS);
    }

    /// ... while OR completion is strictly hurt by sharing whenever the
    /// external failure probability is positive and internal failures are
    /// not certain.
    #[test]
    fn or_is_degraded_by_sharing() {
        let rs = [req(0.1, 0.2), req(0.05, 0.2)];
        let independent =
            state_failure_probability(CompletionModel::Or, DependencyModel::Independent, &rs)
                .unwrap();
        let shared =
            state_failure_probability(CompletionModel::Or, DependencyModel::Shared, &rs).unwrap();
        assert!(shared.value() > independent.value());
    }

    #[test]
    fn or_sharing_equal_when_no_external_failure() {
        let rs = [req(0.1, 0.0), req(0.05, 0.0)];
        let independent =
            state_failure_probability(CompletionModel::Or, DependencyModel::Independent, &rs)
                .unwrap();
        let shared =
            state_failure_probability(CompletionModel::Or, DependencyModel::Shared, &rs).unwrap();
        assert!((independent.value() - shared.value()).abs() < EPS);
    }

    #[test]
    fn k_out_of_n_interpolates_between_and_and_or() {
        let rs = [req(0.1, 0.1), req(0.2, 0.1), req(0.3, 0.2)];
        let and =
            state_failure_probability(CompletionModel::And, DependencyModel::Independent, &rs)
                .unwrap();
        let or = state_failure_probability(CompletionModel::Or, DependencyModel::Independent, &rs)
            .unwrap();
        let k3 = state_failure_probability(
            CompletionModel::KOutOfN { k: 3 },
            DependencyModel::Independent,
            &rs,
        )
        .unwrap();
        let k1 = state_failure_probability(
            CompletionModel::KOutOfN { k: 1 },
            DependencyModel::Independent,
            &rs,
        )
        .unwrap();
        let k2 = state_failure_probability(
            CompletionModel::KOutOfN { k: 2 },
            DependencyModel::Independent,
            &rs,
        )
        .unwrap();
        assert!((k3.value() - and.value()).abs() < EPS);
        assert!((k1.value() - or.value()).abs() < EPS);
        assert!(k1.value() <= k2.value() && k2.value() <= k3.value());
    }

    #[test]
    fn k_out_of_n_shared_bounds() {
        let rs = [req(0.1, 0.1), req(0.2, 0.1), req(0.3, 0.2)];
        let k2_shared = state_failure_probability(
            CompletionModel::KOutOfN { k: 2 },
            DependencyModel::Shared,
            &rs,
        )
        .unwrap();
        let k2_indep = state_failure_probability(
            CompletionModel::KOutOfN { k: 2 },
            DependencyModel::Independent,
            &rs,
        )
        .unwrap();
        // Sharing can only hurt (or match) a quorum below n.
        assert!(k2_shared.value() >= k2_indep.value() - EPS);
    }

    #[test]
    fn invalid_k_rejected() {
        let rs = [req(0.1, 0.1)];
        assert!(state_failure_probability(
            CompletionModel::KOutOfN { k: 0 },
            DependencyModel::Independent,
            &rs,
        )
        .is_err());
        assert!(state_failure_probability(
            CompletionModel::KOutOfN { k: 2 },
            DependencyModel::Independent,
            &rs,
        )
        .is_err());
    }

    #[test]
    fn certain_external_failure_fails_shared_state() {
        let rs = [req(0.0, 1.0), req(0.0, 0.0)];
        let f =
            state_failure_probability(CompletionModel::Or, DependencyModel::Shared, &rs).unwrap();
        assert!(f.is_one());
    }
}
