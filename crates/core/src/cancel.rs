//! Cooperative cancellation for long-running evaluations.
//!
//! A [`CancelToken`] carries an explicit cancellation flag and an optional
//! wall-clock deadline. Evaluators built with
//! [`Evaluator::with_cancellation`](crate::Evaluator::with_cancellation)
//! check the token at every composite-service resolution, every blocked
//! point, and every fixed-point sweep, so a caller that owns the token — the
//! `archrel serve` daemon enforcing per-request deadlines, a UI with a
//! cancel button — can abort an in-flight evaluation with a typed error
//! ([`CoreError::DeadlineExceeded`](crate::CoreError::DeadlineExceeded) /
//! [`CoreError::Cancelled`](crate::CoreError::Cancelled)) instead of
//! waiting it out or killing the thread.
//!
//! Checks are cooperative: a single absorbing-chain solve runs to
//! completion, so the reaction latency is bounded by the largest single
//! solve, not by the whole request.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::{CoreError, Result};

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    /// Wall-clock instant past which [`CancelToken::check`] fails with
    /// [`CoreError::DeadlineExceeded`]; `None` means no time limit.
    deadline: Option<Instant>,
    /// The budget the deadline was derived from, kept for error messages.
    budget: Option<Duration>,
}

/// Shared cancellation handle: clone it freely — all clones observe one
/// underlying flag and deadline.
#[derive(Debug, Clone)]
pub struct CancelToken(Arc<Inner>);

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A token with no deadline; it only trips when [`CancelToken::cancel`]
    /// is called.
    pub fn new() -> CancelToken {
        CancelToken(Arc::new(Inner {
            cancelled: AtomicBool::new(false),
            deadline: None,
            budget: None,
        }))
    }

    /// A token that additionally trips once `budget` wall-clock time has
    /// elapsed from now.
    pub fn with_deadline(budget: Duration) -> CancelToken {
        CancelToken(Arc::new(Inner {
            cancelled: AtomicBool::new(false),
            deadline: Instant::now().checked_add(budget),
            budget: Some(budget),
        }))
    }

    /// Trips the token: every subsequent [`CancelToken::check`] fails with
    /// [`CoreError::Cancelled`].
    pub fn cancel(&self) {
        self.0.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether the token has been explicitly cancelled (deadline expiry
    /// does not set this flag).
    pub fn is_cancelled(&self) -> bool {
        self.0.cancelled.load(Ordering::Relaxed)
    }

    /// The deadline instant, if the token carries one.
    pub fn deadline(&self) -> Option<Instant> {
        self.0.deadline
    }

    /// Whether the deadline (if any) has passed.
    pub fn deadline_exceeded(&self) -> bool {
        self.0
            .deadline
            .is_some_and(|deadline| Instant::now() > deadline)
    }

    /// Fails with the matching typed error when the token has tripped:
    /// [`CoreError::Cancelled`] on an explicit cancel,
    /// [`CoreError::DeadlineExceeded`] once the deadline has passed.
    ///
    /// # Errors
    ///
    /// See above; returns `Ok(())` while the token is live.
    #[inline]
    pub fn check(&self) -> Result<()> {
        if self.0.cancelled.load(Ordering::Relaxed) {
            return Err(CoreError::Cancelled);
        }
        if self.deadline_exceeded() {
            return Err(CoreError::DeadlineExceeded {
                budget_ms: self
                    .0
                    .budget
                    .map(|b| b.as_millis().min(u128::from(u64::MAX)) as u64)
                    .unwrap_or(0),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_passes_checks() {
        let token = CancelToken::new();
        assert!(token.check().is_ok());
        assert!(!token.is_cancelled());
        assert!(token.deadline().is_none());
    }

    #[test]
    fn cancel_trips_every_clone() {
        let token = CancelToken::new();
        let clone = token.clone();
        token.cancel();
        assert!(clone.is_cancelled());
        assert!(matches!(clone.check(), Err(CoreError::Cancelled)));
    }

    #[test]
    fn expired_deadline_is_a_typed_error() {
        let token = CancelToken::with_deadline(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(2));
        match token.check() {
            Err(CoreError::DeadlineExceeded { budget_ms }) => assert_eq!(budget_ms, 0),
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        // Deadline expiry is not an explicit cancel.
        assert!(!token.is_cancelled());
    }

    #[test]
    fn generous_deadline_passes() {
        let token = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(token.check().is_ok());
        assert!(!token.deadline_exceeded());
    }
}
