//! Error-propagation extension — releasing the fail-stop assumption.
//!
//! The paper's §6 names two future-work items; one is that "the fail-stop
//! assumption ... should be released to deal also with error propagation
//! aspects \[11\]". This module implements that extension for the top-level
//! service's flow:
//!
//! - every request failure is **detected** with a per-service probability
//!   `d` (detected ⇒ the classical fail-stop abort into `Fail`);
//! - with probability `1 − d` the failure is **silent**: the request returns
//!   an erroneous result, the flow continues, and the run completes with a
//!   wrong answer (no repair ⇒ the taint never clears);
//! - the outcome space therefore splits into *correct completion*,
//!   *erroneous completion* (silent failure — completed but wrong), and
//!   *detected failure*.
//!
//! `d = 1` for every service recovers the paper's fail-stop model exactly.
//! The analysis runs on a two-layer (clean/tainted) copy of the flow chain.
//! Scope: the top-level flow's states must use AND completion with
//! independent requests (the combination for which the detected/silent split
//! factorizes); nested services are evaluated with the base engine and
//! contribute their total failure probability.

use std::collections::BTreeMap;

use archrel_expr::Bindings;
use archrel_markov::{AbsorbingAnalysis, DtmcBuilder};
use archrel_model::{
    Assembly, CompletionModel, DependencyModel, Probability, Service, ServiceId, StateId,
};

use crate::failprob::RequestFailure;
use crate::{CoreError, Evaluator, Result};

/// Detection probabilities per requested service.
#[derive(Debug, Clone, PartialEq)]
pub struct PropagationOptions {
    /// Detection probability used for services not listed in `per_service`.
    pub default_detection: f64,
    /// Per-service overrides.
    pub per_service: BTreeMap<ServiceId, f64>,
}

impl Default for PropagationOptions {
    fn default() -> Self {
        PropagationOptions {
            default_detection: 1.0,
            per_service: BTreeMap::new(),
        }
    }
}

impl PropagationOptions {
    /// Uniform detection probability for every service.
    ///
    /// # Errors
    ///
    /// Returns a probability-validation error for out-of-range values.
    pub fn uniform(detection: f64) -> Result<Self> {
        Probability::new(detection)?;
        Ok(PropagationOptions {
            default_detection: detection,
            per_service: BTreeMap::new(),
        })
    }

    /// Overrides the detection probability of one service.
    ///
    /// # Errors
    ///
    /// Returns a probability-validation error for out-of-range values.
    pub fn with_service(mut self, id: impl Into<ServiceId>, detection: f64) -> Result<Self> {
        Probability::new(detection)?;
        self.per_service.insert(id.into(), detection);
        Ok(self)
    }

    fn detection_of(&self, id: &ServiceId) -> f64 {
        self.per_service
            .get(id)
            .copied()
            .unwrap_or(self.default_detection)
    }
}

/// The three-way outcome distribution of a service invocation under error
/// propagation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Outcome {
    /// Completed with a correct result.
    pub correct: Probability,
    /// Completed, but with an erroneous (silently wrong) result.
    pub erroneous: Probability,
    /// Aborted on a detected failure (the classical fail-stop outcome).
    pub detected_failure: Probability,
}

impl Outcome {
    /// Total failure probability counting silent corruption as failure:
    /// `1 − correct`.
    pub fn total_failure(&self) -> Probability {
        self.correct.complement()
    }
}

/// Chain states of the two-layer analysis.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum PropState {
    Clean(StateId),
    Tainted(StateId),
    Fail,
}

/// Evaluates the outcome distribution of `service` under `env` with the
/// given detection model.
///
/// # Errors
///
/// - [`CoreError::PropagationUnsupported`] when the top-level service is
///   simple, or a top-level flow state uses OR/k-out-of-n completion or
///   shared dependency;
/// - base-engine errors for nested evaluation.
pub fn evaluate(
    assembly: &Assembly,
    service: &ServiceId,
    env: &Bindings,
    options: &PropagationOptions,
) -> Result<Outcome> {
    let Service::Composite(composite) = assembly.require(service)? else {
        return Err(CoreError::PropagationUnsupported {
            service: service.to_string(),
            reason: "top-level service must be composite".to_string(),
        });
    };

    let evaluator = Evaluator::new(assembly);

    // Per-state: detected-abort probability and silent-error probability.
    struct StateSplit {
        detected: f64,
        silent: f64,
    }
    let mut splits: BTreeMap<StateId, StateSplit> = BTreeMap::new();
    for state in composite.flow().states() {
        if state.completion != CompletionModel::And
            || state.dependency != DependencyModel::Independent
        {
            return Err(CoreError::PropagationUnsupported {
                service: service.to_string(),
                reason: format!(
                    "state `{}` uses a completion/dependency combination other than AND/independent",
                    state.id
                ),
            });
        }
        let mut no_detected = 1.0_f64;
        let mut all_clean = 1.0_f64;
        for call in &state.calls {
            // Resolve the request exactly as the base engine does.
            let mut callee_env = Bindings::new();
            let mut first_demand = 0.0;
            for (i, (name, expr)) in call.actual_params.iter().enumerate() {
                let v = expr.eval(env)?;
                if i == 0 {
                    first_demand = v;
                }
                callee_env.insert(name.clone(), v);
            }
            let target_fail = evaluator.failure_probability(&call.target, &callee_env)?;
            let connector_fail = match &call.connector {
                None => Probability::ZERO,
                Some(binding) => {
                    let mut conn_env = Bindings::new();
                    for (name, expr) in &binding.actual_params {
                        conn_env.insert(name.clone(), expr.eval(env)?);
                    }
                    evaluator.failure_probability(&binding.connector, &conn_env)?
                }
            };
            let internal = call.internal_failure.failure_probability(first_demand)?;
            let p = RequestFailure::new(
                internal,
                RequestFailure::external_of(target_fail, connector_fail),
            )
            .total()
            .value();
            let d = options.detection_of(&call.target);
            no_detected *= 1.0 - p * d;
            all_clean *= 1.0 - p;
        }
        splits.insert(
            state.id.clone(),
            StateSplit {
                detected: 1.0 - no_detected,
                silent: (no_detected - all_clean).max(0.0),
            },
        );
    }

    // Two-layer chain.
    let mut builder = DtmcBuilder::new()
        .state(PropState::Clean(StateId::End))
        .state(PropState::Tainted(StateId::End))
        .state(PropState::Fail);
    for t in composite.flow().transitions() {
        let p = t.probability.eval(env)?;
        if p <= 0.0 {
            continue;
        }
        let (detected, silent) = match &t.from {
            StateId::Start => (0.0, 0.0),
            named => splits
                .get(named)
                .map(|s| (s.detected, s.silent))
                .unwrap_or((0.0, 0.0)),
        };
        let survive = 1.0 - detected; // mass not aborted
        let clean_ok = survive - silent; // continue without new taint
        builder = builder
            .transition(
                PropState::Clean(t.from.clone()),
                PropState::Clean(t.to.clone()),
                p * clean_ok,
            )
            .transition(
                PropState::Clean(t.from.clone()),
                PropState::Tainted(t.to.clone()),
                p * silent,
            )
            .transition(
                PropState::Tainted(t.from.clone()),
                PropState::Tainted(t.to.clone()),
                p * survive,
            );
    }
    for (state, split) in &splits {
        if split.detected > 0.0 {
            builder = builder
                .transition(
                    PropState::Clean(state.clone()),
                    PropState::Fail,
                    split.detected,
                )
                .transition(
                    PropState::Tainted(state.clone()),
                    PropState::Fail,
                    split.detected,
                );
        }
    }
    let chain = builder.build()?;
    let analysis = AbsorbingAnalysis::new(&chain)?;
    let start = PropState::Clean(StateId::Start);
    let correct = analysis.absorption_probability(&start, &PropState::Clean(StateId::End))?;
    let erroneous = analysis.absorption_probability(&start, &PropState::Tainted(StateId::End))?;
    let failed = analysis
        .absorption_probability(&start, &PropState::Fail)
        .unwrap_or(0.0);
    Ok(Outcome {
        correct: Probability::new(correct)?,
        erroneous: Probability::new(erroneous)?,
        detected_failure: Probability::new(failed)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use archrel_model::paper;

    fn setup() -> (Assembly, Bindings) {
        let params = paper::PaperParams::default();
        let assembly = paper::local_assembly(&params).unwrap();
        let env = paper::search_bindings(4.0, 4096.0, 1.0);
        (assembly, env)
    }

    #[test]
    fn full_detection_recovers_fail_stop() {
        let (assembly, env) = setup();
        let outcome = evaluate(
            &assembly,
            &paper::SEARCH.into(),
            &env,
            &PropagationOptions::default(),
        )
        .unwrap();
        let base = Evaluator::new(&assembly)
            .failure_probability(&paper::SEARCH.into(), &env)
            .unwrap();
        assert!(outcome.erroneous.is_zero());
        assert!((outcome.detected_failure.value() - base.value()).abs() < 1e-12);
        assert!((outcome.total_failure().value() - base.value()).abs() < 1e-12);
    }

    #[test]
    fn zero_detection_turns_failures_silent() {
        let (assembly, env) = setup();
        let outcome = evaluate(
            &assembly,
            &paper::SEARCH.into(),
            &env,
            &PropagationOptions::uniform(0.0).unwrap(),
        )
        .unwrap();
        let base = Evaluator::new(&assembly)
            .failure_probability(&paper::SEARCH.into(), &env)
            .unwrap();
        assert!(outcome.detected_failure.is_zero());
        assert!((outcome.erroneous.value() - base.value()).abs() < 1e-12);
    }

    #[test]
    fn correct_probability_is_invariant_in_detection() {
        // Detection only splits failure mass; the correct-completion mass is
        // exactly the base model's success probability.
        let (assembly, env) = setup();
        let base_success = Evaluator::new(&assembly)
            .reliability(&paper::SEARCH.into(), &env)
            .unwrap()
            .value();
        for d in [0.0, 0.25, 0.5, 0.9, 1.0] {
            let outcome = evaluate(
                &assembly,
                &paper::SEARCH.into(),
                &env,
                &PropagationOptions::uniform(d).unwrap(),
            )
            .unwrap();
            assert!(
                (outcome.correct.value() - base_success).abs() < 1e-12,
                "d = {d}"
            );
            // Outcome distribution is a partition.
            let total = outcome.correct.value()
                + outcome.erroneous.value()
                + outcome.detected_failure.value();
            assert!((total - 1.0).abs() < 1e-9, "d = {d}: total {total}");
        }
    }

    #[test]
    fn erroneous_mass_decreases_with_detection() {
        let (assembly, env) = setup();
        let mut last = f64::INFINITY;
        for d in [0.0, 0.3, 0.7, 1.0] {
            let outcome = evaluate(
                &assembly,
                &paper::SEARCH.into(),
                &env,
                &PropagationOptions::uniform(d).unwrap(),
            )
            .unwrap();
            assert!(outcome.erroneous.value() <= last + 1e-12);
            last = outcome.erroneous.value();
        }
    }

    #[test]
    fn per_service_override() {
        let (assembly, env) = setup();
        // Only the sort leg's failures go silent.
        let opts = PropagationOptions::default()
            .with_service(paper::SORT_LOCAL, 0.0)
            .unwrap();
        let outcome = evaluate(&assembly, &paper::SEARCH.into(), &env, &opts).unwrap();
        assert!(outcome.erroneous.value() > 0.0);
        assert!(outcome.detected_failure.value() > 0.0);
    }

    #[test]
    fn simple_top_level_service_unsupported() {
        let (assembly, _) = setup();
        let err = evaluate(
            &assembly,
            &paper::CPU1.into(),
            &archrel_expr::Bindings::new().with("n", 1.0),
            &PropagationOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::PropagationUnsupported { .. }));
    }

    #[test]
    fn invalid_detection_probability_rejected() {
        assert!(PropagationOptions::uniform(1.5).is_err());
        assert!(PropagationOptions::default()
            .with_service("x", -0.1)
            .is_err());
    }
}
