//! Human-readable evaluation reports: per-state and per-dependency
//! breakdowns of a service's predicted unreliability.
//!
//! Reports answer the architect's question behind the paper's §1 motivation:
//! *which* part of the assembly dominates the failure probability, and hence
//! where a substitution (a faster CPU, a more reliable link, a better sort
//! implementation) buys the most reliability.

use std::fmt;

use archrel_expr::Bindings;
use archrel_model::{Probability, Service, ServiceId, StateId};

use crate::batch::BatchSummary;
use crate::eval::CacheStats;
use crate::{Evaluator, Result};

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cache: {} hits / {} misses ({:.1}% hit rate), {} solves in {:.3} ms",
            self.hits,
            self.misses,
            self.hit_rate() * 100.0,
            self.solves,
            self.solve_time().as_secs_f64() * 1e3
        )?;
        if self.plan_hits + self.plan_misses > 0 {
            write!(
                f,
                "; plans: {} hits / {} misses, {} rank-1 / {} full re-solves",
                self.plan_hits, self.plan_misses, self.rank1_solves, self.full_solves
            )?;
        }
        if self.block_flushes > 0 {
            write!(
                f,
                "; blocks: {} points in {} flushes ({:.1} lanes/flush)",
                self.block_points,
                self.block_flushes,
                self.block_points as f64 / self.block_flushes as f64
            )?;
        }
        if self.extract_nanos + self.stage_nanos + self.replay_nanos > 0 {
            write!(
                f,
                "; phases: extract {:.3} ms / stage {:.3} ms / replay {:.3} ms",
                self.extract_nanos as f64 * 1e-6,
                self.stage_nanos as f64 * 1e-6,
                self.replay_nanos as f64 * 1e-6
            )?;
        }
        if self.plan_evictions > 0 {
            write!(f, "; {} plan evictions", self.plan_evictions)?;
        }
        if self.store_hits + self.store_misses + self.store_validate_rejects + self.store_writes > 0
        {
            write!(
                f,
                "; store: {} hits / {} misses / {} rejects, {} writes",
                self.store_hits, self.store_misses, self.store_validate_rejects, self.store_writes
            )?;
        }
        if self.programs_compiled > 0 {
            write!(
                f,
                "; programs: {} compiled, memo {} hits / {} misses / {} pins ({:.1}% memo rate)",
                self.programs_compiled,
                self.memo_hits,
                self.memo_misses,
                self.pin_hits,
                self.memo_hit_rate() * 100.0
            )?;
        }
        if self.fixed_point_sweeps > 0 {
            write!(f, "; fixed point: {} sweeps", self.fixed_point_sweeps)?;
            if self.program_loop_sccs > 0 {
                write!(
                    f,
                    ", {} loop SCCs / {} member updates",
                    self.program_loop_sccs, self.scc_iterations
                )?;
            }
            if self.aitken_accels + self.aitken_fallbacks > 0 {
                write!(
                    f,
                    ", aitken {} accels / {} fallbacks",
                    self.aitken_accels, self.aitken_fallbacks
                )?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for BatchSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "batch: {} queries on {} workers; {}",
            self.queries, self.workers, self.cache
        )
    }
}

/// Failure contribution of one request within a state.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestLine {
    /// The requested service.
    pub target: ServiceId,
    /// Caller-side internal failure probability of the request.
    pub internal: Probability,
    /// Combined connector + target external failure probability (eq. 13).
    pub external: Probability,
}

/// Failure breakdown of one flow state.
#[derive(Debug, Clone, PartialEq)]
pub struct StateBreakdown {
    /// The flow state.
    pub state: StateId,
    /// `p(i, Fail)` after combining the requests under the state's
    /// completion and dependency models.
    pub failure_probability: Probability,
    /// Per-request detail.
    pub requests: Vec<RequestLine>,
}

/// Resolved failure probability of one direct dependency.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceBreakdown {
    /// The dependency.
    pub service: ServiceId,
    /// Its failure probability under the parameters the target service
    /// actually passes it (averaged view: taken from the first request that
    /// addresses it).
    pub failure_probability: Probability,
}

/// Full evaluation report for one service invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluationReport {
    /// The evaluated service.
    pub service: ServiceId,
    /// The bindings the report was computed under.
    pub bindings: Bindings,
    /// Overall `Pfail(S, fp)`.
    pub failure_probability: Probability,
    /// Per-state breakdown (empty for simple services).
    pub states: Vec<StateBreakdown>,
}

impl EvaluationReport {
    /// Overall reliability `1 − Pfail`.
    pub fn reliability(&self) -> Probability {
        self.failure_probability.complement()
    }

    /// The state contributing the largest `p(i, Fail)`, if any.
    pub fn dominant_state(&self) -> Option<&StateBreakdown> {
        self.states.iter().max_by(|a, b| {
            a.failure_probability
                .value()
                .partial_cmp(&b.failure_probability.value())
                .expect("probabilities are finite")
        })
    }
}

impl fmt::Display for EvaluationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "service `{}`", self.service)?;
        writeln!(
            f,
            "  Pfail = {:.6e}   reliability = {:.9}",
            self.failure_probability.value(),
            self.reliability().value()
        )?;
        for state in &self.states {
            writeln!(
                f,
                "  state `{}`: p(i, Fail) = {:.6e}",
                state.state,
                state.failure_probability.value()
            )?;
            for r in &state.requests {
                writeln!(
                    f,
                    "    -> {}: internal {:.3e}, external {:.3e}",
                    r.target,
                    r.internal.value(),
                    r.external.value()
                )?;
            }
        }
        Ok(())
    }
}

impl<'a> Evaluator<'a> {
    /// Produces a detailed [`EvaluationReport`] for one invocation.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Evaluator::failure_probability`]. Under
    /// [`CycleMode::FixedPoint`](crate::CycleMode::FixedPoint) recursive
    /// assemblies report the breakdown a final converged sweep sees (cycle
    /// re-entries answered by the converged estimates); in
    /// [`CycleMode::Error`](crate::CycleMode::Error) they stay an error.
    pub fn report(&self, service: &ServiceId, env: &Bindings) -> Result<EvaluationReport> {
        let failure_probability = self.failure_probability(service, env)?;
        let states = match self.assembly().require(service)? {
            Service::Simple(_) => Vec::new(),
            Service::Composite(c) => self
                .resolve_states_fresh(c, env)?
                .into_iter()
                .map(|s| StateBreakdown {
                    state: s.state,
                    failure_probability: s.failure,
                    requests: s
                        .requests
                        .into_iter()
                        .map(|r| RequestLine {
                            target: r.target,
                            internal: r.internal,
                            external: r.external,
                        })
                        .collect(),
                })
                .collect(),
        };
        Ok(EvaluationReport {
            service: service.clone(),
            bindings: env.clone(),
            failure_probability,
            states,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archrel_model::paper;

    #[test]
    fn report_on_paper_example() {
        let params = paper::PaperParams::default();
        let assembly = paper::local_assembly(&params).unwrap();
        let eval = Evaluator::new(&assembly);
        let env = paper::search_bindings(4.0, 4096.0, 1.0);
        let report = eval.report(&paper::SEARCH.into(), &env).unwrap();

        assert_eq!(report.service.as_str(), paper::SEARCH);
        assert_eq!(report.states.len(), 2);
        // The sort leg dominates: it runs list*log(list) operations vs the
        // scan's log(list).
        let dominant = report.dominant_state().unwrap();
        assert_eq!(dominant.state, StateId::named("1"));
        // Report's overall number agrees with the evaluator.
        let direct = eval
            .failure_probability(&paper::SEARCH.into(), &env)
            .unwrap();
        assert_eq!(report.failure_probability, direct);
        assert!((report.reliability().value() + direct.value() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn report_on_simple_service_has_no_states() {
        let params = paper::PaperParams::default();
        let assembly = paper::local_assembly(&params).unwrap();
        let eval = Evaluator::new(&assembly);
        let env = archrel_expr::Bindings::new().with("n", 1e6);
        let report = eval.report(&paper::CPU1.into(), &env).unwrap();
        assert!(report.states.is_empty());
        assert!(report.failure_probability.value() > 0.0);
    }

    #[test]
    fn cache_stats_render_hits_and_solve_time() {
        let params = paper::PaperParams::default();
        let assembly = paper::local_assembly(&params).unwrap();
        let eval = Evaluator::new(&assembly);
        let env = paper::search_bindings(4.0, 1024.0, 1.0);
        eval.failure_probability(&paper::SEARCH.into(), &env)
            .unwrap();
        eval.failure_probability(&paper::SEARCH.into(), &env)
            .unwrap();
        let stats = eval.cache_stats();
        assert!(stats.hits >= 1, "{stats:?}");
        assert!(stats.solves >= 1, "{stats:?}");
        let text = stats.to_string();
        assert!(text.contains("hits"), "{text}");
        assert!(text.contains("solves"), "{text}");
    }

    #[test]
    fn cache_stats_render_plan_counters_after_a_compiled_run() {
        use crate::{EvalOptions, SolverPolicy};
        let params = paper::PaperParams::default();
        let assembly = paper::local_assembly(&params).unwrap();
        let eval = Evaluator::with_options(
            &assembly,
            EvalOptions {
                solver: SolverPolicy::Compiled,
                ..EvalOptions::default()
            },
        );
        for n in [512.0, 1024.0] {
            eval.failure_probability(&paper::SEARCH.into(), &paper::search_bindings(4.0, n, 1.0))
                .unwrap();
        }
        let stats = eval.cache_stats();
        assert!(stats.plan_misses >= 1, "{stats:?}");
        assert!(stats.rank1_solves >= 1, "{stats:?}");
        let text = stats.to_string();
        assert!(text.contains("plans:"), "{text}");
        assert!(text.contains("rank-1"), "{text}");
        // A run that never touches the plan machinery keeps the line silent
        // (forced dense so an `ARCHREL_SOLVER` override cannot interfere).
        let plain = Evaluator::with_options(
            &assembly,
            EvalOptions {
                solver: SolverPolicy::Dense,
                ..EvalOptions::default()
            },
        );
        plain
            .failure_probability(
                &paper::SEARCH.into(),
                &paper::search_bindings(4.0, 64.0, 1.0),
            )
            .unwrap();
        let plain_text = plain.cache_stats().to_string();
        assert!(!plain_text.contains("plans:"), "{plain_text}");
    }

    #[test]
    fn report_resolves_cyclic_breakdowns_under_fixed_point_mode() {
        use crate::{CoreError, CycleMode, EvalOptions};
        use archrel_expr::Expr;
        use archrel_model::{
            catalog, AssemblyBuilder, CompositeService, FlowBuilder, FlowState, Service,
            ServiceCall, StateId,
        };
        let member = |name: &str, partner: &str| {
            let flow = FlowBuilder::new()
                .state(FlowState::new(
                    "loop",
                    vec![ServiceCall::new(partner.to_string())],
                ))
                .state(FlowState::new(
                    "down",
                    vec![ServiceCall::new("leaf").with_param("x", Expr::num(1.0))],
                ))
                .transition(StateId::Start, "loop", Expr::num(0.4))
                .transition(StateId::Start, "down", Expr::num(0.6))
                .transition(StateId::named("loop"), StateId::End, Expr::one())
                .transition(StateId::named("down"), StateId::End, Expr::one())
                .build()
                .unwrap();
            Service::Composite(CompositeService::new(name, vec![], flow).unwrap())
        };
        let assembly = AssemblyBuilder::new()
            .service(catalog::blackbox_service("leaf", "x", 1e-3))
            .service(member("a", "b"))
            .service(member("b", "a"))
            .build()
            .unwrap();
        // Error mode: still the cycle error.
        let err = Evaluator::new(&assembly)
            .report(&"a".into(), &Bindings::new())
            .unwrap_err();
        assert!(matches!(err, CoreError::RecursiveAssembly { .. }), "{err}");
        // Fixed-point mode: the breakdown resolves against the converged
        // estimates, consistent with the top-level value.
        let eval = Evaluator::with_options(
            &assembly,
            EvalOptions {
                cycle_mode: CycleMode::FixedPoint {
                    max_iterations: 200,
                    tolerance: 1e-12,
                },
                ..EvalOptions::default()
            },
        );
        let report = eval.report(&"a".into(), &Bindings::new()).unwrap();
        assert_eq!(report.states.len(), 2, "{report:?}");
        let total = report.failure_probability.value();
        // The mesh converges to Pfail = 1e-3 on every member; each state's
        // sole request must carry that converged value, not a stale 0.
        for state in &report.states {
            assert!(
                (state.failure_probability.value() - total).abs() < 1e-9,
                "{state:?} vs top {total}"
            );
        }
    }

    #[test]
    fn cache_stats_render_fixed_point_counters_after_a_cyclic_run() {
        use crate::{CycleMode, EvalOptions, ProgramMode};
        use archrel_expr::Expr;
        use archrel_model::{
            catalog, AssemblyBuilder, CompositeService, FlowBuilder, FlowState, Service,
            ServiceCall, StateId,
        };
        let flow = FlowBuilder::new()
            .state(FlowState::new("again", vec![ServiceCall::new("svc")]))
            .state(FlowState::new(
                "base",
                vec![ServiceCall::new("leaf").with_param("x", Expr::num(1.0))],
            ))
            .transition(StateId::Start, "again", Expr::num(0.25))
            .transition(StateId::Start, "base", Expr::num(0.75))
            .transition("again", StateId::End, Expr::one())
            .transition("base", StateId::End, Expr::one())
            .build()
            .unwrap();
        let assembly = AssemblyBuilder::new()
            .service(catalog::blackbox_service("leaf", "x", 1e-3))
            .service(Service::Composite(
                CompositeService::new("svc", vec![], flow).unwrap(),
            ))
            .build()
            .unwrap();
        let eval = Evaluator::with_options(
            &assembly,
            EvalOptions {
                cycle_mode: CycleMode::FixedPoint {
                    max_iterations: 100,
                    tolerance: 1e-12,
                },
                program: ProgramMode::On,
                ..EvalOptions::default()
            },
        );
        eval.failure_probability(&"svc".into(), &Bindings::new())
            .unwrap();
        let stats = eval.cache_stats();
        assert!(stats.fixed_point_sweeps >= 2, "{stats:?}");
        assert!(stats.program_loop_sccs >= 1, "{stats:?}");
        assert!(stats.scc_iterations >= 2, "{stats:?}");
        let text = stats.to_string();
        assert!(text.contains("fixed point:"), "{text}");
        assert!(text.contains("loop SCCs"), "{text}");
        // Acyclic runs keep the segment silent.
        let params = paper::PaperParams::default();
        let acyclic = paper::local_assembly(&params).unwrap();
        let plain = Evaluator::new(&acyclic);
        plain
            .failure_probability(
                &paper::SEARCH.into(),
                &paper::search_bindings(4.0, 64.0, 1.0),
            )
            .unwrap();
        let plain_text = plain.cache_stats().to_string();
        assert!(!plain_text.contains("fixed point:"), "{plain_text}");
    }

    #[test]
    fn batch_summary_renders() {
        use crate::batch::{BatchEvaluator, Query};
        let params = paper::PaperParams::default();
        let assembly = paper::local_assembly(&params).unwrap();
        let batch = BatchEvaluator::new(&assembly).with_workers(2);
        let queries: Vec<Query> = (1..=8)
            .map(|i| {
                Query::new(
                    paper::SEARCH,
                    paper::search_bindings(4.0, 256.0 * i as f64, 1.0),
                )
            })
            .collect();
        let (_, summary) = batch.evaluate_all_summarized(&queries);
        let text = summary.to_string();
        assert!(text.contains("8 queries on 2 workers"), "{text}");
    }

    #[test]
    fn sparse_no_convergence_surfaces_iteration_count_through_report() {
        use crate::{CoreError, EvalOptions, SolverPolicy};
        use archrel_expr::Expr;
        use archrel_model::{
            catalog, AssemblyBuilder, CompositeService, FlowBuilder, FlowState, Service,
            ServiceCall, StateId,
        };
        // A genuinely cyclic flow (a ↔ b retry loop): the sparse solver's
        // acyclic fast path cannot apply, so Gauss–Seidel must iterate —
        // and with a one-sweep budget it must fail with the typed
        // `SolveError::NoConvergence`, iteration count intact, all the way
        // through `Evaluator::report`.
        let flow = FlowBuilder::new()
            .state(FlowState::new(
                "a",
                vec![ServiceCall::new("unit").with_param("x", Expr::num(1.0))],
            ))
            .state(FlowState::new(
                "b",
                vec![ServiceCall::new("unit").with_param("x", Expr::num(1.0))],
            ))
            .transition(StateId::Start, "a", Expr::one())
            .transition("a", "b", Expr::num(0.9))
            .transition("a", StateId::End, Expr::num(0.1))
            .transition("b", "a", Expr::one())
            .build()
            .unwrap();
        let assembly = AssemblyBuilder::new()
            .service(catalog::blackbox_service("unit", "x", 1e-6))
            .service(Service::Composite(
                CompositeService::new("app", vec![], flow).unwrap(),
            ))
            .build()
            .unwrap();
        let mut options = EvalOptions {
            solver: SolverPolicy::Sparse,
            ..EvalOptions::default()
        };
        options.sparse.max_iterations = 1;
        let err = Evaluator::with_options(&assembly, options)
            .report(&"app".into(), &Bindings::new())
            .unwrap_err();
        match &err {
            CoreError::Markov(archrel_markov::SolveError::NoConvergence {
                iterations,
                residual,
            }) => {
                assert_eq!(*iterations, 1);
                assert!(residual.is_finite() && *residual > 0.0);
            }
            other => panic!("expected NoConvergence, got {other}"),
        }
        assert!(err
            .to_string()
            .contains("did not converge after 1 iterations"));
        // With a sane budget the same cyclic assembly solves fine.
        options.sparse.max_iterations = 10_000;
        let report = Evaluator::with_options(&assembly, options)
            .report(&"app".into(), &Bindings::new())
            .unwrap();
        assert!(report.failure_probability.value() > 0.0);
    }

    #[test]
    fn display_renders_all_states() {
        let params = paper::PaperParams::default();
        let assembly = paper::remote_assembly(&params).unwrap();
        let eval = Evaluator::new(&assembly);
        let report = eval
            .report(
                &paper::SEARCH.into(),
                &paper::search_bindings(4.0, 512.0, 1.0),
            )
            .unwrap();
        let text = report.to_string();
        assert!(text.contains("search"));
        assert!(text.contains("state `1`"));
        assert!(text.contains("state `2`"));
        assert!(text.contains("sort2"));
    }
}
