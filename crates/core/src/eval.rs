//! The recursive evaluation procedure `Pfail_Alg` (paper §3.3).
//!
//! [`Evaluator`] walks the assembly from a target service down to its simple
//! services, computing `Pfail(S, fp)` bottom-up. Results are memoized per
//! `(service, resolved parameters)`. Recursive assemblies — which the paper
//! notes its procedure cannot handle and "should be expressed by a fixed
//! point equation" — are supported through [`CycleMode::FixedPoint`]:
//! damped successive substitution starting from the optimistic estimate 0,
//! which converges monotonically because `Pfail` is monotone in the
//! estimates and bounded by 1.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use archrel_expr::Bindings;
use archrel_markov::{
    structure_fingerprint, BlockSolveKinds, ParamBlock, PlanScratch, PlanSolveKind, SimdMode,
    SimdPath, SolvePlan, LANE,
};
use archrel_model::{
    Assembly, CompositeService, Probability, Service, ServiceCall, ServiceId, StateId,
};
use archrel_store::ArtifactStore;
use parking_lot::RwLock;

use crate::augment::{augmented_chain, AugmentedState};
use crate::cancel::CancelToken;
use crate::failprob::{state_failure_probability, RequestFailure};
pub use crate::fixedpoint::FixedPointMode;
use crate::fixedpoint::FixedPointSolver;
use crate::program::AssemblyProgram;
use crate::{CoreError, Result};

/// How the evaluator treats recursive assemblies (service-call cycles).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum CycleMode {
    /// Return [`CoreError::RecursiveAssembly`] — the paper's behavior.
    #[default]
    Error,
    /// Solve the fixed-point equation by successive substitution (or
    /// Aitken-accelerated substitution, see [`FixedPointMode`]).
    FixedPoint {
        /// Iteration budget.
        max_iterations: usize,
        /// Convergence threshold on the largest estimate change.
        tolerance: f64,
    },
}

/// Default iteration budget the CLI uses when `--fixed-point` enables
/// [`CycleMode::FixedPoint`] without an explicit budget.
pub const DEFAULT_FIXED_POINT_MAX_ITERATIONS: usize = 1000;
/// Default convergence tolerance paired with
/// [`DEFAULT_FIXED_POINT_MAX_ITERATIONS`].
pub const DEFAULT_FIXED_POINT_TOLERANCE: f64 = 1e-12;

/// Which linear-solver backend evaluates each flow's absorbing chain.
///
/// The same policy value is threaded through the batch engine, the
/// sensitivity stencils, uncertainty propagation, and service selection, so
/// a whole analysis runs under one backend discipline. The environment
/// variable `ARCHREL_SOLVER` (values `auto` / `dense` / `sparse` /
/// `compiled`) overrides the default policy of every
/// [`EvalOptions::default`], which is how CI forces the entire test suite
/// through the sparse and compiled paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverPolicy {
    /// Pick per chain from state count and edge density: dense LU below
    /// [`AUTO_DENSE_MAX_STATES`] states (or up to
    /// [`AUTO_DENSE_DENSITY_MAX_STATES`] when density ≥
    /// [`AUTO_DENSE_DENSITY`]), the sparse path otherwise. The thresholds
    /// come from the `sparse_solve` benchmark (`results/sparse_solve.md`).
    /// In the sparse regime, a flow *structure* solved at least
    /// [`AUTO_PLAN_MIN_SEEN`] times is promoted to a compiled acyclic plan
    /// (a tape replay that is bitwise-identical to the sparse fast path).
    #[default]
    Auto,
    /// Always dense LU — exact, `O(states³)`; the right choice for
    /// paper-sized flows.
    Dense,
    /// Always the sparse path — exact `O(edges)` back-substitution on
    /// acyclic flow graphs, CSR Gauss–Seidel `O(sweeps·edges)` otherwise.
    Sparse,
    /// Compile-once, evaluate-many plans ([`archrel_markov::SolvePlan`]):
    /// every flow structure is compiled on first sight and re-evaluated
    /// from a straight-line tape (acyclic flows) or via Sherman–Morrison
    /// rank-1 incremental re-solves against a compile-time LU factorization
    /// (cyclic flows). The backend of choice for parameter sweeps that
    /// re-solve the same structure many times; see
    /// `results/compiled_plan.md`.
    Compiled,
}

/// Below this state count `Auto` always uses dense LU.
pub const AUTO_DENSE_MAX_STATES: usize = 64;
/// Edge density (`edges / states²`) at or above which `Auto` stays dense up
/// to [`AUTO_DENSE_DENSITY_MAX_STATES`] states.
pub const AUTO_DENSE_DENSITY: f64 = 0.25;
/// State-count ceiling for the density-based dense preference of `Auto`.
pub const AUTO_DENSE_DENSITY_MAX_STATES: usize = 256;
/// Number of times `Auto` must see one flow structure (in its sparse
/// regime) before promoting it to a compiled plan. Compilation costs about
/// one sparse solve, so promoting on the second sight already pays off and
/// a sweep's remaining evaluations all ride the tape.
pub const AUTO_PLAN_MIN_SEEN: u64 = 2;

/// Concrete backend chosen for one chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ChosenSolver {
    Dense,
    Sparse,
}

impl SolverPolicy {
    /// Parses `auto` / `dense` / `sparse` / `compiled` (case-insensitive).
    pub fn parse(s: &str) -> Option<SolverPolicy> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" => Some(SolverPolicy::Auto),
            "dense" => Some(SolverPolicy::Dense),
            "sparse" => Some(SolverPolicy::Sparse),
            "compiled" => Some(SolverPolicy::Compiled),
            _ => None,
        }
    }

    /// Parses a value of the `ARCHREL_SOLVER` environment variable.
    ///
    /// # Panics
    ///
    /// Panics when the value is not a recognized policy spelling. A typo'd
    /// `ARCHREL_SOLVER` used to fall back silently to the default policy,
    /// running an entire analysis (or CI matrix job) under the wrong
    /// backend; an unrecognized value is now a hard error that lists the
    /// accepted values.
    pub fn parse_env_value(raw: &str) -> SolverPolicy {
        SolverPolicy::parse(raw).unwrap_or_else(|| {
            panic!(
                "unrecognized ARCHREL_SOLVER value `{raw}`: \
                 expected one of auto, dense, sparse, compiled"
            )
        })
    }

    /// Policy forced by the `ARCHREL_SOLVER` environment variable, if set.
    ///
    /// # Panics
    ///
    /// Panics when the variable is set to an unrecognized value (see
    /// [`SolverPolicy::parse_env_value`]).
    pub fn from_env() -> Option<SolverPolicy> {
        std::env::var("ARCHREL_SOLVER")
            .ok()
            .map(|v| SolverPolicy::parse_env_value(&v))
    }

    /// Resolves the direct (non-plan) backend for a chain with `states`
    /// states and `edges` explicit transitions. `Compiled` resolves like
    /// `Auto`: the plan path answers its queries first, so this choice only
    /// matters as a fallback.
    pub(crate) fn choose(self, states: usize, edges: usize) -> ChosenSolver {
        match self {
            SolverPolicy::Dense => ChosenSolver::Dense,
            SolverPolicy::Sparse => ChosenSolver::Sparse,
            SolverPolicy::Auto | SolverPolicy::Compiled => {
                let density = edges as f64 / (states as f64 * states as f64);
                if states <= AUTO_DENSE_MAX_STATES
                    || (states <= AUTO_DENSE_DENSITY_MAX_STATES && density >= AUTO_DENSE_DENSITY)
                {
                    ChosenSolver::Dense
                } else {
                    ChosenSolver::Sparse
                }
            }
        }
    }
}

/// Whether the evaluator compiles `(assembly, target)` pairs into
/// [`crate::AssemblyProgram`]s — the register-file evaluation layer that
/// replaces the recursive walk for repeated evaluations of one target.
///
/// The program path is **bitwise identical** to the recursive path, so the
/// mode is purely a performance lever. The environment variable
/// `ARCHREL_ASSEMBLY_PROGRAM` (values `auto` / `on` / `off`) overrides the
/// default of every [`EvalOptions::default`], which is how CI forces the
/// entire test suite through (and away from) the program path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProgramMode {
    /// Compile a target once it has been evaluated
    /// [`AUTO_PROGRAM_MIN_SEEN`] times (a whole block counts per point),
    /// mirroring the plan cache's `Auto` promotion heuristic. Cyclic
    /// dependency graphs compile like acyclic ones (their loop components
    /// run the program's fixed-point driver); targets that genuinely cannot
    /// compile silently stay on the recursive path.
    #[default]
    Auto,
    /// Compile on first evaluation; compilation errors propagate to the
    /// caller.
    On,
    /// Never compile; every evaluation walks the recursive path.
    Off,
}

impl ProgramMode {
    /// Parses `auto` / `on` / `off` (case-insensitive).
    pub fn parse(s: &str) -> Option<ProgramMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" => Some(ProgramMode::Auto),
            "on" => Some(ProgramMode::On),
            "off" => Some(ProgramMode::Off),
            _ => None,
        }
    }

    /// Parses a value of the `ARCHREL_ASSEMBLY_PROGRAM` environment
    /// variable.
    ///
    /// # Panics
    ///
    /// Panics when the value is not a recognized mode spelling — mirroring
    /// the `ARCHREL_SOLVER` hard-error behavior, a typo'd override must not
    /// silently run an analysis under the wrong evaluation path.
    pub fn parse_env_value(raw: &str) -> ProgramMode {
        ProgramMode::parse(raw).unwrap_or_else(|| {
            panic!(
                "unrecognized ARCHREL_ASSEMBLY_PROGRAM value `{raw}`: \
                 expected one of auto, on, off"
            )
        })
    }

    /// Mode forced by the `ARCHREL_ASSEMBLY_PROGRAM` environment variable,
    /// if set. An empty value counts as unset (CI matrices expand absent
    /// entries to empty strings).
    ///
    /// # Panics
    ///
    /// Panics when the variable is set to an unrecognized value (see
    /// [`ProgramMode::parse_env_value`]).
    pub fn from_env() -> Option<ProgramMode> {
        std::env::var("ARCHREL_ASSEMBLY_PROGRAM")
            .ok()
            .filter(|v| !v.trim().is_empty())
            .map(|v| ProgramMode::parse_env_value(&v))
    }
}

/// Number of evaluations of one target before [`ProgramMode::Auto`]
/// compiles it into an [`crate::AssemblyProgram`]. Compilation costs about
/// one recursive evaluation, so compiling on the second sight already pays
/// off; blocked evaluations count each point, so a sweep compiles
/// immediately.
pub const AUTO_PROGRAM_MIN_SEEN: u64 = 2;

/// Options controlling an [`Evaluator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalOptions {
    /// Cycle handling (defaults to [`CycleMode::Error`]).
    pub cycle_mode: CycleMode,
    /// Solver policy (defaults to [`SolverPolicy::Auto`], unless the
    /// `ARCHREL_SOLVER` environment variable forces a policy).
    pub solver: SolverPolicy,
    /// Tolerance / sweep budget / scheme for the sparse path's iterative
    /// fallback on cyclic chains.
    pub sparse: archrel_markov::SparseSolveOptions,
    /// Number of parameter points accumulated per block before the blocked
    /// evaluation path flushes a [`ParamBlock`] through a compiled plan
    /// (`1..=LANE`). Defaults to the full [`LANE`] width, unless the
    /// `ARCHREL_PLAN_LANES` environment variable overrides it — which is
    /// how CI exercises partially-filled blocks (and `1`, the degenerate
    /// per-point block) across the whole test suite.
    pub plan_lanes: usize,
    /// Assembly-program compilation mode (defaults to
    /// [`ProgramMode::Auto`], unless the `ARCHREL_ASSEMBLY_PROGRAM`
    /// environment variable forces a mode). Programs answer both
    /// [`CycleMode::Error`] evaluations (straight-line replay) and
    /// [`CycleMode::FixedPoint`] evaluations (the program's global
    /// fixed-point driver on cyclic targets).
    pub program: ProgramMode,
    /// Whether assembly programs answer repeated sub-service invocations
    /// from their per-service memo tables (bit-exact parameter keys, so
    /// disabling this never changes a result — it only re-evaluates).
    pub program_memo: bool,
    /// Fixed-point update scheme for [`CycleMode::FixedPoint`] (defaults to
    /// [`FixedPointMode::Plain`] — the bitwise reference — unless the
    /// `ARCHREL_FIXED_POINT` environment variable forces a mode).
    pub fixed_point: FixedPointMode,
    /// SIMD dispatch mode for the lane-blocked tape replay (defaults to
    /// [`SimdMode::Auto`] — runtime-detected AVX-512/AVX2 with the scalar
    /// tape as the bitwise-reference fallback — unless the `ARCHREL_SIMD`
    /// environment variable forces a path). Every path is bitwise-identical,
    /// so this toggle never changes a result.
    pub simd: SimdMode,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            cycle_mode: CycleMode::default(),
            solver: SolverPolicy::from_env().unwrap_or_default(),
            sparse: archrel_markov::SparseSolveOptions::default(),
            plan_lanes: plan_lanes_from_env().unwrap_or(LANE),
            program: ProgramMode::from_env().unwrap_or_default(),
            program_memo: true,
            fixed_point: FixedPointMode::from_env().unwrap_or_default(),
            simd: SimdMode::from_env().unwrap_or_default(),
        }
    }
}

/// Parses a value of the `ARCHREL_PLAN_LANES` environment variable: an
/// integer block-flush width in `1..=LANE`.
///
/// # Panics
///
/// Panics on anything else — mirroring the `ARCHREL_SOLVER` hard-error
/// behavior, a typo'd override must not silently run the suite at the
/// default lane width.
pub fn parse_plan_lanes_env_value(raw: &str) -> usize {
    match raw.trim().parse::<usize>() {
        Ok(lanes) if (1..=LANE).contains(&lanes) => lanes,
        _ => panic!(
            "unrecognized ARCHREL_PLAN_LANES value `{raw}`: expected an integer in 1..={LANE}"
        ),
    }
}

/// Block-flush width forced by the `ARCHREL_PLAN_LANES` environment
/// variable, if set. An empty value counts as unset (CI matrices expand
/// absent entries to empty strings).
///
/// # Panics
///
/// Panics when the variable is set to an unrecognized value (see
/// [`parse_plan_lanes_env_value`]).
pub fn plan_lanes_from_env() -> Option<usize> {
    std::env::var("ARCHREL_PLAN_LANES")
        .ok()
        .filter(|v| !v.trim().is_empty())
        .map(|v| parse_plan_lanes_env_value(&v))
}

/// Hard cap on recursion depth, guarding against recursive assemblies whose
/// parameters change on every call (so no `(service, params)` key repeats).
/// Shared with the program fixed-point driver so both engines break runaway
/// recursion at the same depth.
pub(crate) const MAX_DEPTH: usize = 2048;

pub(crate) type CacheKey = (ServiceId, String);

/// Snapshot of an evaluator's solve-cache activity.
///
/// Counters cover the **shared** cross-invocation cache: a *hit* means a
/// `(service, resolved-parameter fingerprint)` lookup was answered without
/// re-solving; a *miss* means the absorbing-chain pipeline ran. `solves` and
/// `solve_time` measure the linear-algebra kernel itself (per composite
/// flow), so `misses ≥ solves` never holds in general — one miss at the top
/// can trigger several solves below it, and per-sweep memo hits avoid
/// re-solves without touching the shared cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Shared-cache lookups answered without evaluation.
    pub hits: u64,
    /// Shared-cache lookups that had to evaluate.
    pub misses: u64,
    /// Absorbing-chain solves performed.
    pub solves: u64,
    /// Total nanoseconds spent inside absorbing-chain solves.
    pub solve_nanos: u64,
    /// Plan-cache lookups answered by an already compiled plan.
    pub plan_hits: u64,
    /// Plan-cache lookups that had to compile (or classify) a structure.
    pub plan_misses: u64,
    /// Plan evaluations answered *without* a refactorization: straight-line
    /// tape replays, back-substitutions against the compile-time baseline
    /// factorization, and Sherman–Morrison rank-1 updates.
    pub rank1_solves: u64,
    /// Plan evaluations that fell back to a full refactorization (more than
    /// one transient row changed, or the rank-1 update was numerically
    /// refused).
    pub full_solves: u64,
    /// Parameter points answered through the lane-blocked replay path
    /// ([`archrel_markov::SolvePlan::evaluate_block`]).
    pub block_points: u64,
    /// Block flushes performed; `block_points / block_flushes` is the mean
    /// lane occupancy of the blocked path.
    pub block_flushes: u64,
    /// Nanoseconds the blocked path spent *extracting* parameter vectors
    /// from freshly built chains ([`SolvePlan::parameters_into`]) — the
    /// per-point cost the staged drivers exist to avoid.
    pub extract_nanos: u64,
    /// Nanoseconds the staged sweep drivers spent computing sample
    /// parameters directly into [`ParamBlock`] rows (no intermediate
    /// `Bindings`, no chain rebuild).
    pub stage_nanos: u64,
    /// Nanoseconds spent inside blocked plan replays — the tape/SIMD kernel
    /// itself plus the cyclic lane-by-lane fallback.
    pub replay_nanos: u64,
    /// Compiled plans evicted from the bounded plan cache (LRU on structure
    /// fingerprint).
    pub plan_evictions: u64,
    /// Assembly-program node evaluations answered by a per-service memo
    /// table (bit-exact actual-parameter key).
    pub memo_hits: u64,
    /// Assembly-program node evaluations that had to compute (and then
    /// populated the memo).
    pub memo_misses: u64,
    /// Assembly-program node evaluations answered by a dirty-cone pin: the
    /// node sits outside the declared varied-parameter cone and its inputs
    /// compared bit-equal to the pinned evaluation.
    pub pin_hits: u64,
    /// `(assembly, target)` pairs compiled into assembly programs.
    pub programs_compiled: u64,
    /// Global fixed-point sweeps performed across all
    /// [`CycleMode::FixedPoint`] evaluations (recursive or program-driven).
    pub fixed_point_sweeps: u64,
    /// Estimate updates replaced by an Aitken Δ² extrapolation
    /// ([`FixedPointMode::Aitken`]).
    pub aitken_accels: u64,
    /// Aitken updates that fell back to plain substitution on a degenerate
    /// denominator.
    pub aitken_fallbacks: u64,
    /// Nontrivial strongly connected components (fixed-point loop
    /// components) across all compiled assembly programs.
    pub program_loop_sccs: u64,
    /// Per-SCC member-estimate updates performed by compiled programs'
    /// fixed-point drivers, summed over all loop SCCs.
    pub scc_iterations: u64,
    /// Compiled plans and program bundles loaded (and fully validated)
    /// from the persistent artifact store.
    pub store_hits: u64,
    /// Artifact-store lookups that found no archive on disk.
    pub store_misses: u64,
    /// Artifacts present on disk but rejected by validation — corrupt,
    /// wrong format version, incompatible build, or hostile framing. Each
    /// rejection fell back to fresh compilation.
    pub store_validate_rejects: u64,
    /// Artifacts this process published to the store.
    pub store_writes: u64,
}

impl CacheStats {
    /// Total wall-clock time spent in absorbing-chain solves.
    pub fn solve_time(&self) -> Duration {
        Duration::from_nanos(self.solve_nanos)
    }

    /// Hit fraction of all shared-cache lookups (0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Hit fraction of all assembly-program memo lookups, counting pinned
    /// answers as hits (0 when no lookups were made).
    pub fn memo_hit_rate(&self) -> f64 {
        let answered = self.memo_hits + self.pin_hits;
        let total = answered + self.memo_misses;
        if total == 0 {
            0.0
        } else {
            answered as f64 / total as f64
        }
    }

    /// Adds every counter of `other` into `self` (saturating).
    ///
    /// This is the aggregation primitive for callers that sum activity
    /// across many evaluators — the `archrel serve` daemon folding
    /// per-request [`Evaluator::local_stats`] snapshots into one
    /// daemon-wide view. Merge **local** snapshots plus the shared
    /// [`PlanCache::stats`] exactly once; merging full
    /// [`Evaluator::cache_stats`] snapshots would double-count the shared
    /// plan-cache counters, which every evaluator folds in.
    pub fn merge(&mut self, other: &CacheStats) {
        let CacheStats {
            hits,
            misses,
            solves,
            solve_nanos,
            plan_hits,
            plan_misses,
            rank1_solves,
            full_solves,
            block_points,
            block_flushes,
            extract_nanos,
            stage_nanos,
            replay_nanos,
            plan_evictions,
            memo_hits,
            memo_misses,
            pin_hits,
            programs_compiled,
            fixed_point_sweeps,
            aitken_accels,
            aitken_fallbacks,
            program_loop_sccs,
            scc_iterations,
            store_hits,
            store_misses,
            store_validate_rejects,
            store_writes,
        } = *other;
        self.hits = self.hits.saturating_add(hits);
        self.misses = self.misses.saturating_add(misses);
        self.solves = self.solves.saturating_add(solves);
        self.solve_nanos = self.solve_nanos.saturating_add(solve_nanos);
        self.plan_hits = self.plan_hits.saturating_add(plan_hits);
        self.plan_misses = self.plan_misses.saturating_add(plan_misses);
        self.rank1_solves = self.rank1_solves.saturating_add(rank1_solves);
        self.full_solves = self.full_solves.saturating_add(full_solves);
        self.block_points = self.block_points.saturating_add(block_points);
        self.block_flushes = self.block_flushes.saturating_add(block_flushes);
        self.extract_nanos = self.extract_nanos.saturating_add(extract_nanos);
        self.stage_nanos = self.stage_nanos.saturating_add(stage_nanos);
        self.replay_nanos = self.replay_nanos.saturating_add(replay_nanos);
        self.plan_evictions = self.plan_evictions.saturating_add(plan_evictions);
        self.memo_hits = self.memo_hits.saturating_add(memo_hits);
        self.memo_misses = self.memo_misses.saturating_add(memo_misses);
        self.pin_hits = self.pin_hits.saturating_add(pin_hits);
        self.programs_compiled = self.programs_compiled.saturating_add(programs_compiled);
        self.fixed_point_sweeps = self.fixed_point_sweeps.saturating_add(fixed_point_sweeps);
        self.aitken_accels = self.aitken_accels.saturating_add(aitken_accels);
        self.aitken_fallbacks = self.aitken_fallbacks.saturating_add(aitken_fallbacks);
        self.program_loop_sccs = self.program_loop_sccs.saturating_add(program_loop_sccs);
        self.scc_iterations = self.scc_iterations.saturating_add(scc_iterations);
        self.store_hits = self.store_hits.saturating_add(store_hits);
        self.store_misses = self.store_misses.saturating_add(store_misses);
        self.store_validate_rejects = self
            .store_validate_rejects
            .saturating_add(store_validate_rejects);
        self.store_writes = self.store_writes.saturating_add(store_writes);
    }
}

/// Internal atomic counters behind [`CacheStats`]; relaxed ordering is
/// enough because the counters carry no synchronization duty.
#[derive(Debug, Default)]
struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    solves: AtomicU64,
    solve_nanos: AtomicU64,
    fixed_point_sweeps: AtomicU64,
    aitken_accels: AtomicU64,
    aitken_fallbacks: AtomicU64,
}

impl CacheCounters {
    fn snapshot(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            solves: self.solves.load(Ordering::Relaxed),
            solve_nanos: self.solve_nanos.load(Ordering::Relaxed),
            plan_hits: 0,
            plan_misses: 0,
            rank1_solves: 0,
            full_solves: 0,
            block_points: 0,
            block_flushes: 0,
            extract_nanos: 0,
            stage_nanos: 0,
            replay_nanos: 0,
            plan_evictions: 0,
            memo_hits: 0,
            memo_misses: 0,
            pin_hits: 0,
            programs_compiled: 0,
            fixed_point_sweeps: self.fixed_point_sweeps.load(Ordering::Relaxed),
            aitken_accels: self.aitken_accels.load(Ordering::Relaxed),
            aitken_fallbacks: self.aitken_fallbacks.load(Ordering::Relaxed),
            program_loop_sccs: 0,
            scc_iterations: 0,
            store_hits: 0,
            store_misses: 0,
            store_validate_rejects: 0,
            store_writes: 0,
        }
    }
}

/// What the plan cache knows about one flow structure.
#[derive(Debug, Clone)]
pub(crate) enum PlanEntry {
    /// A compiled plan, ready to evaluate.
    Plan(Arc<SolvePlan>),
    /// The structure is cyclic and the caller asked for acyclic-only
    /// compilation (`Auto` promotion): remembered so the sparse fallback is
    /// taken without re-running the classification every solve.
    CyclicUncompiled,
    /// The target is structurally unreachable from the source. The solve
    /// error is remembered verbatim so the plan path reports exactly what
    /// the direct solvers would.
    Unreachable { from: String, target: String },
}

/// Shared, structure-keyed cache of compiled solve plans.
///
/// Keys are [`structure_fingerprint`]s, so the cache is agnostic to which
/// assembly (or perturbed copy of an assembly) produced a chain: parameter
/// sweeps, sensitivity stencils, improvement bisections, and selection
/// enumerations that re-solve one flow structure with different numeric
/// entries all share a single compiled plan. Clone the [`Arc`] holding it
/// into several [`Evaluator::with_plan_cache`] instances to share plans
/// across evaluators (and across threads — all interior state is locked or
/// atomic).
#[derive(Debug)]
pub struct PlanCache {
    plans: RwLock<HashMap<u64, PlanSlot>>,
    /// Per-structure sighting counts driving `Auto` promotion.
    seen: RwLock<HashMap<u64, u64>>,
    /// Maximum number of cached structures before LRU eviction (≥ 1).
    capacity: usize,
    /// Monotone use clock stamping [`PlanSlot::last_used`].
    clock: AtomicU64,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
    rank1_solves: AtomicU64,
    full_solves: AtomicU64,
    evictions: AtomicU64,
    block_points: AtomicU64,
    block_flushes: AtomicU64,
    /// Per-phase wall-clock attribution of the blocked sweep pipeline
    /// (see the matching [`CacheStats`] fields).
    extract_nanos: AtomicU64,
    stage_nanos: AtomicU64,
    replay_nanos: AtomicU64,
    /// Group-atomicity gate for multi-counter updates: writers of a counter
    /// *group* (e.g. [`PlanCache::record_block`]'s four related adds) hold a
    /// read guard, while [`PlanCache::stats`] snapshots under the write
    /// guard — so a snapshot never observes a torn group (block flushes
    /// without their points, rank-1 solves without their flush). Individual
    /// counters stay plain relaxed atomics; the gate is only contended for
    /// the duration of a handful of `fetch_add`s.
    stats_gate: RwLock<()>,
    /// Persistent artifact tier: archived plans are loaded instead of
    /// compiled, and fresh compilations are published back.
    store: Option<Arc<ArtifactStore>>,
}

/// One cached structure plus its LRU bookkeeping.
#[derive(Debug)]
struct PlanSlot {
    entry: PlanEntry,
    /// Clock stamp of the last lookup (atomic so the read path can touch it
    /// under the map's read lock).
    last_used: AtomicU64,
}

/// Default [`PlanCache`] capacity: deliberately generous — an assembly has
/// one flow structure per composite service, so thousands of structures only
/// arise in long multi-assembly batch runs, exactly the workloads the bound
/// protects from unbounded growth.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 4096;

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::with_capacity(DEFAULT_PLAN_CACHE_CAPACITY)
    }
}

impl PlanCache {
    /// Creates an empty plan cache with the default capacity
    /// ([`DEFAULT_PLAN_CACHE_CAPACITY`]).
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// Creates an empty plan cache holding at most `capacity` structures
    /// (clamped to at least 1); beyond that, the least-recently-used
    /// structure is evicted and counted in
    /// [`CacheStats::plan_evictions`].
    pub fn with_capacity(capacity: usize) -> Self {
        PlanCache {
            plans: RwLock::new(HashMap::new()),
            seen: RwLock::new(HashMap::new()),
            capacity: capacity.max(1),
            clock: AtomicU64::new(0),
            plan_hits: AtomicU64::new(0),
            plan_misses: AtomicU64::new(0),
            rank1_solves: AtomicU64::new(0),
            full_solves: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            block_points: AtomicU64::new(0),
            block_flushes: AtomicU64::new(0),
            extract_nanos: AtomicU64::new(0),
            stage_nanos: AtomicU64::new(0),
            replay_nanos: AtomicU64::new(0),
            stats_gate: RwLock::new(()),
            store: ArtifactStore::from_env(),
        }
    }

    /// Attaches a persistent artifact store (or detaches with `None`),
    /// replacing whatever `ARCHREL_ARTIFACT_DIR` configured. Archived plans
    /// then satisfy cache misses without compiling, and fresh compilations
    /// are published back when the store's mode writes.
    pub fn with_artifact_store(mut self, store: Option<Arc<ArtifactStore>>) -> Self {
        self.store = store;
        self
    }

    /// The persistent artifact store this cache reads through, if any.
    pub fn artifact_store(&self) -> Option<&Arc<ArtifactStore>> {
        self.store.as_ref()
    }

    /// Maximum number of structures the cache retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of flow structures currently cached (compiled or classified).
    pub fn len(&self) -> usize {
        self.plans.read().len()
    }

    /// Whether the cache holds no structures yet.
    pub fn is_empty(&self) -> bool {
        self.plans.read().is_empty()
    }

    /// Structures evicted so far under the capacity bound.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Bumps and returns the sighting count of a structure.
    fn note_seen(&self, fingerprint: u64) -> u64 {
        let mut seen = self.seen.write();
        let count = seen.entry(fingerprint).or_insert(0);
        *count += 1;
        *count
    }

    /// Looks up (or compiles) the entry for a structure. With
    /// `acyclic_only`, cyclic structures are classified but not compiled.
    pub(crate) fn entry(
        &self,
        fingerprint: u64,
        chain: &archrel_markov::Dtmc<AugmentedState>,
        from: &AugmentedState,
        target: &AugmentedState,
        acyclic_only: bool,
    ) -> archrel_markov::Result<PlanEntry> {
        if let Some(slot) = self.plans.read().get(&fingerprint) {
            // An acyclic-only caller can use a fully compiled entry, but a
            // `CyclicUncompiled` marker does not satisfy a full-compilation
            // request — fall through and compile in that case.
            if !matches!(
                (acyclic_only, &slot.entry),
                (false, PlanEntry::CyclicUncompiled)
            ) {
                slot.last_used.store(self.tick(), Ordering::Relaxed);
                self.plan_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(slot.entry.clone());
            }
        }
        self.plan_misses.fetch_add(1, Ordering::Relaxed);
        // Read-through: an archived artifact for this structure (published
        // by an earlier process sharing the artifact directory) replaces
        // the compile step entirely. An acyclic-only caller ignores an
        // archived *cyclic* plan so the `Auto` classification outcome — and
        // hence every downstream number — matches a store-less run exactly.
        let archived = self.store.as_ref().and_then(|store| {
            store
                .load_plan(fingerprint)
                .filter(|plan| !acyclic_only || plan.is_acyclic())
                .map(Arc::new)
        });
        let fresh = match archived {
            Some(plan) => PlanEntry::Plan(plan),
            None => {
                let compiled = if acyclic_only {
                    SolvePlan::compile_acyclic(chain, from, target).map(|p| p.map(Arc::new))
                } else {
                    SolvePlan::compile(chain, from, target).map(|p| Some(Arc::new(p)))
                };
                match compiled {
                    Ok(Some(plan)) => {
                        // Write-behind: publication failures are non-fatal
                        // (the in-memory plan is used either way) and
                        // surface only through the store's counters.
                        if let Some(store) = &self.store {
                            let _ = store.store_plan(&plan);
                        }
                        PlanEntry::Plan(plan)
                    }
                    Ok(None) => PlanEntry::CyclicUncompiled,
                    Err(archrel_markov::MarkovError::UnreachableTarget { from, target }) => {
                        PlanEntry::Unreachable { from, target }
                    }
                    // Other validation errors (trapped mass, not an
                    // absorbing chain, ...) are not cached: the direct
                    // solvers re-derive them and the caller propagates them
                    // either way.
                    Err(e) => return Err(e),
                }
            }
        };
        let stamp = self.tick();
        let mut plans = self.plans.write();
        let entry = match plans.entry(fingerprint) {
            // First insertion wins, so concurrent compilers of the same
            // structure all converge on one shared plan instance...
            std::collections::hash_map::Entry::Occupied(mut occupied) => {
                let slot = occupied.get_mut();
                // ...except a full compilation upgrades a cyclic marker.
                if matches!(slot.entry, PlanEntry::CyclicUncompiled)
                    && matches!(fresh, PlanEntry::Plan(_))
                {
                    slot.entry = fresh;
                }
                slot.last_used.store(stamp, Ordering::Relaxed);
                slot.entry.clone()
            }
            std::collections::hash_map::Entry::Vacant(vacant) => {
                vacant.insert(PlanSlot {
                    entry: fresh.clone(),
                    last_used: AtomicU64::new(stamp),
                });
                fresh
            }
        };
        // LRU bound: drop the stalest structures (never the one just
        // touched) and forget their sighting counts so a re-promotion under
        // `Auto` starts from a cold count again.
        while plans.len() > self.capacity {
            let victim = plans
                .iter()
                .filter(|(&fp, _)| fp != fingerprint)
                .min_by_key(|(_, slot)| slot.last_used.load(Ordering::Relaxed))
                .map(|(&fp, _)| fp);
            match victim {
                Some(fp) => {
                    plans.remove(&fp);
                    self.seen.write().remove(&fp);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
        Ok(entry)
    }

    pub(crate) fn record(&self, kind: PlanSolveKind) {
        match kind {
            PlanSolveKind::Tape | PlanSolveKind::Rank1 => {
                self.rank1_solves.fetch_add(1, Ordering::Relaxed)
            }
            PlanSolveKind::Full => self.full_solves.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Folds one block flush's per-lane solve kinds into the counters.
    ///
    /// The whole group lands under one `stats_gate` read guard so a
    /// concurrent [`PlanCache::stats`] snapshot sees the flush together
    /// with its points and solve kinds, never a torn mixture.
    fn record_block(&self, kinds: BlockSolveKinds) {
        let _group = self.stats_gate.read();
        self.rank1_solves
            .fetch_add(kinds.tape + kinds.rank1, Ordering::Relaxed);
        self.full_solves.fetch_add(kinds.full, Ordering::Relaxed);
        self.block_points
            .fetch_add(kinds.tape + kinds.rank1 + kinds.full, Ordering::Relaxed);
        self.block_flushes.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds blocked-pipeline phase attribution (parameter extraction and
    /// plan replay nanoseconds) into the counters.
    fn record_phase_nanos(&self, extract: u64, replay: u64) {
        let _group = self.stats_gate.read();
        if extract > 0 {
            self.extract_nanos.fetch_add(extract, Ordering::Relaxed);
        }
        if replay > 0 {
            self.replay_nanos.fetch_add(replay, Ordering::Relaxed);
        }
    }

    /// Folds staged-driver sample staging time into the counters.
    pub(crate) fn record_stage_nanos(&self, stage: u64) {
        if stage > 0 {
            self.stage_nanos.fetch_add(stage, Ordering::Relaxed);
        }
    }

    /// A snapshot of this cache's own counters (plan hits/misses, solve
    /// kinds, blocked-replay tallies, and the extract/stage/replay phase
    /// nanoseconds). Callers that share one cache across many short-lived
    /// evaluators — the sweep drivers, the benches — read the sweep-wide
    /// phase split here; [`Evaluator::cache_stats`] folds the same counters
    /// into its per-evaluator view.
    ///
    /// The snapshot is *group-atomic*: multi-counter update groups (one
    /// block flush's points + flush + solve kinds, one pipeline's phase
    /// nanoseconds) are excluded for the duration of the read, so related
    /// counters are always mutually consistent — the invariant the daemon's
    /// `stats` op relies on when aggregating across concurrent requests.
    pub fn stats(&self) -> CacheStats {
        let mut stats = CacheStats::default();
        self.fold_into(&mut stats);
        stats
    }

    fn fold_into(&self, stats: &mut CacheStats) {
        // Write guard: waits out in-flight counter groups and blocks new
        // ones while the snapshot loads, making the group updates atomic
        // with respect to this read (seqlock-style, but blocking).
        let _snapshot = self.stats_gate.write();
        stats.plan_hits = self.plan_hits.load(Ordering::Relaxed);
        stats.plan_misses = self.plan_misses.load(Ordering::Relaxed);
        stats.rank1_solves = self.rank1_solves.load(Ordering::Relaxed);
        stats.full_solves = self.full_solves.load(Ordering::Relaxed);
        stats.block_points = self.block_points.load(Ordering::Relaxed);
        stats.block_flushes = self.block_flushes.load(Ordering::Relaxed);
        stats.extract_nanos = self.extract_nanos.load(Ordering::Relaxed);
        stats.stage_nanos = self.stage_nanos.load(Ordering::Relaxed);
        stats.replay_nanos = self.replay_nanos.load(Ordering::Relaxed);
        stats.plan_evictions = self.evictions.load(Ordering::Relaxed);
        if let Some(store) = &self.store {
            let s = store.stats();
            stats.store_hits = s.hits;
            stats.store_misses = s.misses;
            stats.store_validate_rejects = s.validate_rejects;
            stats.store_writes = s.writes;
        }
    }

    /// Installs archived plans for the given structure fingerprints ahead
    /// of demand (a compiled program's bundle warm-start); returns how many
    /// were loaded. Only *acyclic* archives are installed: an `Auto` caller
    /// must reach the same classification outcome as a store-less run (a
    /// pre-installed cyclic plan would silently replace its sparse
    /// fallback), while full-compilation callers still pick archived cyclic
    /// plans up through the read-through path.
    pub fn prefetch_archived(&self, fingerprints: &[u64]) -> usize {
        let Some(store) = &self.store else { return 0 };
        let mut loaded = 0;
        for &fingerprint in fingerprints {
            if self.plans.read().contains_key(&fingerprint) {
                continue;
            }
            let Some(plan) = store.load_plan(fingerprint).filter(|p| p.is_acyclic()) else {
                continue;
            };
            let stamp = self.tick();
            let mut plans = self.plans.write();
            plans.entry(fingerprint).or_insert_with(|| {
                loaded += 1;
                PlanSlot {
                    entry: PlanEntry::Plan(Arc::new(plan)),
                    last_used: AtomicU64::new(stamp),
                }
            });
            while plans.len() > self.capacity {
                let victim = plans
                    .iter()
                    .filter(|(&fp, _)| fp != fingerprint)
                    .min_by_key(|(_, slot)| slot.last_used.load(Ordering::Relaxed))
                    .map(|(&fp, _)| fp);
                match victim {
                    Some(fp) => {
                        plans.remove(&fp);
                        self.seen.write().remove(&fp);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                    None => break,
                }
            }
        }
        loaded
    }
}

/// Store digest of one `(assembly, target)` program. Hashes the assembly's
/// full debug rendering (deterministic: services live in a `BTreeMap`), so
/// any model change — structure *or* numbers — keys a different bundle.
/// Conservative over-keying only costs a warm-start, never correctness.
fn program_digest(assembly: &Assembly, service: &ServiceId) -> u64 {
    archrel_store::fnv1a64(format!("{assembly:?}|{service:?}").as_bytes())
}

thread_local! {
    /// Per-thread parameter buffer + plan scratch for the scalar compiled
    /// path: after warm-up, a sweep's plan evaluations perform no heap
    /// allocation per point.
    static PLAN_EVAL_TLS: RefCell<(Vec<f64>, PlanScratch)> =
        RefCell::new((Vec::new(), PlanScratch::new()));
}

/// Per-request resolution detail, reused by the report module.
#[derive(Debug, Clone)]
pub(crate) struct ResolvedRequest {
    pub target: ServiceId,
    pub internal: Probability,
    pub external: Probability,
}

/// Per-state resolution detail, reused by the report module.
#[derive(Debug, Clone)]
pub(crate) struct ResolvedState {
    pub state: StateId,
    pub failure: Probability,
    pub requests: Vec<ResolvedRequest>,
}

struct Ctx<'e> {
    stack: Vec<CacheKey>,
    /// Per-sweep memo (always consistent: estimates are fixed for a sweep).
    memo: HashMap<CacheKey, Probability>,
    /// Fixed-point estimates from the previous sweep; `None` in Error mode.
    estimates: Option<&'e HashMap<CacheKey, f64>>,
    /// Keys at which a cycle was broken this sweep.
    cycle_keys: HashSet<CacheKey>,
    /// When set, `estimates` holds *converged* values and answers matching
    /// keys directly (not just at stack re-entries) — the post-convergence
    /// resolve pass of [`Evaluator::resolve_states_fresh`]. Never set
    /// during iteration: sweeps must recompute through the cycle.
    overlay: bool,
}

/// The reliability-prediction engine for one assembly.
///
/// Cheap to construct; holds a memoization cache keyed by
/// `(service, resolved parameters)` so parameter sweeps that share
/// sub-invocations (e.g. Figure 6's per-γ curves) reuse work. The evaluator
/// is `Sync`: the cache is behind a lock, so it can be shared across threads.
///
/// # Examples
///
/// ```
/// use archrel_core::Evaluator;
/// use archrel_model::paper;
///
/// # fn main() -> Result<(), archrel_core::CoreError> {
/// let assembly = paper::remote_assembly(&paper::PaperParams::default()).unwrap();
/// let eval = Evaluator::new(&assembly);
/// let pfail = eval.failure_probability(
///     &paper::SEARCH.into(),
///     &paper::search_bindings(4.0, 512.0, 1.0),
/// )?;
/// assert!(pfail.value() < 0.05);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Evaluator<'a> {
    assembly: &'a Assembly,
    options: EvalOptions,
    values: Arc<ValueCache>,
    counters: CacheCounters,
    plans: Arc<PlanCache>,
    /// Compiled assembly programs (and their promotion bookkeeping), one
    /// slot per target service.
    programs: RwLock<HashMap<ServiceId, ProgramSlot<'a>>>,
    /// Declared varied-parameter subsets (dirty-cone hints), applied to a
    /// target's program when it compiles.
    varied: RwLock<HashMap<ServiceId, Vec<String>>>,
    programs_compiled: AtomicU64,
    /// Targets whose pinned-plan bundle has been published to the artifact
    /// store (publication happens once, after the first evaluation that
    /// pinned at least one plan).
    bundles_published: RwLock<HashSet<ServiceId>>,
    /// Cooperative cancellation handle (see [`Evaluator::with_cancellation`]);
    /// `None` means evaluations run to completion.
    cancel: Option<CancelToken>,
}

/// A shareable `(service, resolved-parameter)` → [`Probability`] memo.
///
/// Unlike the structure-keyed [`PlanCache`], cached *values* bake the
/// assembly's numbers in, so a `ValueCache` may only be shared across
/// evaluators of the **same assembly content** — never across numeric
/// variants. Long-lived hosts that build a short-lived [`Evaluator`] per
/// request over one resident model (the `archrel serve` daemon's catalog
/// entries) attach one shared cache per model version via
/// [`Evaluator::with_value_cache`], so a repeated query is a memo hit
/// instead of a fresh solve; a hot-swap allocates a fresh cache while the
/// plan cache stays warm.
#[derive(Debug, Default)]
pub struct ValueCache {
    memo: RwLock<HashMap<CacheKey, Probability>>,
}

impl ValueCache {
    /// An empty cache.
    pub fn new() -> Self {
        ValueCache::default()
    }

    /// Number of memoized `(service, parameter-fingerprint)` results.
    pub fn len(&self) -> usize {
        self.memo.read().len()
    }

    /// Whether nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Program-promotion state of one target service.
#[derive(Debug)]
enum ProgramSlot<'a> {
    /// Still on the recursive path; counts evaluations toward
    /// [`AUTO_PROGRAM_MIN_SEEN`].
    Pending { seen: u64 },
    /// Compiled and answering evaluations.
    Ready(Arc<AssemblyProgram<'a>>),
    /// Compilation failed under [`ProgramMode::Auto`] (e.g. a malformed
    /// expression): remembered so the recursive path is taken without
    /// re-attempting compilation.
    Failed,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator with default options (cycles are errors).
    pub fn new(assembly: &'a Assembly) -> Self {
        Evaluator::with_options(assembly, EvalOptions::default())
    }

    /// Creates an evaluator with explicit options.
    pub fn with_options(assembly: &'a Assembly, options: EvalOptions) -> Self {
        Evaluator::with_plan_cache(assembly, options, Arc::new(PlanCache::new()))
    }

    /// Creates an evaluator that shares a compiled-plan cache.
    ///
    /// The value cache (keyed by resolved parameters) stays private to each
    /// evaluator, but plans are keyed purely by flow *structure*, so
    /// workloads that build many short-lived evaluators over structurally
    /// identical assemblies — improvement bisections, selection
    /// enumerations, uncertainty sampling — pass one shared cache and
    /// compile each structure once.
    pub fn with_plan_cache(
        assembly: &'a Assembly,
        options: EvalOptions,
        plans: Arc<PlanCache>,
    ) -> Self {
        Evaluator {
            assembly,
            options,
            values: Arc::new(ValueCache::new()),
            counters: CacheCounters::default(),
            plans,
            programs: RwLock::new(HashMap::new()),
            varied: RwLock::new(HashMap::new()),
            programs_compiled: AtomicU64::new(0),
            bundles_published: RwLock::new(HashSet::new()),
            cancel: None,
        }
    }

    /// Attaches a cooperative cancellation token: evaluations check it at
    /// every composite-service resolution, every fixed-point sweep, and
    /// every blocked sweep point, failing fast with the token's typed error
    /// ([`crate::CoreError::Cancelled`] /
    /// [`crate::CoreError::DeadlineExceeded`]) once it trips. The `archrel
    /// serve` daemon uses this to enforce per-request deadlines without
    /// killing worker threads.
    pub fn with_cancellation(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The attached cancellation token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Attaches a shared value cache (see [`ValueCache`] for the sharing
    /// contract: same assembly *content* only). Replaces this evaluator's
    /// private memo, so results computed here are visible to every other
    /// evaluator holding the same handle and vice versa.
    #[must_use]
    pub fn with_value_cache(mut self, values: Arc<ValueCache>) -> Self {
        self.values = values;
        self
    }

    /// The evaluator's value cache (clone the `Arc` to share it with other
    /// evaluators of the same assembly content).
    pub fn value_cache(&self) -> &Arc<ValueCache> {
        &self.values
    }

    /// Fails with the token's typed error if cancellation has tripped.
    #[inline]
    fn check_cancel(&self) -> Result<()> {
        match &self.cancel {
            Some(token) => token.check(),
            None => Ok(()),
        }
    }

    /// The evaluator's compiled-plan cache (clone the `Arc` to share it).
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.plans
    }

    /// The assembly under evaluation.
    pub fn assembly(&self) -> &'a Assembly {
        self.assembly
    }

    /// The evaluator's options.
    pub fn options(&self) -> EvalOptions {
        self.options
    }

    /// A snapshot of the shared solve cache's hit/miss/solve counters,
    /// including the (possibly shared) plan cache's activity.
    pub fn cache_stats(&self) -> CacheStats {
        let mut stats = self.counters.snapshot();
        self.plans.fold_into(&mut stats);
        stats.programs_compiled = self.programs_compiled.load(Ordering::Relaxed);
        for slot in self.programs.read().values() {
            if let ProgramSlot::Ready(program) = slot {
                let (memo_hits, memo_misses, pin_hits) = program.counter_snapshot();
                stats.memo_hits += memo_hits;
                stats.memo_misses += memo_misses;
                stats.pin_hits += pin_hits;
                stats.program_loop_sccs += program.loop_scc_count() as u64;
                stats.scc_iterations += program.scc_iteration_total();
            }
        }
        stats
    }

    /// Like [`Evaluator::cache_stats`] but restricted to counters private
    /// to this evaluator — the value-cache hits/misses/solves and the
    /// per-program memo counters — *without* folding in the (possibly
    /// shared) [`PlanCache`]. Aggregators summing many evaluators over one
    /// shared plan cache (the `archrel serve` daemon's `stats` op) merge
    /// these local snapshots and add [`PlanCache::stats`] exactly once;
    /// summing [`Evaluator::cache_stats`] instead would count the shared
    /// plan-cache activity once per evaluator.
    pub fn local_stats(&self) -> CacheStats {
        let mut stats = self.counters.snapshot();
        stats.programs_compiled = self.programs_compiled.load(Ordering::Relaxed);
        for slot in self.programs.read().values() {
            if let ProgramSlot::Ready(program) = slot {
                let (memo_hits, memo_misses, pin_hits) = program.counter_snapshot();
                stats.memo_hits += memo_hits;
                stats.memo_misses += memo_misses;
                stats.pin_hits += pin_hits;
                stats.program_loop_sccs += program.loop_scc_count() as u64;
                stats.scc_iterations += program.scc_iteration_total();
            }
        }
        stats
    }

    /// Number of `(service, parameter-fingerprint)` results currently held
    /// by the shared cache.
    pub fn cache_len(&self) -> usize {
        self.values.memo.read().len()
    }

    /// Declares that upcoming evaluations of `service` will only vary the
    /// given formal parameters, enabling dirty-cone pinning: services whose
    /// inputs cannot depend on any declared parameter are evaluated once
    /// and answered from a bit-compare-guarded pin thereafter (see
    /// [`CacheStats::pin_hits`]). The guard makes a wrong or stale
    /// declaration cost recomputation, never correctness. Applies to the
    /// target's compiled program (now or when it compiles); the recursive
    /// path ignores the hint.
    pub fn declare_varied(&self, service: &ServiceId, names: &[String]) {
        self.varied.write().insert(service.clone(), names.to_vec());
        if let Some(ProgramSlot::Ready(program)) = self.programs.read().get(service) {
            program.set_varied(names);
        }
    }

    /// Withdraws a [`Evaluator::declare_varied`] declaration: every service
    /// of the target's program goes back to the hashed memo.
    pub fn clear_varied(&self, service: &ServiceId) {
        self.varied.write().remove(service);
        if let Some(ProgramSlot::Ready(program)) = self.programs.read().get(service) {
            program.clear_varied();
        }
    }

    /// The compiled program currently answering evaluations of `service`,
    /// if one has been promoted (or forced) into place.
    pub fn program(&self, service: &ServiceId) -> Option<Arc<AssemblyProgram<'a>>> {
        match self.programs.read().get(service) {
            Some(ProgramSlot::Ready(program)) => Some(Arc::clone(program)),
            _ => None,
        }
    }

    /// Resolves the program slot for a target about to be evaluated
    /// `weight` times: `Ok(Some(..))` when a compiled program should
    /// answer, `Ok(None)` when the recursive path should run. Under
    /// [`ProgramMode::On`] compilation errors propagate; under
    /// [`ProgramMode::Auto`] they demote the target to the recursive path
    /// permanently.
    fn ensure_program(
        &self,
        service: &ServiceId,
        weight: u64,
    ) -> Result<Option<Arc<AssemblyProgram<'a>>>> {
        if matches!(self.options.program, ProgramMode::Off) {
            return Ok(None);
        }
        {
            let programs = self.programs.read();
            match programs.get(service) {
                Some(ProgramSlot::Ready(program)) => return Ok(Some(Arc::clone(program))),
                Some(ProgramSlot::Failed) => return Ok(None),
                _ => {}
            }
        }
        let mut programs = self.programs.write();
        // Re-check: another thread may have resolved the slot between locks.
        match programs.get_mut(service) {
            Some(ProgramSlot::Ready(program)) => return Ok(Some(Arc::clone(program))),
            Some(ProgramSlot::Failed) => return Ok(None),
            Some(ProgramSlot::Pending { seen }) => {
                *seen += weight;
                if matches!(self.options.program, ProgramMode::Auto)
                    && *seen < AUTO_PROGRAM_MIN_SEEN
                {
                    return Ok(None);
                }
            }
            None => {
                if matches!(self.options.program, ProgramMode::Auto)
                    && weight < AUTO_PROGRAM_MIN_SEEN
                {
                    programs.insert(service.clone(), ProgramSlot::Pending { seen: weight });
                    return Ok(None);
                }
            }
        }
        match AssemblyProgram::compile(self.assembly, service) {
            Ok(program) => {
                self.programs_compiled.fetch_add(1, Ordering::Relaxed);
                if let Some(names) = self.varied.read().get(service) {
                    program.set_varied(names);
                }
                // Bundle warm-start: an earlier process that ran this same
                // program published the fingerprints of the plans it
                // pinned; installing their archives now lets even the first
                // evaluation skip every per-node compile.
                if let Some(store) = self.plans.artifact_store() {
                    if store.mode().reads() {
                        if let Some(fps) = store.load_bundle(program_digest(self.assembly, service))
                        {
                            self.plans.prefetch_archived(&fps);
                        }
                    }
                }
                let program = Arc::new(program);
                programs.insert(service.clone(), ProgramSlot::Ready(Arc::clone(&program)));
                Ok(Some(program))
            }
            Err(e) => match self.options.program {
                ProgramMode::On => Err(e),
                _ => {
                    programs.insert(service.clone(), ProgramSlot::Failed);
                    Ok(None)
                }
            },
        }
    }

    /// One evaluation through a compiled program, with the same shared
    /// top-level cache discipline as the recursive path.
    fn failure_probability_via_program(
        &self,
        program: &AssemblyProgram<'a>,
        service: &ServiceId,
        env: &Bindings,
    ) -> Result<Probability> {
        self.check_cancel()?;
        let key: CacheKey = (service.clone(), env.cache_key());
        if let Some(p) = self.values.memo.read().get(&key) {
            self.counters.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(*p);
        }
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
        let p = program.evaluate(self, env)?;
        self.publish_program_bundle(service, program);
        self.values.memo.write().insert(key, p);
        Ok(p)
    }

    /// Publishes the program's pinned-plan bundle to the artifact store —
    /// once per target, after the first evaluation that pinned at least one
    /// plan (pinning happens during evaluation, so the set is complete by
    /// the time an evaluation returns). Publication failures are non-fatal.
    fn publish_program_bundle(&self, service: &ServiceId, program: &AssemblyProgram<'a>) {
        let Some(store) = self.plans.artifact_store() else {
            return;
        };
        if !store.mode().writes() || self.bundles_published.read().contains(service) {
            return;
        }
        let fingerprints = program.pinned_plan_fingerprints();
        if fingerprints.is_empty() {
            return;
        }
        let _ = store.store_bundle(program_digest(self.assembly, service), &fingerprints);
        self.bundles_published.write().insert(service.clone());
    }

    /// Records one plan-path solve kind (shared with the program path).
    pub(crate) fn record_plan_solve(&self, kind: PlanSolveKind) {
        self.plans.record(kind);
    }

    /// Folds one absorbing-chain solve into the solve counters (shared
    /// with the program path).
    pub(crate) fn note_chain_solve(&self, elapsed: Duration) {
        self.counters.solves.fetch_add(1, Ordering::Relaxed);
        self.counters.solve_nanos.fetch_add(
            u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
    }

    /// Folds one finished fixed-point solve's sweep / acceleration counters
    /// into the cache stats (shared with the program fixed-point driver).
    pub(crate) fn note_fixed_point<K>(&self, solver: &FixedPointSolver<K>) {
        self.counters
            .fixed_point_sweeps
            .fetch_add(solver.sweeps(), Ordering::Relaxed);
        self.counters
            .aitken_accels
            .fetch_add(solver.accels(), Ordering::Relaxed);
        self.counters
            .aitken_fallbacks
            .fetch_add(solver.fallbacks(), Ordering::Relaxed);
    }

    /// Whether the solver policy can ever route a chain of this shape
    /// through the plan path (so the program's cached chains know whether
    /// to keep asking [`Evaluator::plan_for_chain`]).
    pub(crate) fn plan_gate(&self, states: usize, edges: usize) -> bool {
        match self.options.solver {
            SolverPolicy::Compiled => true,
            SolverPolicy::Auto => self.options.solver.choose(states, edges) == ChosenSolver::Sparse,
            SolverPolicy::Dense | SolverPolicy::Sparse => false,
        }
    }

    /// `Pfail(S, fp)`: probability that `service` fails to complete its task
    /// when invoked with formal parameters bound by `env`.
    ///
    /// # Errors
    ///
    /// - [`CoreError::RecursiveAssembly`] in [`CycleMode::Error`] when the
    ///   assembly has a call cycle (or recursion exceeds the depth cap);
    /// - [`CoreError::FixedPointDiverged`] when fixed-point iteration does
    ///   not converge;
    /// - expression / model / Markov errors from malformed inputs.
    pub fn failure_probability(&self, service: &ServiceId, env: &Bindings) -> Result<Probability> {
        match self.options.cycle_mode {
            CycleMode::Error => {
                if let Some(program) = self.ensure_program(service, 1)? {
                    return self.failure_probability_via_program(&program, service, env);
                }
                let mut ctx = Ctx {
                    stack: Vec::new(),
                    memo: HashMap::new(),
                    estimates: None,
                    cycle_keys: HashSet::new(),
                    overlay: false,
                };
                let p = self.eval_rec(service, env, &mut ctx)?;
                // All values computed without estimates are exact: persist.
                self.values.memo.write().extend(ctx.memo);
                Ok(p)
            }
            CycleMode::FixedPoint {
                max_iterations,
                tolerance,
            } => {
                if let Some(program) = self.ensure_program(service, 1)? {
                    if program.has_cycles() {
                        // Cyclic target: the program's global fixed-point
                        // driver. Like the recursive sweeps, it never reads
                        // or writes the shared value cache — estimates are
                        // sweep-local state.
                        let p =
                            program.evaluate_fixed_point(self, env, max_iterations, tolerance)?;
                        self.publish_program_bundle(service, &program);
                        return Ok(p);
                    }
                    // Acyclic target under fixed-point mode: every value is
                    // exact, so the normal program path (with its caches)
                    // answers bitwise-identically.
                    return self.failure_probability_via_program(&program, service, env);
                }
                self.eval_fixed_point(service, env, max_iterations, tolerance)
            }
        }
    }

    /// Reliability `1 − Pfail(S, fp)`.
    ///
    /// # Errors
    ///
    /// See [`Evaluator::failure_probability`].
    pub fn reliability(&self, service: &ServiceId, env: &Bindings) -> Result<Probability> {
        Ok(self.failure_probability(service, env)?.complement())
    }

    fn eval_fixed_point(
        &self,
        service: &ServiceId,
        env: &Bindings,
        max_iterations: usize,
        tolerance: f64,
    ) -> Result<Probability> {
        self.fixed_point_converged(service, env, max_iterations, tolerance)
            .map(|(top, _)| top)
    }

    /// Runs the recursive fixed-point sweeps to convergence, returning the
    /// top value together with the solver (whose estimates map holds the
    /// converged cycle-key values — the seed for the post-convergence
    /// resolve pass of [`Evaluator::resolve_states_fresh`]).
    fn fixed_point_converged(
        &self,
        service: &ServiceId,
        env: &Bindings,
        max_iterations: usize,
        tolerance: f64,
    ) -> Result<(Probability, FixedPointSolver<CacheKey>)> {
        let mut solver: FixedPointSolver<CacheKey> =
            FixedPointSolver::new(self.options.fixed_point, max_iterations, tolerance);
        for _ in 0..max_iterations {
            self.check_cancel()?;
            let (top, cycle_keys, sweep_values) = {
                let mut ctx = Ctx {
                    stack: Vec::new(),
                    memo: HashMap::new(),
                    estimates: Some(solver.estimates()),
                    cycle_keys: HashSet::new(),
                    overlay: false,
                };
                let top = self.eval_rec(service, env, &mut ctx)?;
                (top, ctx.cycle_keys, ctx.memo)
            };
            if cycle_keys.is_empty() {
                // No recursion anywhere below: the value is exact.
                solver.note_exact_sweep();
                self.note_fixed_point(&solver);
                self.values.memo.write().extend(sweep_values);
                return Ok((top, solver));
            }
            let converged = solver.record_sweep(
                top.value(),
                cycle_keys
                    .iter()
                    .filter_map(|key| sweep_values.get(key).map(|v| (key.clone(), v.value()))),
            );
            if converged {
                self.note_fixed_point(&solver);
                return Ok((top, solver));
            }
        }
        self.note_fixed_point(&solver);
        Err(solver.diverged())
    }

    fn eval_rec(
        &self,
        service: &ServiceId,
        env: &Bindings,
        ctx: &mut Ctx<'_>,
    ) -> Result<Probability> {
        let key: CacheKey = (service.clone(), env.cache_key());
        if let Some(p) = ctx.memo.get(&key) {
            return Ok(*p);
        }
        if ctx.overlay {
            if let Some(&estimate) = ctx.estimates.and_then(|e| e.get(&key)) {
                return Ok(Probability::new(estimate)?);
            }
        }
        if ctx.estimates.is_none() {
            if let Some(p) = self.values.memo.read().get(&key) {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(*p);
            }
            self.counters.misses.fetch_add(1, Ordering::Relaxed);
        }
        if ctx.stack.contains(&key) || ctx.stack.len() >= MAX_DEPTH {
            return match ctx.estimates {
                None => Err(self.cycle_error(&ctx.stack, &key)),
                Some(estimates) => {
                    let estimate = estimates.get(&key).copied().unwrap_or(0.0);
                    ctx.cycle_keys.insert(key);
                    Ok(Probability::new(estimate)?)
                }
            };
        }

        ctx.stack.push(key.clone());
        let result = self.eval_service(service, env, ctx);
        ctx.stack.pop();

        let p = result?;
        ctx.memo.insert(key, p);
        Ok(p)
    }

    fn cycle_error(&self, stack: &[CacheKey], repeated: &CacheKey) -> CoreError {
        let start = stack
            .iter()
            .position(|k| k == repeated)
            .unwrap_or_else(|| stack.len().saturating_sub(8));
        let mut cycle: Vec<String> = stack[start..]
            .iter()
            .map(|(id, _)| id.to_string())
            .collect();
        cycle.push(repeated.0.to_string());
        CoreError::RecursiveAssembly { cycle }
    }

    fn eval_service(
        &self,
        service: &ServiceId,
        env: &Bindings,
        ctx: &mut Ctx<'_>,
    ) -> Result<Probability> {
        self.check_cancel()?;
        match self.assembly.require(service)? {
            Service::Simple(simple) => {
                let demand = env.get(simple.formal_param()).ok_or_else(|| {
                    CoreError::Expr(archrel_expr::ExprError::UnboundParameter {
                        name: simple.formal_param().to_string(),
                    })
                })?;
                Ok(simple.failure_probability(demand)?)
            }
            Service::Composite(composite) => {
                let states = self.resolve_states(composite, env, ctx)?;
                let failures: BTreeMap<StateId, Probability> = states
                    .iter()
                    .map(|s| (s.state.clone(), s.failure))
                    .collect();
                let chain = augmented_chain(composite, env, &failures)?;
                let start = AugmentedState::Flow(StateId::Start);
                let end = AugmentedState::Flow(StateId::End);
                let solve_started = Instant::now();
                let solved = self.solve_flow_chain(&chain, &start, &end);
                let success = match solved {
                    Ok(p) => p,
                    // Every path drains into Fail: End being structurally
                    // unreachable means the service fails with certainty,
                    // which is a legitimate prediction, not a solve failure.
                    Err(archrel_markov::MarkovError::UnreachableTarget { .. }) => 0.0,
                    Err(e) => return Err(e.into()),
                };
                self.counters.solves.fetch_add(1, Ordering::Relaxed);
                self.counters.solve_nanos.fetch_add(
                    u64::try_from(solve_started.elapsed().as_nanos()).unwrap_or(u64::MAX),
                    Ordering::Relaxed,
                );
                Ok(Probability::new(success)?.complement())
            }
        }
    }

    /// Solves one flow chain's `p*(Start → End)`, routing through the
    /// compiled-plan path when the policy allows it.
    ///
    /// Single-column solve throughout: only `p*(· → End)` is needed, so
    /// every backend skips the full fundamental-matrix inversion. Under
    /// [`SolverPolicy::Compiled`] a plan always answers. Under
    /// [`SolverPolicy::Auto`] in the sparse regime, a structure seen at
    /// least [`AUTO_PLAN_MIN_SEEN`] times is promoted to a compiled acyclic
    /// tape — which replays the sparse back-substitution bit-for-bit, so
    /// promotion never changes a result; cyclic structures stay on the
    /// sparse iterative path.
    fn solve_flow_chain(
        &self,
        chain: &archrel_markov::Dtmc<AugmentedState>,
        start: &AugmentedState,
        end: &AugmentedState,
    ) -> archrel_markov::Result<f64> {
        match self.plan_for_chain(chain, start, end)? {
            Some(plan) => PLAN_EVAL_TLS.with(|tls| {
                let (params, scratch) = &mut *tls.borrow_mut();
                plan.parameters_into(chain, params)?;
                let (value, kind) = plan.evaluate_scratch(params, scratch)?;
                self.plans.record(kind);
                Ok(value)
            }),
            None => self.direct_solve(chain, start, end),
        }
    }

    /// Resolves the plan-path gating for one chain: `Ok(Some(plan))` when a
    /// compiled plan should answer, `Ok(None)` when the direct solver should
    /// run (policy excludes plans, structure still cold under `Auto`, or
    /// cyclic under acyclic-only promotion).
    ///
    /// Shared by the scalar [`Evaluator::solve_flow_chain`] and the blocked
    /// deferral path, so sighting counts and cache entries are maintained
    /// identically regardless of how a point is evaluated.
    pub(crate) fn plan_for_chain(
        &self,
        chain: &archrel_markov::Dtmc<AugmentedState>,
        start: &AugmentedState,
        end: &AugmentedState,
    ) -> archrel_markov::Result<Option<Arc<SolvePlan>>> {
        let chosen = self.options.solver.choose(chain.len(), chain.edge_count());
        let acyclic_only = match self.options.solver {
            SolverPolicy::Compiled => Some(false),
            SolverPolicy::Auto if chosen == ChosenSolver::Sparse => Some(true),
            _ => None,
        };
        if let Some(acyclic_only) = acyclic_only {
            let fingerprint = structure_fingerprint(chain, start, end);
            let warm = !acyclic_only || self.plans.note_seen(fingerprint) >= AUTO_PLAN_MIN_SEEN;
            if warm {
                match self
                    .plans
                    .entry(fingerprint, chain, start, end, acyclic_only)?
                {
                    PlanEntry::Plan(plan) => return Ok(Some(plan)),
                    PlanEntry::CyclicUncompiled => {}
                    PlanEntry::Unreachable { from, target } => {
                        return Err(archrel_markov::MarkovError::UnreachableTarget {
                            from: from.clone(),
                            target: target.clone(),
                        });
                    }
                }
            }
        }
        Ok(None)
    }

    pub(crate) fn direct_solve(
        &self,
        chain: &archrel_markov::Dtmc<AugmentedState>,
        start: &AugmentedState,
        end: &AugmentedState,
    ) -> archrel_markov::Result<f64> {
        match self.options.solver.choose(chain.len(), chain.edge_count()) {
            ChosenSolver::Dense => archrel_markov::absorption_probability_to(chain, start, end),
            ChosenSolver::Sparse => archrel_markov::absorption_probability_sparse(
                chain,
                start,
                end,
                self.options.sparse,
            ),
        }
    }

    /// Resolves every state of a composite service's flow: evaluates actual
    /// parameters, recursively obtains callee/connector failure
    /// probabilities, and combines them per the state's completion and
    /// dependency models.
    fn resolve_states(
        &self,
        composite: &CompositeService,
        env: &Bindings,
        ctx: &mut Ctx<'_>,
    ) -> Result<Vec<ResolvedState>> {
        let mut out = Vec::with_capacity(composite.flow().states().len());
        for state in composite.flow().states() {
            let mut requests = Vec::with_capacity(state.calls.len());
            for call in &state.calls {
                requests.push(self.resolve_request(call, env, ctx)?);
            }
            let failures: Vec<RequestFailure> = requests
                .iter()
                .map(|r| RequestFailure::new(r.internal, r.external))
                .collect();
            let failure = state_failure_probability(state.completion, state.dependency, &failures)?;
            out.push(ResolvedState {
                state: state.id.clone(),
                failure,
                requests,
            });
        }
        Ok(out)
    }

    fn resolve_request(
        &self,
        call: &ServiceCall,
        env: &Bindings,
        ctx: &mut Ctx<'_>,
    ) -> Result<ResolvedRequest> {
        // Resolve the callee's environment: ap_j(fp) evaluated under fp.
        let mut callee_env = Bindings::new();
        let mut first_demand = 0.0;
        for (i, (name, expr)) in call.actual_params.iter().enumerate() {
            let v = expr.eval(env)?;
            if i == 0 {
                first_demand = v;
            }
            callee_env.insert(name.clone(), v);
        }
        let target_fail = self.eval_rec(&call.target, &callee_env, ctx)?;

        let connector_fail = match &call.connector {
            None => Probability::ZERO,
            Some(binding) => {
                let mut conn_env = Bindings::new();
                for (name, expr) in &binding.actual_params {
                    conn_env.insert(name.clone(), expr.eval(env)?);
                }
                self.eval_rec(&binding.connector, &conn_env, ctx)?
            }
        };

        // Internal failure: for the per-operation law (eq. 14) the demand is
        // the evaluated value of the request's first actual parameter — for
        // a `call(cpu, N)` that is exactly N.
        let internal = call.internal_failure.failure_probability(first_demand)?;

        Ok(ResolvedRequest {
            target: call.target.clone(),
            internal,
            external: RequestFailure::external_of(target_fail, connector_fail),
        })
    }

    /// Entry point used by the report module: resolve the target service's
    /// states with a fresh context (Error cycle mode semantics).
    pub(crate) fn resolve_states_fresh(
        &self,
        composite: &CompositeService,
        env: &Bindings,
    ) -> Result<Vec<ResolvedState>> {
        let mut ctx = Ctx {
            stack: Vec::new(),
            memo: HashMap::new(),
            estimates: None,
            cycle_keys: HashSet::new(),
            overlay: false,
        };
        match self.resolve_states(composite, env, &mut ctx) {
            Err(err @ CoreError::RecursiveAssembly { .. }) => {
                let CycleMode::FixedPoint {
                    max_iterations,
                    tolerance,
                } = self.options.cycle_mode
                else {
                    return Err(err);
                };
                // Converge the fixed point first, then resolve the
                // breakdown once more with the converged cycle-key values
                // answering re-entries — the breakdown a final exact sweep
                // would see.
                let (_, solver) =
                    self.fixed_point_converged(composite.id(), env, max_iterations, tolerance)?;
                let mut ctx = Ctx {
                    stack: Vec::new(),
                    memo: HashMap::new(),
                    estimates: Some(solver.estimates()),
                    cycle_keys: HashSet::new(),
                    overlay: true,
                };
                self.resolve_states(composite, env, &mut ctx)
            }
            other => other,
        }
    }

    /// `Pfail` for many parameter points of **one** service, answered through
    /// the lane-blocked replay path where the solver policy permits.
    ///
    /// Semantically identical to calling [`Evaluator::failure_probability`]
    /// per point — bitwise so on acyclic compiled structures, because the
    /// blocked tape replay performs exactly the scalar arithmetic per lane —
    /// but instead of solving each point's top-level flow on the spot, points
    /// sharing a structure fingerprint accumulate into a [`ParamBlock`] and
    /// are solved [`LANE`] (or [`EvalOptions::plan_lanes`]) at a time by a
    /// single tape replay. Sub-service recursion, caching, and memoization
    /// ride the normal scalar path. Points whose policy resolves to a direct
    /// solver (or whose structure is not plan-compiled) are answered
    /// immediately; [`CycleMode::FixedPoint`] falls back to per-point
    /// evaluation. Errors are per-point: one malformed point yields an `Err`
    /// in its slot without poisoning the rest.
    pub fn failure_probabilities_block(
        &self,
        service: &ServiceId,
        envs: &[&Bindings],
    ) -> Vec<Result<Probability>> {
        if !matches!(self.options.cycle_mode, CycleMode::Error) {
            return envs
                .iter()
                .map(|env| self.failure_probability(service, env))
                .collect();
        }
        // A compiled program subsumes the lane-blocked deferral: its memo
        // and pinned plans answer repeated structure work directly, and the
        // per-point result is bitwise identical either way.
        match self.ensure_program(service, envs.len() as u64) {
            Ok(Some(program)) => {
                return envs
                    .iter()
                    .map(|env| self.failure_probability_via_program(&program, service, env))
                    .collect();
            }
            Ok(None) => {}
            // `ProgramMode::On` compilation failure: the error is not
            // `Clone`, so re-derive it per point on the scalar entry.
            Err(_) => {
                return envs
                    .iter()
                    .map(|env| self.failure_probability(service, env))
                    .collect();
            }
        }
        let n = envs.len();
        let mut results: Vec<Option<Result<Probability>>> = Vec::with_capacity(n);
        results.resize_with(n, || None);
        let mut success = vec![f64::NAN; n];
        let mut acc = FlowBlockAccumulator::new(
            Arc::clone(&self.plans),
            self.options.plan_lanes,
            self.options.simd,
        );
        // First point of each still-in-flight (deferred) parameter key, and
        // the duplicates waiting on it.
        let mut first_of: HashMap<String, usize> = HashMap::new();
        let mut dups: Vec<(usize, usize)> = Vec::new();
        let mut deferred: Vec<usize> = Vec::new();
        for (i, env) in envs.iter().enumerate() {
            if let Err(e) = self.check_cancel() {
                results[i] = Some(Err(e));
                continue;
            }
            if let Some(&j) = first_of.get(&env.cache_key()) {
                // Duplicate of a deferred point: the shared cache only
                // learns the value at flush time, but it is the same number
                // — count a hit and copy the slot afterwards.
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                dups.push((i, j));
                continue;
            }
            match self.defer_failure_probability(service, env, i, &mut acc, &mut success) {
                Ok(BlockedOutcome::Immediate(p)) => results[i] = Some(Ok(p)),
                Ok(BlockedOutcome::Deferred) => {
                    first_of.insert(env.cache_key(), i);
                    deferred.push(i);
                }
                Err(e) => results[i] = Some(Err(e)),
            }
        }
        acc.finish(&mut success);
        self.counters
            .solves
            .fetch_add(acc.flushed_points(), Ordering::Relaxed);
        self.counters
            .solve_nanos
            .fetch_add(acc.flush_nanos(), Ordering::Relaxed);
        for (tag, err) in acc.take_errors() {
            results[tag] = Some(Err(err));
        }
        for i in deferred {
            if results[i].is_some() {
                continue; // the lane errored above
            }
            let r: Result<Probability> = Probability::new(success[i])
                .map(|p| p.complement())
                .map_err(Into::into);
            if let Ok(p) = &r {
                self.values
                    .memo
                    .write()
                    .insert((service.clone(), envs[i].cache_key()), *p);
            }
            results[i] = Some(r);
        }
        for (i, j) in dups {
            results[i] = Some(match &results[j] {
                Some(Ok(p)) => Ok(*p),
                // Rare: the first instance errored — re-derive the error on
                // the scalar path (`CoreError` is not `Clone`).
                _ => self.failure_probability(service, envs[i]),
            });
        }
        results
            .into_iter()
            .map(|r| r.expect("every slot resolved"))
            .collect()
    }

    /// Submits one point to the blocked evaluation path: answered from the
    /// cache or the scalar pipeline immediately, or its top-level flow solve
    /// deferred into `acc` with the raw **success** probability to be
    /// written to `out[tag]` at flush time (the caller complements deferred
    /// slots after [`FlowBlockAccumulator::finish`]).
    ///
    /// Separate from [`Evaluator::failure_probabilities_block`] so workloads
    /// that build a fresh evaluator per point over *different* assemblies —
    /// uncertainty sampling — can still accumulate across points: the
    /// accumulator owns parameter copies and shared-plan `Arc`s, not
    /// evaluator borrows.
    pub(crate) fn defer_failure_probability(
        &self,
        service: &ServiceId,
        env: &Bindings,
        tag: usize,
        acc: &mut FlowBlockAccumulator,
        out: &mut [f64],
    ) -> Result<BlockedOutcome> {
        if !matches!(self.options.cycle_mode, CycleMode::Error) {
            // Fixed-point estimates are sweep-global state a deferred solve
            // cannot thread through: stay on the scalar engine.
            return Ok(BlockedOutcome::Immediate(
                self.failure_probability(service, env)?,
            ));
        }
        let key: CacheKey = (service.clone(), env.cache_key());
        if let Some(p) = self.values.memo.read().get(&key) {
            self.counters.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(BlockedOutcome::Immediate(*p));
        }
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
        let mut ctx = Ctx {
            // The top key is on the stack, exactly as if `eval_rec` had
            // descended into it, so self-recursion is still detected.
            stack: vec![key.clone()],
            memo: HashMap::new(),
            estimates: None,
            cycle_keys: HashSet::new(),
            overlay: false,
        };
        let outcome = match self.assembly.require(service)? {
            Service::Simple(_) => {
                BlockedOutcome::Immediate(self.eval_service(service, env, &mut ctx)?)
            }
            Service::Composite(composite) => {
                let states = self.resolve_states(composite, env, &mut ctx)?;
                let failures: BTreeMap<StateId, Probability> = states
                    .iter()
                    .map(|s| (s.state.clone(), s.failure))
                    .collect();
                let chain = augmented_chain(composite, env, &failures)?;
                let start = AugmentedState::Flow(StateId::Start);
                let end = AugmentedState::Flow(StateId::End);
                let immediate_success = match self.plan_for_chain(&chain, &start, &end) {
                    Ok(Some(plan)) => {
                        acc.submit(&plan, &chain, tag, out)?;
                        None
                    }
                    Ok(None) => {
                        let solve_started = Instant::now();
                        let success = match self.direct_solve(&chain, &start, &end) {
                            Ok(p) => p,
                            Err(archrel_markov::MarkovError::UnreachableTarget { .. }) => 0.0,
                            Err(e) => return Err(e.into()),
                        };
                        self.counters.solves.fetch_add(1, Ordering::Relaxed);
                        self.counters.solve_nanos.fetch_add(
                            u64::try_from(solve_started.elapsed().as_nanos()).unwrap_or(u64::MAX),
                            Ordering::Relaxed,
                        );
                        Some(success)
                    }
                    // Structurally unreachable End: certain failure, a
                    // legitimate prediction (mirrors the scalar path).
                    Err(archrel_markov::MarkovError::UnreachableTarget { .. }) => Some(0.0),
                    Err(e) => return Err(e.into()),
                };
                match immediate_success {
                    None => BlockedOutcome::Deferred,
                    Some(s) => BlockedOutcome::Immediate(Probability::new(s)?.complement()),
                }
            }
        };
        // Everything resolved below the top level is exact: persist it.
        self.values.memo.write().extend(ctx.memo);
        if let BlockedOutcome::Immediate(p) = &outcome {
            self.values.memo.write().insert(key, *p);
        }
        Ok(outcome)
    }
}

/// Outcome of one point submitted to the blocked evaluation path.
pub(crate) enum BlockedOutcome {
    /// Answered on the spot (cache hit, simple service, direct solver, ...):
    /// the final failure probability.
    Immediate(Probability),
    /// The top-level flow solve joined a pending block. After the
    /// accumulator flushes, the **success** probability sits in the output
    /// slot at the submitted tag and still needs
    /// `Probability::new(..)?.complement()`.
    Deferred,
}

/// Accumulates deferred top-level flow solves into lane-sized
/// [`ParamBlock`]s — one per structure fingerprint — and flushes each
/// through a single [`SolvePlan::evaluate_block`] tape replay.
///
/// Owns parameter copies and shared-plan [`Arc`]s rather than evaluator
/// borrows, so short-lived evaluators (one per uncertainty sample) can feed
/// one accumulator. Flush timing and point counts are exposed for the
/// caller to fold into its solve counters; per-lane evaluation errors are
/// collected per tag (a bad point must not poison its block-mates).
pub(crate) struct FlowBlockAccumulator {
    plans: Arc<PlanCache>,
    /// Flush threshold in `1..=LANE` (see [`EvalOptions::plan_lanes`]).
    lanes: usize,
    /// Hardware-validated replay path, resolved once at construction (see
    /// [`EvalOptions::simd`]) and reused across every flush.
    path: SimdPath,
    pending: Vec<PendingBlock>,
    scratch: PlanScratch,
    params_buf: Vec<f64>,
    errors: Vec<(usize, crate::CoreError)>,
    flush_nanos: u64,
    flushed_points: u64,
    /// Parameter-extraction time accrued since the last flush (folded into
    /// the plan cache's phase counters at flush time).
    extract_pending_nanos: u64,
}

struct PendingBlock {
    plan: Arc<SolvePlan>,
    block: ParamBlock,
    tags: Vec<usize>,
}

impl FlowBlockAccumulator {
    pub(crate) fn new(plans: Arc<PlanCache>, lanes: usize, simd: SimdMode) -> Self {
        FlowBlockAccumulator {
            plans,
            lanes: lanes.clamp(1, LANE),
            path: simd.resolve(),
            pending: Vec::new(),
            scratch: PlanScratch::new(),
            params_buf: Vec::new(),
            errors: Vec::new(),
            flush_nanos: 0,
            flushed_points: 0,
            extract_pending_nanos: 0,
        }
    }

    /// Queues one point (the parameters `plan` extracts from `chain`) under
    /// tag `tag`, flushing the structure's block into `out` when it reaches
    /// the lane threshold.
    fn submit(
        &mut self,
        plan: &Arc<SolvePlan>,
        chain: &archrel_markov::Dtmc<AugmentedState>,
        tag: usize,
        out: &mut [f64],
    ) -> archrel_markov::Result<()> {
        let extract_started = Instant::now();
        plan.parameters_into(chain, &mut self.params_buf)?;
        self.extract_pending_nanos +=
            u64::try_from(extract_started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let idx = self.pending_for(plan);
        let pending = &mut self.pending[idx];
        pending.block.push(&self.params_buf)?;
        pending.tags.push(tag);
        self.flush_full(out);
        Ok(())
    }

    /// Queues one point whose parameter row the caller staged itself (the
    /// zero-`Bindings` driver path: no chain was built, so there is nothing
    /// to extract — the caller accounts its staging time through
    /// [`PlanCache::record_stage_nanos`]).
    pub(crate) fn submit_row(
        &mut self,
        plan: &Arc<SolvePlan>,
        params: &[f64],
        tag: usize,
        out: &mut [f64],
    ) -> archrel_markov::Result<()> {
        let idx = self.pending_for(plan);
        let pending = &mut self.pending[idx];
        pending.block.push(params)?;
        pending.tags.push(tag);
        self.flush_full(out);
        Ok(())
    }

    /// Index of the pending block matching `plan`'s structure, creating one
    /// on first sight.
    fn pending_for(&mut self, plan: &Arc<SolvePlan>) -> usize {
        match self
            .pending
            .iter()
            .position(|p| p.plan.fingerprint() == plan.fingerprint())
        {
            Some(idx) => idx,
            None => {
                self.pending.push(PendingBlock {
                    plan: Arc::clone(plan),
                    block: ParamBlock::for_plan(plan),
                    tags: Vec::with_capacity(LANE),
                });
                self.pending.len() - 1
            }
        }
    }

    /// Flushes the (single) block that just reached the lane threshold.
    fn flush_full(&mut self, out: &mut [f64]) {
        if let Some(idx) = self
            .pending
            .iter()
            .position(|p| p.block.len() >= self.lanes)
        {
            self.flush_at(idx, out);
        }
    }

    /// Flushes every non-empty pending block into `out`.
    pub(crate) fn finish(&mut self, out: &mut [f64]) {
        for idx in 0..self.pending.len() {
            self.flush_at(idx, out);
        }
    }

    fn flush_at(&mut self, idx: usize, out: &mut [f64]) {
        let started = Instant::now();
        let pending = &mut self.pending[idx];
        let occupied = pending.block.len();
        if occupied == 0 {
            return;
        }
        match pending
            .plan
            .evaluate_block_with_path(&pending.block, &mut self.scratch, self.path)
        {
            Ok((values, kinds)) => {
                for (lane, &value) in values.iter().enumerate() {
                    out[pending.tags[lane]] = value;
                }
                self.plans.record_block(kinds);
                self.flushed_points += occupied as u64;
            }
            Err(_) => {
                // Replay each lane on the scalar path so the error lands on
                // exactly the point that caused it; healthy lanes still
                // produce their (bitwise-identical) values.
                for lane in 0..occupied {
                    pending.block.lane_params_into(lane, &mut self.params_buf);
                    match pending.plan.evaluate_with_kind(&self.params_buf) {
                        Ok((value, kind)) => {
                            out[pending.tags[lane]] = value;
                            self.plans.record(kind);
                            self.flushed_points += 1;
                        }
                        Err(e) => self.errors.push((pending.tags[lane], e.into())),
                    }
                }
            }
        }
        pending.block.clear();
        pending.tags.clear();
        let replay = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.flush_nanos += replay;
        self.plans
            .record_phase_nanos(std::mem::take(&mut self.extract_pending_nanos), replay);
    }

    /// Per-tag errors raised by flushed lanes (drained).
    pub(crate) fn take_errors(&mut self) -> Vec<(usize, crate::CoreError)> {
        std::mem::take(&mut self.errors)
    }

    /// Points evaluated through flushes so far.
    pub(crate) fn flushed_points(&self) -> u64 {
        self.flushed_points
    }

    /// Wall-clock nanoseconds spent inside flushes so far.
    pub(crate) fn flush_nanos(&self) -> u64 {
        self.flush_nanos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archrel_expr::Expr;
    use archrel_model::{
        catalog, AssemblyBuilder, CompletionModel, DependencyModel, FailureModel, FlowBuilder,
        FlowState, InternalFailureModel, SimpleService,
    };

    fn constant_service(name: &str, pfail: f64) -> Service {
        Service::Simple(SimpleService::new(
            name,
            "x",
            FailureModel::Constant { probability: pfail },
        ))
    }

    fn call(target: &str) -> ServiceCall {
        ServiceCall::new(target).with_param("x", Expr::zero())
    }

    fn single_state_assembly(
        pfails: &[f64],
        completion: CompletionModel,
        dependency: DependencyModel,
    ) -> Assembly {
        let mut builder = AssemblyBuilder::new();
        let mut calls = Vec::new();
        // In the Shared case all calls must target the same service.
        if dependency == DependencyModel::Shared {
            builder = builder.service(constant_service("s0", pfails[0]));
            for _ in pfails {
                calls.push(call("s0"));
            }
        } else {
            for (i, p) in pfails.iter().enumerate() {
                let name = format!("s{i}");
                builder = builder.service(constant_service(&name, *p));
                calls.push(call(&name));
            }
        }
        let flow = FlowBuilder::new()
            .state(
                FlowState::new("1", calls)
                    .with_completion(completion)
                    .with_dependency(dependency),
            )
            .transition(StateId::Start, "1", Expr::one())
            .transition("1", StateId::End, Expr::one())
            .build()
            .unwrap();
        let top = Service::Composite(CompositeService::new("top", vec![], flow).unwrap());
        builder.service(top).build().unwrap()
    }

    #[test]
    fn and_of_independent_constants() {
        let a = single_state_assembly(
            &[0.1, 0.2],
            CompletionModel::And,
            DependencyModel::Independent,
        );
        let p = Evaluator::new(&a)
            .failure_probability(&"top".into(), &Bindings::new())
            .unwrap();
        assert!((p.value() - (1.0 - 0.9 * 0.8)).abs() < 1e-12);
    }

    #[test]
    fn or_of_independent_constants() {
        let a = single_state_assembly(
            &[0.1, 0.2],
            CompletionModel::Or,
            DependencyModel::Independent,
        );
        let p = Evaluator::new(&a)
            .failure_probability(&"top".into(), &Bindings::new())
            .unwrap();
        assert!((p.value() - 0.1 * 0.2).abs() < 1e-12);
    }

    #[test]
    fn or_of_shared_replicas_collapses() {
        // Two OR replicas of the same service: sharing destroys redundancy.
        let a = single_state_assembly(&[0.25, 0.25], CompletionModel::Or, DependencyModel::Shared);
        let p = Evaluator::new(&a)
            .failure_probability(&"top".into(), &Bindings::new())
            .unwrap();
        // eq. 12 with Pint = 0: 1 - (1-0.25)^2 * 1 = 0.4375.
        assert!((p.value() - (1.0 - 0.75 * 0.75)).abs() < 1e-12);
    }

    #[test]
    fn reliability_is_complement() {
        let a = single_state_assembly(&[0.1], CompletionModel::And, DependencyModel::Independent);
        let eval = Evaluator::new(&a);
        let f = eval
            .failure_probability(&"top".into(), &Bindings::new())
            .unwrap();
        let r = eval.reliability(&"top".into(), &Bindings::new()).unwrap();
        assert!((f.value() + r.value() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn unknown_service_is_reported() {
        let a = AssemblyBuilder::new()
            .service(constant_service("s", 0.1))
            .build()
            .unwrap();
        let err = Evaluator::new(&a)
            .failure_probability(&"ghost".into(), &Bindings::new())
            .unwrap_err();
        assert!(matches!(err, CoreError::Model(_)));
    }

    #[test]
    fn simple_service_demands_its_parameter() {
        let a = AssemblyBuilder::new()
            .service(catalog::cpu_resource("cpu", 1e9, 1e-9))
            .build()
            .unwrap();
        let eval = Evaluator::new(&a);
        // Correct parameter name:
        let p = eval
            .failure_probability(
                &"cpu".into(),
                &Bindings::new().with(catalog::CPU_PARAM, 1e6),
            )
            .unwrap();
        assert!(p.value() > 0.0);
        // Missing parameter:
        let err = eval
            .failure_probability(&"cpu".into(), &Bindings::new())
            .unwrap_err();
        assert!(matches!(err, CoreError::Expr(_)));
    }

    fn recursive_assembly(p_base: f64, p_recurse: f64) -> Assembly {
        // svc: with prob p_recurse call itself again, else do a base call.
        let flow = FlowBuilder::new()
            .state(FlowState::new("again", vec![ServiceCall::new("svc")]))
            .state(FlowState::new("base", vec![call("leaf")]))
            .transition(StateId::Start, "again", Expr::num(p_recurse))
            .transition(StateId::Start, "base", Expr::num(1.0 - p_recurse))
            .transition("again", StateId::End, Expr::one())
            .transition("base", StateId::End, Expr::one())
            .build()
            .unwrap();
        AssemblyBuilder::new()
            .service(constant_service("leaf", p_base))
            .service(Service::Composite(
                CompositeService::new("svc", vec![], flow).unwrap(),
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn recursion_is_an_error_by_default() {
        let a = recursive_assembly(0.1, 0.5);
        let err = Evaluator::new(&a)
            .failure_probability(&"svc".into(), &Bindings::new())
            .unwrap_err();
        match err {
            CoreError::RecursiveAssembly { cycle } => {
                assert!(cycle.iter().filter(|s| s.as_str() == "svc").count() >= 2);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn fixed_point_solves_recursion() {
        // Pfail satisfies f = r*f + (1-r)*p  =>  f = (1-r)p / (1-r) = p.
        let (p_base, r) = (0.2, 0.5);
        let a = recursive_assembly(p_base, r);
        let eval = Evaluator::with_options(
            &a,
            EvalOptions {
                cycle_mode: CycleMode::FixedPoint {
                    max_iterations: 200,
                    tolerance: 1e-12,
                },
                ..EvalOptions::default()
            },
        );
        let f = eval
            .failure_probability(&"svc".into(), &Bindings::new())
            .unwrap();
        // Closed form: f = r f + (1-r) p_base  =>  f = p_base.
        assert!((f.value() - p_base).abs() < 1e-9, "got {}", f.value());
    }

    #[test]
    fn fixed_point_mode_matches_error_mode_on_acyclic_assemblies() {
        let a = single_state_assembly(
            &[0.1, 0.3],
            CompletionModel::And,
            DependencyModel::Independent,
        );
        let exact = Evaluator::new(&a)
            .failure_probability(&"top".into(), &Bindings::new())
            .unwrap();
        let fp = Evaluator::with_options(
            &a,
            EvalOptions {
                cycle_mode: CycleMode::FixedPoint {
                    max_iterations: 50,
                    tolerance: 1e-12,
                },
                ..EvalOptions::default()
            },
        )
        .failure_probability(&"top".into(), &Bindings::new())
        .unwrap();
        assert!((exact.value() - fp.value()).abs() < 1e-15);
    }

    #[test]
    fn cache_is_consistent_across_calls() {
        let a = single_state_assembly(
            &[0.1, 0.2],
            CompletionModel::And,
            DependencyModel::Independent,
        );
        let eval = Evaluator::new(&a);
        let p1 = eval
            .failure_probability(&"top".into(), &Bindings::new())
            .unwrap();
        let p2 = eval
            .failure_probability(&"top".into(), &Bindings::new())
            .unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn internal_failure_uses_first_actual_param() {
        // A composite calling cpu(1000) with phi so that
        // Pint = 1 - (1-phi)^1000.
        let phi = 1e-3;
        let flow = FlowBuilder::new()
            .state(FlowState::new(
                "1",
                vec![ServiceCall::new("cpu")
                    .with_param(catalog::CPU_PARAM, Expr::num(1000.0))
                    .with_internal(InternalFailureModel::PerOperation { phi })],
            ))
            .transition(StateId::Start, "1", Expr::one())
            .transition("1", StateId::End, Expr::one())
            .build()
            .unwrap();
        let a = AssemblyBuilder::new()
            // Perfect CPU isolates the internal term.
            .service(Service::Simple(SimpleService::new(
                "cpu",
                catalog::CPU_PARAM,
                FailureModel::Perfect,
            )))
            .service(Service::Composite(
                CompositeService::new("top", vec![], flow).unwrap(),
            ))
            .build()
            .unwrap();
        let p = Evaluator::new(&a)
            .failure_probability(&"top".into(), &Bindings::new())
            .unwrap();
        let expected = 1.0 - (1.0 - phi).powf(1000.0);
        assert!((p.value() - expected).abs() < 1e-12);
    }

    #[test]
    fn sparse_policy_matches_dense() {
        use archrel_model::paper;
        let params = paper::PaperParams::default().with_gamma(2.5e-2);
        let assembly = paper::remote_assembly(&params).unwrap();
        let env = paper::search_bindings(4.0, 4096.0, 1.0);
        let solve = |policy| {
            Evaluator::with_options(
                &assembly,
                EvalOptions {
                    solver: policy,
                    ..EvalOptions::default()
                },
            )
            .failure_probability(&paper::SEARCH.into(), &env)
            .unwrap()
            .value()
        };
        let dense = solve(SolverPolicy::Dense);
        let sparse = solve(SolverPolicy::Sparse);
        let auto = solve(SolverPolicy::Auto);
        assert!(
            (dense - sparse).abs() < 1e-10,
            "dense {dense} vs sparse {sparse}"
        );
        // Paper-sized chains: Auto resolves to dense and agrees bitwise.
        assert_eq!(auto.to_bits(), dense.to_bits());
    }

    #[test]
    fn auto_dispatch_keys_on_state_count_and_density() {
        // Tiny chains: always dense.
        assert_eq!(SolverPolicy::Auto.choose(6, 10), ChosenSolver::Dense);
        assert_eq!(SolverPolicy::Auto.choose(64, 64 * 64), ChosenSolver::Dense);
        // Mid-size and dense: still dense.
        assert_eq!(
            SolverPolicy::Auto.choose(200, 200 * 200 / 2),
            ChosenSolver::Dense
        );
        // Mid-size but sparse: sparse.
        assert_eq!(SolverPolicy::Auto.choose(200, 600), ChosenSolver::Sparse);
        // Large: sparse regardless of density.
        assert_eq!(
            SolverPolicy::Auto.choose(5000, 5000 * 4999),
            ChosenSolver::Sparse
        );
        // Forced policies ignore the heuristic.
        assert_eq!(SolverPolicy::Dense.choose(100_000, 1), ChosenSolver::Dense);
        assert_eq!(SolverPolicy::Sparse.choose(2, 1), ChosenSolver::Sparse);
    }

    #[test]
    fn solver_policy_parses_cli_and_env_spellings() {
        assert_eq!(SolverPolicy::parse("auto"), Some(SolverPolicy::Auto));
        assert_eq!(SolverPolicy::parse("Dense"), Some(SolverPolicy::Dense));
        assert_eq!(SolverPolicy::parse(" SPARSE "), Some(SolverPolicy::Sparse));
        assert_eq!(
            SolverPolicy::parse("Compiled"),
            Some(SolverPolicy::Compiled)
        );
        assert_eq!(SolverPolicy::parse("lu"), None);
    }

    #[test]
    fn unrecognized_env_solver_value_is_a_hard_error() {
        // Recognized spellings parse through the env entry point...
        assert_eq!(
            SolverPolicy::parse_env_value("compiled"),
            SolverPolicy::Compiled
        );
        // ...but a typo must panic with the accepted values listed, not
        // silently fall back to the default policy. `parse_env_value` is
        // probed directly (instead of setting the process-global variable)
        // so parallel tests reading `ARCHREL_SOLVER` are not perturbed.
        let err = std::panic::catch_unwind(|| SolverPolicy::parse_env_value("sprase"))
            .expect_err("typo must not parse");
        let message = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(message.contains("sprase"), "{message}");
        assert!(
            message.contains("auto, dense, sparse, compiled"),
            "{message}"
        );
    }

    #[test]
    fn certain_failure_flow_predicts_one_under_every_policy() {
        // Both flow states fail with certainty, so every path drains into
        // Fail and End is unreachable: the prediction is Pfail = 1, not an
        // UnreachableTarget error.
        let a = single_state_assembly(&[1.0], CompletionModel::And, DependencyModel::Independent);
        for policy in [
            SolverPolicy::Auto,
            SolverPolicy::Dense,
            SolverPolicy::Sparse,
            SolverPolicy::Compiled,
        ] {
            let p = Evaluator::with_options(
                &a,
                EvalOptions {
                    solver: policy,
                    ..EvalOptions::default()
                },
            )
            .failure_probability(&"top".into(), &Bindings::new())
            .unwrap();
            assert_eq!(p.value(), 1.0, "{policy:?}");
        }
    }

    #[test]
    fn direct_start_to_end_flow_predicts_zero_under_every_policy() {
        // Degenerate flow: Start transitions straight to End (no work, no
        // failure opportunity) — the Start == End boundary case of the
        // augmented chain.
        let flow = FlowBuilder::new()
            .state(FlowState::new("noop", vec![]))
            .transition(StateId::Start, StateId::End, Expr::one())
            .transition("noop", StateId::End, Expr::one())
            .build()
            .unwrap();
        let a = AssemblyBuilder::new()
            .service(Service::Composite(
                CompositeService::new("top", vec![], flow).unwrap(),
            ))
            .build()
            .unwrap();
        for policy in [
            SolverPolicy::Auto,
            SolverPolicy::Dense,
            SolverPolicy::Sparse,
            SolverPolicy::Compiled,
        ] {
            let p = Evaluator::with_options(
                &a,
                EvalOptions {
                    solver: policy,
                    ..EvalOptions::default()
                },
            )
            .failure_probability(&"top".into(), &Bindings::new())
            .unwrap();
            assert_eq!(p.value(), 0.0, "{policy:?}");
        }
    }

    #[test]
    fn no_convergence_surfaces_iteration_count() {
        use archrel_model::paper;
        let assembly = paper::local_assembly(&paper::PaperParams::default()).unwrap();
        let eval = Evaluator::with_options(
            &assembly,
            EvalOptions {
                solver: SolverPolicy::Sparse,
                sparse: archrel_markov::SparseSolveOptions {
                    max_iterations: 0,
                    tolerance: 0.0,
                    ..archrel_markov::SparseSolveOptions::default()
                },
                ..EvalOptions::default()
            },
        );
        let result = eval.failure_probability(
            &paper::SEARCH.into(),
            &paper::search_bindings(4.0, 512.0, 1.0),
        );
        // The paper's flows are acyclic, so the exact path never iterates
        // and a zero budget still succeeds.
        assert!(result.is_ok());
    }

    #[test]
    fn evaluator_is_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<Evaluator<'static>>();
    }

    fn forced(policy: SolverPolicy) -> EvalOptions {
        EvalOptions {
            solver: policy,
            ..EvalOptions::default()
        }
    }

    #[test]
    fn compiled_policy_is_bitwise_identical_to_sparse_on_acyclic_flows() {
        use archrel_model::paper;
        // The acyclic plan tape replays exactly the arithmetic of the sparse
        // solver's exact elimination, so the two policies must agree to the
        // last bit on the paper's (acyclic) flows.
        let assembly = paper::local_assembly(&paper::PaperParams::default()).unwrap();
        // Program mode off: this test pins the plan cache's counters, which
        // an assembly program would subsume (it pins the plan per runtime
        // instead of re-looking it up).
        let compiled = Evaluator::with_options(
            &assembly,
            EvalOptions {
                program: ProgramMode::Off,
                ..forced(SolverPolicy::Compiled)
            },
        );
        for n in [256.0, 1024.0, 4096.0] {
            let env = paper::search_bindings(4.0, n, 1.0);
            let want = Evaluator::with_options(&assembly, forced(SolverPolicy::Sparse))
                .failure_probability(&paper::SEARCH.into(), &env)
                .unwrap();
            let got = compiled
                .failure_probability(&paper::SEARCH.into(), &env)
                .unwrap();
            assert_eq!(want.value().to_bits(), got.value().to_bits(), "n = {n}");
        }
        // The plan was compiled once and replayed for the later sweeps.
        let stats = compiled.cache_stats();
        assert!(stats.plan_misses >= 1, "{stats:?}");
        assert!(stats.plan_hits >= 1, "{stats:?}");
        assert!(stats.rank1_solves >= 3, "{stats:?}");
        assert_eq!(stats.full_solves, 0, "{stats:?}");
    }

    #[test]
    fn auto_policy_promotes_hot_structures_to_compiled_plans() {
        // 68 chained states give a 71-state augmented chain at ~3% density,
        // so Auto routes to the sparse solver. Re-solving the same structure
        // with fresh parameter values must promote it to a compiled plan
        // after `AUTO_PLAN_MIN_SEEN` sightings — bitwise invisibly.
        let mut flow = FlowBuilder::new();
        for i in 1..=68 {
            flow = flow.state(FlowState::new(
                format!("s{i}"),
                vec![ServiceCall::new("cpu").with_param(catalog::CPU_PARAM, Expr::param("n"))],
            ));
        }
        flow = flow.transition(StateId::Start, "s1", Expr::one());
        for i in 1..68 {
            flow = flow.transition(
                format!("s{i}").as_str(),
                format!("s{}", i + 1).as_str(),
                Expr::one(),
            );
        }
        let flow = flow
            .transition("s68", StateId::End, Expr::one())
            .build()
            .unwrap();
        let assembly = AssemblyBuilder::new()
            .service(catalog::cpu_resource("cpu", 1e9, 1e-9))
            .service(Service::Composite(
                CompositeService::new("app", vec!["n".into()], flow).unwrap(),
            ))
            .build()
            .unwrap();

        // Program mode off: this test pins the *plan cache's* promotion
        // discipline, which an assembly program would subsume (it pins the
        // plan per runtime instead of re-looking it up).
        let auto = Evaluator::with_options(
            &assembly,
            EvalOptions {
                program: ProgramMode::Off,
                ..forced(SolverPolicy::Auto)
            },
        );
        let sweeps = [1e6, 2e6, 3e6];
        let got: Vec<f64> = sweeps
            .iter()
            .map(|&n| {
                auto.failure_probability(&"app".into(), &Bindings::new().with("n", n))
                    .unwrap()
                    .value()
            })
            .collect();

        // Sweep 1 runs the plain sparse solver (structure only seen once);
        // sweep 2 compiles the plan (miss) and replays it; sweep 3 hits it.
        let stats = auto.cache_stats();
        assert_eq!(stats.plan_misses, 1, "{stats:?}");
        assert_eq!(stats.plan_hits, 1, "{stats:?}");
        assert_eq!(stats.rank1_solves, 2, "{stats:?}");
        assert_eq!(stats.full_solves, 0, "{stats:?}");

        // Promotion is invisible: a pure sparse evaluator agrees exactly.
        let sparse = Evaluator::with_options(&assembly, forced(SolverPolicy::Sparse));
        for (&n, &g) in sweeps.iter().zip(&got) {
            assert!(g > 0.0);
            let want = sparse
                .failure_probability(&"app".into(), &Bindings::new().with("n", n))
                .unwrap()
                .value();
            assert_eq!(want.to_bits(), g.to_bits(), "n = {n}");
        }
    }

    #[test]
    fn compiled_policy_handles_cyclic_flows_with_rank1_and_full_fallback() {
        // Cyclic retry flow: a → b → a with an escape to End. Compiled plans
        // keep the compile-time LU factorization; re-evaluating with the
        // baseline parameters is a back-substitution, while a sweep that
        // moves both transient rows forces a full refactorization. Both must
        // match the dense solver.
        let flow = FlowBuilder::new()
            .state(FlowState::new(
                "a",
                vec![ServiceCall::new("cpu").with_param(catalog::CPU_PARAM, Expr::param("n"))],
            ))
            .state(FlowState::new(
                "b",
                vec![ServiceCall::new("cpu").with_param(catalog::CPU_PARAM, Expr::param("n"))],
            ))
            .transition(StateId::Start, "a", Expr::one())
            .transition("a", "b", Expr::num(0.9))
            .transition("a", StateId::End, Expr::num(0.1))
            .transition("b", "a", Expr::one())
            .build()
            .unwrap();
        let assembly = AssemblyBuilder::new()
            .service(catalog::cpu_resource("cpu", 1e9, 1e-7))
            .service(Service::Composite(
                CompositeService::new("app", vec!["n".into()], flow).unwrap(),
            ))
            .build()
            .unwrap();
        // Program mode off: the rank-1/full-solve counters below belong to
        // the plan cache, which an assembly program bypasses via its pinned
        // per-runtime plans.
        let compiled = Evaluator::with_options(
            &assembly,
            EvalOptions {
                program: ProgramMode::Off,
                ..forced(SolverPolicy::Compiled)
            },
        );
        for n in [1e6, 5e6] {
            let env = Bindings::new().with("n", n);
            let want = Evaluator::with_options(&assembly, forced(SolverPolicy::Dense))
                .failure_probability(&"app".into(), &env)
                .unwrap();
            let got = compiled.failure_probability(&"app".into(), &env).unwrap();
            assert!(
                (want.value() - got.value()).abs() < 1e-10,
                "n = {n}: dense {} vs compiled {}",
                want.value(),
                got.value()
            );
            assert!(got.value() > 0.0);
        }
        let stats = compiled.cache_stats();
        assert_eq!(stats.plan_misses, 1, "{stats:?}");
        assert_eq!(stats.plan_hits, 1, "{stats:?}");
        // First sweep replays the baseline factorization; the second moves
        // both transient rows and must fall back to a full refactorization.
        assert_eq!(stats.rank1_solves, 1, "{stats:?}");
        assert_eq!(stats.full_solves, 1, "{stats:?}");
    }

    #[test]
    fn plan_lanes_env_value_parses_or_hard_errors() {
        assert_eq!(parse_plan_lanes_env_value("1"), 1);
        assert_eq!(parse_plan_lanes_env_value(" 4 "), 4);
        assert_eq!(parse_plan_lanes_env_value(&LANE.to_string()), LANE);
        // Anything else must panic listing the accepted range — mirroring
        // the `ARCHREL_SOLVER` hard-error behavior. `parse_plan_lanes_env_value`
        // is probed directly so parallel tests reading the process-global
        // `ARCHREL_PLAN_LANES` are not perturbed.
        for bad in ["0", "9999", "fast", "-1", "2.5"] {
            let err = std::panic::catch_unwind(|| parse_plan_lanes_env_value(bad))
                .expect_err("bad lane count must not parse");
            let message = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(message.contains("ARCHREL_PLAN_LANES"), "{message}");
            assert!(message.contains(bad), "{message}");
        }
    }

    #[test]
    fn plan_cache_capacity_evicts_least_recently_used_structures() {
        // Two structurally different composites over a capacity-1 cache:
        // each compile evicts the other, and the counter records it.
        let flow_a = FlowBuilder::new()
            .state(FlowState::new("1", vec![call("leaf")]))
            .transition(StateId::Start, "1", Expr::one())
            .transition("1", StateId::End, Expr::one())
            .build()
            .unwrap();
        let flow_b = FlowBuilder::new()
            .state(FlowState::new("1", vec![call("leaf")]))
            .state(FlowState::new("2", vec![call("leaf")]))
            .transition(StateId::Start, "1", Expr::one())
            .transition("1", "2", Expr::one())
            .transition("2", StateId::End, Expr::one())
            .build()
            .unwrap();
        let assembly = AssemblyBuilder::new()
            .service(constant_service("leaf", 0.05))
            .service(Service::Composite(
                CompositeService::new("a", vec![], flow_a).unwrap(),
            ))
            .service(Service::Composite(
                CompositeService::new("b", vec![], flow_b).unwrap(),
            ))
            .build()
            .unwrap();
        let plans = Arc::new(PlanCache::with_capacity(1));
        assert_eq!(plans.capacity(), 1);
        // Program mode off: eviction pressure only materializes when every
        // visit re-looks the plan up in the shared cache; a program would
        // pin both plans and never touch it again.
        let eval = Evaluator::with_plan_cache(
            &assembly,
            EvalOptions {
                program: ProgramMode::Off,
                ..forced(SolverPolicy::Compiled)
            },
            Arc::clone(&plans),
        );
        for round in 0..3u32 {
            for svc in ["a", "b"] {
                // A fresh unused binding per round sidesteps the value-level
                // cache so the plan cache is exercised every time.
                let env = Bindings::new().with("unused", f64::from(round));
                eval.failure_probability(&svc.into(), &env).unwrap();
            }
        }
        let stats = eval.cache_stats();
        assert!(stats.plan_evictions >= 3, "{stats:?}");
        assert!(stats.plan_misses >= 4, "{stats:?}");
        assert_eq!(plans.evictions(), stats.plan_evictions);
    }

    #[test]
    fn blocked_evaluation_is_bitwise_identical_to_scalar() {
        use archrel_model::paper;
        let assembly = paper::remote_assembly(&paper::PaperParams::default()).unwrap();
        let service: ServiceId = paper::SEARCH.into();
        let envs: Vec<Bindings> = (1..=21)
            .map(|i| paper::search_bindings(4.0, 64.0 * f64::from(i), 1.0))
            .collect();
        let scalar: Vec<f64> = {
            let eval = Evaluator::with_options(&assembly, forced(SolverPolicy::Compiled));
            envs.iter()
                .map(|env| eval.failure_probability(&service, env).unwrap().value())
                .collect()
        };
        for lanes in [1, 3, LANE] {
            let eval = Evaluator::with_options(
                &assembly,
                EvalOptions {
                    solver: SolverPolicy::Compiled,
                    plan_lanes: lanes,
                    // This test pins the lane-blocked deferral path, which a
                    // compiled program would answer directly.
                    program: ProgramMode::Off,
                    ..EvalOptions::default()
                },
            );
            let refs: Vec<&Bindings> = envs.iter().collect();
            let got = eval.failure_probabilities_block(&service, &refs);
            for (i, (s, g)) in scalar.iter().zip(&got).enumerate() {
                let g = g.as_ref().unwrap();
                assert_eq!(
                    s.to_bits(),
                    g.value().to_bits(),
                    "lane width {lanes}, point {i}"
                );
            }
            let stats = eval.cache_stats();
            assert!(stats.block_points >= 1, "lanes {lanes}: {stats:?}");
            assert!(stats.block_flushes >= 1, "lanes {lanes}: {stats:?}");
        }
    }

    #[test]
    fn blocked_evaluation_isolates_per_point_errors_and_reuses_duplicates() {
        use archrel_model::paper;
        let assembly = paper::remote_assembly(&paper::PaperParams::default()).unwrap();
        let service: ServiceId = paper::SEARCH.into();
        let good = paper::search_bindings(4.0, 1024.0, 1.0);
        // An unbound environment fails during resolution, not during the
        // flush; it must not poison its block-mates.
        let bad = Bindings::new();
        let envs: Vec<&Bindings> = vec![&good, &bad, &good, &good];
        let eval = Evaluator::with_options(&assembly, forced(SolverPolicy::Compiled));
        let got = eval.failure_probabilities_block(&service, &envs);
        assert!(got[0].is_ok());
        assert!(got[1].is_err());
        for r in [&got[2], &got[3]] {
            let r = r.as_ref().unwrap();
            assert_eq!(
                got[0].as_ref().unwrap().value().to_bits(),
                r.value().to_bits()
            );
        }
    }

    #[test]
    fn empty_cache_stats_rates_are_zero_not_nan() {
        // Zero-total divisions must not leak NaN into reports.
        let stats = CacheStats::default();
        assert_eq!(stats.hits + stats.misses, 0);
        assert_eq!(stats.hit_rate(), 0.0);
        assert_eq!(stats.memo_hit_rate(), 0.0);
        assert!(stats.hit_rate().is_finite());
        assert!(stats.memo_hit_rate().is_finite());
    }

    #[test]
    fn memo_hit_rate_counts_pins_as_hits() {
        let stats = CacheStats {
            memo_hits: 2,
            memo_misses: 2,
            pin_hits: 4,
            ..CacheStats::default()
        };
        assert_eq!(stats.memo_hit_rate(), 0.75);
    }

    #[test]
    fn program_mode_parses_cli_and_env_spellings() {
        assert_eq!(ProgramMode::parse("auto"), Some(ProgramMode::Auto));
        assert_eq!(ProgramMode::parse(" On "), Some(ProgramMode::On));
        assert_eq!(ProgramMode::parse("OFF"), Some(ProgramMode::Off));
        assert_eq!(ProgramMode::parse("never"), None);
    }

    #[test]
    fn unrecognized_env_program_value_is_a_hard_error() {
        assert_eq!(ProgramMode::parse_env_value("on"), ProgramMode::On);
        // Probed directly (not via the process-global variable) so parallel
        // tests reading `ARCHREL_ASSEMBLY_PROGRAM` are not perturbed.
        let err = std::panic::catch_unwind(|| ProgramMode::parse_env_value("onn"))
            .expect_err("typo must not parse");
        let message = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(message.contains("onn"), "{message}");
        assert!(message.contains("auto, on, off"), "{message}");
    }

    #[test]
    fn fixed_point_mode_parses_cli_and_env_spellings() {
        assert_eq!(FixedPointMode::parse("plain"), Some(FixedPointMode::Plain));
        assert_eq!(
            FixedPointMode::parse(" Aitken "),
            Some(FixedPointMode::Aitken)
        );
        assert_eq!(FixedPointMode::parse("PLAIN"), Some(FixedPointMode::Plain));
        assert_eq!(FixedPointMode::parse("steffensen"), None);
    }

    #[test]
    fn unrecognized_env_fixed_point_value_is_a_hard_error() {
        assert_eq!(
            FixedPointMode::parse_env_value("aitken"),
            FixedPointMode::Aitken
        );
        // Probed directly (not via the process-global variable) so parallel
        // tests reading `ARCHREL_FIXED_POINT` are not perturbed.
        let err = std::panic::catch_unwind(|| FixedPointMode::parse_env_value("atiken"))
            .expect_err("typo must not parse");
        let message = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(message.contains("atiken"), "{message}");
        assert!(message.contains("plain, aitken"), "{message}");
    }

    #[test]
    fn auto_mode_promotes_targets_after_min_seen_scalar_evaluations() {
        use archrel_model::paper;
        let assembly = paper::remote_assembly(&paper::PaperParams::default()).unwrap();
        let service: ServiceId = paper::SEARCH.into();
        let eval = Evaluator::with_options(
            &assembly,
            EvalOptions {
                program: ProgramMode::Auto,
                ..EvalOptions::default()
            },
        );
        let p1 = eval
            .failure_probability(&service, &paper::search_bindings(4.0, 64.0, 1.0))
            .unwrap();
        assert!(
            eval.program(&service).is_none(),
            "first sight stays recursive"
        );
        let p2 = eval
            .failure_probability(&service, &paper::search_bindings(4.0, 128.0, 1.0))
            .unwrap();
        assert!(eval.program(&service).is_some(), "second sight compiles");
        assert_eq!(eval.cache_stats().programs_compiled, 1);
        // The program answers with bitwise-identical values.
        let off = Evaluator::with_options(
            &assembly,
            EvalOptions {
                program: ProgramMode::Off,
                ..EvalOptions::default()
            },
        );
        for (env, want) in [
            (paper::search_bindings(4.0, 64.0, 1.0), p1),
            (paper::search_bindings(4.0, 128.0, 1.0), p2),
        ] {
            let r = off.failure_probability(&service, &env).unwrap();
            assert_eq!(want.value().to_bits(), r.value().to_bits());
        }
    }

    #[test]
    fn program_memo_counts_shared_subservice_hits() {
        use archrel_model::paper;
        let assembly = paper::remote_assembly(&paper::PaperParams::default()).unwrap();
        let service: ServiceId = paper::SEARCH.into();
        let eval = Evaluator::with_options(
            &assembly,
            EvalOptions {
                program: ProgramMode::On,
                ..EvalOptions::default()
            },
        );
        // Two sweeps over the same point: the second is a shared-cache hit;
        // within the first, repeated sub-invocations hit the memo.
        let env = paper::search_bindings(4.0, 512.0, 1.0);
        eval.failure_probability(&service, &env).unwrap();
        let stats = eval.cache_stats();
        assert_eq!(stats.programs_compiled, 1, "{stats:?}");
        assert!(stats.memo_misses >= 1, "{stats:?}");
        assert!(stats.memo_hit_rate() >= 0.0);
        eval.failure_probability(&service, &env).unwrap();
        assert_eq!(eval.cache_stats().hits, 1);
    }

    #[test]
    fn declared_varied_parameters_pin_out_of_cone_services() {
        use archrel_model::paper;
        let assembly = paper::remote_assembly(&paper::PaperParams::default()).unwrap();
        let service: ServiceId = paper::SEARCH.into();
        let eval = Evaluator::with_options(
            &assembly,
            EvalOptions {
                program: ProgramMode::On,
                ..EvalOptions::default()
            },
        );
        eval.declare_varied(&service, &["n".to_string()]);
        let baseline: Vec<u64> = (1..=8)
            .map(|i| {
                eval.failure_probability(
                    &service,
                    &paper::search_bindings(4.0, 64.0 * i as f64, 1.0),
                )
                .unwrap()
                .value()
                .to_bits()
            })
            .collect();
        let stats = eval.cache_stats();
        assert!(
            stats.pin_hits >= 1,
            "out-of-cone services must pin: {stats:?}"
        );
        // Pinning is invisible: the recursive path agrees bit for bit.
        let off = Evaluator::with_options(
            &assembly,
            EvalOptions {
                program: ProgramMode::Off,
                ..EvalOptions::default()
            },
        );
        for (i, want) in (1..=8).zip(baseline) {
            let r = off
                .failure_probability(&service, &paper::search_bindings(4.0, 64.0 * i as f64, 1.0))
                .unwrap();
            assert_eq!(want, r.value().to_bits(), "point {i}");
        }
        // Clearing the declaration reverts to the hashed memo.
        eval.clear_varied(&service);
        eval.failure_probability(&service, &paper::search_bindings(4.0, 4096.0, 1.0))
            .unwrap();
    }

    #[test]
    fn cyclic_programs_compile_but_error_mode_still_reports_the_path() {
        // a → b → a: compilation succeeds (the cycle becomes a fixed-point
        // loop), but evaluating under `CycleMode::Error` surfaces the same
        // offending path as the recursive evaluator.
        let flow_calling = |callee: &str| {
            FlowBuilder::new()
                .state(FlowState::new("s", vec![ServiceCall::new(callee)]))
                .transition(StateId::Start, "s", Expr::one())
                .transition("s", StateId::End, Expr::one())
                .build()
                .unwrap()
        };
        let assembly = AssemblyBuilder::new()
            .service(Service::Composite(
                CompositeService::new("a", vec![], flow_calling("b")).unwrap(),
            ))
            .service(Service::Composite(
                CompositeService::new("b", vec![], flow_calling("a")).unwrap(),
            ))
            .build()
            .unwrap();
        let program = crate::AssemblyProgram::compile(&assembly, &"a".into()).unwrap();
        assert!(program.has_cycles());
        let eval = Evaluator::with_options(
            &assembly,
            EvalOptions {
                program: ProgramMode::On,
                ..EvalOptions::default()
            },
        );
        let err = eval
            .failure_probability(&"a".into(), &Bindings::new())
            .unwrap_err();
        match err {
            CoreError::RecursiveAssembly { cycle } => {
                assert_eq!(
                    cycle,
                    vec!["a".to_string(), "b".to_string(), "a".to_string()]
                );
            }
            other => panic!("expected RecursiveAssembly, got {other:?}"),
        }
        // Auto mode now promotes the cyclic target like any other; under
        // `CycleMode::Error` the compiled program reports the same cycle.
        let auto = Evaluator::with_options(
            &assembly,
            EvalOptions {
                program: ProgramMode::Auto,
                ..EvalOptions::default()
            },
        );
        for _ in 0..3 {
            let err = auto
                .failure_probability(&"a".into(), &Bindings::new())
                .unwrap_err();
            assert!(matches!(err, CoreError::RecursiveAssembly { .. }));
        }
        assert_eq!(auto.cache_stats().programs_compiled, 1);
    }

    #[test]
    fn auto_mode_promotes_cyclic_targets_after_min_seen_sightings() {
        let assembly = recursive_assembly(0.01, 0.3);
        let service: ServiceId = "svc".into();
        let env = Bindings::new();
        let auto = Evaluator::with_options(
            &assembly,
            EvalOptions {
                cycle_mode: CycleMode::FixedPoint {
                    max_iterations: 200,
                    tolerance: 1e-12,
                },
                program: ProgramMode::Auto,
                ..EvalOptions::default()
            },
        );
        let reference = Evaluator::with_options(
            &assembly,
            EvalOptions {
                cycle_mode: CycleMode::FixedPoint {
                    max_iterations: 200,
                    tolerance: 1e-12,
                },
                program: ProgramMode::Off,
                ..EvalOptions::default()
            },
        );
        let want = reference.failure_probability(&service, &env).unwrap();
        let mut values = Vec::new();
        for _ in 0..AUTO_PROGRAM_MIN_SEEN + 1 {
            values.push(auto.failure_probability(&service, &env).unwrap());
        }
        // The cycle check no longer short-circuits sightings: the target
        // compiles once the weighted count reaches the threshold, …
        let stats = auto.cache_stats();
        assert_eq!(stats.programs_compiled, 1, "cyclic target must promote");
        assert!(stats.fixed_point_sweeps > 0, "stats: {stats:?}");
        assert!(stats.program_loop_sccs >= 1, "stats: {stats:?}");
        assert!(stats.scc_iterations > 0, "stats: {stats:?}");
        // … and promotion is invisible in the values.
        for v in values {
            assert_eq!(want.value().to_bits(), v.value().to_bits());
        }
    }

    #[test]
    fn cancelled_evaluator_fails_with_typed_error() {
        let a = single_state_assembly(&[0.1], CompletionModel::And, DependencyModel::Independent);
        let token = crate::CancelToken::new();
        let eval = Evaluator::new(&a).with_cancellation(token.clone());
        // Live token: evaluation proceeds normally.
        assert!(eval
            .failure_probability(&"top".into(), &Bindings::new())
            .is_ok());
        token.cancel();
        // The value cache would answer the repeated query, but the program
        // entry checks the token first: tripped wins.
        let err = eval
            .failure_probability(&"top".into(), &Bindings::new())
            .unwrap_err();
        assert!(matches!(err, CoreError::Cancelled), "got {err:?}");
    }

    #[test]
    fn expired_deadline_fails_evaluation_with_typed_error() {
        let a = single_state_assembly(&[0.1], CompletionModel::And, DependencyModel::Independent);
        let token = crate::CancelToken::with_deadline(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(2));
        let eval = Evaluator::new(&a).with_cancellation(token);
        let err = eval
            .failure_probability(&"top".into(), &Bindings::new())
            .unwrap_err();
        assert!(
            matches!(err, CoreError::DeadlineExceeded { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn cache_stats_merge_sums_every_counter() {
        let mut a = CacheStats {
            hits: 1,
            block_points: 8,
            block_flushes: 1,
            store_writes: 2,
            ..CacheStats::default()
        };
        let b = CacheStats {
            hits: 2,
            misses: 3,
            block_points: 16,
            block_flushes: 2,
            memo_hits: 5,
            store_writes: u64::MAX, // merge saturates, never wraps
            ..CacheStats::default()
        };
        a.merge(&b);
        assert_eq!(a.hits, 3);
        assert_eq!(a.misses, 3);
        assert_eq!(a.block_points, 24);
        assert_eq!(a.block_flushes, 3);
        assert_eq!(a.memo_hits, 5);
        assert_eq!(a.store_writes, u64::MAX);
    }

    /// `local_stats` + one shared-cache fold must equal what a single
    /// evaluator's `cache_stats` reports — the daemon's no-double-count
    /// aggregation contract.
    #[test]
    fn local_stats_plus_shared_fold_matches_cache_stats() {
        let a = single_state_assembly(&[0.1], CompletionModel::And, DependencyModel::Independent);
        let plans = Arc::new(PlanCache::new());
        let eval = Evaluator::with_plan_cache(&a, EvalOptions::default(), Arc::clone(&plans));
        for _ in 0..3 {
            eval.failure_probability(&"top".into(), &Bindings::new())
                .unwrap();
        }
        let mut aggregated = eval.local_stats();
        aggregated.merge(&plans.stats());
        let direct = eval.cache_stats();
        assert_eq!(aggregated, direct);
    }

    /// Regression (serve daemon stats op): `PlanCache::stats()` must never
    /// observe a *torn* multi-counter group. Each `record_block` call adds
    /// `LANES` points as tape solves plus one flush in four separate atomic
    /// adds; without the stats gate a concurrent snapshot could see the
    /// flush without its points (or vice versa). Hammer the group from
    /// several threads while snapshotting and assert the group invariants
    /// hold in every snapshot.
    #[test]
    fn plan_cache_stats_snapshot_is_group_atomic() {
        const LANES: u64 = 8;
        const WRITERS: usize = 4;
        const FLUSHES_PER_WRITER: u64 = 2000;
        let cache = PlanCache::new();
        let live_writers = AtomicU64::new(WRITERS as u64);
        std::thread::scope(|scope| {
            for _ in 0..WRITERS {
                scope.spawn(|| {
                    for _ in 0..FLUSHES_PER_WRITER {
                        cache.record_block(BlockSolveKinds {
                            tape: LANES,
                            rank1: 0,
                            full: 0,
                        });
                    }
                    live_writers.fetch_sub(1, Ordering::Relaxed);
                });
            }
            scope.spawn(|| {
                let mut snapshots = 0u64;
                // Keep snapshotting while writers run, plus one final pass.
                loop {
                    let done = live_writers.load(Ordering::Relaxed) == 0;
                    let stats = cache.stats();
                    assert_eq!(
                        stats.block_points,
                        stats.block_flushes * LANES,
                        "torn snapshot: {stats:?}"
                    );
                    assert_eq!(
                        stats.rank1_solves, stats.block_points,
                        "torn snapshot: {stats:?}"
                    );
                    snapshots += 1;
                    if done {
                        break;
                    }
                }
                assert!(snapshots > 0);
            });
        });
        let total = WRITERS as u64 * FLUSHES_PER_WRITER;
        let stats = cache.stats();
        assert_eq!(stats.block_flushes, total);
        assert_eq!(stats.block_points, total * LANES);
        assert_eq!(stats.rank1_solves, total * LANES);
    }

    /// The warm-host pattern behind `archrel serve`: short-lived evaluators
    /// over one resident model share a [`ValueCache`], so the second
    /// evaluator's identical query is a memo hit (no fresh solve) with a
    /// bitwise-identical answer.
    #[test]
    fn shared_value_cache_answers_across_evaluators() {
        let a = single_state_assembly(&[0.1], CompletionModel::And, DependencyModel::Independent);
        let plans = Arc::new(PlanCache::new());
        let values = Arc::new(ValueCache::new());

        let first = Evaluator::with_plan_cache(&a, EvalOptions::default(), Arc::clone(&plans))
            .with_value_cache(Arc::clone(&values));
        let want = first
            .failure_probability(&"top".into(), &Bindings::new())
            .unwrap();
        assert!(!values.is_empty(), "the solve must land in the shared memo");

        let second = Evaluator::with_plan_cache(&a, EvalOptions::default(), Arc::clone(&plans))
            .with_value_cache(Arc::clone(&values));
        let got = second
            .failure_probability(&"top".into(), &Bindings::new())
            .unwrap();
        assert_eq!(want.value().to_bits(), got.value().to_bits());
        let stats = second.local_stats();
        assert_eq!(stats.hits, 1, "fresh evaluator must hit the shared memo");
        assert_eq!(stats.misses, 0, "stats: {stats:?}");
    }
}
