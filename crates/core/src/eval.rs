//! The recursive evaluation procedure `Pfail_Alg` (paper §3.3).
//!
//! [`Evaluator`] walks the assembly from a target service down to its simple
//! services, computing `Pfail(S, fp)` bottom-up. Results are memoized per
//! `(service, resolved parameters)`. Recursive assemblies — which the paper
//! notes its procedure cannot handle and "should be expressed by a fixed
//! point equation" — are supported through [`CycleMode::FixedPoint`]:
//! damped successive substitution starting from the optimistic estimate 0,
//! which converges monotonically because `Pfail` is monotone in the
//! estimates and bounded by 1.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use archrel_expr::Bindings;
use archrel_model::{
    Assembly, CompositeService, Probability, Service, ServiceCall, ServiceId, StateId,
};
use parking_lot::RwLock;

use crate::augment::{augmented_chain, AugmentedState};
use crate::failprob::{state_failure_probability, RequestFailure};
use crate::{CoreError, Result};

/// How the evaluator treats recursive assemblies (service-call cycles).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum CycleMode {
    /// Return [`CoreError::RecursiveAssembly`] — the paper's behavior.
    #[default]
    Error,
    /// Solve the fixed-point equation by successive substitution.
    FixedPoint {
        /// Iteration budget.
        max_iterations: usize,
        /// Convergence threshold on the largest estimate change.
        tolerance: f64,
    },
}

/// Linear solver used for the absorbing-chain analysis of each flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Solver {
    /// Dense LU on the fundamental matrix — exact, `O(states³)`; the right
    /// choice for the paper-sized flows.
    #[default]
    Dense,
    /// Sparse Gauss-Seidel on the absorption equations — `O(sweeps·edges)`,
    /// for flows with thousands of states.
    Iterative,
}

/// Options controlling an [`Evaluator`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EvalOptions {
    /// Cycle handling (defaults to [`CycleMode::Error`]).
    pub cycle_mode: CycleMode,
    /// Absorption solver (defaults to [`Solver::Dense`]).
    pub solver: Solver,
}

/// Hard cap on recursion depth, guarding against recursive assemblies whose
/// parameters change on every call (so no `(service, params)` key repeats).
const MAX_DEPTH: usize = 2048;

pub(crate) type CacheKey = (ServiceId, String);

/// Snapshot of an evaluator's solve-cache activity.
///
/// Counters cover the **shared** cross-invocation cache: a *hit* means a
/// `(service, resolved-parameter fingerprint)` lookup was answered without
/// re-solving; a *miss* means the absorbing-chain pipeline ran. `solves` and
/// `solve_time` measure the linear-algebra kernel itself (per composite
/// flow), so `misses ≥ solves` never holds in general — one miss at the top
/// can trigger several solves below it, and per-sweep memo hits avoid
/// re-solves without touching the shared cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Shared-cache lookups answered without evaluation.
    pub hits: u64,
    /// Shared-cache lookups that had to evaluate.
    pub misses: u64,
    /// Absorbing-chain solves performed.
    pub solves: u64,
    /// Total nanoseconds spent inside absorbing-chain solves.
    pub solve_nanos: u64,
}

impl CacheStats {
    /// Total wall-clock time spent in absorbing-chain solves.
    pub fn solve_time(&self) -> Duration {
        Duration::from_nanos(self.solve_nanos)
    }

    /// Hit fraction of all shared-cache lookups (0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Internal atomic counters behind [`CacheStats`]; relaxed ordering is
/// enough because the counters carry no synchronization duty.
#[derive(Debug, Default)]
struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    solves: AtomicU64,
    solve_nanos: AtomicU64,
}

impl CacheCounters {
    fn snapshot(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            solves: self.solves.load(Ordering::Relaxed),
            solve_nanos: self.solve_nanos.load(Ordering::Relaxed),
        }
    }
}

/// Per-request resolution detail, reused by the report module.
#[derive(Debug, Clone)]
pub(crate) struct ResolvedRequest {
    pub target: ServiceId,
    pub internal: Probability,
    pub external: Probability,
}

/// Per-state resolution detail, reused by the report module.
#[derive(Debug, Clone)]
pub(crate) struct ResolvedState {
    pub state: StateId,
    pub failure: Probability,
    pub requests: Vec<ResolvedRequest>,
}

struct Ctx<'e> {
    stack: Vec<CacheKey>,
    /// Per-sweep memo (always consistent: estimates are fixed for a sweep).
    memo: HashMap<CacheKey, Probability>,
    /// Fixed-point estimates from the previous sweep; `None` in Error mode.
    estimates: Option<&'e HashMap<CacheKey, f64>>,
    /// Keys at which a cycle was broken this sweep.
    cycle_keys: HashSet<CacheKey>,
}

/// The reliability-prediction engine for one assembly.
///
/// Cheap to construct; holds a memoization cache keyed by
/// `(service, resolved parameters)` so parameter sweeps that share
/// sub-invocations (e.g. Figure 6's per-γ curves) reuse work. The evaluator
/// is `Sync`: the cache is behind a lock, so it can be shared across threads.
///
/// # Examples
///
/// ```
/// use archrel_core::Evaluator;
/// use archrel_model::paper;
///
/// # fn main() -> Result<(), archrel_core::CoreError> {
/// let assembly = paper::remote_assembly(&paper::PaperParams::default()).unwrap();
/// let eval = Evaluator::new(&assembly);
/// let pfail = eval.failure_probability(
///     &paper::SEARCH.into(),
///     &paper::search_bindings(4.0, 512.0, 1.0),
/// )?;
/// assert!(pfail.value() < 0.05);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Evaluator<'a> {
    assembly: &'a Assembly,
    options: EvalOptions,
    cache: RwLock<HashMap<CacheKey, Probability>>,
    counters: CacheCounters,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator with default options (cycles are errors).
    pub fn new(assembly: &'a Assembly) -> Self {
        Evaluator::with_options(assembly, EvalOptions::default())
    }

    /// Creates an evaluator with explicit options.
    pub fn with_options(assembly: &'a Assembly, options: EvalOptions) -> Self {
        Evaluator {
            assembly,
            options,
            cache: RwLock::new(HashMap::new()),
            counters: CacheCounters::default(),
        }
    }

    /// The assembly under evaluation.
    pub fn assembly(&self) -> &'a Assembly {
        self.assembly
    }

    /// The evaluator's options.
    pub fn options(&self) -> EvalOptions {
        self.options
    }

    /// A snapshot of the shared solve cache's hit/miss/solve counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.counters.snapshot()
    }

    /// Number of `(service, parameter-fingerprint)` results currently held
    /// by the shared cache.
    pub fn cache_len(&self) -> usize {
        self.cache.read().len()
    }

    /// `Pfail(S, fp)`: probability that `service` fails to complete its task
    /// when invoked with formal parameters bound by `env`.
    ///
    /// # Errors
    ///
    /// - [`CoreError::RecursiveAssembly`] in [`CycleMode::Error`] when the
    ///   assembly has a call cycle (or recursion exceeds the depth cap);
    /// - [`CoreError::FixedPointDiverged`] when fixed-point iteration does
    ///   not converge;
    /// - expression / model / Markov errors from malformed inputs.
    pub fn failure_probability(&self, service: &ServiceId, env: &Bindings) -> Result<Probability> {
        match self.options.cycle_mode {
            CycleMode::Error => {
                let mut ctx = Ctx {
                    stack: Vec::new(),
                    memo: HashMap::new(),
                    estimates: None,
                    cycle_keys: HashSet::new(),
                };
                let p = self.eval_rec(service, env, &mut ctx)?;
                // All values computed without estimates are exact: persist.
                self.cache.write().extend(ctx.memo);
                Ok(p)
            }
            CycleMode::FixedPoint {
                max_iterations,
                tolerance,
            } => self.eval_fixed_point(service, env, max_iterations, tolerance),
        }
    }

    /// Reliability `1 − Pfail(S, fp)`.
    ///
    /// # Errors
    ///
    /// See [`Evaluator::failure_probability`].
    pub fn reliability(&self, service: &ServiceId, env: &Bindings) -> Result<Probability> {
        Ok(self.failure_probability(service, env)?.complement())
    }

    fn eval_fixed_point(
        &self,
        service: &ServiceId,
        env: &Bindings,
        max_iterations: usize,
        tolerance: f64,
    ) -> Result<Probability> {
        let mut estimates: HashMap<CacheKey, f64> = HashMap::new();
        let mut last_top = 0.0_f64;
        for _ in 0..max_iterations {
            let (top, cycle_keys, sweep_values) = {
                let mut ctx = Ctx {
                    stack: Vec::new(),
                    memo: HashMap::new(),
                    estimates: Some(&estimates),
                    cycle_keys: HashSet::new(),
                };
                let top = self.eval_rec(service, env, &mut ctx)?;
                (top, ctx.cycle_keys, ctx.memo)
            };
            if cycle_keys.is_empty() {
                // No recursion anywhere below: the value is exact.
                self.cache.write().extend(sweep_values);
                return Ok(top);
            }
            let mut delta = (top.value() - last_top).abs();
            for key in &cycle_keys {
                if let Some(v) = sweep_values.get(key) {
                    let old = estimates.get(key).copied().unwrap_or(0.0);
                    delta = delta.max((v.value() - old).abs());
                    estimates.insert(key.clone(), v.value());
                }
            }
            last_top = top.value();
            if delta < tolerance {
                return Ok(top);
            }
        }
        Err(CoreError::FixedPointDiverged {
            iterations: max_iterations,
            residual: last_top,
        })
    }

    fn eval_rec(
        &self,
        service: &ServiceId,
        env: &Bindings,
        ctx: &mut Ctx<'_>,
    ) -> Result<Probability> {
        let key: CacheKey = (service.clone(), env.cache_key());
        if let Some(p) = ctx.memo.get(&key) {
            return Ok(*p);
        }
        if ctx.estimates.is_none() {
            if let Some(p) = self.cache.read().get(&key) {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(*p);
            }
            self.counters.misses.fetch_add(1, Ordering::Relaxed);
        }
        if ctx.stack.contains(&key) || ctx.stack.len() >= MAX_DEPTH {
            return match ctx.estimates {
                None => Err(self.cycle_error(&ctx.stack, &key)),
                Some(estimates) => {
                    let estimate = estimates.get(&key).copied().unwrap_or(0.0);
                    ctx.cycle_keys.insert(key);
                    Ok(Probability::new(estimate)?)
                }
            };
        }

        ctx.stack.push(key.clone());
        let result = self.eval_service(service, env, ctx);
        ctx.stack.pop();

        let p = result?;
        ctx.memo.insert(key, p);
        Ok(p)
    }

    fn cycle_error(&self, stack: &[CacheKey], repeated: &CacheKey) -> CoreError {
        let start = stack
            .iter()
            .position(|k| k == repeated)
            .unwrap_or_else(|| stack.len().saturating_sub(8));
        let mut cycle: Vec<String> = stack[start..]
            .iter()
            .map(|(id, _)| id.to_string())
            .collect();
        cycle.push(repeated.0.to_string());
        CoreError::RecursiveAssembly { cycle }
    }

    fn eval_service(
        &self,
        service: &ServiceId,
        env: &Bindings,
        ctx: &mut Ctx<'_>,
    ) -> Result<Probability> {
        match self.assembly.require(service)? {
            Service::Simple(simple) => {
                let demand = env.get(simple.formal_param()).ok_or_else(|| {
                    CoreError::Expr(archrel_expr::ExprError::UnboundParameter {
                        name: simple.formal_param().to_string(),
                    })
                })?;
                Ok(simple.failure_probability(demand)?)
            }
            Service::Composite(composite) => {
                let states = self.resolve_states(composite, env, ctx)?;
                let failures: BTreeMap<StateId, Probability> = states
                    .iter()
                    .map(|s| (s.state.clone(), s.failure))
                    .collect();
                let chain = augmented_chain(composite, env, &failures)?;
                let start = AugmentedState::Flow(StateId::Start);
                let end = AugmentedState::Flow(StateId::End);
                let solve_started = Instant::now();
                let success = match self.options.solver {
                    Solver::Dense => {
                        // Single-column solve: only p*(· → End) is needed, so
                        // skip the full fundamental-matrix inversion.
                        archrel_markov::absorption_probability_to(&chain, &start, &end)?
                    }
                    Solver::Iterative => {
                        let x = archrel_markov::absorption_probabilities_iterative(
                            &chain,
                            &end,
                            archrel_markov::AbsorptionIterOptions::default(),
                        )?;
                        x.get(&start).copied().unwrap_or(0.0)
                    }
                };
                self.counters.solves.fetch_add(1, Ordering::Relaxed);
                self.counters.solve_nanos.fetch_add(
                    u64::try_from(solve_started.elapsed().as_nanos()).unwrap_or(u64::MAX),
                    Ordering::Relaxed,
                );
                Ok(Probability::new(success)?.complement())
            }
        }
    }

    /// Resolves every state of a composite service's flow: evaluates actual
    /// parameters, recursively obtains callee/connector failure
    /// probabilities, and combines them per the state's completion and
    /// dependency models.
    fn resolve_states(
        &self,
        composite: &CompositeService,
        env: &Bindings,
        ctx: &mut Ctx<'_>,
    ) -> Result<Vec<ResolvedState>> {
        let mut out = Vec::with_capacity(composite.flow().states().len());
        for state in composite.flow().states() {
            let mut requests = Vec::with_capacity(state.calls.len());
            for call in &state.calls {
                requests.push(self.resolve_request(call, env, ctx)?);
            }
            let failures: Vec<RequestFailure> = requests
                .iter()
                .map(|r| RequestFailure::new(r.internal, r.external))
                .collect();
            let failure = state_failure_probability(state.completion, state.dependency, &failures)?;
            out.push(ResolvedState {
                state: state.id.clone(),
                failure,
                requests,
            });
        }
        Ok(out)
    }

    fn resolve_request(
        &self,
        call: &ServiceCall,
        env: &Bindings,
        ctx: &mut Ctx<'_>,
    ) -> Result<ResolvedRequest> {
        // Resolve the callee's environment: ap_j(fp) evaluated under fp.
        let mut callee_env = Bindings::new();
        let mut first_demand = 0.0;
        for (i, (name, expr)) in call.actual_params.iter().enumerate() {
            let v = expr.eval(env)?;
            if i == 0 {
                first_demand = v;
            }
            callee_env.insert(name.clone(), v);
        }
        let target_fail = self.eval_rec(&call.target, &callee_env, ctx)?;

        let connector_fail = match &call.connector {
            None => Probability::ZERO,
            Some(binding) => {
                let mut conn_env = Bindings::new();
                for (name, expr) in &binding.actual_params {
                    conn_env.insert(name.clone(), expr.eval(env)?);
                }
                self.eval_rec(&binding.connector, &conn_env, ctx)?
            }
        };

        // Internal failure: for the per-operation law (eq. 14) the demand is
        // the evaluated value of the request's first actual parameter — for
        // a `call(cpu, N)` that is exactly N.
        let internal = call.internal_failure.failure_probability(first_demand)?;

        Ok(ResolvedRequest {
            target: call.target.clone(),
            internal,
            external: RequestFailure::external_of(target_fail, connector_fail),
        })
    }

    /// Entry point used by the report module: resolve the target service's
    /// states with a fresh context (Error cycle mode semantics).
    pub(crate) fn resolve_states_fresh(
        &self,
        composite: &CompositeService,
        env: &Bindings,
    ) -> Result<Vec<ResolvedState>> {
        let mut ctx = Ctx {
            stack: Vec::new(),
            memo: HashMap::new(),
            estimates: None,
            cycle_keys: HashSet::new(),
        };
        self.resolve_states(composite, env, &mut ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archrel_expr::Expr;
    use archrel_model::{
        catalog, AssemblyBuilder, CompletionModel, DependencyModel, FailureModel, FlowBuilder,
        FlowState, InternalFailureModel, SimpleService,
    };

    fn constant_service(name: &str, pfail: f64) -> Service {
        Service::Simple(SimpleService::new(
            name,
            "x",
            FailureModel::Constant { probability: pfail },
        ))
    }

    fn call(target: &str) -> ServiceCall {
        ServiceCall::new(target).with_param("x", Expr::zero())
    }

    fn single_state_assembly(
        pfails: &[f64],
        completion: CompletionModel,
        dependency: DependencyModel,
    ) -> Assembly {
        let mut builder = AssemblyBuilder::new();
        let mut calls = Vec::new();
        // In the Shared case all calls must target the same service.
        if dependency == DependencyModel::Shared {
            builder = builder.service(constant_service("s0", pfails[0]));
            for _ in pfails {
                calls.push(call("s0"));
            }
        } else {
            for (i, p) in pfails.iter().enumerate() {
                let name = format!("s{i}");
                builder = builder.service(constant_service(&name, *p));
                calls.push(call(&name));
            }
        }
        let flow = FlowBuilder::new()
            .state(
                FlowState::new("1", calls)
                    .with_completion(completion)
                    .with_dependency(dependency),
            )
            .transition(StateId::Start, "1", Expr::one())
            .transition("1", StateId::End, Expr::one())
            .build()
            .unwrap();
        let top = Service::Composite(CompositeService::new("top", vec![], flow).unwrap());
        builder.service(top).build().unwrap()
    }

    #[test]
    fn and_of_independent_constants() {
        let a = single_state_assembly(
            &[0.1, 0.2],
            CompletionModel::And,
            DependencyModel::Independent,
        );
        let p = Evaluator::new(&a)
            .failure_probability(&"top".into(), &Bindings::new())
            .unwrap();
        assert!((p.value() - (1.0 - 0.9 * 0.8)).abs() < 1e-12);
    }

    #[test]
    fn or_of_independent_constants() {
        let a = single_state_assembly(
            &[0.1, 0.2],
            CompletionModel::Or,
            DependencyModel::Independent,
        );
        let p = Evaluator::new(&a)
            .failure_probability(&"top".into(), &Bindings::new())
            .unwrap();
        assert!((p.value() - 0.1 * 0.2).abs() < 1e-12);
    }

    #[test]
    fn or_of_shared_replicas_collapses() {
        // Two OR replicas of the same service: sharing destroys redundancy.
        let a = single_state_assembly(&[0.25, 0.25], CompletionModel::Or, DependencyModel::Shared);
        let p = Evaluator::new(&a)
            .failure_probability(&"top".into(), &Bindings::new())
            .unwrap();
        // eq. 12 with Pint = 0: 1 - (1-0.25)^2 * 1 = 0.4375.
        assert!((p.value() - (1.0 - 0.75 * 0.75)).abs() < 1e-12);
    }

    #[test]
    fn reliability_is_complement() {
        let a = single_state_assembly(&[0.1], CompletionModel::And, DependencyModel::Independent);
        let eval = Evaluator::new(&a);
        let f = eval
            .failure_probability(&"top".into(), &Bindings::new())
            .unwrap();
        let r = eval.reliability(&"top".into(), &Bindings::new()).unwrap();
        assert!((f.value() + r.value() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn unknown_service_is_reported() {
        let a = AssemblyBuilder::new()
            .service(constant_service("s", 0.1))
            .build()
            .unwrap();
        let err = Evaluator::new(&a)
            .failure_probability(&"ghost".into(), &Bindings::new())
            .unwrap_err();
        assert!(matches!(err, CoreError::Model(_)));
    }

    #[test]
    fn simple_service_demands_its_parameter() {
        let a = AssemblyBuilder::new()
            .service(catalog::cpu_resource("cpu", 1e9, 1e-9))
            .build()
            .unwrap();
        let eval = Evaluator::new(&a);
        // Correct parameter name:
        let p = eval
            .failure_probability(
                &"cpu".into(),
                &Bindings::new().with(catalog::CPU_PARAM, 1e6),
            )
            .unwrap();
        assert!(p.value() > 0.0);
        // Missing parameter:
        let err = eval
            .failure_probability(&"cpu".into(), &Bindings::new())
            .unwrap_err();
        assert!(matches!(err, CoreError::Expr(_)));
    }

    fn recursive_assembly(p_base: f64, p_recurse: f64) -> Assembly {
        // svc: with prob p_recurse call itself again, else do a base call.
        let flow = FlowBuilder::new()
            .state(FlowState::new("again", vec![ServiceCall::new("svc")]))
            .state(FlowState::new("base", vec![call("leaf")]))
            .transition(StateId::Start, "again", Expr::num(p_recurse))
            .transition(StateId::Start, "base", Expr::num(1.0 - p_recurse))
            .transition("again", StateId::End, Expr::one())
            .transition("base", StateId::End, Expr::one())
            .build()
            .unwrap();
        AssemblyBuilder::new()
            .service(constant_service("leaf", p_base))
            .service(Service::Composite(
                CompositeService::new("svc", vec![], flow).unwrap(),
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn recursion_is_an_error_by_default() {
        let a = recursive_assembly(0.1, 0.5);
        let err = Evaluator::new(&a)
            .failure_probability(&"svc".into(), &Bindings::new())
            .unwrap_err();
        match err {
            CoreError::RecursiveAssembly { cycle } => {
                assert!(cycle.iter().filter(|s| s.as_str() == "svc").count() >= 2);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn fixed_point_solves_recursion() {
        // Pfail satisfies f = r*f + (1-r)*p  =>  f = (1-r)p / (1-r) = p.
        let (p_base, r) = (0.2, 0.5);
        let a = recursive_assembly(p_base, r);
        let eval = Evaluator::with_options(
            &a,
            EvalOptions {
                cycle_mode: CycleMode::FixedPoint {
                    max_iterations: 200,
                    tolerance: 1e-12,
                },
                ..EvalOptions::default()
            },
        );
        let f = eval
            .failure_probability(&"svc".into(), &Bindings::new())
            .unwrap();
        // Closed form: f = r f + (1-r) p_base  =>  f = p_base.
        assert!((f.value() - p_base).abs() < 1e-9, "got {}", f.value());
    }

    #[test]
    fn fixed_point_mode_matches_error_mode_on_acyclic_assemblies() {
        let a = single_state_assembly(
            &[0.1, 0.3],
            CompletionModel::And,
            DependencyModel::Independent,
        );
        let exact = Evaluator::new(&a)
            .failure_probability(&"top".into(), &Bindings::new())
            .unwrap();
        let fp = Evaluator::with_options(
            &a,
            EvalOptions {
                cycle_mode: CycleMode::FixedPoint {
                    max_iterations: 50,
                    tolerance: 1e-12,
                },
                ..EvalOptions::default()
            },
        )
        .failure_probability(&"top".into(), &Bindings::new())
        .unwrap();
        assert!((exact.value() - fp.value()).abs() < 1e-15);
    }

    #[test]
    fn cache_is_consistent_across_calls() {
        let a = single_state_assembly(
            &[0.1, 0.2],
            CompletionModel::And,
            DependencyModel::Independent,
        );
        let eval = Evaluator::new(&a);
        let p1 = eval
            .failure_probability(&"top".into(), &Bindings::new())
            .unwrap();
        let p2 = eval
            .failure_probability(&"top".into(), &Bindings::new())
            .unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn internal_failure_uses_first_actual_param() {
        // A composite calling cpu(1000) with phi so that
        // Pint = 1 - (1-phi)^1000.
        let phi = 1e-3;
        let flow = FlowBuilder::new()
            .state(FlowState::new(
                "1",
                vec![ServiceCall::new("cpu")
                    .with_param(catalog::CPU_PARAM, Expr::num(1000.0))
                    .with_internal(InternalFailureModel::PerOperation { phi })],
            ))
            .transition(StateId::Start, "1", Expr::one())
            .transition("1", StateId::End, Expr::one())
            .build()
            .unwrap();
        let a = AssemblyBuilder::new()
            // Perfect CPU isolates the internal term.
            .service(Service::Simple(SimpleService::new(
                "cpu",
                catalog::CPU_PARAM,
                FailureModel::Perfect,
            )))
            .service(Service::Composite(
                CompositeService::new("top", vec![], flow).unwrap(),
            ))
            .build()
            .unwrap();
        let p = Evaluator::new(&a)
            .failure_probability(&"top".into(), &Bindings::new())
            .unwrap();
        let expected = 1.0 - (1.0 - phi).powf(1000.0);
        assert!((p.value() - expected).abs() < 1e-12);
    }

    #[test]
    fn iterative_solver_matches_dense() {
        use archrel_model::paper;
        let params = paper::PaperParams::default().with_gamma(2.5e-2);
        let assembly = paper::remote_assembly(&params).unwrap();
        let env = paper::search_bindings(4.0, 4096.0, 1.0);
        let dense = Evaluator::new(&assembly)
            .failure_probability(&paper::SEARCH.into(), &env)
            .unwrap();
        let iterative = Evaluator::with_options(
            &assembly,
            EvalOptions {
                solver: Solver::Iterative,
                ..EvalOptions::default()
            },
        )
        .failure_probability(&paper::SEARCH.into(), &env)
        .unwrap();
        assert!(
            (dense.value() - iterative.value()).abs() < 1e-10,
            "dense {} vs iterative {}",
            dense.value(),
            iterative.value()
        );
    }

    #[test]
    fn evaluator_is_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<Evaluator<'static>>();
    }
}
