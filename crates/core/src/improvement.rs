//! Reliability-improvement advisor: *where* should the architect spend
//! effort, and *how much* is needed to hit a target?
//!
//! Closes the loop the paper's §1 opens ("to appropriately drive the
//! selection and assembly of services, in order to get some required
//! dependability level"): given a target reliability, the advisor ranks the
//! assembly's **improvement levers** — each a multiplicative scaling of one
//! service's failure mechanism — by how much head-room they offer, and
//! computes the minimal scaling of a chosen lever that meets the target
//! (bisection over the monotone response).

use std::sync::Arc;

use archrel_expr::Bindings;
use archrel_model::{
    Assembly, AssemblyBuilder, CompositeService, FailureModel, FlowBuilder, InternalFailureModel,
    Probability, Service, ServiceId, SimpleService,
};

use crate::{CoreError, EvalOptions, Evaluator, PlanCache, Result};

/// One improvement lever: scale a service's failure mechanism by `factor`
/// (`0.0` = perfect, `1.0` = unchanged).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lever {
    /// Scale the published failure law of a simple service (its `rate`,
    /// constant probability, or per-unit probability).
    ServiceFailure(ServiceId),
    /// Scale the caller-side software failure rates (ϕ of eq. 14 and
    /// constant internal failures) inside a composite service's flow.
    InternalFailure(ServiceId),
}

impl Lever {
    /// The service the lever acts on.
    pub fn service(&self) -> &ServiceId {
        match self {
            Lever::ServiceFailure(s) | Lever::InternalFailure(s) => s,
        }
    }
}

/// Outcome of evaluating one lever at its extreme (`factor = 0`).
#[derive(Debug, Clone, PartialEq)]
pub struct LeverAssessment {
    /// The lever.
    pub lever: Lever,
    /// Assembly failure probability with the lever's mechanism removed
    /// entirely — the *best case* this lever can reach alone.
    pub best_case_failure: Probability,
    /// Baseline minus best case: the probability mass this lever controls.
    pub head_room: f64,
}

/// Applies `factor` to a lever, producing a rebuilt assembly.
///
/// # Errors
///
/// - [`CoreError::Model`] when the lever's service is absent or of the
///   wrong kind, or when `factor` is negative/non-finite.
pub fn apply_lever(assembly: &Assembly, lever: &Lever, factor: f64) -> Result<Assembly> {
    if !factor.is_finite() || factor < 0.0 {
        return Err(CoreError::Model(
            archrel_model::ModelError::InvalidAttribute {
                name: "factor",
                value: factor,
            },
        ));
    }
    let mut builder = AssemblyBuilder::new();
    for service in assembly.services() {
        let rebuilt = match (lever, service) {
            (Lever::ServiceFailure(id), Service::Simple(s)) if s.id() == id => {
                Service::Simple(scale_simple(s, factor))
            }
            (Lever::InternalFailure(id), Service::Composite(c)) if c.id() == id => {
                Service::Composite(scale_internal(c, factor)?)
            }
            _ => service.clone(),
        };
        builder = builder.service(rebuilt);
    }
    // Verify the lever matched something of the right kind.
    match (lever, assembly.service(lever.service())) {
        (_, None) => {
            return Err(CoreError::Model(
                archrel_model::ModelError::UnknownService {
                    id: lever.service().to_string(),
                    referenced_from: "<improvement lever>".to_string(),
                },
            ))
        }
        (Lever::ServiceFailure(_), Some(Service::Composite(_)))
        | (Lever::InternalFailure(_), Some(Service::Simple(_))) => {
            return Err(CoreError::Model(
                archrel_model::ModelError::UnknownService {
                    id: format!("{} (wrong service kind for this lever)", lever.service()),
                    referenced_from: "<improvement lever>".to_string(),
                },
            ))
        }
        _ => {}
    }
    Ok(builder.build()?)
}

fn scale_simple(s: &SimpleService, factor: f64) -> SimpleService {
    let model = match *s.model() {
        FailureModel::ExponentialRate { rate, capacity } => FailureModel::ExponentialRate {
            rate: rate * factor,
            capacity,
        },
        FailureModel::Perfect => FailureModel::Perfect,
        FailureModel::Constant { probability } => FailureModel::Constant {
            probability: (probability * factor).min(1.0),
        },
        FailureModel::PerUnit { probability } => FailureModel::PerUnit {
            probability: (probability * factor).min(1.0),
        },
    };
    SimpleService::new(s.id().clone(), s.formal_param(), model)
}

fn scale_internal(c: &CompositeService, factor: f64) -> Result<CompositeService> {
    let mut flow = FlowBuilder::new();
    for state in c.flow().states() {
        let mut scaled = state.clone();
        for call in &mut scaled.calls {
            call.internal_failure = match call.internal_failure {
                InternalFailureModel::None => InternalFailureModel::None,
                InternalFailureModel::Constant { probability } => InternalFailureModel::Constant {
                    probability: (probability * factor).min(1.0),
                },
                InternalFailureModel::PerOperation { phi } => InternalFailureModel::PerOperation {
                    phi: (phi * factor).min(1.0),
                },
            };
        }
        flow = flow.state(scaled);
    }
    for t in c.flow().transitions() {
        flow = flow.transition(t.from.clone(), t.to.clone(), t.probability.clone());
    }
    Ok(CompositeService::new(
        c.id().clone(),
        c.formal_params().to_vec(),
        flow.build()?,
    )?)
}

/// Enumerates every lever of the assembly: one `ServiceFailure` per
/// non-perfect simple service and one `InternalFailure` per composite with
/// any internal failure model.
pub fn levers(assembly: &Assembly) -> Vec<Lever> {
    let mut out = Vec::new();
    for service in assembly.services() {
        match service {
            Service::Simple(s) => {
                if !matches!(s.model(), FailureModel::Perfect) {
                    out.push(Lever::ServiceFailure(s.id().clone()));
                }
            }
            Service::Composite(c) => {
                let has_internal = c.flow().states().iter().any(|st| {
                    st.calls
                        .iter()
                        .any(|call| call.internal_failure != InternalFailureModel::None)
                });
                if has_internal {
                    out.push(Lever::InternalFailure(c.id().clone()));
                }
            }
        }
    }
    out
}

/// Assesses every lever's head-room and ranks them (largest first): the
/// levers whose complete removal lowers `Pfail(service, env)` the most.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn rank_levers(
    assembly: &Assembly,
    service: &ServiceId,
    env: &Bindings,
) -> Result<Vec<LeverAssessment>> {
    rank_levers_with_options(assembly, service, env, EvalOptions::default())
}

/// Like [`rank_levers`], under explicit [`EvalOptions`].
///
/// Every per-lever evaluation runs on a *rebuilt* assembly whose flow
/// structures are unchanged (only the failure values scale), so all the
/// fresh evaluators share one compiled-plan cache: under
/// [`crate::SolverPolicy::Compiled`] (or a promoted
/// [`crate::SolverPolicy::Auto`]) each flow structure is compiled once and
/// every lever assessment replays the tape. The one exception — a lever
/// whose zeroing drops a `Fail` edge entirely — changes the structure
/// fingerprint and naturally compiles its own plan.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn rank_levers_with_options(
    assembly: &Assembly,
    service: &ServiceId,
    env: &Bindings,
    options: EvalOptions,
) -> Result<Vec<LeverAssessment>> {
    let plans = Arc::new(PlanCache::new());
    let baseline = Evaluator::with_plan_cache(assembly, options, Arc::clone(&plans))
        .failure_probability(service, env)?
        .value();
    let mut out = Vec::new();
    for lever in levers(assembly) {
        let improved = apply_lever(assembly, &lever, 0.0)?;
        let best_case = Evaluator::with_plan_cache(&improved, options, Arc::clone(&plans))
            .failure_probability(service, env)?;
        out.push(LeverAssessment {
            head_room: (baseline - best_case.value()).max(0.0),
            best_case_failure: best_case,
            lever,
        });
    }
    out.sort_by(|a, b| {
        b.head_room
            .partial_cmp(&a.head_room)
            .expect("head rooms are finite")
    });
    Ok(out)
}

/// Finds (by bisection) the largest factor `f ∈ [0, 1]` such that scaling
/// `lever` by `f` achieves `Pfail(service, env) ≤ target` — i.e. the
/// *least aggressive* improvement that meets the target. Returns `None`
/// when even `f = 0` cannot reach the target (the lever alone is not
/// enough).
///
/// # Errors
///
/// Propagates evaluation and lever errors.
pub fn required_factor(
    assembly: &Assembly,
    service: &ServiceId,
    env: &Bindings,
    lever: &Lever,
    target: Probability,
) -> Result<Option<f64>> {
    required_factor_with_options(
        assembly,
        service,
        env,
        lever,
        target,
        EvalOptions::default(),
    )
}

/// Like [`required_factor`], under explicit [`EvalOptions`].
///
/// The bisection evaluates ~60 rebuilt assemblies that all share each flow's
/// structure; one plan cache spans the whole search, so compiled-plan
/// policies pay for compilation once and replay the tape per probe.
///
/// # Errors
///
/// Propagates evaluation and lever errors.
pub fn required_factor_with_options(
    assembly: &Assembly,
    service: &ServiceId,
    env: &Bindings,
    lever: &Lever,
    target: Probability,
    options: EvalOptions,
) -> Result<Option<f64>> {
    let plans = Arc::new(PlanCache::new());
    let pfail_at = |factor: f64| -> Result<f64> {
        let improved = apply_lever(assembly, lever, factor)?;
        Ok(
            Evaluator::with_plan_cache(&improved, options, Arc::clone(&plans))
                .failure_probability(service, env)?
                .value(),
        )
    };
    if pfail_at(1.0)? <= target.value() {
        return Ok(Some(1.0)); // already good
    }
    if pfail_at(0.0)? > target.value() {
        return Ok(None); // unreachable with this lever alone
    }
    let (mut lo, mut hi) = (0.0_f64, 1.0_f64); // pfail(lo) <= target < pfail(hi)
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if pfail_at(mid)? <= target.value() {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(Some(lo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use archrel_model::paper;

    fn setup() -> (Assembly, Bindings) {
        let params = paper::PaperParams::default().with_phi_sort1(5e-6);
        (
            paper::local_assembly(&params).unwrap(),
            paper::search_bindings(4.0, 8192.0, 1.0),
        )
    }

    #[test]
    fn lever_enumeration_covers_the_paper_assembly() {
        let (assembly, _) = setup();
        let ls = levers(&assembly);
        // cpu1 (simple, exponential), sort1 (internal phi), search (internal
        // phi). The loc connectors are perfect and lpc has no internals.
        let names: Vec<String> = ls.iter().map(|l| l.service().to_string()).collect();
        assert!(names.contains(&"cpu1".to_string()));
        assert!(names.contains(&paper::SORT_LOCAL.to_string()));
        assert!(names.contains(&paper::SEARCH.to_string()));
        assert_eq!(ls.len(), 3, "{names:?}");
    }

    #[test]
    fn sort_software_dominates_the_ranking() {
        let (assembly, env) = setup();
        let ranked = rank_levers(&assembly, &paper::SEARCH.into(), &env).unwrap();
        // With ϕ₁ = 5e-6 on list·log(list) operations, sort1's software
        // failure is by far the dominant mechanism.
        assert_eq!(
            ranked[0].lever,
            Lever::InternalFailure(paper::SORT_LOCAL.into())
        );
        assert!(ranked[0].head_room > ranked[1].head_room * 10.0);
        // Ranking is sorted.
        for w in ranked.windows(2) {
            assert!(w[0].head_room >= w[1].head_room);
        }
    }

    #[test]
    fn apply_lever_scales_monotonically() {
        let (assembly, env) = setup();
        let lever = Lever::InternalFailure(paper::SORT_LOCAL.into());
        let mut last = -1.0;
        for factor in [0.0, 0.25, 0.5, 1.0] {
            let improved = apply_lever(&assembly, &lever, factor).unwrap();
            let p = Evaluator::new(&improved)
                .failure_probability(&paper::SEARCH.into(), &env)
                .unwrap()
                .value();
            assert!(p >= last, "factor {factor}: {p} < {last}");
            last = p;
        }
        // factor = 1 reproduces the baseline exactly.
        let baseline = Evaluator::new(&assembly)
            .failure_probability(&paper::SEARCH.into(), &env)
            .unwrap()
            .value();
        assert!((last - baseline).abs() < 1e-15);
    }

    #[test]
    fn required_factor_meets_the_target() {
        let (assembly, env) = setup();
        let baseline = Evaluator::new(&assembly)
            .failure_probability(&paper::SEARCH.into(), &env)
            .unwrap()
            .value();
        let target = Probability::new(baseline / 2.0).unwrap();
        let lever = Lever::InternalFailure(paper::SORT_LOCAL.into());
        let factor = required_factor(&assembly, &paper::SEARCH.into(), &env, &lever, target)
            .unwrap()
            .expect("the dominant lever can reach half the baseline");
        assert!(factor > 0.0 && factor < 1.0);
        // Applying the factor achieves the target (within bisection slack).
        let improved = apply_lever(&assembly, &lever, factor).unwrap();
        let achieved = Evaluator::new(&improved)
            .failure_probability(&paper::SEARCH.into(), &env)
            .unwrap()
            .value();
        assert!(achieved <= target.value() * (1.0 + 1e-9), "{achieved}");
        // The next representable factor above would overshoot: the answer is
        // the least aggressive improvement (largest feasible factor).
        let slack = apply_lever(&assembly, &lever, (factor + 1e-3).min(1.0)).unwrap();
        let overshoot = Evaluator::new(&slack)
            .failure_probability(&paper::SEARCH.into(), &env)
            .unwrap()
            .value();
        assert!(overshoot > target.value());
    }

    #[test]
    fn unreachable_target_returns_none() {
        let (assembly, env) = setup();
        // cpu1's hardware contribution is tiny: zeroing it cannot reach a
        // near-zero target while sort software failures remain.
        let lever = Lever::ServiceFailure("cpu1".into());
        let result = required_factor(
            &assembly,
            &paper::SEARCH.into(),
            &env,
            &lever,
            Probability::new(1e-9).unwrap(),
        )
        .unwrap();
        assert!(result.is_none());
    }

    #[test]
    fn already_met_target_returns_one() {
        let (assembly, env) = setup();
        let lever = Lever::ServiceFailure("cpu1".into());
        let result = required_factor(
            &assembly,
            &paper::SEARCH.into(),
            &env,
            &lever,
            Probability::new(0.999).unwrap(),
        )
        .unwrap();
        assert_eq!(result, Some(1.0));
    }

    #[test]
    fn lever_errors() {
        let (assembly, _) = setup();
        assert!(apply_lever(&assembly, &Lever::ServiceFailure("ghost".into()), 0.5).is_err());
        assert!(apply_lever(
            &assembly,
            &Lever::ServiceFailure(paper::SEARCH.into()), // composite: wrong kind
            0.5
        )
        .is_err());
        assert!(apply_lever(
            &assembly,
            &Lever::InternalFailure("cpu1".into()), // simple: wrong kind
            0.5
        )
        .is_err());
        assert!(apply_lever(&assembly, &Lever::ServiceFailure("cpu1".into()), -1.0).is_err());
    }
}
