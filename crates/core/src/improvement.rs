//! Reliability-improvement advisor: *where* should the architect spend
//! effort, and *how much* is needed to hit a target?
//!
//! Closes the loop the paper's §1 opens ("to appropriately drive the
//! selection and assembly of services, in order to get some required
//! dependability level"): given a target reliability, the advisor ranks the
//! assembly's **improvement levers** — each a multiplicative scaling of one
//! service's failure mechanism — by how much head-room they offer, and
//! computes the minimal scaling of a chosen lever that meets the target
//! (bisection over the monotone response).

use std::sync::Arc;
use std::time::Instant;

use archrel_expr::Bindings;
use archrel_model::{
    Assembly, AssemblyBuilder, CompositeService, FailureModel, FlowBuilder, InternalFailureModel,
    Probability, Service, ServiceId, SimpleService,
};

use crate::staged::{StagedLevers, StagedSweep, Staging};
use crate::{CoreError, EvalOptions, Evaluator, PlanCache, Result};

/// One improvement lever: scale a service's failure mechanism by `factor`
/// (`0.0` = perfect, `1.0` = unchanged).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lever {
    /// Scale the published failure law of a simple service (its `rate`,
    /// constant probability, or per-unit probability).
    ServiceFailure(ServiceId),
    /// Scale the caller-side software failure rates (ϕ of eq. 14 and
    /// constant internal failures) inside a composite service's flow.
    InternalFailure(ServiceId),
}

impl Lever {
    /// The service the lever acts on.
    pub fn service(&self) -> &ServiceId {
        match self {
            Lever::ServiceFailure(s) | Lever::InternalFailure(s) => s,
        }
    }
}

/// Outcome of evaluating one lever at its extreme (`factor = 0`).
#[derive(Debug, Clone, PartialEq)]
pub struct LeverAssessment {
    /// The lever.
    pub lever: Lever,
    /// Assembly failure probability with the lever's mechanism removed
    /// entirely — the *best case* this lever can reach alone.
    pub best_case_failure: Probability,
    /// Baseline minus best case: the probability mass this lever controls.
    pub head_room: f64,
}

/// Applies `factor` to a lever, producing a rebuilt assembly.
///
/// # Errors
///
/// - [`CoreError::Model`] when the lever's service is absent or of the
///   wrong kind, or when `factor` is negative/non-finite.
pub fn apply_lever(assembly: &Assembly, lever: &Lever, factor: f64) -> Result<Assembly> {
    if !factor.is_finite() || factor < 0.0 {
        return Err(CoreError::Model(
            archrel_model::ModelError::InvalidAttribute {
                name: "factor",
                value: factor,
            },
        ));
    }
    let mut builder = AssemblyBuilder::new();
    for service in assembly.services() {
        let rebuilt = match (lever, service) {
            (Lever::ServiceFailure(id), Service::Simple(s)) if s.id() == id => {
                Service::Simple(scale_simple(s, factor))
            }
            (Lever::InternalFailure(id), Service::Composite(c)) if c.id() == id => {
                Service::Composite(scale_internal(c, factor)?)
            }
            _ => service.clone(),
        };
        builder = builder.service(rebuilt);
    }
    // Verify the lever matched something of the right kind.
    match (lever, assembly.service(lever.service())) {
        (_, None) => {
            return Err(CoreError::Model(
                archrel_model::ModelError::UnknownService {
                    id: lever.service().to_string(),
                    referenced_from: "<improvement lever>".to_string(),
                },
            ))
        }
        (Lever::ServiceFailure(_), Some(Service::Composite(_)))
        | (Lever::InternalFailure(_), Some(Service::Simple(_))) => {
            return Err(CoreError::Model(
                archrel_model::ModelError::UnknownService {
                    id: format!("{} (wrong service kind for this lever)", lever.service()),
                    referenced_from: "<improvement lever>".to_string(),
                },
            ))
        }
        _ => {}
    }
    Ok(builder.build()?)
}

/// The `ServiceFailure` lever's arithmetic on one failure law. Shared with
/// the staged-sweep compiler (`crate::staged`) so a staged factor sweep
/// reproduces `apply_lever` bit for bit.
pub(crate) fn scale_failure_model(model: &FailureModel, factor: f64) -> FailureModel {
    match *model {
        FailureModel::ExponentialRate { rate, capacity } => FailureModel::ExponentialRate {
            rate: rate * factor,
            capacity,
        },
        FailureModel::Perfect => FailureModel::Perfect,
        FailureModel::Constant { probability } => FailureModel::Constant {
            probability: (probability * factor).min(1.0),
        },
        FailureModel::PerUnit { probability } => FailureModel::PerUnit {
            probability: (probability * factor).min(1.0),
        },
    }
}

/// The `InternalFailure` lever's arithmetic on one caller-side law
/// (see [`scale_failure_model`] for why it is factored out).
pub(crate) fn scale_internal_model(
    model: &InternalFailureModel,
    factor: f64,
) -> InternalFailureModel {
    match *model {
        InternalFailureModel::None => InternalFailureModel::None,
        InternalFailureModel::Constant { probability } => InternalFailureModel::Constant {
            probability: (probability * factor).min(1.0),
        },
        InternalFailureModel::PerOperation { phi } => InternalFailureModel::PerOperation {
            phi: (phi * factor).min(1.0),
        },
    }
}

fn scale_simple(s: &SimpleService, factor: f64) -> SimpleService {
    SimpleService::new(
        s.id().clone(),
        s.formal_param(),
        scale_failure_model(s.model(), factor),
    )
}

fn scale_internal(c: &CompositeService, factor: f64) -> Result<CompositeService> {
    let mut flow = FlowBuilder::new();
    for state in c.flow().states() {
        let mut scaled = state.clone();
        for call in &mut scaled.calls {
            call.internal_failure = scale_internal_model(&call.internal_failure, factor);
        }
        flow = flow.state(scaled);
    }
    for t in c.flow().transitions() {
        flow = flow.transition(t.from.clone(), t.to.clone(), t.probability.clone());
    }
    Ok(CompositeService::new(
        c.id().clone(),
        c.formal_params().to_vec(),
        flow.build()?,
    )?)
}

/// Enumerates every lever of the assembly: one `ServiceFailure` per
/// non-perfect simple service and one `InternalFailure` per composite with
/// any internal failure model.
pub fn levers(assembly: &Assembly) -> Vec<Lever> {
    let mut out = Vec::new();
    for service in assembly.services() {
        match service {
            Service::Simple(s) => {
                if !matches!(s.model(), FailureModel::Perfect) {
                    out.push(Lever::ServiceFailure(s.id().clone()));
                }
            }
            Service::Composite(c) => {
                let has_internal = c.flow().states().iter().any(|st| {
                    st.calls
                        .iter()
                        .any(|call| call.internal_failure != InternalFailureModel::None)
                });
                if has_internal {
                    out.push(Lever::InternalFailure(c.id().clone()));
                }
            }
        }
    }
    out
}

/// Assesses every lever's head-room and ranks them (largest first): the
/// levers whose complete removal lowers `Pfail(service, env)` the most.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn rank_levers(
    assembly: &Assembly,
    service: &ServiceId,
    env: &Bindings,
) -> Result<Vec<LeverAssessment>> {
    rank_levers_with_options(assembly, service, env, EvalOptions::default())
}

/// Like [`rank_levers`], under explicit [`EvalOptions`].
///
/// Every per-lever evaluation runs on a *rebuilt* assembly whose flow
/// structures are unchanged (only the failure values scale), so all the
/// fresh evaluators share one compiled-plan cache: under
/// [`crate::SolverPolicy::Compiled`] (or a promoted
/// [`crate::SolverPolicy::Auto`]) each flow structure is compiled once and
/// every lever assessment replays the tape. The one exception — a lever
/// whose zeroing drops a `Fail` edge entirely — changes the structure
/// fingerprint and naturally compiles its own plan.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn rank_levers_with_options(
    assembly: &Assembly,
    service: &ServiceId,
    env: &Bindings,
    options: EvalOptions,
) -> Result<Vec<LeverAssessment>> {
    let plans = Arc::new(PlanCache::new());
    // Staged fast path: the baseline and every lever assessment share one
    // compiled sweep; points whose zeroing keeps the flow structure stage
    // straight into a plan row (no rebuild, no `Bindings`), while levers
    // that drop a `Fail` edge fall back to the generic rebuild below.
    let staged = StagedSweep::compile(assembly, service, env, &plans, options)?;
    let mut scratch = staged.as_ref().map(|s| s.new_scratch());
    let mut stage_nanos = 0u64;
    let mut stage_point =
        |sweep: &StagedSweep, prepared: &StagedLevers, factors: &[f64]| -> Result<Option<f64>> {
            let scratch = scratch
                .as_mut()
                .expect("scratch exists alongside the sweep");
            let started = Instant::now();
            let staging = sweep.stage_factors(prepared, factors, scratch);
            stage_nanos += u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            match staging? {
                Staging::Row => Ok(Some(sweep.evaluate_row(scratch)?.value())),
                Staging::Fallback => Ok(None),
            }
        };
    let baseline = match &staged {
        Some(sweep) => stage_point(sweep, &StagedLevers::empty(), &[])?,
        None => None,
    };
    let baseline = match baseline {
        Some(p) => p,
        None => Evaluator::with_plan_cache(assembly, options, Arc::clone(&plans))
            .failure_probability(service, env)?
            .value(),
    };
    let mut out = Vec::new();
    for lever in levers(assembly) {
        let staged_best = match &staged {
            Some(sweep) => {
                let prepared = sweep.prepare_levers(assembly, std::iter::once(&lever))?;
                stage_point(sweep, &prepared, &[0.0])?
            }
            None => None,
        };
        let best_case = match staged_best {
            Some(p) => Probability::new(p)?,
            None => {
                let improved = apply_lever(assembly, &lever, 0.0)?;
                Evaluator::with_plan_cache(&improved, options, Arc::clone(&plans))
                    .failure_probability(service, env)?
            }
        };
        out.push(LeverAssessment {
            head_room: (baseline - best_case.value()).max(0.0),
            best_case_failure: best_case,
            lever,
        });
    }
    plans.record_stage_nanos(stage_nanos);
    out.sort_by(|a, b| {
        b.head_room
            .partial_cmp(&a.head_room)
            .expect("head rooms are finite")
    });
    Ok(out)
}

/// Finds (by bisection) the largest factor `f ∈ [0, 1]` such that scaling
/// `lever` by `f` achieves `Pfail(service, env) ≤ target` — i.e. the
/// *least aggressive* improvement that meets the target. Returns `None`
/// when even `f = 0` cannot reach the target (the lever alone is not
/// enough).
///
/// # Errors
///
/// Propagates evaluation and lever errors.
pub fn required_factor(
    assembly: &Assembly,
    service: &ServiceId,
    env: &Bindings,
    lever: &Lever,
    target: Probability,
) -> Result<Option<f64>> {
    required_factor_with_options(
        assembly,
        service,
        env,
        lever,
        target,
        EvalOptions::default(),
    )
}

/// Like [`required_factor`], under explicit [`EvalOptions`].
///
/// The bisection evaluates ~60 rebuilt assemblies that all share each flow's
/// structure; one plan cache spans the whole search, so compiled-plan
/// policies pay for compilation once and replay the tape per probe.
///
/// # Errors
///
/// Propagates evaluation and lever errors.
pub fn required_factor_with_options(
    assembly: &Assembly,
    service: &ServiceId,
    env: &Bindings,
    lever: &Lever,
    target: Probability,
    options: EvalOptions,
) -> Result<Option<f64>> {
    let plans = Arc::new(PlanCache::new());
    // Staged fast path: the ~60 bisection probes share one compiled sweep
    // and stage straight into plan rows. A probe that changes the flow
    // structure (typically only `factor = 0`) rebuilds generically; both
    // paths are bitwise-identical on compiled structures.
    let staged = match StagedSweep::compile(assembly, service, env, &plans, options)? {
        Some(sweep) => {
            let prepared = sweep.prepare_levers(assembly, std::iter::once(lever))?;
            Some((sweep, prepared))
        }
        None => None,
    };
    let mut scratch = staged.as_ref().map(|(sweep, _)| sweep.new_scratch());
    let mut pfail_at = |factor: f64| -> Result<f64> {
        if let (Some((sweep, prepared)), Some(scratch)) = (&staged, scratch.as_mut()) {
            let started = Instant::now();
            let staging = sweep.stage_factors(prepared, &[factor], scratch);
            plans.record_stage_nanos(
                u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            );
            if staging? == Staging::Row {
                return Ok(sweep.evaluate_row(scratch)?.value());
            }
        }
        let improved = apply_lever(assembly, lever, factor)?;
        Ok(
            Evaluator::with_plan_cache(&improved, options, Arc::clone(&plans))
                .failure_probability(service, env)?
                .value(),
        )
    };
    if pfail_at(1.0)? <= target.value() {
        return Ok(Some(1.0)); // already good
    }
    if pfail_at(0.0)? > target.value() {
        return Ok(None); // unreachable with this lever alone
    }
    let (mut lo, mut hi) = (0.0_f64, 1.0_f64); // pfail(lo) <= target < pfail(hi)
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if pfail_at(mid)? <= target.value() {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(Some(lo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use archrel_model::paper;

    fn setup() -> (Assembly, Bindings) {
        let params = paper::PaperParams::default().with_phi_sort1(5e-6);
        (
            paper::local_assembly(&params).unwrap(),
            paper::search_bindings(4.0, 8192.0, 1.0),
        )
    }

    #[test]
    fn lever_enumeration_covers_the_paper_assembly() {
        let (assembly, _) = setup();
        let ls = levers(&assembly);
        // cpu1 (simple, exponential), sort1 (internal phi), search (internal
        // phi). The loc connectors are perfect and lpc has no internals.
        let names: Vec<String> = ls.iter().map(|l| l.service().to_string()).collect();
        assert!(names.contains(&"cpu1".to_string()));
        assert!(names.contains(&paper::SORT_LOCAL.to_string()));
        assert!(names.contains(&paper::SEARCH.to_string()));
        assert_eq!(ls.len(), 3, "{names:?}");
    }

    #[test]
    fn sort_software_dominates_the_ranking() {
        let (assembly, env) = setup();
        let ranked = rank_levers(&assembly, &paper::SEARCH.into(), &env).unwrap();
        // With ϕ₁ = 5e-6 on list·log(list) operations, sort1's software
        // failure is by far the dominant mechanism.
        assert_eq!(
            ranked[0].lever,
            Lever::InternalFailure(paper::SORT_LOCAL.into())
        );
        assert!(ranked[0].head_room > ranked[1].head_room * 10.0);
        // Ranking is sorted.
        for w in ranked.windows(2) {
            assert!(w[0].head_room >= w[1].head_room);
        }
    }

    #[test]
    fn apply_lever_scales_monotonically() {
        let (assembly, env) = setup();
        let lever = Lever::InternalFailure(paper::SORT_LOCAL.into());
        let mut last = -1.0;
        for factor in [0.0, 0.25, 0.5, 1.0] {
            let improved = apply_lever(&assembly, &lever, factor).unwrap();
            let p = Evaluator::new(&improved)
                .failure_probability(&paper::SEARCH.into(), &env)
                .unwrap()
                .value();
            assert!(p >= last, "factor {factor}: {p} < {last}");
            last = p;
        }
        // factor = 1 reproduces the baseline exactly.
        let baseline = Evaluator::new(&assembly)
            .failure_probability(&paper::SEARCH.into(), &env)
            .unwrap()
            .value();
        assert!((last - baseline).abs() < 1e-15);
    }

    #[test]
    fn required_factor_meets_the_target() {
        let (assembly, env) = setup();
        let baseline = Evaluator::new(&assembly)
            .failure_probability(&paper::SEARCH.into(), &env)
            .unwrap()
            .value();
        let target = Probability::new(baseline / 2.0).unwrap();
        let lever = Lever::InternalFailure(paper::SORT_LOCAL.into());
        let factor = required_factor(&assembly, &paper::SEARCH.into(), &env, &lever, target)
            .unwrap()
            .expect("the dominant lever can reach half the baseline");
        assert!(factor > 0.0 && factor < 1.0);
        // Applying the factor achieves the target (within bisection slack).
        let improved = apply_lever(&assembly, &lever, factor).unwrap();
        let achieved = Evaluator::new(&improved)
            .failure_probability(&paper::SEARCH.into(), &env)
            .unwrap()
            .value();
        assert!(achieved <= target.value() * (1.0 + 1e-9), "{achieved}");
        // The next representable factor above would overshoot: the answer is
        // the least aggressive improvement (largest feasible factor).
        let slack = apply_lever(&assembly, &lever, (factor + 1e-3).min(1.0)).unwrap();
        let overshoot = Evaluator::new(&slack)
            .failure_probability(&paper::SEARCH.into(), &env)
            .unwrap()
            .value();
        assert!(overshoot > target.value());
    }

    #[test]
    fn unreachable_target_returns_none() {
        let (assembly, env) = setup();
        // cpu1's hardware contribution is tiny: zeroing it cannot reach a
        // near-zero target while sort software failures remain.
        let lever = Lever::ServiceFailure("cpu1".into());
        let result = required_factor(
            &assembly,
            &paper::SEARCH.into(),
            &env,
            &lever,
            Probability::new(1e-9).unwrap(),
        )
        .unwrap();
        assert!(result.is_none());
    }

    #[test]
    fn already_met_target_returns_one() {
        let (assembly, env) = setup();
        let lever = Lever::ServiceFailure("cpu1".into());
        let result = required_factor(
            &assembly,
            &paper::SEARCH.into(),
            &env,
            &lever,
            Probability::new(0.999).unwrap(),
        )
        .unwrap();
        assert_eq!(result, Some(1.0));
    }

    /// An acyclic assembly the staged sweep compiler accepts (bitwise
    /// block ≡ scalar holds on the straight-line tape only).
    fn stageable_assembly() -> (Assembly, Bindings) {
        use archrel_expr::Expr;
        use archrel_model::{FlowState, ServiceCall, StateId};
        let call_a = ServiceCall {
            target: "cpu".into(),
            actual_params: vec![("ops".to_string(), Expr::param("n"))],
            connector: None,
            internal_failure: InternalFailureModel::PerOperation { phi: 1e-4 },
        };
        let call_b = ServiceCall {
            target: "disk".into(),
            actual_params: vec![("ops".to_string(), Expr::num(3.0))],
            connector: None,
            internal_failure: InternalFailureModel::None,
        };
        let flow = FlowBuilder::new()
            .state(FlowState::new("a", vec![call_a]))
            .state(FlowState::new("b", vec![call_b]))
            .transition(StateId::Start, "a", Expr::num(0.6))
            .transition(StateId::Start, "b", Expr::num(0.4))
            .transition("a", "b", Expr::one())
            .transition("b", StateId::End, Expr::one())
            .build()
            .unwrap();
        let assembly = AssemblyBuilder::new()
            .service(Service::Simple(SimpleService::new(
                "cpu",
                "ops",
                FailureModel::ExponentialRate {
                    rate: 0.02,
                    capacity: 1.0,
                },
            )))
            .service(Service::Simple(SimpleService::new(
                "disk",
                "ops",
                FailureModel::PerUnit { probability: 1e-3 },
            )))
            .service(Service::Composite(
                CompositeService::new("app", vec!["n".to_string()], flow).unwrap(),
            ))
            .build()
            .unwrap();
        (assembly, Bindings::new().with("n", 6.0))
    }

    /// Staged lever assessments and bisection probes must be **bitwise**
    /// identical to the generic rebuild-per-point path under the same
    /// compiled-plan policy.
    #[test]
    fn staged_improvement_matches_generic_rebuild_bitwise() {
        use crate::SolverPolicy;
        let (assembly, env) = stageable_assembly();
        let service: ServiceId = "app".into();
        let options = EvalOptions {
            solver: SolverPolicy::Compiled,
            ..EvalOptions::default()
        };
        let ranked = rank_levers_with_options(&assembly, &service, &env, options).unwrap();
        // Generic reference: rebuild per lever, fresh shared-cache
        // evaluators, identical ordering criteria.
        let plans = Arc::new(PlanCache::new());
        let baseline = Evaluator::with_plan_cache(&assembly, options, Arc::clone(&plans))
            .failure_probability(&service, &env)
            .unwrap()
            .value();
        let mut reference: Vec<LeverAssessment> = levers(&assembly)
            .into_iter()
            .map(|lever| {
                let improved = apply_lever(&assembly, &lever, 0.0).unwrap();
                let best_case = Evaluator::with_plan_cache(&improved, options, Arc::clone(&plans))
                    .failure_probability(&service, &env)
                    .unwrap();
                LeverAssessment {
                    head_room: (baseline - best_case.value()).max(0.0),
                    best_case_failure: best_case,
                    lever,
                }
            })
            .collect();
        reference.sort_by(|a, b| b.head_room.partial_cmp(&a.head_room).unwrap());
        assert_eq!(ranked.len(), reference.len());
        for (r, g) in ranked.iter().zip(&reference) {
            assert_eq!(r.lever, g.lever);
            assert_eq!(
                r.best_case_failure.value().to_bits(),
                g.best_case_failure.value().to_bits()
            );
            assert_eq!(r.head_room.to_bits(), g.head_room.to_bits());
        }
        // Bisection: the staged factor search lands on the exact same
        // factor as a generic bisection over rebuilt assemblies.
        let lever = Lever::ServiceFailure("cpu".into());
        let target = Probability::new(baseline * 0.7).unwrap();
        let staged_factor =
            required_factor_with_options(&assembly, &service, &env, &lever, target, options)
                .unwrap()
                .expect("scaling cpu can reach 70% of baseline");
        let generic_pfail = |factor: f64| -> f64 {
            let improved = apply_lever(&assembly, &lever, factor).unwrap();
            let plans = Arc::new(PlanCache::new());
            Evaluator::with_plan_cache(&improved, options, plans)
                .failure_probability(&service, &env)
                .unwrap()
                .value()
        };
        let (mut lo, mut hi) = (0.0_f64, 1.0_f64);
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if generic_pfail(mid) <= target.value() {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        assert_eq!(staged_factor.to_bits(), lo.to_bits());
    }

    #[test]
    fn lever_errors() {
        let (assembly, _) = setup();
        assert!(apply_lever(&assembly, &Lever::ServiceFailure("ghost".into()), 0.5).is_err());
        assert!(apply_lever(
            &assembly,
            &Lever::ServiceFailure(paper::SEARCH.into()), // composite: wrong kind
            0.5
        )
        .is_err());
        assert!(apply_lever(
            &assembly,
            &Lever::InternalFailure("cpu1".into()), // simple: wrong kind
            0.5
        )
        .is_err());
        assert!(apply_lever(&assembly, &Lever::ServiceFailure("cpu1".into()), -1.0).is_err());
    }
}
