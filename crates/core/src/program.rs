//! Compiled assembly programs: the evaluation layer above the solver.
//!
//! PRs 2–4 made the per-chain *solve* nearly free (sparse back-substitution
//! → compiled plans → lane-blocked replay), which leaves the recursive
//! assembly walk itself as the dominant per-point cost of sweeps and
//! stencils: [`crate::Evaluator::failure_probability`] re-walks the service
//! DAG per point, re-evaluates every parametric-dependency expression
//! through string-keyed [`Bindings`] lookups, and rebuilds + re-fingerprints
//! each flow structure before the plan cache can even hit.
//!
//! An [`AssemblyProgram`] compiles all of that once per
//! `(Assembly, target service)`:
//!
//! - the service dependency graph — cyclic or not — is lowered to a node
//!   table, and its call graph is condensed into strongly connected
//!   components (iterative Tarjan). Trivial SCCs stay on the straight-line
//!   path below; every node inside a nontrivial SCC, plus every node whose
//!   calls can reach one (the *loop cone*), is tagged for fixed-point
//!   evaluation;
//! - every formal/actual parameter name is interned into dense register
//!   slots, so per-point evaluation never touches a string or a `HashMap`;
//! - every parametric-dependency expression (actual parameters, connector
//!   parameters, transition probabilities) is lowered to a
//!   [`CompiledExpr`] reading the node's registers through pre-resolved
//!   slot indices ([`CompiledExpr::eval_slots`]);
//! - each composite's failure-augmented flow skeleton (merged edge list,
//!   row-sum groups, `Fail`-edge candidates) is precomputed, so per point
//!   only the numeric transition entries are refreshed in place
//!   ([`archrel_markov::Dtmc::set_edge_probability`]) and the compiled
//!   [`archrel_markov::SolvePlan`] for the structure is pinned per runtime
//!   instead of re-looked-up by fingerprint.
//!
//! On top of the program sit two caches:
//!
//! - a per-service **memo table** keyed by the quantized (bit-exact,
//!   [`f64::to_bits`]) actual-parameter vector, so sub-services shared
//!   across the DAG or across nearby sweep points are evaluated once
//!   ([`crate::CacheStats::memo_hits`] / `memo_misses`);
//! - **dirty-cone pinning** for sweeps that vary a declared parameter
//!   subset ([`crate::Evaluator::declare_varied`]): services outside the
//!   varied parameters' dependency cone skip the hashed memo entirely and
//!   reuse a single pinned result, guarded by a bit-exact comparison of
//!   their input registers ([`crate::CacheStats::pin_hits`]). The guard —
//!   not the declaration — carries soundness: a wrong or stale cone only
//!   costs recomputation, never a wrong value.
//!
//! # Cyclic assemblies
//!
//! A cyclic program refuses plain [`AssemblyProgram::evaluate`] (it
//! surfaces the recorded [`CoreError::RecursiveAssembly`] path, matching
//! [`crate::CycleMode::Error`]) and instead evaluates through
//! `evaluate_fixed_point`: global successive-substitution sweeps over the
//! whole node table, exactly mirroring the recursive
//! [`crate::CycleMode::FixedPoint`] evaluator. Each sweep re-enters a
//! loop-cone node through a *sweep-local* memo keyed by
//! `(node, quantized inputs)`, breaks re-entrant calls with the previous
//! sweep's estimate (0 on the first sweep), and records which keys were
//! broken; the shared [`crate::fixedpoint::FixedPointSolver`] then folds
//! the per-key residuals — plain substitution by default, opt-in Aitken Δ²
//! under [`crate::FixedPointMode::Aitken`] — until they drop below the
//! tolerance or the iteration budget dies
//! ([`CoreError::FixedPointDiverged`]).
//!
//! Inside a sweep, loop-cone nodes **never** touch the persistent memo
//! tables or pins: their values depend on the current estimates, so caching
//! them would leak pre-convergence garbage into later sweeps (and into
//! other queries). Nodes *outside* the loop cone are estimate-independent —
//! the cone is downward-closed, so their whole subtree is too — and keep
//! the full memo/pin machinery even mid-sweep.
//!
//! # Bitwise parity
//!
//! Everything the program computes is **bitwise identical** to the
//! recursive path: expression compilation preserves the tree evaluator's
//! operation order, the skeleton refresh replays
//! [`crate::augmented_chain`]'s exact accumulation and validation sequence,
//! solves route through the same plan/direct machinery as
//! [`crate::Evaluator`], and cyclic fixed points replicate the recursive
//! sweeps' break/memo/residual arithmetic key for key. The differential
//! proptests `tests/program_differential.rs` pin this equivalence — acyclic
//! and cyclic — under every [`crate::SolverPolicy`], memo on or off, at any
//! worker count.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use archrel_expr::{Bindings, CompiledExpr};
use archrel_markov::{DtmcBuilder, PlanScratch, SolvePlan};
use archrel_model::{
    Assembly, CompletionModel, DependencyModel, InternalFailureModel, Probability, Service,
    ServiceId, SimpleService, StateId,
};
use parking_lot::{Mutex, RwLock};

use crate::augment::AugmentedState;
use crate::eval::{Evaluator, MAX_DEPTH};
use crate::failprob::{state_failure_probability, RequestFailure};
use crate::fixedpoint::FixedPointSolver;
use crate::{CoreError, Result};

/// A compiled expression reading its parameters out of a node's register
/// file through pre-resolved slot indices (no names, no lookups per point).
#[derive(Debug)]
struct SlottedExpr {
    compiled: CompiledExpr,
    /// Register slot of each compiled parameter, in
    /// [`CompiledExpr::params`] order.
    slots: Vec<usize>,
}

impl SlottedExpr {
    fn compile(expr: &archrel_expr::Expr, formals: &[String]) -> Result<SlottedExpr> {
        let compiled = expr.compile();
        let slots = compiled
            .params()
            .iter()
            .map(|name| {
                formals.iter().position(|f| f == name).ok_or_else(|| {
                    CoreError::Expr(archrel_expr::ExprError::UnboundParameter {
                        name: name.clone(),
                    })
                })
            })
            .collect::<Result<Vec<usize>>>()?;
        Ok(SlottedExpr { compiled, slots })
    }

    #[inline]
    fn eval(&self, regs: &[f64], stack: &mut Vec<f64>) -> Result<f64> {
        Ok(self.compiled.eval_slots(&self.slots, regs, stack)?)
    }
}

/// One actual-parameter expression of a service (or connector) call.
#[derive(Debug)]
struct ActualParam {
    expr: SlottedExpr,
    /// Destination slot in the callee's register file. `None` when the
    /// actual names no callee formal (the recursive path evaluates and
    /// discards such bindings, so the expression is still evaluated for
    /// error parity).
    dest: Option<usize>,
}

/// A connector invocation riding on a service call.
#[derive(Debug)]
struct ConnectorCall {
    target: usize,
    target_arity: usize,
    actuals: Vec<ActualParam>,
}

/// One service call of a flow state.
struct CallNode<'a> {
    target: usize,
    target_arity: usize,
    actuals: Vec<ActualParam>,
    connector: Option<ConnectorCall>,
    internal: &'a InternalFailureModel,
}

/// One flow state with its compiled calls.
struct StateNode<'a> {
    id: StateId,
    completion: CompletionModel,
    dependency: DependencyModel,
    calls: Vec<CallNode<'a>>,
}

/// One flow transition's compiled probability expression.
#[derive(Debug)]
struct TransNode {
    from: StateId,
    expr: SlottedExpr,
}

/// Transitions sharing one source state, in declaration order — the
/// accumulation group whose sum must be one (`augmented_chain`'s
/// `row_sums`).
#[derive(Debug)]
struct RowGroup {
    state: StateId,
    trans: Vec<usize>,
}

/// Parallel flow transitions collapsed onto one `(from, to)` chain edge, in
/// the `BTreeMap` order `augmented_chain` declares them.
#[derive(Debug)]
struct MergedEdge {
    from: StateId,
    to: StateId,
    trans: Vec<usize>,
    /// Position into the node's `states` of the source state's failure
    /// probability; `None` for `Start` (no failure by definition) and for
    /// sources that are not request-carrying flow states.
    from_state: Option<usize>,
}

/// Compiled form of one composite service.
struct CompositeNode<'a> {
    states: Vec<StateNode<'a>>,
    /// Positions into `states` sorted by [`StateId`] — the iteration order
    /// of the recursive path's `state_failures` B-tree map.
    sorted_states: Vec<usize>,
    trans: Vec<TransNode>,
    rows: Vec<RowGroup>,
    merged: Vec<MergedEdge>,
}

enum NodeKind<'a> {
    Simple(&'a SimpleService),
    Composite(CompositeNode<'a>),
}

/// One service of the dependency DAG.
struct Node<'a> {
    id: ServiceId,
    /// Formal parameter names in register-slot order.
    formals: Vec<String>,
    kind: NodeKind<'a>,
}

/// A used formal parameter of the target service, in first-use order (the
/// order the recursive evaluator would first read — and so first miss —
/// each name).
#[derive(Debug)]
struct RootInput {
    name: String,
    slot: usize,
}

/// Cached failure-augmented chain skeleton of one composite node, owned by
/// one [`Runtime`].
struct ChainCache {
    chain: archrel_markov::Dtmc<AugmentedState>,
    /// `(row, slot)` address of each merged edge's probability; `None` for
    /// edges the builder dropped (evaluated to exactly zero).
    edge_slots: Vec<Option<(usize, usize)>>,
    /// `(row, slot)` address of each state's `→ Fail` edge, aligned with
    /// `sorted_states`; `None` for failure-free states.
    fail_slots: Vec<Option<(usize, usize)>>,
    /// Whether the solver policy routes this structure through the plan
    /// path (recomputed on rebuild — the positivity pattern can change the
    /// chain's size/density class).
    try_plan: bool,
    /// Plan pinned after the first successful lookup, skipping the
    /// per-point fingerprint + cache probe of the recursive path.
    plan: Option<Arc<SolvePlan>>,
}

/// Per-node mutable evaluation state.
#[derive(Default)]
struct NodeScratch {
    chain: Option<ChainCache>,
    /// Dirty-cone pin: the last `(quantized inputs, result)` of a node
    /// outside the varied-parameter cone. Reused only when the inputs
    /// compare bit-equal, so pinning is unconditionally sound.
    pin: Option<(Box<[u64]>, Probability)>,
    trans_vals: Vec<f64>,
    merged_vals: Vec<f64>,
    state_failures: Vec<Probability>,
    fail_vals: Vec<f64>,
}

/// Per-checkout mutable evaluation state (one per concurrently evaluating
/// thread; pooled and reused across points).
struct Runtime {
    nodes: Vec<NodeScratch>,
    /// Nested register stack: each node in the active recursion owns a
    /// contiguous window of this buffer.
    inputs: Vec<f64>,
    /// Expression evaluation stack.
    stack: Vec<f64>,
    /// Staging buffer for a callee's registers while its actuals evaluate.
    child: Vec<f64>,
    /// Stack-disciplined per-state request failures (windowed by base
    /// offset, like `inputs`).
    failures: Vec<RequestFailure>,
    /// Memo-key staging buffer.
    key: Vec<u64>,
    /// Plan parameter buffer + scratch for pinned-plan evaluation.
    params: Vec<f64>,
    plan_scratch: PlanScratch,
}

impl Runtime {
    fn new(node_count: usize) -> Runtime {
        let mut nodes = Vec::with_capacity(node_count);
        nodes.resize_with(node_count, NodeScratch::default);
        Runtime {
            nodes,
            inputs: Vec::new(),
            stack: Vec::new(),
            child: Vec::new(),
            failures: Vec::new(),
            key: Vec::new(),
            params: Vec::new(),
            plan_scratch: PlanScratch::new(),
        }
    }
}

/// Identity of one loop-cone evaluation inside a fixed-point sweep:
/// `(node, quantized input registers)` — the program-side analogue of the
/// recursive evaluator's `(ServiceId, Bindings::cache_key())` memo key.
type LoopKey = (usize, Box<[u64]>);

/// Per-sweep state of one global fixed-point iteration, mirroring the
/// recursive evaluator's sweep context exactly: a sweep-local memo, a call
/// stack for cycle breaking, and the set of keys answered from estimates.
struct FpSweep<'s> {
    estimates: &'s HashMap<LoopKey, f64>,
    memo: HashMap<LoopKey, Probability>,
    stack: Vec<LoopKey>,
    cycle_keys: HashSet<LoopKey>,
}

/// A compiled evaluation program for one `(assembly, target service)` pair.
///
/// Built by [`AssemblyProgram::compile`] (or automatically by
/// [`Evaluator`] under [`crate::ProgramMode::Auto`]); evaluated through
/// [`Evaluator::failure_probability`] once installed. See the module
/// documentation for the compilation pipeline and cache semantics.
pub struct AssemblyProgram<'a> {
    target: ServiceId,
    nodes: Vec<Node<'a>>,
    root: usize,
    root_inputs: Vec<RootInput>,
    /// SCC id of each node; ids ascend callees-first (an SCC's id is lower
    /// than every SCC calling into it), so ascending-id order is a
    /// topological order of the condensation.
    scc_of: Vec<usize>,
    /// Whether each node is inside a nontrivial SCC or can reach one
    /// through its calls — the set evaluated under the fixed-point driver.
    loop_cone: Vec<bool>,
    /// Number of nontrivial (cyclic) SCCs in the condensation.
    loop_sccs: usize,
    /// The first dependency cycle found while lowering, in the recursive
    /// evaluator's error shape (path from first occurrence, closed by the
    /// repeated service); `None` for acyclic programs.
    cycle: Option<Vec<String>>,
    /// Per-SCC count of fixed-point member updates (estimate refreshes).
    scc_iters: Vec<AtomicU64>,
    /// Per-node memo tables keyed by the quantized input-register vector.
    memo: Vec<RwLock<HashMap<Box<[u64]>, Probability>>>,
    /// Dirty cone: `in_cone[node]` when the node's result can depend on a
    /// declared-varied parameter; `None` when no declaration was made
    /// (everything uses the hashed memo).
    cone: RwLock<Option<Arc<Vec<bool>>>>,
    runtimes: Mutex<Vec<Runtime>>,
    memo_hits: AtomicU64,
    memo_misses: AtomicU64,
    pin_hits: AtomicU64,
}

impl std::fmt::Debug for AssemblyProgram<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AssemblyProgram")
            .field("target", &self.target)
            .field("nodes", &self.nodes.len())
            .finish_non_exhaustive()
    }
}

impl<'a> AssemblyProgram<'a> {
    /// Compiles the dependency graph reachable from `target` — cyclic or
    /// not. Cycles are condensed into SCCs and evaluated through the
    /// fixed-point driver ([`crate::CycleMode::FixedPoint`]); a cyclic
    /// program's recorded cycle path only surfaces as
    /// [`CoreError::RecursiveAssembly`] if it is evaluated under
    /// [`crate::CycleMode::Error`].
    ///
    /// # Errors
    ///
    /// - [`CoreError::Model`] when `target` (or a callee) is not part of
    ///   the assembly;
    /// - [`CoreError::Expr`] when a parametric dependency reads a
    ///   parameter its service never declares.
    pub fn compile(assembly: &'a Assembly, target: &ServiceId) -> Result<AssemblyProgram<'a>> {
        let mut builder = ProgramBuilder {
            assembly,
            index: HashMap::new(),
            nodes: Vec::new(),
            formals: Vec::new(),
            visiting: Vec::new(),
            first_cycle: None,
        };
        let root = builder.build_node(target)?;
        let nodes: Vec<Node<'a>> = builder
            .nodes
            .into_iter()
            .map(|n| n.expect("every reachable node is lowered"))
            .collect();
        let cycle = builder.first_cycle;
        let (scc_of, scc_count, in_cycle) = condense(&nodes);
        let mut scc_cyclic = vec![false; scc_count];
        for (v, &cyc) in in_cycle.iter().enumerate() {
            if cyc {
                scc_cyclic[scc_of[v]] = true;
            }
        }
        let loop_sccs = scc_cyclic.iter().filter(|&&b| b).count();
        // Loop cone: nodes whose evaluation can reach a cyclic SCC.
        // Ascending SCC id is callees-first, so one pass suffices.
        let mut order: Vec<usize> = (0..nodes.len()).collect();
        order.sort_by_key(|&v| scc_of[v]);
        let mut loop_cone = vec![false; nodes.len()];
        for &v in &order {
            if in_cycle[v] {
                loop_cone[v] = true;
                continue;
            }
            let mut hit = false;
            call_targets(&nodes[v], |t| hit = hit || loop_cone[t]);
            loop_cone[v] = hit;
        }
        let root_inputs = collect_root_inputs(&nodes[root]);
        let memo = nodes.iter().map(|_| RwLock::new(HashMap::new())).collect();
        Ok(AssemblyProgram {
            target: target.clone(),
            nodes,
            root,
            root_inputs,
            scc_of,
            loop_cone,
            loop_sccs,
            cycle,
            scc_iters: (0..scc_count).map(|_| AtomicU64::new(0)).collect(),
            memo,
            cone: RwLock::new(None),
            runtimes: Mutex::new(Vec::new()),
            memo_hits: AtomicU64::new(0),
            memo_misses: AtomicU64::new(0),
            pin_hits: AtomicU64::new(0),
        })
    }

    /// Whether the program's dependency graph has at least one cycle (i.e.
    /// a nontrivial SCC or a self-loop): such programs evaluate only under
    /// [`crate::CycleMode::FixedPoint`].
    pub fn has_cycles(&self) -> bool {
        self.cycle.is_some()
    }

    /// Number of nontrivial (cyclic) SCCs in the condensation.
    pub(crate) fn loop_scc_count(&self) -> usize {
        self.loop_sccs
    }

    /// Total fixed-point member updates across all SCCs so far.
    pub(crate) fn scc_iteration_total(&self) -> u64 {
        self.scc_iters
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .sum()
    }

    /// The target service this program evaluates.
    pub fn target(&self) -> &ServiceId {
        &self.target
    }

    /// Number of services (DAG nodes) the program covers.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Declares the subset of the target's formal parameters a sweep will
    /// vary, computing the dirty cone: nodes whose inputs cannot depend on
    /// any varied parameter are evaluated once and pinned (bit-compare
    /// guarded) instead of hashed into the memo. An empty slice pins
    /// everything; parameters not naming a formal simply widen nothing.
    pub fn set_varied(&self, names: &[String]) {
        let root_formals = &self.nodes[self.root].formals;
        let mut varied: Vec<Vec<bool>> = self
            .nodes
            .iter()
            .map(|n| vec![false; n.formals.len()])
            .collect();
        for (slot, formal) in root_formals.iter().enumerate() {
            if names.iter().any(|n| n == formal) {
                varied[self.root][slot] = true;
            }
        }
        // Node indices follow the builder's DFS pre-order and call edges
        // may form cycles, so no single pass order covers every edge:
        // propagate to a fixed point instead. Variedness bits only ever
        // turn on, so this terminates in at most `sum(arities)` passes
        // (in practice one or two).
        let mut changed = true;
        while changed {
            changed = false;
            for idx in 0..self.nodes.len() {
                let NodeKind::Composite(comp) = &self.nodes[idx].kind else {
                    continue;
                };
                let mut mark =
                    |varied: &mut [Vec<bool>], target: usize, actuals: &[ActualParam]| {
                        for ap in actuals {
                            let depends = ap.expr.slots.iter().any(|&s| varied[idx][s]);
                            if depends {
                                if let Some(dest) = ap.dest {
                                    if !varied[target][dest] {
                                        varied[target][dest] = true;
                                        changed = true;
                                    }
                                }
                            }
                        }
                    };
                for state in &comp.states {
                    for call in &state.calls {
                        mark(&mut varied, call.target, &call.actuals);
                        if let Some(conn) = &call.connector {
                            mark(&mut varied, conn.target, &conn.actuals);
                        }
                    }
                }
            }
        }
        let in_cone: Vec<bool> = varied.iter().map(|v| v.iter().any(|&b| b)).collect();
        *self.cone.write() = Some(Arc::new(in_cone));
    }

    /// Clears any dirty-cone declaration: every node goes back to the
    /// hashed memo.
    pub fn clear_varied(&self) {
        *self.cone.write() = None;
    }

    /// Structure fingerprints of every solve plan pinned by this program's
    /// pooled runtimes, sorted and deduplicated — the payload of a
    /// persistent program bundle. Only parked runtimes are visible, so call
    /// between evaluations (checkouts in flight contribute after they are
    /// returned to the pool).
    pub(crate) fn pinned_plan_fingerprints(&self) -> Vec<u64> {
        let runtimes = self.runtimes.lock();
        let mut fingerprints: Vec<u64> = runtimes
            .iter()
            .flat_map(|rt| rt.nodes.iter())
            .filter_map(|node| {
                node.chain
                    .as_ref()
                    .and_then(|c| c.plan.as_ref())
                    .map(|plan| plan.fingerprint())
            })
            .collect();
        fingerprints.sort_unstable();
        fingerprints.dedup();
        fingerprints
    }

    /// Memo / pin counter snapshot: `(memo_hits, memo_misses, pin_hits)`.
    pub(crate) fn counter_snapshot(&self) -> (u64, u64, u64) {
        (
            self.memo_hits.load(Ordering::Relaxed),
            self.memo_misses.load(Ordering::Relaxed),
            self.pin_hits.load(Ordering::Relaxed),
        )
    }

    /// Evaluates `Pfail(target, env)` — bitwise identical to the recursive
    /// evaluator.
    pub(crate) fn evaluate(
        &self,
        evaluator: &Evaluator<'a>,
        env: &Bindings,
    ) -> Result<Probability> {
        let mut rt = self
            .runtimes
            .lock()
            .pop()
            .unwrap_or_else(|| Runtime::new(self.nodes.len()));
        let result = self.evaluate_with(evaluator, env, &mut rt);
        self.runtimes.lock().push(rt);
        result
    }

    fn evaluate_with(
        &self,
        evaluator: &Evaluator<'a>,
        env: &Bindings,
        rt: &mut Runtime,
    ) -> Result<Probability> {
        if let Some(cycle) = &self.cycle {
            // Plain (non-fixed-point) evaluation of a cyclic program: same
            // error the recursive path raises under `CycleMode::Error`.
            return Err(CoreError::RecursiveAssembly {
                cycle: cycle.clone(),
            });
        }
        let cone = self.cone.read().clone();
        let cone = cone.as_deref().map(Vec::as_slice);
        let memo_on = evaluator.options().program_memo;
        self.seed_root_inputs(env, rt)?;
        self.eval_node(evaluator, rt, cone, memo_on, self.root, 0, None)
    }

    /// Resets the runtime's register stack and loads the target's bound
    /// formals, surfacing the first *used* unbound formal exactly like the
    /// recursive path.
    fn seed_root_inputs(&self, env: &Bindings, rt: &mut Runtime) -> Result<()> {
        rt.inputs.clear();
        rt.failures.clear();
        rt.inputs
            .resize(self.nodes[self.root].formals.len(), f64::NAN);
        for ri in &self.root_inputs {
            match env.get(&ri.name) {
                Some(v) => rt.inputs[ri.slot] = v,
                None => {
                    return Err(CoreError::Expr(archrel_expr::ExprError::UnboundParameter {
                        name: ri.name.clone(),
                    }))
                }
            }
        }
        Ok(())
    }

    /// Evaluates `Pfail(target, env)` for a cyclic program by global
    /// fixed-point iteration — bitwise identical to the recursive
    /// [`crate::CycleMode::FixedPoint`] sweeps under either
    /// [`crate::FixedPointMode`].
    pub(crate) fn evaluate_fixed_point(
        &self,
        evaluator: &Evaluator<'a>,
        env: &Bindings,
        max_iterations: usize,
        tolerance: f64,
    ) -> Result<Probability> {
        let mut rt = self
            .runtimes
            .lock()
            .pop()
            .unwrap_or_else(|| Runtime::new(self.nodes.len()));
        let result = self.fixed_point_with(evaluator, env, max_iterations, tolerance, &mut rt);
        self.runtimes.lock().push(rt);
        result
    }

    fn fixed_point_with(
        &self,
        evaluator: &Evaluator<'a>,
        env: &Bindings,
        max_iterations: usize,
        tolerance: f64,
        rt: &mut Runtime,
    ) -> Result<Probability> {
        let cone = self.cone.read().clone();
        let cone = cone.as_deref().map(Vec::as_slice);
        let memo_on = evaluator.options().program_memo;
        let mut solver: FixedPointSolver<LoopKey> =
            FixedPointSolver::new(evaluator.options().fixed_point, max_iterations, tolerance);
        for _ in 0..max_iterations {
            self.seed_root_inputs(env, rt)?;
            let (top, cycle_keys, sweep_memo) = {
                let mut sweep = FpSweep {
                    estimates: solver.estimates(),
                    memo: HashMap::new(),
                    stack: Vec::new(),
                    cycle_keys: HashSet::new(),
                };
                let top =
                    self.eval_node(evaluator, rt, cone, memo_on, self.root, 0, Some(&mut sweep))?;
                (top, sweep.cycle_keys, sweep.memo)
            };
            if cycle_keys.is_empty() {
                // No loop-cone node actually recursed at these parameters:
                // the first sweep is already exact.
                solver.note_exact_sweep();
                evaluator.note_fixed_point(&solver);
                return Ok(top);
            }
            let converged = solver.record_sweep(
                top.value(),
                cycle_keys.iter().filter_map(|k| {
                    sweep_memo.get(k).map(|p| {
                        self.scc_iters[self.scc_of[k.0]].fetch_add(1, Ordering::Relaxed);
                        (k.clone(), p.value())
                    })
                }),
            );
            if converged {
                evaluator.note_fixed_point(&solver);
                return Ok(top);
            }
        }
        evaluator.note_fixed_point(&solver);
        Err(solver.diverged())
    }

    /// Evaluates one node whose registers sit at `inputs[base..]`,
    /// answering from the memo table (in-cone) or the pin (out-of-cone)
    /// when possible. Inside a fixed-point sweep (`fp`), loop-cone nodes
    /// detour through [`AssemblyProgram::eval_loop_node`]; everything
    /// outside the loop cone is estimate-independent and keeps the
    /// persistent caches.
    #[allow(clippy::too_many_arguments)]
    fn eval_node(
        &self,
        evaluator: &Evaluator<'a>,
        rt: &mut Runtime,
        cone: Option<&[bool]>,
        memo_on: bool,
        node: usize,
        base: usize,
        fp: Option<&mut FpSweep<'_>>,
    ) -> Result<Probability> {
        if let Some(sweep) = fp {
            if self.loop_cone[node] {
                return self.eval_loop_node(evaluator, rt, cone, memo_on, node, base, sweep);
            }
        }
        let arity = self.nodes[node].formals.len();
        if !memo_on {
            return self.compute_node(evaluator, rt, cone, memo_on, node, base, None);
        }
        if cone.is_some_and(|c| !c[node]) {
            if let Some((key, value)) = &rt.nodes[node].pin {
                let matches = key.len() == arity
                    && key
                        .iter()
                        .zip(&rt.inputs[base..base + arity])
                        .all(|(k, v)| *k == v.to_bits());
                if matches {
                    self.pin_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(*value);
                }
            }
            let p = self.compute_node(evaluator, rt, cone, memo_on, node, base, None)?;
            let key: Box<[u64]> = rt.inputs[base..base + arity]
                .iter()
                .map(|v| v.to_bits())
                .collect();
            rt.nodes[node].pin = Some((key, p));
            return Ok(p);
        }
        rt.key.clear();
        rt.key
            .extend(rt.inputs[base..base + arity].iter().map(|v| v.to_bits()));
        if let Some(p) = self.memo[node].read().get(rt.key.as_slice()) {
            self.memo_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(*p);
        }
        self.memo_misses.fetch_add(1, Ordering::Relaxed);
        let p = self.compute_node(evaluator, rt, cone, memo_on, node, base, None)?;
        // `rt.key` may have been clobbered by recursion; the node's own
        // registers are still intact (children only grow/shrink `inputs`
        // beyond this window).
        let key: Box<[u64]> = rt.inputs[base..base + arity]
            .iter()
            .map(|v| v.to_bits())
            .collect();
        self.memo[node].write().insert(key, p);
        Ok(p)
    }

    /// Evaluates one loop-cone node inside a fixed-point sweep: sweep-local
    /// memo, estimate-based cycle breaking on a `(node, inputs)` re-entry
    /// or at the recursion depth cap — never the persistent memo or pin,
    /// whose entries would leak pre-convergence estimates across sweeps.
    #[allow(clippy::too_many_arguments)]
    fn eval_loop_node(
        &self,
        evaluator: &Evaluator<'a>,
        rt: &mut Runtime,
        cone: Option<&[bool]>,
        memo_on: bool,
        node: usize,
        base: usize,
        sweep: &mut FpSweep<'_>,
    ) -> Result<Probability> {
        let arity = self.nodes[node].formals.len();
        let key: LoopKey = (
            node,
            rt.inputs[base..base + arity]
                .iter()
                .map(|v| v.to_bits())
                .collect(),
        );
        if let Some(p) = sweep.memo.get(&key) {
            return Ok(*p);
        }
        if sweep.stack.contains(&key) || sweep.stack.len() >= MAX_DEPTH {
            let estimate = sweep.estimates.get(&key).copied().unwrap_or(0.0);
            sweep.cycle_keys.insert(key);
            return Ok(Probability::new(estimate)?);
        }
        sweep.stack.push(key.clone());
        let result = self.compute_node(evaluator, rt, cone, memo_on, node, base, Some(sweep));
        sweep.stack.pop();
        let p = result?;
        sweep.memo.insert(key, p);
        Ok(p)
    }

    #[allow(clippy::too_many_arguments)]
    fn compute_node(
        &self,
        evaluator: &Evaluator<'a>,
        rt: &mut Runtime,
        cone: Option<&[bool]>,
        memo_on: bool,
        node: usize,
        base: usize,
        fp: Option<&mut FpSweep<'_>>,
    ) -> Result<Probability> {
        match &self.nodes[node].kind {
            NodeKind::Simple(simple) => Ok(simple.failure_probability(rt.inputs[base])?),
            NodeKind::Composite(_) => {
                // Detach the node's scratch so recursion can borrow `rt`
                // freely. A *cyclic* program can re-enter a node that is
                // already detached (with different inputs, below the cycle
                // break); the inner frame then sees a default scratch — a
                // wasted chain rebuild, but sound, and the outer restore
                // wins.
                let mut scratch = std::mem::take(&mut rt.nodes[node]);
                let result = self.compute_composite(
                    evaluator,
                    rt,
                    cone,
                    memo_on,
                    node,
                    base,
                    &mut scratch,
                    fp,
                );
                rt.nodes[node] = scratch;
                result
            }
        }
    }

    /// The compiled replay of `eval_service` + `augmented_chain` for one
    /// composite node. Every arithmetic accumulation happens in exactly the
    /// order of the recursive path, so results are bitwise identical.
    #[allow(clippy::too_many_arguments)]
    fn compute_composite(
        &self,
        evaluator: &Evaluator<'a>,
        rt: &mut Runtime,
        cone: Option<&[bool]>,
        memo_on: bool,
        node: usize,
        base: usize,
        scratch: &mut NodeScratch,
        mut fp: Option<&mut FpSweep<'_>>,
    ) -> Result<Probability> {
        let arity = self.nodes[node].formals.len();
        let NodeKind::Composite(comp) = &self.nodes[node].kind else {
            unreachable!("compute_composite called on a simple node");
        };

        // Phase 1 — resolve states: actuals in declaration order, then the
        // callee, then the connector, then the internal model (the exact
        // order of `resolve_request`).
        scratch.state_failures.clear();
        for state in &comp.states {
            let fbase = rt.failures.len();
            for call in &state.calls {
                let mut first_demand = 0.0;
                rt.child.clear();
                rt.child.resize(call.target_arity, f64::NAN);
                for (i, ap) in call.actuals.iter().enumerate() {
                    let v = ap
                        .expr
                        .eval(&rt.inputs[base..base + arity], &mut rt.stack)?;
                    if i == 0 {
                        first_demand = v;
                    }
                    if let Some(dest) = ap.dest {
                        rt.child[dest] = v;
                    }
                }
                let cbase = rt.inputs.len();
                rt.inputs.extend_from_slice(&rt.child);
                let r = self.eval_node(
                    evaluator,
                    rt,
                    cone,
                    memo_on,
                    call.target,
                    cbase,
                    fp.as_deref_mut(),
                );
                rt.inputs.truncate(cbase);
                let target_fail = r?;

                let connector_fail = match &call.connector {
                    None => Probability::ZERO,
                    Some(conn) => {
                        rt.child.clear();
                        rt.child.resize(conn.target_arity, f64::NAN);
                        for ap in &conn.actuals {
                            let v = ap
                                .expr
                                .eval(&rt.inputs[base..base + arity], &mut rt.stack)?;
                            if let Some(dest) = ap.dest {
                                rt.child[dest] = v;
                            }
                        }
                        let cbase = rt.inputs.len();
                        rt.inputs.extend_from_slice(&rt.child);
                        let r = self.eval_node(
                            evaluator,
                            rt,
                            cone,
                            memo_on,
                            conn.target,
                            cbase,
                            fp.as_deref_mut(),
                        );
                        rt.inputs.truncate(cbase);
                        r?
                    }
                };

                let internal = call.internal.failure_probability(first_demand)?;
                rt.failures.push(RequestFailure::new(
                    internal,
                    RequestFailure::external_of(target_fail, connector_fail),
                ));
            }
            let failure = state_failure_probability(
                state.completion,
                state.dependency,
                &rt.failures[fbase..],
            );
            rt.failures.truncate(fbase);
            scratch.state_failures.push(failure?);
        }

        // Phase 2 — transition probabilities, validated per edge then per
        // row exactly like `augmented_chain` (same literals, same order).
        scratch.trans_vals.clear();
        for t in &comp.trans {
            let p = t.expr.eval(&rt.inputs[base..base + arity], &mut rt.stack)?;
            if !(0.0..=1.0 + 1e-9).contains(&p) {
                return Err(CoreError::BadTransitions {
                    service: self.nodes[node].id.to_string(),
                    state: t.from.to_string(),
                    sum: p,
                });
            }
            scratch.trans_vals.push(p);
        }
        for row in &comp.rows {
            let mut sum = 0.0;
            for &ti in &row.trans {
                sum += scratch.trans_vals[ti];
            }
            if (sum - 1.0).abs() > 1e-9 {
                return Err(CoreError::BadTransitions {
                    service: self.nodes[node].id.to_string(),
                    state: row.state.to_string(),
                    sum,
                });
            }
        }

        // Phase 3 — merge parallel edges and scale by `1 − p(from, Fail)`.
        scratch.merged_vals.clear();
        for m in &comp.merged {
            let mut p = 0.0;
            for &ti in &m.trans {
                p += scratch.trans_vals[ti];
            }
            let failure = match m.from_state {
                None => Probability::ZERO,
                Some(si) => scratch.state_failures[si],
            };
            scratch.merged_vals.push(p * failure.complement().value());
        }
        scratch.fail_vals.clear();
        for &si in &comp.sorted_states {
            scratch.fail_vals.push(scratch.state_failures[si].value());
        }

        // Phase 4 — refresh the cached chain skeleton in place; fall back
        // to a full rebuild (which reproduces the builder's validation
        // errors verbatim) on any pattern or validation mismatch.
        let refreshed = match &mut scratch.chain {
            Some(cache) => refresh_chain(cache, &scratch.merged_vals, &scratch.fail_vals),
            None => false,
        };
        if !refreshed {
            scratch.chain = Some(self.build_chain_cache(
                evaluator,
                comp,
                &scratch.merged_vals,
                &scratch.fail_vals,
            )?);
        }
        let cache = scratch.chain.as_mut().expect("chain cache just ensured");

        // Phase 5 — solve through the same machinery as the recursive path.
        let start = AugmentedState::Flow(StateId::Start);
        let end = AugmentedState::Flow(StateId::End);
        let solve_started = Instant::now();
        let solved = solve_cached_chain(evaluator, cache, &start, &end, rt);
        let success = match solved {
            Ok(p) => p,
            // Mirrors `eval_service`: a structurally unreachable End is a
            // certain failure, not a solve error.
            Err(archrel_markov::MarkovError::UnreachableTarget { .. }) => 0.0,
            Err(e) => return Err(e.into()),
        };
        evaluator.note_chain_solve(solve_started.elapsed());
        Ok(Probability::new(success)?.complement())
    }

    /// Builds a fresh chain + slot map for the current numeric values,
    /// replaying `augmented_chain`'s builder sequence exactly.
    fn build_chain_cache(
        &self,
        evaluator: &Evaluator<'a>,
        comp: &CompositeNode<'a>,
        merged_vals: &[f64],
        fail_vals: &[f64],
    ) -> Result<ChainCache> {
        let mut builder = DtmcBuilder::new()
            .state(AugmentedState::Flow(StateId::End))
            .state(AugmentedState::Fail);
        for (m, &p) in comp.merged.iter().zip(merged_vals) {
            builder = builder.transition(
                AugmentedState::Flow(m.from.clone()),
                AugmentedState::Flow(m.to.clone()),
                p,
            );
        }
        for (&si, &f) in comp.sorted_states.iter().zip(fail_vals) {
            if f == 0.0 {
                continue;
            }
            builder = builder.transition(
                AugmentedState::Flow(comp.states[si].id.clone()),
                AugmentedState::Fail,
                f,
            );
        }
        let chain = builder.build()?;
        let edge_slots = comp
            .merged
            .iter()
            .zip(merged_vals)
            .map(|(m, &p)| {
                if p > 0.0 {
                    chain.edge_position(
                        &AugmentedState::Flow(m.from.clone()),
                        &AugmentedState::Flow(m.to.clone()),
                    )
                } else {
                    None
                }
            })
            .collect();
        let fail_slots = comp
            .sorted_states
            .iter()
            .zip(fail_vals)
            .map(|(&si, &f)| {
                if f > 0.0 {
                    chain.edge_position(
                        &AugmentedState::Flow(comp.states[si].id.clone()),
                        &AugmentedState::Fail,
                    )
                } else {
                    None
                }
            })
            .collect();
        let try_plan = evaluator.plan_gate(chain.len(), chain.edge_count());
        Ok(ChainCache {
            chain,
            edge_slots,
            fail_slots,
            try_plan,
            plan: None,
        })
    }
}

/// Refreshes a cached chain's numeric entries in place. Returns `false`
/// (forcing a rebuild) when the positivity pattern changed, a value is
/// invalid, or a row stopped summing to one — the rebuild then reproduces
/// the exact builder behavior, including its errors.
fn refresh_chain(cache: &mut ChainCache, merged_vals: &[f64], fail_vals: &[f64]) -> bool {
    for (slot, &p) in cache.edge_slots.iter().zip(merged_vals) {
        match *slot {
            Some((row, pos)) => {
                if cache.chain.set_edge_probability(row, pos, p).is_err() {
                    return false;
                }
            }
            // A previously-dropped edge must still be exactly zero; any
            // other value changes structure or must surface the builder's
            // validation error.
            None => {
                if p != 0.0 {
                    return false;
                }
            }
        }
    }
    for (slot, &f) in cache.fail_slots.iter().zip(fail_vals) {
        match *slot {
            Some((row, pos)) => {
                if cache.chain.set_edge_probability(row, pos, f).is_err() {
                    return false;
                }
            }
            None => {
                if f != 0.0 {
                    return false;
                }
            }
        }
    }
    cache.chain.validate_stochastic().is_ok()
}

/// Solves `p*(Start → End)` for a cached chain: pinned plan when present,
/// plan lookup (shared [`crate::PlanCache`] discipline, including `Auto`
/// promotion counting) while the gate is open, direct solver otherwise.
fn solve_cached_chain(
    evaluator: &Evaluator<'_>,
    cache: &mut ChainCache,
    start: &AugmentedState,
    end: &AugmentedState,
    rt: &mut Runtime,
) -> archrel_markov::Result<f64> {
    if cache.plan.is_none() && cache.try_plan {
        cache.plan = evaluator.plan_for_chain(&cache.chain, start, end)?;
    }
    match &cache.plan {
        Some(plan) => {
            plan.parameters_into(&cache.chain, &mut rt.params)?;
            let (value, kind) = plan.evaluate_scratch(&rt.params, &mut rt.plan_scratch)?;
            evaluator.record_plan_solve(kind);
            Ok(value)
        }
        None => evaluator.direct_solve(&cache.chain, start, end),
    }
}

/// Calls `f` with the node index of every call target of `node` (service
/// calls and connector calls alike), in flow order.
fn call_targets(node: &Node<'_>, mut f: impl FnMut(usize)) {
    if let NodeKind::Composite(comp) = &node.kind {
        for state in &comp.states {
            for call in &state.calls {
                f(call.target);
                if let Some(conn) = &call.connector {
                    f(conn.target);
                }
            }
        }
    }
}

/// Iterative Tarjan over the call graph. Returns
/// `(scc_of, scc_count, in_cycle)`: SCC ids ascend callees-first (every
/// SCC's id is lower than the ids of the SCCs calling into it), and
/// `in_cycle[v]` marks members of nontrivial SCCs and self-loops.
fn condense(nodes: &[Node<'_>]) -> (Vec<usize>, usize, Vec<bool>) {
    let n = nodes.len();
    let adj: Vec<Vec<usize>> = nodes
        .iter()
        .map(|node| {
            let mut targets = Vec::new();
            call_targets(node, |t| targets.push(t));
            targets
        })
        .collect();
    let mut index_of = vec![usize::MAX; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut self_loop = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut scc_of = vec![usize::MAX; n];
    let mut scc_count = 0usize;
    let mut next_index = 0usize;
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if index_of[start] != usize::MAX {
            continue;
        }
        index_of[start] = next_index;
        lowlink[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;
        frames.push((start, 0));
        while let Some(&mut (v, ref mut ei)) = frames.last_mut() {
            if let Some(&w) = adj[v].get(*ei) {
                *ei += 1;
                if w == v {
                    self_loop[v] = true;
                }
                if index_of[w] == usize::MAX {
                    index_of[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index_of[w]);
                }
            } else {
                frames.pop();
                if lowlink[v] == index_of[v] {
                    loop {
                        let w = stack.pop().expect("tarjan member stack");
                        on_stack[w] = false;
                        scc_of[w] = scc_count;
                        if w == v {
                            break;
                        }
                    }
                    scc_count += 1;
                }
                if let Some(&mut (p, _)) = frames.last_mut() {
                    lowlink[p] = lowlink[p].min(lowlink[v]);
                }
            }
        }
    }
    let mut scc_size = vec![0usize; scc_count];
    for &s in &scc_of {
        scc_size[s] += 1;
    }
    let in_cycle = (0..n)
        .map(|v| scc_size[scc_of[v]] > 1 || self_loop[v])
        .collect();
    (scc_of, scc_count, in_cycle)
}

/// Depth-first program builder. Node slots are allocated in DFS pre-order
/// at first sight (with a `formals` side table filled eagerly so back
/// edges can resolve arity and destinations before the callee's body is
/// lowered); a back edge onto a node still being lowered records the first
/// dependency cycle instead of erroring, so cyclic graphs compile.
struct ProgramBuilder<'a> {
    assembly: &'a Assembly,
    index: HashMap<ServiceId, usize>,
    nodes: Vec<Option<Node<'a>>>,
    formals: Vec<Vec<String>>,
    visiting: Vec<ServiceId>,
    first_cycle: Option<Vec<String>>,
}

impl<'a> ProgramBuilder<'a> {
    fn build_node(&mut self, service: &ServiceId) -> Result<usize> {
        if let Some(&i) = self.index.get(service) {
            if self.nodes[i].is_none() && self.first_cycle.is_none() {
                // Back edge onto a node still being lowered: record the
                // cycle in the recursive evaluator's error shape (path from
                // the first occurrence, closed by the repeated service).
                let start = self.visiting.iter().position(|s| s == service).unwrap_or(0);
                let mut cycle: Vec<String> = self.visiting[start..]
                    .iter()
                    .map(|s| s.to_string())
                    .collect();
                cycle.push(service.to_string());
                self.first_cycle = Some(cycle);
            }
            return Ok(i);
        }
        let idx = self.nodes.len();
        self.nodes.push(None);
        self.formals.push(match self.assembly.require(service)? {
            Service::Simple(simple) => vec![simple.formal_param().to_string()],
            Service::Composite(composite) => composite.formal_params().to_vec(),
        });
        self.index.insert(service.clone(), idx);
        self.visiting.push(service.clone());
        let node = self.lower_service(service, idx);
        self.visiting.pop();
        self.nodes[idx] = Some(node?);
        Ok(idx)
    }

    fn lower_service(&mut self, service: &ServiceId, idx: usize) -> Result<Node<'a>> {
        match self.assembly.require(service)? {
            Service::Simple(simple) => Ok(Node {
                id: service.clone(),
                formals: self.formals[idx].clone(),
                kind: NodeKind::Simple(simple),
            }),
            Service::Composite(composite) => {
                let formals = self.formals[idx].clone();
                let flow = composite.flow();
                let mut states = Vec::with_capacity(flow.states().len());
                for state in flow.states() {
                    let mut calls = Vec::with_capacity(state.calls.len());
                    for call in &state.calls {
                        let target = self.build_node(&call.target)?;
                        let actuals = self.lower_actuals(&call.actual_params, &formals, target)?;
                        let connector = match &call.connector {
                            None => None,
                            Some(binding) => {
                                let conn_target = self.build_node(&binding.connector)?;
                                Some(ConnectorCall {
                                    target: conn_target,
                                    target_arity: self.formals[conn_target].len(),
                                    actuals: self.lower_actuals(
                                        &binding.actual_params,
                                        &formals,
                                        conn_target,
                                    )?,
                                })
                            }
                        };
                        calls.push(CallNode {
                            target,
                            target_arity: self.formals[target].len(),
                            actuals,
                            connector,
                            internal: &call.internal_failure,
                        });
                    }
                    states.push(StateNode {
                        id: state.id.clone(),
                        completion: state.completion,
                        dependency: state.dependency,
                        calls,
                    });
                }

                let mut trans = Vec::with_capacity(flow.transitions().len());
                let mut rows: BTreeMap<StateId, Vec<usize>> = BTreeMap::new();
                let mut merged_map: BTreeMap<(StateId, StateId), Vec<usize>> = BTreeMap::new();
                for (i, t) in flow.transitions().iter().enumerate() {
                    trans.push(TransNode {
                        from: t.from.clone(),
                        expr: SlottedExpr::compile(&t.probability, &formals)?,
                    });
                    rows.entry(t.from.clone()).or_default().push(i);
                    merged_map
                        .entry((t.from.clone(), t.to.clone()))
                        .or_default()
                        .push(i);
                }
                let rows = rows
                    .into_iter()
                    .map(|(state, trans)| RowGroup { state, trans })
                    .collect();
                let merged = merged_map
                    .into_iter()
                    .map(|((from, to), trans)| {
                        let from_state = match &from {
                            StateId::Start => None,
                            named => states.iter().position(|s: &StateNode<'a>| s.id == *named),
                        };
                        MergedEdge {
                            from,
                            to,
                            trans,
                            from_state,
                        }
                    })
                    .collect();

                let mut sorted_states: Vec<usize> = (0..states.len()).collect();
                sorted_states.sort_by(|&a, &b| states[a].id.cmp(&states[b].id));

                Ok(Node {
                    id: service.clone(),
                    formals,
                    kind: NodeKind::Composite(CompositeNode {
                        states,
                        sorted_states,
                        trans,
                        rows,
                        merged,
                    }),
                })
            }
        }
    }

    fn lower_actuals(
        &self,
        actual_params: &'a [(String, archrel_expr::Expr)],
        formals: &[String],
        target: usize,
    ) -> Result<Vec<ActualParam>> {
        let callee_formals = &self.formals[target];
        actual_params
            .iter()
            .map(|(name, expr)| {
                Ok(ActualParam {
                    expr: SlottedExpr::compile(expr, formals)?,
                    dest: callee_formals.iter().position(|f| f == name),
                })
            })
            .collect()
    }
}

/// Gathers the target's *used* formal parameters in first-use order — the
/// order the recursive evaluator reads (and so would first report missing)
/// each name.
fn collect_root_inputs(root: &Node<'_>) -> Vec<RootInput> {
    let mut inputs: Vec<RootInput> = Vec::new();
    let mut push = |slot: usize, name: &str| {
        if !inputs.iter().any(|ri| ri.slot == slot) {
            inputs.push(RootInput {
                name: name.to_string(),
                slot,
            });
        }
    };
    match &root.kind {
        NodeKind::Simple(_) => push(0, &root.formals[0]),
        NodeKind::Composite(comp) => {
            let mut push_expr = |expr: &SlottedExpr| {
                for &slot in &expr.slots {
                    push(slot, &root.formals[slot]);
                }
            };
            for state in &comp.states {
                for call in &state.calls {
                    for ap in &call.actuals {
                        push_expr(&ap.expr);
                    }
                    if let Some(conn) = &call.connector {
                        for ap in &conn.actuals {
                            push_expr(&ap.expr);
                        }
                    }
                }
            }
            for t in &comp.trans {
                push_expr(&t.expr);
            }
        }
    }
    inputs
}
