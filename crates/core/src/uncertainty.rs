//! Epistemic-uncertainty propagation: how confident is the prediction when
//! the *published* failure rates are themselves uncertain?
//!
//! A SOC marketplace fills the analytic interfaces of §2 with numbers the
//! providers measured — estimates with error bars, not ground truth. This
//! module propagates that uncertainty through the assembly:
//!
//! - each uncertain quantity is an improvement [`Lever`] (a service's failure
//!   law or a composite's internal software rates) with a *factor
//!   distribution* describing the multiplicative error of its published
//!   value;
//! - Monte Carlo over the factors yields the distribution of `Pfail`,
//!   summarized by mean and percentiles;
//! - [`interval`] gives guaranteed bounds instead: because `Pfail` is
//!   monotone in every failure mechanism (a property-tested invariant),
//!   evaluating with all factors at their lower/upper ends brackets the
//!   true value — no sampling error.

use std::sync::Arc;
use std::time::Instant;

use archrel_expr::Bindings;
use archrel_model::{Assembly, Probability, ServiceId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::eval::{BlockedOutcome, FlowBlockAccumulator};
use crate::improvement::{apply_lever, Lever};
use crate::sensitivity::default_workers;
use crate::staged::{StagedSweep, Staging};
use crate::{CoreError, EvalOptions, Evaluator, PlanCache, Result};

/// Distribution of the multiplicative error on a published failure quantity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FactorDistribution {
    /// The published value is exact.
    Point,
    /// Uniform on `[low, high]` (both ≥ 0).
    Uniform {
        /// Smallest factor.
        low: f64,
        /// Largest factor.
        high: f64,
    },
    /// Log-uniform on `[low, high]` — the natural choice for rates known
    /// "within a factor of k": `LogUniform { low: 1.0/k, high: k }`.
    LogUniform {
        /// Smallest factor (must be > 0).
        low: f64,
        /// Largest factor.
        high: f64,
    },
}

impl FactorDistribution {
    fn validate(&self) -> Result<()> {
        let (low, high, positive) = match *self {
            FactorDistribution::Point => return Ok(()),
            FactorDistribution::Uniform { low, high } => (low, high, false),
            FactorDistribution::LogUniform { low, high } => (low, high, true),
        };
        if !low.is_finite()
            || !high.is_finite()
            || low > high
            || low < 0.0
            || (positive && low <= 0.0)
        {
            return Err(CoreError::Model(
                archrel_model::ModelError::InvalidAttribute {
                    name: "factor distribution bounds",
                    value: low,
                },
            ));
        }
        Ok(())
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            FactorDistribution::Point => 1.0,
            FactorDistribution::Uniform { low, high } => low + rng.gen::<f64>() * (high - low),
            FactorDistribution::LogUniform { low, high } => {
                (low.ln() + rng.gen::<f64>() * (high.ln() - low.ln())).exp()
            }
        }
    }

    fn bounds(&self) -> (f64, f64) {
        match *self {
            FactorDistribution::Point => (1.0, 1.0),
            FactorDistribution::Uniform { low, high }
            | FactorDistribution::LogUniform { low, high } => (low, high),
        }
    }
}

/// One uncertain quantity: a lever plus its factor distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct UncertainQuantity {
    /// The mechanism whose published value is uncertain.
    pub lever: Lever,
    /// Distribution of the multiplicative error.
    pub distribution: FactorDistribution,
}

impl UncertainQuantity {
    /// Convenience constructor for a simple service's failure law known
    /// within a factor of `k` (log-uniform).
    ///
    /// # Errors
    ///
    /// Returns a validation error for `k < 1` or non-finite `k`.
    pub fn rate_within_factor(service: impl Into<ServiceId>, k: f64) -> Result<Self> {
        if !k.is_finite() || k < 1.0 {
            return Err(CoreError::Model(
                archrel_model::ModelError::InvalidAttribute {
                    name: "uncertainty factor",
                    value: k,
                },
            ));
        }
        Ok(UncertainQuantity {
            lever: Lever::ServiceFailure(service.into()),
            distribution: FactorDistribution::LogUniform {
                low: 1.0 / k,
                high: k,
            },
        })
    }
}

/// Summary of the propagated `Pfail` distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UncertaintySummary {
    /// Number of Monte Carlo samples.
    pub samples: usize,
    /// Sample mean of `Pfail`.
    pub mean: f64,
    /// 5th percentile.
    pub p05: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
}

fn apply_all(assembly: &Assembly, factors: &[(&Lever, f64)]) -> Result<Assembly> {
    let mut current = assembly.clone();
    for (lever, factor) in factors {
        current = apply_lever(&current, lever, *factor)?;
    }
    Ok(current)
}

/// Monte Carlo propagation: samples factor vectors, evaluates `Pfail` for
/// each, and summarizes the resulting distribution.
///
/// Runs on the batch path: the factor vectors are drawn **sequentially**
/// from the seeded generator — so a fixed seed reproduces the same samples
/// no matter how many threads evaluate them — and the per-sample
/// evaluations are then spread across worker threads. Each sample perturbs
/// the assembly itself, so per-sample results cannot share the value-level
/// solve cache (the cache is keyed by parameters over one fixed assembly,
/// and a perturbed assembly invalidates it wholesale) — but the samples *do*
/// share one compiled-plan cache: the levers scale failure values without
/// changing any flow structure, so under a compiled-plan policy each
/// structure is compiled once and every sample replays the tape.
///
/// # Errors
///
/// - validation errors for malformed distributions or a zero sample count;
/// - evaluation/lever errors from the underlying engine.
pub fn propagate(
    assembly: &Assembly,
    service: &ServiceId,
    env: &Bindings,
    quantities: &[UncertainQuantity],
    samples: usize,
    seed: u64,
) -> Result<UncertaintySummary> {
    propagate_with_workers(
        assembly,
        service,
        env,
        quantities,
        samples,
        seed,
        default_workers(),
    )
}

/// [`propagate`] with an explicit worker-thread count.
///
/// # Errors
///
/// See [`propagate`].
#[allow(clippy::too_many_arguments)]
pub fn propagate_with_workers(
    assembly: &Assembly,
    service: &ServiceId,
    env: &Bindings,
    quantities: &[UncertainQuantity],
    samples: usize,
    seed: u64,
    workers: usize,
) -> Result<UncertaintySummary> {
    propagate_with_options(
        assembly,
        service,
        env,
        quantities,
        samples,
        seed,
        workers,
        EvalOptions::default(),
    )
}

/// [`propagate_with_workers`] with explicit [`EvalOptions`] — in particular
/// the [`crate::SolverPolicy`] used for every per-sample solve.
///
/// # Errors
///
/// See [`propagate`].
#[allow(clippy::too_many_arguments)]
pub fn propagate_with_options(
    assembly: &Assembly,
    service: &ServiceId,
    env: &Bindings,
    quantities: &[UncertainQuantity],
    samples: usize,
    seed: u64,
    workers: usize,
    options: EvalOptions,
) -> Result<UncertaintySummary> {
    propagate_with_plan_cache(
        assembly,
        service,
        env,
        quantities,
        samples,
        seed,
        workers,
        options,
        &Arc::new(PlanCache::new()),
    )
}

/// [`propagate_with_options`] against a caller-supplied [`PlanCache`]: the
/// sweep's compiled plans, blocked-replay tallies, and per-phase
/// nanosecond counters (extract / stage / replay — see
/// [`crate::CacheStats`]) accumulate in `plans`, so callers can share
/// compilation work across sweeps and read the phase split afterwards via
/// [`PlanCache::stats`].
///
/// # Errors
///
/// See [`propagate`].
#[allow(clippy::too_many_arguments)]
pub fn propagate_with_plan_cache(
    assembly: &Assembly,
    service: &ServiceId,
    env: &Bindings,
    quantities: &[UncertainQuantity],
    samples: usize,
    seed: u64,
    workers: usize,
    options: EvalOptions,
    plans: &Arc<PlanCache>,
) -> Result<UncertaintySummary> {
    if samples == 0 {
        return Err(CoreError::Model(
            archrel_model::ModelError::InvalidAttribute {
                name: "samples",
                value: 0.0,
            },
        ));
    }
    for q in quantities {
        q.distribution.validate()?;
    }
    // Draw every factor vector up front, sequentially, from the one seeded
    // generator: reproducibility must not depend on worker scheduling.
    let mut rng = StdRng::seed_from_u64(seed);
    let factor_vectors: Vec<Vec<f64>> = (0..samples)
        .map(|_| {
            quantities
                .iter()
                .map(|q| q.distribution.sample(&mut rng))
                .collect()
        })
        .collect();

    // Under a compiled-plan policy, try to stage the whole sweep: samples
    // then generate directly into plan parameter rows — no per-sample
    // assembly rebuild, no `Bindings`, no chain, no extraction — and only
    // structure-changing samples fall back to the generic path below.
    let staged = match StagedSweep::compile(assembly, service, env, plans, options)? {
        Some(sweep) => {
            let levers = sweep.prepare_levers(assembly, quantities.iter().map(|q| &q.lever))?;
            Some((sweep, levers))
        }
        None => None,
    };
    // Each worker owns one block accumulator: sample evaluators are
    // short-lived (one per perturbed assembly), but the accumulator holds
    // parameter copies and `Arc`s into the shared plan cache, so samples
    // sharing a flow structure batch into lane-sized tape replays even
    // across evaluator lifetimes. Block ≡ scalar bitwise on compiled
    // acyclic structures, so the summary stays worker-count independent.
    let run_stripe = |stripe: Vec<usize>| -> Result<Vec<(usize, f64)>> {
        let mut acc =
            FlowBlockAccumulator::new(Arc::clone(plans), options.plan_lanes, options.simd);
        let mut success = vec![f64::NAN; stripe.len()];
        let mut values: Vec<Option<f64>> = vec![None; stripe.len()];
        let mut deferred: Vec<usize> = Vec::new();
        let mut scratch = staged.as_ref().map(|(sweep, _)| sweep.new_scratch());
        let mut stage_nanos = 0u64;
        for (pos, &i) in stripe.iter().enumerate() {
            if let (Some((sweep, levers)), Some(scratch)) = (&staged, scratch.as_mut()) {
                let stage_started = Instant::now();
                let staging = sweep.stage_factors(levers, &factor_vectors[i], scratch)?;
                stage_nanos +=
                    u64::try_from(stage_started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                if staging == Staging::Row {
                    acc.submit_row(sweep.plan(), &scratch.row, pos, &mut success)?;
                    deferred.push(pos);
                    continue;
                }
            }
            let factors: Vec<(&Lever, f64)> = quantities
                .iter()
                .zip(factor_vectors[i].iter())
                .map(|(q, &f)| (&q.lever, f))
                .collect();
            let perturbed = apply_all(assembly, &factors)?;
            let evaluator = Evaluator::with_plan_cache(&perturbed, options, Arc::clone(plans));
            match evaluator.defer_failure_probability(service, env, pos, &mut acc, &mut success)? {
                BlockedOutcome::Immediate(p) => values[pos] = Some(p.value()),
                BlockedOutcome::Deferred => deferred.push(pos),
            }
        }
        plans.record_stage_nanos(stage_nanos);
        acc.finish(&mut success);
        if let Some((_, err)) = acc.take_errors().into_iter().next() {
            return Err(err);
        }
        for pos in deferred {
            values[pos] = Some(Probability::new(success[pos])?.complement().value());
        }
        Ok(stripe
            .into_iter()
            .zip(
                values
                    .into_iter()
                    .map(|v| v.expect("every sample resolved")),
            )
            .collect())
    };

    let workers = workers.max(1).min(samples);
    let mut values = vec![f64::NAN; samples];
    if workers == 1 {
        for (i, v) in run_stripe((0..samples).collect())? {
            values[i] = v;
        }
    } else {
        let run_stripe = &run_stripe;
        let collected: Vec<Result<Vec<(usize, f64)>>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let stripe: Vec<usize> = (w..samples).step_by(workers).collect();
                    scope.spawn(move |_| run_stripe(stripe))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("uncertainty worker panicked"))
                .collect()
        })
        .expect("uncertainty worker panicked");
        for stripe in collected {
            for (i, v) in stripe? {
                values[i] = v;
            }
        }
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("probabilities are finite"));
    let pct = |q: f64| -> f64 {
        let idx = ((values.len() as f64 - 1.0) * q).round() as usize;
        values[idx]
    };
    Ok(UncertaintySummary {
        samples,
        mean: values.iter().sum::<f64>() / samples as f64,
        p05: pct(0.05),
        p50: pct(0.50),
        p95: pct(0.95),
    })
}

/// Guaranteed interval: evaluates with every factor at its lower bound and
/// at its upper bound. By monotonicity of `Pfail` in every failure
/// mechanism, the true value (for any factor vector inside the bounds) lies
/// in the returned `[low, high]`.
///
/// # Errors
///
/// Validation and evaluation errors as in [`propagate`].
pub fn interval(
    assembly: &Assembly,
    service: &ServiceId,
    env: &Bindings,
    quantities: &[UncertainQuantity],
) -> Result<(Probability, Probability)> {
    interval_with_options(assembly, service, env, quantities, EvalOptions::default())
}

/// [`interval`] with explicit [`EvalOptions`] for the two bracketing solves.
///
/// # Errors
///
/// Validation and evaluation errors as in [`propagate`].
pub fn interval_with_options(
    assembly: &Assembly,
    service: &ServiceId,
    env: &Bindings,
    quantities: &[UncertainQuantity],
    options: EvalOptions,
) -> Result<(Probability, Probability)> {
    for q in quantities {
        q.distribution.validate()?;
    }
    let lows: Vec<f64> = quantities
        .iter()
        .map(|q| q.distribution.bounds().0)
        .collect();
    let highs: Vec<f64> = quantities
        .iter()
        .map(|q| q.distribution.bounds().1)
        .collect();
    // The two bracketing assemblies share every flow structure: one plan
    // cache (and one block accumulator) lets both top-level solves ride a
    // single two-lane tape replay under a compiled-plan policy — staged
    // straight into parameter rows when the sweep compiles.
    let plans = Arc::new(PlanCache::new());
    let staged = match StagedSweep::compile(assembly, service, env, &plans, options)? {
        Some(sweep) => {
            let levers = sweep.prepare_levers(assembly, quantities.iter().map(|q| &q.lever))?;
            Some((sweep, levers))
        }
        None => None,
    };
    let mut scratch = staged.as_ref().map(|(sweep, _)| sweep.new_scratch());
    let mut acc = FlowBlockAccumulator::new(Arc::clone(&plans), options.plan_lanes, options.simd);
    let mut success = [f64::NAN; 2];
    let mut stage_nanos = 0u64;
    let mut bracket = |factors: &[f64], tag: usize| -> Result<Option<Probability>> {
        if let (Some((sweep, levers)), Some(scratch)) = (&staged, scratch.as_mut()) {
            let stage_started = Instant::now();
            let staging = sweep.stage_factors(levers, factors, scratch)?;
            stage_nanos += u64::try_from(stage_started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            if staging == Staging::Row {
                acc.submit_row(sweep.plan(), &scratch.row, tag, &mut success)?;
                return Ok(None);
            }
        }
        let pairs: Vec<(&Lever, f64)> = quantities
            .iter()
            .zip(factors)
            .map(|(q, &f)| (&q.lever, f))
            .collect();
        let perturbed = apply_all(assembly, &pairs)?;
        let evaluator = Evaluator::with_plan_cache(&perturbed, options, Arc::clone(&plans));
        match evaluator.defer_failure_probability(service, env, tag, &mut acc, &mut success)? {
            BlockedOutcome::Immediate(p) => Ok(Some(p)),
            BlockedOutcome::Deferred => Ok(None),
        }
    };
    let low = bracket(&lows, 0)?;
    let high = bracket(&highs, 1)?;
    plans.record_stage_nanos(stage_nanos);
    acc.finish(&mut success);
    if let Some((_, err)) = acc.take_errors().into_iter().next() {
        return Err(err);
    }
    let resolve = |immediate: Option<Probability>, tag: usize| -> Result<Probability> {
        match immediate {
            Some(p) => Ok(p),
            None => Ok(Probability::new(success[tag])?.complement()),
        }
    };
    Ok((resolve(low, 0)?, resolve(high, 1)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use archrel_model::paper;

    fn setup() -> (Assembly, Bindings) {
        let params = paper::PaperParams::default()
            .with_gamma(5e-2)
            .with_phi_sort1(5e-6);
        (
            paper::remote_assembly(&params).unwrap(),
            paper::search_bindings(4.0, 4096.0, 1.0),
        )
    }

    fn quantities() -> Vec<UncertainQuantity> {
        vec![
            UncertainQuantity::rate_within_factor(paper::NET, 3.0).unwrap(),
            UncertainQuantity {
                lever: Lever::InternalFailure(paper::SORT_REMOTE.into()),
                distribution: FactorDistribution::Uniform {
                    low: 0.5,
                    high: 2.0,
                },
            },
        ]
    }

    #[test]
    fn point_distributions_reproduce_baseline() {
        let (assembly, env) = setup();
        let baseline = Evaluator::new(&assembly)
            .failure_probability(&paper::SEARCH.into(), &env)
            .unwrap()
            .value();
        let qs = vec![UncertainQuantity {
            lever: Lever::ServiceFailure(paper::NET.into()),
            distribution: FactorDistribution::Point,
        }];
        let summary = propagate(&assembly, &paper::SEARCH.into(), &env, &qs, 50, 1).unwrap();
        assert!((summary.mean - baseline).abs() < 1e-12);
        assert!((summary.p05 - summary.p95).abs() < 1e-15);
    }

    #[test]
    fn percentiles_are_ordered_and_bracket_the_baseline() {
        let (assembly, env) = setup();
        let baseline = Evaluator::new(&assembly)
            .failure_probability(&paper::SEARCH.into(), &env)
            .unwrap()
            .value();
        let summary = propagate(
            &assembly,
            &paper::SEARCH.into(),
            &env,
            &quantities(),
            400,
            7,
        )
        .unwrap();
        assert!(summary.p05 <= summary.p50 && summary.p50 <= summary.p95);
        assert!(summary.p05 < baseline && baseline < summary.p95);
        assert!(summary.samples == 400);
    }

    #[test]
    fn interval_brackets_every_sample() {
        let (assembly, env) = setup();
        let qs = quantities();
        let (low, high) = interval(&assembly, &paper::SEARCH.into(), &env, &qs).unwrap();
        assert!(low.value() < high.value());
        let summary = propagate(&assembly, &paper::SEARCH.into(), &env, &qs, 200, 3).unwrap();
        assert!(low.value() <= summary.p05 + 1e-15);
        assert!(summary.p95 <= high.value() + 1e-15);
    }

    #[test]
    fn wider_uncertainty_widens_the_interval() {
        let (assembly, env) = setup();
        let narrow = vec![UncertainQuantity::rate_within_factor(paper::NET, 1.5).unwrap()];
        let wide = vec![UncertainQuantity::rate_within_factor(paper::NET, 10.0).unwrap()];
        let (nl, nh) = interval(&assembly, &paper::SEARCH.into(), &env, &narrow).unwrap();
        let (wl, wh) = interval(&assembly, &paper::SEARCH.into(), &env, &wide).unwrap();
        assert!(wl.value() <= nl.value());
        assert!(wh.value() >= nh.value());
        assert!(wh.value() - wl.value() > nh.value() - nl.value());
    }

    #[test]
    fn validation_errors() {
        let (assembly, env) = setup();
        assert!(UncertainQuantity::rate_within_factor("x", 0.5).is_err());
        let bad = vec![UncertainQuantity {
            lever: Lever::ServiceFailure(paper::NET.into()),
            distribution: FactorDistribution::Uniform {
                low: 2.0,
                high: 1.0,
            },
        }];
        assert!(interval(&assembly, &paper::SEARCH.into(), &env, &bad).is_err());
        assert!(propagate(&assembly, &paper::SEARCH.into(), &env, &[], 0, 1).is_err());
        let bad = vec![UncertainQuantity {
            lever: Lever::ServiceFailure(paper::NET.into()),
            distribution: FactorDistribution::LogUniform {
                low: 0.0,
                high: 1.0,
            },
        }];
        assert!(propagate(&assembly, &paper::SEARCH.into(), &env, &bad, 10, 1).is_err());
    }

    #[test]
    fn worker_count_does_not_change_the_summary() {
        let (assembly, env) = setup();
        let reference = propagate_with_workers(
            &assembly,
            &paper::SEARCH.into(),
            &env,
            &quantities(),
            100,
            42,
            1,
        )
        .unwrap();
        for workers in [2, 8] {
            let got = propagate_with_workers(
                &assembly,
                &paper::SEARCH.into(),
                &env,
                &quantities(),
                100,
                42,
                workers,
            )
            .unwrap();
            assert_eq!(reference, got, "{workers} workers");
        }
    }

    #[test]
    fn solver_policy_threads_through_propagation() {
        use crate::SolverPolicy;
        let (assembly, env) = setup();
        let options = |solver| EvalOptions {
            solver,
            ..EvalOptions::default()
        };
        let dense = propagate_with_options(
            &assembly,
            &paper::SEARCH.into(),
            &env,
            &quantities(),
            60,
            11,
            2,
            options(SolverPolicy::Dense),
        )
        .unwrap();
        let sparse = propagate_with_options(
            &assembly,
            &paper::SEARCH.into(),
            &env,
            &quantities(),
            60,
            11,
            2,
            options(SolverPolicy::Sparse),
        )
        .unwrap();
        assert!((dense.mean - sparse.mean).abs() < 1e-10);
        assert!((dense.p95 - sparse.p95).abs() < 1e-10);
        let (dl, dh) = interval_with_options(
            &assembly,
            &paper::SEARCH.into(),
            &env,
            &quantities(),
            options(SolverPolicy::Dense),
        )
        .unwrap();
        let (sl, sh) = interval_with_options(
            &assembly,
            &paper::SEARCH.into(),
            &env,
            &quantities(),
            options(SolverPolicy::Sparse),
        )
        .unwrap();
        assert!((dl.value() - sl.value()).abs() < 1e-10);
        assert!((dh.value() - sh.value()).abs() < 1e-10);
    }

    /// An assembly whose target composite calls only simple services —
    /// the shape the staged sweep compiler accepts.
    fn stageable_assembly() -> (Assembly, Bindings) {
        use archrel_expr::Expr;
        use archrel_model::{
            AssemblyBuilder, CompositeService, FailureModel, FlowBuilder, FlowState,
            InternalFailureModel, Service, ServiceCall, SimpleService, StateId,
        };
        let call_a = ServiceCall {
            target: "cpu".into(),
            actual_params: vec![("ops".to_string(), Expr::param("n"))],
            connector: None,
            internal_failure: InternalFailureModel::PerOperation { phi: 1e-4 },
        };
        let call_b = ServiceCall {
            target: "disk".into(),
            actual_params: vec![("ops".to_string(), Expr::num(3.0))],
            connector: None,
            internal_failure: InternalFailureModel::None,
        };
        // Acyclic on purpose: the bitwise block ≡ scalar replay contract —
        // which this test leans on for its reference values — covers the
        // straight-line tape, not rank-1 incremental re-solves.
        let flow = FlowBuilder::new()
            .state(FlowState::new("a", vec![call_a]))
            .state(FlowState::new("b", vec![call_b]))
            .transition(StateId::Start, "a", Expr::num(0.6))
            .transition(StateId::Start, "b", Expr::num(0.4))
            .transition("a", "b", Expr::one())
            .transition("b", StateId::End, Expr::one())
            .build()
            .unwrap();
        let assembly = AssemblyBuilder::new()
            .service(Service::Simple(SimpleService::new(
                "cpu",
                "ops",
                FailureModel::ExponentialRate {
                    rate: 0.02,
                    capacity: 1.0,
                },
            )))
            .service(Service::Simple(SimpleService::new(
                "disk",
                "ops",
                FailureModel::PerUnit { probability: 1e-3 },
            )))
            .service(Service::Composite(
                CompositeService::new("app", vec!["n".to_string()], flow).unwrap(),
            ))
            .build()
            .unwrap();
        (assembly, Bindings::new().with("n", 6.0))
    }

    /// Staged factor sweeps must be **bitwise** identical to the generic
    /// per-sample scalar rebuild under the same compiled-plan policy: same
    /// sampled factors, same values, same summary.
    #[test]
    fn staged_propagation_matches_generic_scalar_loop_bitwise() {
        use crate::SolverPolicy;
        let (assembly, env) = stageable_assembly();
        let qs = vec![
            UncertainQuantity {
                lever: Lever::ServiceFailure("cpu".into()),
                distribution: FactorDistribution::LogUniform {
                    low: 0.5,
                    high: 2.0,
                },
            },
            UncertainQuantity {
                lever: Lever::InternalFailure("app".into()),
                distribution: FactorDistribution::Uniform {
                    low: 0.8,
                    high: 1.2,
                },
            },
        ];
        let options = EvalOptions {
            solver: SolverPolicy::Compiled,
            ..EvalOptions::default()
        };
        let (samples, seed) = (64, 9);
        let summary = propagate_with_options(
            &assembly,
            &"app".into(),
            &env,
            &qs,
            samples,
            seed,
            3,
            options,
        )
        .unwrap();
        // Reference: identical factor draws, evaluated one by one on the
        // generic path (rebuild assembly, fresh evaluator, scalar solve).
        let mut rng = StdRng::seed_from_u64(seed);
        let mut values: Vec<f64> = (0..samples)
            .map(|_| {
                let factors: Vec<(&Lever, f64)> = qs
                    .iter()
                    .map(|q| (&q.lever, q.distribution.sample(&mut rng)))
                    .collect();
                let perturbed = apply_all(&assembly, &factors).unwrap();
                let plans = Arc::new(PlanCache::new());
                Evaluator::with_plan_cache(&perturbed, options, plans)
                    .failure_probability(&"app".into(), &env)
                    .unwrap()
                    .value()
            })
            .collect();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let pct = |q: f64| values[((values.len() as f64 - 1.0) * q).round() as usize];
        assert_eq!(
            summary.mean.to_bits(),
            (values.iter().sum::<f64>() / samples as f64).to_bits()
        );
        assert_eq!(summary.p05.to_bits(), pct(0.05).to_bits());
        assert_eq!(summary.p50.to_bits(), pct(0.50).to_bits());
        assert_eq!(summary.p95.to_bits(), pct(0.95).to_bits());
        // The interval must agree with the generic bracketing too.
        let (low, high) =
            interval_with_options(&assembly, &"app".into(), &env, &qs, options).unwrap();
        let bracket = |pick: fn(&FactorDistribution) -> f64| -> f64 {
            let factors: Vec<(&Lever, f64)> = qs
                .iter()
                .map(|q| (&q.lever, pick(&q.distribution)))
                .collect();
            let perturbed = apply_all(&assembly, &factors).unwrap();
            Evaluator::with_plan_cache(&perturbed, options, Arc::new(PlanCache::new()))
                .failure_probability(&"app".into(), &env)
                .unwrap()
                .value()
        };
        assert_eq!(low.value().to_bits(), bracket(|d| d.bounds().0).to_bits());
        assert_eq!(high.value().to_bits(), bracket(|d| d.bounds().1).to_bits());
    }

    #[test]
    fn reproducible_for_fixed_seed() {
        let (assembly, env) = setup();
        let a = propagate(
            &assembly,
            &paper::SEARCH.into(),
            &env,
            &quantities(),
            100,
            42,
        )
        .unwrap();
        let b = propagate(
            &assembly,
            &paper::SEARCH.into(),
            &env,
            &quantities(),
            100,
            42,
        )
        .unwrap();
        assert_eq!(a, b);
    }
}
