//! The reliability-prediction engine of Grassi's *Architecture-Based
//! Reliability Prediction for Service-Oriented Computing* (paper §3).
//!
//! Given an [`archrel_model::Assembly`] and concrete values for the formal
//! parameters of a target service, the engine computes the probability that
//! the service fails to complete its task, `Pfail(S, fp)`, by the paper's
//! recursive procedure `Pfail_Alg` (§3.3):
//!
//! 1. recursively obtain the failure probability of every requested service
//!    (bottoming out at simple services, eqs. 1–2);
//! 2. combine the per-request internal and external failure probabilities of
//!    each flow state under its completion model (AND eq. 4/6, OR eq. 5/7,
//!    k-out-of-n) and dependency model (independent eqs. 6–8, shared
//!    eqs. 9–13);
//! 3. graft the failure structure onto the flow (a `Fail` absorbing state;
//!    transitions reweighted by `1 − p(i, Fail)`, Fig. 5);
//! 4. solve the absorbing DTMC: `Pfail(S, fp) = 1 − p*(Start → End)` (eq. 3).
//!
//! Entry point: [`Evaluator`]. Beyond the paper's algorithm the crate
//! provides:
//!
//! - [`batch`]: multi-threaded batch evaluation of query sweeps over one
//!   assembly, sharing a content-addressed solve cache across workers;
//! - [`symbolic`]: closed-form symbolic evaluation (the paper's §4 style,
//!   eqs. 15–22) for acyclic flows;
//! - fixed-point evaluation of **recursive assemblies** ([`CycleMode`]),
//!   the extension §3.3 leaves open;
//! - [`propagation`]: an error-propagation extension releasing the fail-stop
//!   assumption (§6 future work);
//! - [`sensitivity`]: parameter sensitivities and elasticities;
//! - [`selection`]: reliability-driven service selection (§1 motivation);
//! - [`paper_closed`]: the paper's closed forms (eqs. 15–22) used to verify
//!   the engine.
//!
//! # Examples
//!
//! Reliability of the paper's local assembly for a 1000-element list:
//!
//! ```
//! use archrel_core::Evaluator;
//! use archrel_model::paper;
//!
//! # fn main() -> Result<(), archrel_core::CoreError> {
//! let assembly = paper::local_assembly(&paper::PaperParams::default()).unwrap();
//! let evaluator = Evaluator::new(&assembly);
//! let reliability = evaluator
//!     .reliability(&paper::SEARCH.into(), &paper::search_bindings(4.0, 1000.0, 1.0))?;
//! assert!(reliability.value() > 0.99);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod augment;
pub mod batch;
mod cancel;
mod error;
mod eval;
mod failprob;
mod fixedpoint;
pub mod improvement;
pub mod paper_closed;
mod program;
pub mod propagation;
pub mod refresh;
mod report;
pub mod selection;
pub mod sensitivity;
mod staged;
pub mod symbolic;
pub mod uncertainty;

pub use archrel_markov::{SimdMode, SimdPath};
pub use augment::{augmented_chain, AugmentedState};
pub use batch::{BatchEvaluator, BatchSummary, Query};
pub use cancel::CancelToken;
pub use error::CoreError;
pub use eval::{
    parse_plan_lanes_env_value, plan_lanes_from_env, CacheStats, CycleMode, EvalOptions, Evaluator,
    FixedPointMode, PlanCache, ProgramMode, SolverPolicy, ValueCache, AUTO_PROGRAM_MIN_SEEN,
    DEFAULT_FIXED_POINT_MAX_ITERATIONS, DEFAULT_FIXED_POINT_TOLERANCE, DEFAULT_PLAN_CACHE_CAPACITY,
};
pub use failprob::{state_failure_probability, RequestFailure};
pub use program::AssemblyProgram;
pub use refresh::{FleetRefresh, RefreshStats};
pub use report::{EvaluationReport, ServiceBreakdown, StateBreakdown};

/// Convenience result alias for fallible engine operations.
pub type Result<T> = std::result::Result<T, CoreError>;
