//! The paper's closed-form reliability expressions (§4, eqs. 15–22).
//!
//! These are the formulas Grassi derives *by hand* for the search/sort
//! example; the test suite and the Figure 6 harness check that the numeric
//! engine reproduces them to machine precision, which validates the whole
//! pipeline (parametric composition → failure structure → absorption).
//!
//! All functions take the example's [`PaperParams`] plus the search service's
//! actual parameters. `log` is base 2 throughout (the paper leaves the base
//! unspecified; the choice only rescales the constants we calibrate anyway).

use archrel_model::paper::PaperParams;

/// Eq. 15/16 — `Pfail(cpux, N) = 1 − e^(−λx·N/sx)`.
pub fn pfail_cpu(lambda: f64, speed: f64, n: f64) -> f64 {
    1.0 - (-lambda * n / speed).exp()
}

/// Eq. 17 — `Pfail(net12, B) = 1 − e^(−γ·B/b)`.
pub fn pfail_net(gamma: f64, bandwidth: f64, bytes: f64) -> f64 {
    1.0 - (-gamma * bytes / bandwidth).exp()
}

/// Eq. 18 — `Pfail(sortx, list) = 1 − (1−ϕx)^(list·log list) ·
/// e^(−λx·list·log list/sx)`.
pub fn pfail_sort(phi: f64, lambda: f64, speed: f64, list: f64) -> f64 {
    let ops = list * list.log2();
    1.0 - (1.0 - phi).powf(ops) * (-lambda * ops / speed).exp()
}

/// Eq. 19 — `Pfail(lpc, ip, op) = 1 − e^(−λ₁·l/s₁)` (independent of ip/op).
pub fn pfail_lpc(p: &PaperParams) -> f64 {
    1.0 - (-p.lambda1 * p.l / p.s1).exp()
}

/// Eq. 20 — `Pfail(rpc, ip, op) = 1 − e^(−λ₁·c(ip+op)/s₁) ·
/// e^(−γ·m(ip+op)/b) · e^(−λ₂·c(ip+op)/s₂)`.
pub fn pfail_rpc(p: &PaperParams, ip: f64, op: f64) -> f64 {
    let payload = ip + op;
    1.0 - (-p.lambda1 * p.c * payload / p.s1).exp()
        * (-p.gamma * p.m * payload / p.bandwidth).exp()
        * (-p.lambda2 * p.c * payload / p.s2).exp()
}

/// The common part of eq. 22: `Pr{fail(call(cpu1, log list))}` — the search
/// service's own scan step, software law ϕ on `log list` operations plus the
/// hardware law of cpu1.
fn pfail_scan(p: &PaperParams, list: f64) -> f64 {
    let ops = list.log2();
    1.0 - (1.0 - p.phi_search).powf(ops) * (-p.lambda1 * ops / p.s1).exp()
}

/// Eq. 22 specialized to the **local assembly** (connector = lpc, x = 1).
pub fn pfail_search_local(p: &PaperParams, elem: f64, list: f64, _res: f64) -> f64 {
    let _ = elem;
    let scan = pfail_scan(p, list);
    let sort_leg =
        1.0 - (1.0 - pfail_lpc(p)) * (1.0 - pfail_sort(p.phi_sort1, p.lambda1, p.s1, list));
    (1.0 - p.q) * scan + p.q * (1.0 - (1.0 - sort_leg) * (1.0 - scan))
}

/// Eq. 22 specialized to the **remote assembly** (connector = rpc, x = 2).
pub fn pfail_search_remote(p: &PaperParams, elem: f64, list: f64, res: f64) -> f64 {
    let scan = pfail_scan(p, list);
    let ip = elem + list;
    let op = res;
    let sort_leg =
        1.0 - (1.0 - pfail_rpc(p, ip, op)) * (1.0 - pfail_sort(p.phi_sort2, p.lambda2, p.s2, list));
    (1.0 - p.q) * scan + p.q * (1.0 - (1.0 - sort_leg) * (1.0 - scan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Evaluator;
    use archrel_model::paper;

    const TOL: f64 = 1e-12;

    #[test]
    fn closed_form_cpu_and_net_bound() {
        assert_eq!(pfail_cpu(0.0, 1.0, 100.0), 0.0);
        assert!(pfail_cpu(1.0, 1.0, 1e9) > 0.999);
        assert_eq!(pfail_net(0.0, 1.0, 100.0), 0.0);
    }

    /// The engine reproduces eq. 18 for the standalone sort service.
    #[test]
    fn engine_matches_eq18_sort() {
        let params = paper::PaperParams::default();
        let assembly = paper::local_assembly(&params).unwrap();
        let eval = Evaluator::new(&assembly);
        for list in [16.0, 256.0, 4096.0] {
            let engine = eval
                .failure_probability(
                    &paper::SORT_LOCAL.into(),
                    &archrel_expr::Bindings::new().with("list", list),
                )
                .unwrap()
                .value();
            let closed = pfail_sort(params.phi_sort1, params.lambda1, params.s1, list);
            assert!(
                (engine - closed).abs() < TOL,
                "list={list}: engine {engine} vs closed {closed}"
            );
        }
    }

    /// The engine reproduces eq. 19 for the LPC connector.
    #[test]
    fn engine_matches_eq19_lpc() {
        let params = paper::PaperParams::default();
        let assembly = paper::local_assembly(&params).unwrap();
        let eval = Evaluator::new(&assembly);
        let env = archrel_expr::Bindings::new()
            .with("ip", 100.0)
            .with("op", 1.0);
        let engine = eval
            .failure_probability(&paper::LPC.into(), &env)
            .unwrap()
            .value();
        assert!((engine - pfail_lpc(&params)).abs() < TOL);
    }

    /// The engine reproduces eq. 20 for the RPC connector.
    #[test]
    fn engine_matches_eq20_rpc() {
        let params = paper::PaperParams::default().with_gamma(2.5e-2);
        let assembly = paper::remote_assembly(&params).unwrap();
        let eval = Evaluator::new(&assembly);
        for (ip, op) in [(10.0, 1.0), (1000.0, 1.0), (5000.0, 16.0)] {
            let env = archrel_expr::Bindings::new().with("ip", ip).with("op", op);
            let engine = eval
                .failure_probability(&paper::RPC.into(), &env)
                .unwrap()
                .value();
            let closed = pfail_rpc(&params, ip, op);
            assert!(
                (engine - closed).abs() < TOL,
                "ip={ip} op={op}: engine {engine} vs closed {closed}"
            );
        }
    }

    /// The engine reproduces eq. 22 end-to-end for both assemblies.
    #[test]
    fn engine_matches_eq22_search() {
        for gamma in [1e-1, 5e-2, 2.5e-2, 5e-3] {
            for phi1 in [1e-6, 5e-6] {
                let params = paper::PaperParams::default()
                    .with_gamma(gamma)
                    .with_phi_sort1(phi1);
                let (elem, res) = (4.0, 1.0);
                for list in [64.0, 1024.0, 8192.0] {
                    let env = paper::search_bindings(elem, list, res);

                    let local = paper::local_assembly(&params).unwrap();
                    let engine_local = Evaluator::new(&local)
                        .failure_probability(&paper::SEARCH.into(), &env)
                        .unwrap()
                        .value();
                    let closed_local = pfail_search_local(&params, elem, list, res);
                    assert!(
                        (engine_local - closed_local).abs() < TOL,
                        "local γ={gamma} ϕ₁={phi1} list={list}: {engine_local} vs {closed_local}"
                    );

                    let remote = paper::remote_assembly(&params).unwrap();
                    let engine_remote = Evaluator::new(&remote)
                        .failure_probability(&paper::SEARCH.into(), &env)
                        .unwrap()
                        .value();
                    let closed_remote = pfail_search_remote(&params, elem, list, res);
                    assert!(
                        (engine_remote - closed_remote).abs() < TOL,
                        "remote γ={gamma} ϕ₁={phi1} list={list}: {engine_remote} vs {closed_remote}"
                    );
                }
            }
        }
    }

    /// Figure 6's qualitative claims hold under the documented calibration.
    #[test]
    fn figure6_crossover_structure() {
        let (elem, res) = (4.0, 1.0);
        let list = 8192.0; // large end of the plotted range
        let wins_remote = |phi1: f64, gamma: f64| -> bool {
            let p = paper::PaperParams::default()
                .with_gamma(gamma)
                .with_phi_sort1(phi1);
            pfail_search_remote(&p, elem, list, res) < pfail_search_local(&p, elem, list, res)
        };
        // ϕ₁ = 1e-6: remote wins only for γ = 5e-3.
        assert!(wins_remote(1e-6, 5e-3));
        assert!(!wins_remote(1e-6, 2.5e-2));
        assert!(!wins_remote(1e-6, 5e-2));
        assert!(!wins_remote(1e-6, 1e-1));
        // ϕ₁ = 5e-6: remote also wins for γ = 2.5e-2, still not above.
        assert!(wins_remote(5e-6, 5e-3));
        assert!(wins_remote(5e-6, 2.5e-2));
        assert!(!wins_remote(5e-6, 5e-2));
        assert!(!wins_remote(5e-6, 1e-1));
    }
}
