//! Streaming fleet refresh: feed usage-profile **delta sets** into the
//! evaluator as dirty-cone updates instead of full re-solves.
//!
//! The streaming pipeline's last stage. Upstream, a
//! `profile::StreamingEstimator` watches call traces and emits the
//! transition rows that moved; each moved edge maps to one usage
//! parameter of one fleet service. [`FleetRefresh`] routes those
//! parameter moves to their owning services and re-evaluates **only the
//! dirty ones**, through the cheapest path that stays bitwise-pinned to a
//! full re-solve:
//!
//! 1. **Staged delta rows.** Services whose evaluation compiles to a
//!    [`StagedSweep`](crate::staged::StagedSweep) keep a staged env
//!    center; a delta re-runs only the union of the moved parameters'
//!    dependency cones (`stage_env_deltas`), patches the plan's parameter
//!    row in place, and replays the back-substitution tape — no
//!    `Bindings` churn, no chain rebuild, no factorization. After each
//!    applied delta the center advances, so the next delta stages
//!    against the just-applied env.
//! 2. **Dirty-cone generic fallback.** Services that decline staging
//!    (aggregates over composites, k-out-of-n replica groups) are
//!    evaluated by one long-lived [`Evaluator`] whose
//!    [`declare_varied`](Evaluator::declare_varied) pinning limits
//!    recomputation to each delta's cone; a staged service also drops to
//!    this path for the rare delta that moves failure structure.
//!
//! Services outside every delta's cone are **never touched** — not
//! restaged, not re-evaluated, not even visited. Both paths produce
//! results bitwise identical to a fresh full evaluation of the same env
//! (the staged path by `staged.rs`'s self-check + cone proofs, the
//! generic path by the program memo's bit-compare guards), which the
//! streaming differential suites and the `exp_streaming_fleet` bench
//! enforce end to end.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use archrel_expr::Bindings;
use archrel_model::{Assembly, Probability, ServiceId};

use crate::eval::{EvalOptions, Evaluator, PlanCache};
use crate::staged::{StagedEnvCenter, StagedScratch, StagedSweep, Staging};
use crate::{CoreError, Result};

/// Counters describing one [`FleetRefresh::apply`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefreshStats {
    /// Parameter moves routed to owning services.
    pub deltas_routed: usize,
    /// Services re-evaluated (dirty services).
    pub services_refreshed: usize,
    /// Registered services left completely untouched.
    pub services_untouched: usize,
    /// Dirty services answered by a staged delta row (tape replay only).
    pub staged_rows: usize,
    /// Dirty services whose staged center had to be rebuilt by a full
    /// staging pass (after an earlier structural fallback).
    pub restaged_centers: usize,
    /// Dirty services answered by the generic dirty-cone evaluator.
    pub fallback_solves: usize,
}

impl RefreshStats {
    /// Folds another apply's counters into this one.
    pub fn merge(&mut self, other: &RefreshStats) {
        self.deltas_routed += other.deltas_routed;
        self.services_refreshed += other.services_refreshed;
        self.services_untouched += other.services_untouched;
        self.staged_rows += other.staged_rows;
        self.restaged_centers += other.restaged_centers;
        self.fallback_solves += other.fallback_solves;
    }
}

/// The staged fast path of one registered service. `center` is `None`
/// after a structural fallback (the snapshot no longer matches the
/// applied env) until a full staging pass rebuilds it.
struct StagedState {
    sweep: StagedSweep,
    center: Option<StagedEnvCenter>,
    scratch: StagedScratch,
}

/// One registered fleet service: its current usage env, its varied
/// parameter names, its (optional) staged fast path, and its current
/// failure probability.
struct RefreshService {
    id: ServiceId,
    env: Bindings,
    staged: Option<StagedState>,
    failure: Probability,
}

/// Incremental re-evaluation driver over a fleet of services sharing one
/// assembly: register each service once with its usage env and varied
/// parameters, then [`apply`](FleetRefresh::apply) streaming parameter
/// deltas. See the module docs for the update paths and the bitwise
/// contract.
pub struct FleetRefresh<'a> {
    assembly: &'a Assembly,
    options: EvalOptions,
    plans: Arc<PlanCache>,
    evaluator: Evaluator<'a>,
    services: Vec<RefreshService>,
    index: HashMap<ServiceId, usize>,
    /// Usage parameter → owning service index (unique by construction).
    owner: HashMap<String, usize>,
}

impl<'a> FleetRefresh<'a> {
    /// A refresh driver over `assembly` with a fresh plan cache.
    pub fn new(assembly: &'a Assembly, options: EvalOptions) -> Self {
        FleetRefresh::with_plan_cache(assembly, options, Arc::new(PlanCache::new()))
    }

    /// A refresh driver sharing an existing compiled-plan cache, so fleets
    /// of structurally identical services compile each flow shape once.
    pub fn with_plan_cache(
        assembly: &'a Assembly,
        options: EvalOptions,
        plans: Arc<PlanCache>,
    ) -> Self {
        FleetRefresh {
            assembly,
            options,
            evaluator: Evaluator::with_plan_cache(assembly, options, Arc::clone(&plans)),
            plans,
            services: Vec::new(),
            index: HashMap::new(),
            owner: HashMap::new(),
        }
    }

    /// Registers one fleet service with its initial usage env and the
    /// parameter names streaming deltas may move, computes its initial
    /// failure probability, and compiles its staged fast path when
    /// eligible. Each varied parameter must be owned by exactly one
    /// registered service — that is what lets a flat delta stream route
    /// without per-delta service annotations.
    ///
    /// # Errors
    ///
    /// [`CoreError::FleetDuplicateParam`] when a varied name is already
    /// owned; evaluation errors for the initial env.
    pub fn register(
        &mut self,
        service: ServiceId,
        env: Bindings,
        varied: &[String],
    ) -> Result<Probability> {
        let slot = self.services.len();
        for name in varied {
            if let Some(&o) = self.owner.get(name) {
                return Err(CoreError::FleetDuplicateParam {
                    param: name.clone(),
                    first: self.services[o].id.to_string(),
                    second: service.to_string(),
                });
            }
        }
        self.evaluator.declare_varied(&service, varied);
        let mut staged =
            StagedSweep::compile(self.assembly, &service, &env, &self.plans, self.options)?
                .map(|sweep| {
                    let mut scratch = sweep.new_scratch();
                    let center = sweep.prepare_env_center(&env, &mut scratch)?;
                    Ok::<_, CoreError>(StagedState {
                        sweep,
                        center,
                        scratch,
                    })
                })
                .transpose()?;
        let failure = match staged.as_mut() {
            // prepare_env_center left the staged row in the scratch:
            // replay it rather than paying a generic evaluation.
            Some(state) if state.center.is_some() => {
                state.sweep.evaluate_row(&mut state.scratch)?
            }
            _ => self.evaluator.failure_probability(&service, &env)?,
        };
        for name in varied {
            self.owner.insert(name.clone(), slot);
        }
        self.index.insert(service.clone(), slot);
        self.services.push(RefreshService {
            id: service,
            env,
            staged,
            failure,
        });
        Ok(failure)
    }

    /// Number of registered services.
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// Whether no service is registered yet.
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }

    /// Number of registered services currently holding a staged fast path.
    pub fn staged_count(&self) -> usize {
        self.services.iter().filter(|s| s.staged.is_some()).count()
    }

    /// The current failure probability of a registered service.
    pub fn failure(&self, service: &ServiceId) -> Option<Probability> {
        self.index.get(service).map(|&i| self.services[i].failure)
    }

    /// The current reliability (failure complement) of a registered
    /// service.
    pub fn reliability(&self, service: &ServiceId) -> Option<Probability> {
        self.failure(service).map(|p| p.complement())
    }

    /// The current usage env of a registered service.
    pub fn env(&self, service: &ServiceId) -> Option<&Bindings> {
        self.index.get(service).map(|&i| &self.services[i].env)
    }

    /// The underlying generic evaluator (fallback path) — exposed for
    /// cache-statistics inspection.
    pub fn evaluator(&self) -> &Evaluator<'a> {
        &self.evaluator
    }

    /// The driver's compiled-plan cache. Reference evaluations that must
    /// match refreshed values **bitwise** evaluate over this cache: a
    /// cyclic plan answers through rank-1/refactor steps anchored at its
    /// compile-time base, so a plan compiled fresh elsewhere can differ in
    /// the last ulp even for identical parameter rows.
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.plans
    }

    /// Applies one batch of streaming parameter deltas: routes every
    /// `(parameter, new value)` move to its owning service, re-evaluates
    /// exactly the dirty services (staged delta row where possible, the
    /// dirty-cone generic evaluator otherwise), and leaves every other
    /// service untouched. Results are bitwise identical to a full fresh
    /// evaluation of each service's updated env.
    ///
    /// # Errors
    ///
    /// [`CoreError::FleetUnknownParam`] when a delta names a parameter no
    /// registered service declared (the fleet env is then unchanged);
    /// evaluation errors for a dirty service's updated env (envs updated
    /// so far stay applied, mirroring a partially consumed stream).
    pub fn apply(&mut self, deltas: &[(String, f64)]) -> Result<RefreshStats> {
        let mut stats = RefreshStats::default();
        // Route before mutating anything: one unknown name rejects the
        // whole batch.
        let mut dirty: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (di, (name, _)) in deltas.iter().enumerate() {
            let Some(&slot) = self.owner.get(name) else {
                return Err(CoreError::FleetUnknownParam {
                    param: name.clone(),
                });
            };
            dirty.entry(slot).or_default().push(di);
        }
        stats.deltas_routed = deltas.len();
        stats.services_refreshed = dirty.len();
        stats.services_untouched = self.services.len() - dirty.len();
        for (slot, moves) in dirty {
            let service = &mut self.services[slot];
            let mut names: Vec<String> = Vec::with_capacity(moves.len());
            for &di in &moves {
                let (name, value) = &deltas[di];
                service.env.insert(name.clone(), *value);
                if !names.contains(name) {
                    names.push(name.clone());
                }
            }
            service.failure = match &mut service.staged {
                Some(state) => {
                    let staging = match &state.center {
                        Some(center) => state.sweep.stage_env_deltas(
                            center,
                            &names,
                            &service.env,
                            &mut state.scratch,
                        )?,
                        // A previous delta fell back structurally; rebuild
                        // the center from the current env with one full
                        // staging pass.
                        None => {
                            stats.restaged_centers += 1;
                            state.sweep.stage_env(&service.env, &mut state.scratch)?
                        }
                    };
                    match staging {
                        Staging::Row => {
                            stats.staged_rows += 1;
                            match &mut state.center {
                                Some(center) => state.sweep.advance_center(center, &state.scratch),
                                center @ None => {
                                    *center = Some(state.sweep.snapshot_center(&state.scratch));
                                }
                            }
                            state.sweep.evaluate_row(&mut state.scratch)?
                        }
                        Staging::Fallback => {
                            stats.fallback_solves += 1;
                            state.center = None;
                            self.evaluator
                                .failure_probability(&service.id, &service.env)?
                        }
                    }
                }
                None => {
                    stats.fallback_solves += 1;
                    self.evaluator
                        .failure_probability(&service.id, &service.env)?
                }
            };
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::SolverPolicy;
    use archrel_expr::Expr;
    use archrel_model::{
        AssemblyBuilder, CompositeService, FailureModel, FlowBuilder, FlowState,
        InternalFailureModel, Service, ServiceCall, SimpleService, StateId,
    };

    fn simple(name: &str, rate: f64) -> Service {
        Service::Simple(SimpleService::new(
            name,
            "ops",
            FailureModel::ExponentialRate {
                rate,
                capacity: 1.0,
            },
        ))
    }

    fn call(target: &str, demand: Expr) -> ServiceCall {
        ServiceCall {
            target: target.into(),
            actual_params: vec![("ops".to_string(), demand)],
            connector: None,
            internal_failure: InternalFailureModel::None,
        }
    }

    /// Two structurally identical front-end composites with disjoint
    /// usage params (`f1_loop`, `f2_loop`), plus an aggregate calling one
    /// of them (staging-ineligible: its call targets a composite).
    fn fleet_assembly() -> Assembly {
        let front = |name: &str, p: &str| {
            let flow = FlowBuilder::new()
                .state(FlowState::new("a", vec![call("cpu", Expr::param("n"))]))
                .state(FlowState::new("b", vec![call("disk", Expr::num(2.0))]))
                .transition(StateId::Start, "a", Expr::one())
                .transition("a", "b", Expr::one())
                .transition("b", "a", Expr::param(p))
                .transition("b", StateId::End, Expr::one() - Expr::param(p))
                .build()
                .unwrap();
            Service::Composite(
                CompositeService::new(name, vec!["n".to_string(), p.to_string()], flow).unwrap(),
            )
        };
        let agg_flow = FlowBuilder::new()
            .state(FlowState::new(
                "x",
                vec![ServiceCall {
                    target: "front1".into(),
                    actual_params: vec![
                        ("n".to_string(), Expr::param("agg_n")),
                        ("f1_loop".to_string(), Expr::num(0.1)),
                    ],
                    connector: None,
                    internal_failure: InternalFailureModel::None,
                }],
            ))
            .transition(StateId::Start, "x", Expr::one())
            .transition("x", StateId::End, Expr::one())
            .build()
            .unwrap();
        AssemblyBuilder::new()
            .service(simple("cpu", 0.02))
            .service(simple("disk", 0.01))
            .service(front("front1", "f1_loop"))
            .service(front("front2", "f2_loop"))
            .service(Service::Composite(
                CompositeService::new("agg", vec!["agg_n".to_string()], agg_flow).unwrap(),
            ))
            .build()
            .unwrap()
    }

    fn compiled_options() -> EvalOptions {
        EvalOptions {
            solver: SolverPolicy::Compiled,
            ..EvalOptions::default()
        }
    }

    fn register_fleet(refresh: &mut FleetRefresh<'_>) {
        refresh
            .register(
                "front1".into(),
                Bindings::new().with("n", 5.0).with("f1_loop", 0.1),
                &["f1_loop".to_string()],
            )
            .unwrap();
        refresh
            .register(
                "front2".into(),
                Bindings::new().with("n", 5.0).with("f2_loop", 0.2),
                &["f2_loop".to_string()],
            )
            .unwrap();
        refresh
            .register(
                "agg".into(),
                Bindings::new().with("agg_n", 4.0),
                &["agg_n".to_string()],
            )
            .unwrap();
    }

    /// The bitwise reference: a fresh evaluator sharing the refresh
    /// driver's plan cache (cyclic plans anchor their rank-1/refactor
    /// arithmetic at the cached plan's base, so only a shared cache pins
    /// the last ulp — see [`FleetRefresh::plan_cache`]).
    fn reference(refresh: &FleetRefresh<'_>, service: &str, env: &Bindings) -> Probability {
        Evaluator::with_plan_cache(
            refresh.assembly,
            compiled_options(),
            Arc::clone(refresh.plan_cache()),
        )
        .failure_probability(&service.into(), env)
        .unwrap()
    }

    #[test]
    fn register_matches_fresh_evaluation_bitwise() {
        let assembly = fleet_assembly();
        let mut refresh = FleetRefresh::new(&assembly, compiled_options());
        register_fleet(&mut refresh);
        assert_eq!(refresh.len(), 3);
        // The two front-ends stage; the aggregate declines.
        assert_eq!(refresh.staged_count(), 2);
        for (service, env) in [
            (
                "front1",
                Bindings::new().with("n", 5.0).with("f1_loop", 0.1),
            ),
            (
                "front2",
                Bindings::new().with("n", 5.0).with("f2_loop", 0.2),
            ),
            ("agg", Bindings::new().with("agg_n", 4.0)),
        ] {
            let expected = reference(&refresh, service, &env);
            let got = refresh.failure(&service.into()).unwrap();
            assert_eq!(
                got.value().to_bits(),
                expected.value().to_bits(),
                "{service}: got {} expected {}",
                got.value(),
                expected.value()
            );
            assert_eq!(
                refresh.reliability(&service.into()).unwrap().value(),
                expected.complement().value()
            );
        }
    }

    #[test]
    fn deltas_refresh_only_dirty_services_bitwise() {
        let assembly = fleet_assembly();
        let mut refresh = FleetRefresh::new(&assembly, compiled_options());
        register_fleet(&mut refresh);
        let front2_before = refresh.failure(&"front2".into()).unwrap();
        let stats = refresh
            .apply(&[("f1_loop".to_string(), 0.3), ("agg_n".to_string(), 6.0)])
            .unwrap();
        assert_eq!(stats.deltas_routed, 2);
        assert_eq!(stats.services_refreshed, 2);
        assert_eq!(stats.services_untouched, 1);
        assert_eq!(stats.staged_rows, 1);
        assert_eq!(stats.fallback_solves, 1);
        // Untouched service unchanged bitwise.
        assert_eq!(
            refresh.failure(&"front2".into()).unwrap().value().to_bits(),
            front2_before.value().to_bits()
        );
        // Dirty services match a fresh full evaluation of the updated env.
        let expected = reference(
            &refresh,
            "front1",
            &Bindings::new().with("n", 5.0).with("f1_loop", 0.3),
        );
        assert_eq!(
            refresh.failure(&"front1".into()).unwrap().value().to_bits(),
            expected.value().to_bits()
        );
        let expected = reference(&refresh, "agg", &Bindings::new().with("agg_n", 6.0));
        assert_eq!(
            refresh.failure(&"agg".into()).unwrap().value().to_bits(),
            expected.value().to_bits()
        );
    }

    #[test]
    fn sequential_deltas_stay_pinned_to_reference() {
        let assembly = fleet_assembly();
        let mut refresh = FleetRefresh::new(&assembly, compiled_options());
        register_fleet(&mut refresh);
        let mut env = Bindings::new().with("n", 5.0).with("f1_loop", 0.1);
        for p in [0.15, 0.02, 0.4, 0.4, 0.33] {
            refresh.apply(&[("f1_loop".to_string(), p)]).unwrap();
            env.insert("f1_loop", p);
            let expected = reference(&refresh, "front1", &env);
            assert_eq!(
                refresh.failure(&"front1".into()).unwrap().value().to_bits(),
                expected.value().to_bits()
            );
        }
    }

    #[test]
    fn structural_fallback_recovers_staging() {
        let assembly = fleet_assembly();
        let mut refresh = FleetRefresh::new(&assembly, compiled_options());
        register_fleet(&mut refresh);
        // p = 0 drops the retry edge: structural fallback to the generic
        // evaluator.
        let stats = refresh.apply(&[("f1_loop".to_string(), 0.0)]).unwrap();
        assert_eq!(stats.fallback_solves, 1);
        let expected = reference(
            &refresh,
            "front1",
            &Bindings::new().with("n", 5.0).with("f1_loop", 0.0),
        );
        assert_eq!(
            refresh.failure(&"front1".into()).unwrap().value().to_bits(),
            expected.value().to_bits()
        );
        // Moving back onto stageable ground rebuilds the center and
        // resumes the staged path.
        let stats = refresh.apply(&[("f1_loop".to_string(), 0.25)]).unwrap();
        assert_eq!(stats.restaged_centers, 1);
        assert_eq!(stats.staged_rows, 1);
        let expected = reference(
            &refresh,
            "front1",
            &Bindings::new().with("n", 5.0).with("f1_loop", 0.25),
        );
        assert_eq!(
            refresh.failure(&"front1".into()).unwrap().value().to_bits(),
            expected.value().to_bits()
        );
        // And the staged path keeps working afterwards.
        let stats = refresh.apply(&[("f1_loop".to_string(), 0.3)]).unwrap();
        assert_eq!(stats.staged_rows, 1);
        assert_eq!(stats.restaged_centers, 0);
    }

    #[test]
    fn duplicate_param_registration_rejected() {
        let assembly = fleet_assembly();
        let mut refresh = FleetRefresh::new(&assembly, compiled_options());
        register_fleet(&mut refresh);
        let err = refresh
            .register(
                "front1".into(),
                Bindings::new().with("n", 5.0).with("f2_loop", 0.2),
                &["f2_loop".to_string()],
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::FleetDuplicateParam { .. }));
        assert!(err.to_string().contains("f2_loop"));
    }

    #[test]
    fn unknown_delta_param_rejected_without_mutation() {
        let assembly = fleet_assembly();
        let mut refresh = FleetRefresh::new(&assembly, compiled_options());
        register_fleet(&mut refresh);
        let before = refresh.failure(&"front1".into()).unwrap();
        let err = refresh
            .apply(&[
                ("f1_loop".to_string(), 0.5),
                ("nonexistent".to_string(), 0.1),
            ])
            .unwrap_err();
        assert!(matches!(err, CoreError::FleetUnknownParam { .. }));
        assert!(err.to_string().contains("nonexistent"));
        // The whole batch was rejected before any env moved.
        assert_eq!(
            refresh.env(&"front1".into()).unwrap().get("f1_loop"),
            Some(0.1)
        );
        assert_eq!(
            refresh.failure(&"front1".into()).unwrap().value().to_bits(),
            before.value().to_bits()
        );
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = RefreshStats {
            deltas_routed: 2,
            services_refreshed: 1,
            services_untouched: 3,
            staged_rows: 1,
            restaged_centers: 0,
            fallback_solves: 0,
        };
        let b = RefreshStats {
            deltas_routed: 1,
            services_refreshed: 1,
            services_untouched: 3,
            staged_rows: 0,
            restaged_centers: 1,
            fallback_solves: 1,
        };
        a.merge(&b);
        assert_eq!(a.deltas_routed, 3);
        assert_eq!(a.services_refreshed, 2);
        assert_eq!(a.fallback_solves, 1);
    }
}
