use std::fmt;

use archrel_expr::ExprError;
use archrel_markov::MarkovError;
use archrel_model::ModelError;

/// Errors produced by the reliability engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// The assembly contains a service-call cycle and the evaluator is in
    /// [`crate::CycleMode::Error`] mode (the paper's recursive procedure
    /// "does not work in the case of a service assembly where some services
    /// recursively call each other", §3.3).
    RecursiveAssembly {
        /// The services on the detected cycle, in call order.
        cycle: Vec<String>,
    },
    /// Fixed-point evaluation of a recursive assembly did not converge.
    FixedPointDiverged {
        /// Iterations performed.
        iterations: usize,
        /// Largest estimate change in the final sweep.
        residual: f64,
    },
    /// Symbolic evaluation was requested for a construct it does not support
    /// (cyclic flows or recursive assemblies need the numeric engine).
    SymbolicUnsupported {
        /// The offending service.
        service: String,
        /// Why the construct is unsupported.
        reason: String,
    },
    /// The transition probabilities of a flow state, evaluated under the
    /// given bindings, do not form a distribution.
    BadTransitions {
        /// The service owning the flow.
        service: String,
        /// The offending state.
        state: String,
        /// Evaluated row sum.
        sum: f64,
    },
    /// The error-propagation extension was asked to analyze a construct it
    /// does not model (it supports AND-completion, independent-dependency
    /// states in the top-level flow).
    PropagationUnsupported {
        /// The offending service.
        service: String,
        /// Why the construct is unsupported.
        reason: String,
    },
    /// The service-selection search space is larger than the configured cap.
    SelectionSpaceTooLarge {
        /// Number of candidate combinations.
        combinations: u128,
        /// Configured cap.
        cap: u128,
    },
    /// A streaming delta named a usage parameter no registered fleet
    /// service declared (see [`crate::refresh::FleetRefresh`]).
    FleetUnknownParam {
        /// The unrecognized parameter name.
        param: String,
    },
    /// Two fleet services registered the same varied usage parameter;
    /// delta routing requires a unique owner per parameter.
    FleetDuplicateParam {
        /// The doubly-claimed parameter name.
        param: String,
        /// The service that registered it first.
        first: String,
        /// The service that tried to register it again.
        second: String,
    },
    /// A cooperative deadline check tripped mid-evaluation: the wall-clock
    /// budget attached to the evaluator's
    /// [`crate::CancelToken`] ran out before the result was ready.
    DeadlineExceeded {
        /// The budget that was exceeded, in milliseconds (0 when the token
        /// carried no recorded budget).
        budget_ms: u64,
    },
    /// The evaluation was cancelled through its [`crate::CancelToken`]
    /// before completing.
    Cancelled,
    /// An underlying model operation failed.
    Model(ModelError),
    /// An underlying Markov-chain operation failed.
    Markov(MarkovError),
    /// An underlying expression evaluation failed.
    Expr(ExprError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::RecursiveAssembly { cycle } => {
                write!(f, "recursive assembly: cycle {}", cycle.join(" -> "))
            }
            CoreError::FixedPointDiverged {
                iterations,
                residual,
            } => write!(
                f,
                "fixed-point evaluation did not converge after {iterations} iterations (residual {residual:e})"
            ),
            CoreError::SymbolicUnsupported { service, reason } => {
                write!(f, "symbolic evaluation unsupported for `{service}`: {reason}")
            }
            CoreError::PropagationUnsupported { service, reason } => {
                write!(
                    f,
                    "error-propagation analysis unsupported for `{service}`: {reason}"
                )
            }
            CoreError::BadTransitions {
                service,
                state,
                sum,
            } => write!(
                f,
                "transition probabilities of `{service}` state `{state}` sum to {sum}"
            ),
            CoreError::SelectionSpaceTooLarge { combinations, cap } => write!(
                f,
                "selection space of {combinations} combinations exceeds cap {cap}"
            ),
            CoreError::FleetUnknownParam { param } => write!(
                f,
                "streaming delta names parameter `{param}` owned by no registered fleet service"
            ),
            CoreError::FleetDuplicateParam {
                param,
                first,
                second,
            } => write!(
                f,
                "usage parameter `{param}` registered by both `{first}` and `{second}`; \
                 delta routing requires a unique owner"
            ),
            CoreError::DeadlineExceeded { budget_ms } => {
                write!(f, "evaluation deadline of {budget_ms} ms exceeded")
            }
            CoreError::Cancelled => write!(f, "evaluation cancelled"),
            CoreError::Model(e) => write!(f, "model error: {e}"),
            CoreError::Markov(e) => write!(f, "markov error: {e}"),
            CoreError::Expr(e) => write!(f, "expression error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Model(e) => Some(e),
            CoreError::Markov(e) => Some(e),
            CoreError::Expr(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for CoreError {
    fn from(e: ModelError) -> Self {
        CoreError::Model(e)
    }
}

impl From<MarkovError> for CoreError {
    fn from(e: MarkovError) -> Self {
        CoreError::Markov(e)
    }
}

impl From<ExprError> for CoreError {
    fn from(e: ExprError) -> Self {
        CoreError::Expr(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shows_cycle() {
        let e = CoreError::RecursiveAssembly {
            cycle: vec!["a".into(), "b".into(), "a".into()],
        };
        assert!(e.to_string().contains("a -> b -> a"));
    }

    #[test]
    fn conversions_set_source() {
        let e: CoreError = ModelError::InvalidDemand { value: -1.0 }.into();
        assert!(std::error::Error::source(&e).is_some());
        let e: CoreError = MarkovError::EmptyChain.into();
        assert!(std::error::Error::source(&e).is_some());
        let e: CoreError = ExprError::UnboundParameter { name: "x".into() }.into();
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
