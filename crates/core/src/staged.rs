//! Zero-`Bindings` staged sweeps: compile a composite service's point
//! evaluation down to a slot-patching recipe over its solve plan's
//! parameter row.
//!
//! The generic sweep loop pays, per point, for machinery whose *output* is
//! structurally identical across the whole sweep: a rebuilt assembly
//! (uncertainty/improvement factor sampling), a `Bindings` map per call
//! (sensitivity probes), resolved states, a fresh augmented chain, and a
//! parameter-extraction pass over that chain. When the flow structure is
//! fixed — which is exactly when the compiled-plan path applies — all of
//! that reduces to: recompute the handful of per-state failure
//! probabilities that actually moved, patch them into a copy of the
//! baseline parameter row, and hand the row straight to the lane-8 tape
//! replay.
//!
//! [`StagedSweep::compile`] performs that reduction once. It deliberately
//! over-verifies itself: after building the slot map it reconstructs the
//! baseline row from its own recipes and requires a **bitwise** match
//! against [`SolvePlan::parameters_into`] on the real augmented chain —
//! on any mismatch the caller silently falls back to the generic path.
//! Per point, a staged row is only used when the failure structure is
//! provably unchanged (no state failure probability crossed 0 or 1, no
//! merged transition edge appeared or vanished); otherwise the point
//! reports [`Staging::Fallback`] and the caller routes it through the
//! ordinary evaluator. Every number a staged row contains is produced by
//! the same functions the generic path calls ([`FailureModel`] laws,
//! [`state_failure_probability`], the augment-time `p · (1 − pfail)`
//! scaling), in the same order — staged and generic results are therefore
//! bitwise identical, not merely close.

use std::collections::BTreeMap;
use std::sync::Arc;

use archrel_expr::{Bindings, Expr};
use archrel_markov::{structure_fingerprint, PlanScratch, SolvePlan};
use archrel_model::{
    Assembly, CompletionModel, DependencyModel, FailureModel, InternalFailureModel, Probability,
    Service, ServiceCall, ServiceId, SimpleService, StateId,
};

use crate::augment::{augmented_chain, AugmentedState};
use crate::eval::{EvalOptions, PlanCache, PlanEntry, SolverPolicy};
use crate::failprob::{state_failure_probability, RequestFailure};
use crate::improvement::{scale_failure_model, scale_internal_model, Lever};
use crate::{CoreError, Result};

/// Outcome of staging one sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Staging {
    /// The point's parameter row is staged in [`StagedScratch::row`]; the
    /// failure structure is unchanged, so the row may go straight to the
    /// baseline plan's tape replay.
    Row,
    /// The point changes the failure *structure* (a probability crossed
    /// 0/1, an edge appeared or vanished): evaluate it on the generic path.
    Fallback,
}

/// One simple service referenced (as call target or connector) by the
/// staged composite.
#[derive(Debug, Clone)]
struct SimpleEntry {
    id: ServiceId,
    formal: String,
    model: FailureModel,
}

/// One deduplicated connector binding of a call.
#[derive(Debug, Clone, PartialEq)]
struct ConnRecipe {
    /// Index into the simple-service table.
    target: usize,
    actuals: Vec<(String, Expr)>,
    /// Baseline-evaluated actual parameter values (same order).
    actual_values: Vec<f64>,
    /// Index of the actual parameter bound to the connector's formal
    /// (last-wins, mirroring `Bindings::insert`).
    demand_idx: usize,
}

/// One deduplicated service call: its resolved target, retained actual
/// parameter expressions (for env sweeps), and baseline values.
#[derive(Debug, Clone, PartialEq)]
struct CallRecipe {
    target: usize,
    actuals: Vec<(String, Expr)>,
    actual_values: Vec<f64>,
    /// Value of the first actual parameter (the internal-failure demand).
    first_demand: f64,
    /// Index of the actual parameter bound to the target's formal.
    demand_idx: usize,
    internal: InternalFailureModel,
    connector: Option<ConnRecipe>,
}

/// One deduplicated flow state: completion/dependency models plus its call
/// recipes. Sweeps over flows with many *identical* states (the synthetic
/// benchmark chains, tier-replicated architectures) collapse to a handful
/// of recipes.
#[derive(Debug, Clone, PartialEq)]
struct StateRecipe {
    completion: CompletionModel,
    dependency: DependencyModel,
    calls: Vec<usize>,
}

/// One merged flow edge (`from → to` after parallel-edge merging), as the
/// augment step sees it.
#[derive(Debug, Clone)]
struct EdgeRecipe {
    /// Baseline merged probability (before failure scaling).
    base_p: f64,
    /// Indices into the transition table, in flow order (the merge order).
    trans: Vec<usize>,
    /// Failure-scaling state recipe (`None` for `Start`: no failure there).
    state: Option<usize>,
    /// Parameter-row slot, when the baseline chain kept this edge.
    slot: Option<usize>,
}

/// One flow transition retained for env sweeps.
#[derive(Debug, Clone)]
struct TransRecipe {
    from: StateId,
    expr: Expr,
}

/// Row-sum validation unit for env sweeps: one source state's transitions,
/// in the order the augment step checks them.
#[derive(Debug, Clone)]
struct RowCheck {
    from: StateId,
    trans: Vec<usize>,
}

/// Everything that can move when exactly one env binding moves: the
/// dependency cone of one formal parameter through the staged recipes.
/// Index vectors are ascending, so incremental restaging visits entries
/// in the same order full staging does — first-error agreement depends
/// on it.
#[derive(Debug, Clone, Default)]
struct ParamDeps {
    calls: Vec<usize>,
    states: Vec<usize>,
    trans: Vec<usize>,
    rows: Vec<usize>,
    edges: Vec<usize>,
    fail_slots: Vec<(usize, usize)>,
}

/// A staged evaluation of the stencil-center env, snapshotted for
/// single-binding delta staging (see [`StagedSweep::prepare_env_center`]).
///
/// Shareable across worker threads (read-only).
pub(crate) struct StagedEnvCenter {
    reqs: Vec<RequestFailure>,
    fps: Vec<Probability>,
    trans_ps: Vec<f64>,
    edge_ps: Vec<f64>,
    row: Vec<f64>,
    deps: BTreeMap<String, ParamDeps>,
}

/// How one improvement lever acts on a staged sweep
/// (see [`StagedSweep::prepare_levers`]).
#[derive(Debug, Clone, Copy)]
enum LeverEffect {
    /// Scales the failure law of the indexed simple-service table entry.
    Simple(usize),
    /// Scales every call's internal failure law of the staged composite.
    Internal,
    /// Valid lever with no influence on the staged service.
    Inert,
}

/// Per-sweep lever classification, computed once by
/// [`StagedSweep::prepare_levers`].
#[derive(Debug, Clone)]
pub(crate) struct StagedLevers {
    effects: Vec<LeverEffect>,
}

impl StagedLevers {
    /// A lever set with no levers (stages the baseline itself).
    pub(crate) fn empty() -> Self {
        StagedLevers {
            effects: Vec::new(),
        }
    }
}

/// Reusable per-worker buffers for staging points (see [`StagedSweep`]).
pub(crate) struct StagedScratch {
    /// The staged parameter row of the last [`Staging::Row`] point.
    pub(crate) row: Vec<f64>,
    fps: Vec<Probability>,
    reqs: Vec<RequestFailure>,
    state_reqs: Vec<RequestFailure>,
    models: Vec<FailureModel>,
    internal_factors: Vec<f64>,
    values: Vec<f64>,
    cvalues: Vec<f64>,
    trans_ps: Vec<f64>,
    edge_ps: Vec<f64>,
    plan_scratch: PlanScratch,
}

/// A composite service's sweep evaluation, compiled to row staging.
///
/// Shareable across worker threads (`&self` staging into per-worker
/// [`StagedScratch`] buffers).
pub(crate) struct StagedSweep {
    service: ServiceId,
    plan: Arc<SolvePlan>,
    plans: Arc<PlanCache>,
    base_row: Vec<f64>,
    simples: Vec<SimpleEntry>,
    calls: Vec<CallRecipe>,
    states: Vec<StateRecipe>,
    base_fps: Vec<Probability>,
    edges: Vec<EdgeRecipe>,
    /// `(state recipe, row slot)` of every baseline `→ Fail` edge.
    fail_slots: Vec<(usize, usize)>,
    transitions: Vec<TransRecipe>,
    rows: Vec<RowCheck>,
}

impl StagedSweep {
    /// Compiles `service`'s evaluation under `env` into a staged sweep, or
    /// returns `Ok(None)` when staging does not apply: the solver policy is
    /// not `Compiled`, the service is not a composite whose calls and
    /// connectors all resolve to simple services, the structure did not
    /// yield a plan, or the self-check row failed to reproduce the real
    /// extraction bitwise.
    ///
    /// # Errors
    ///
    /// Only errors the generic path would raise identically for every
    /// point of the sweep (unevaluable actual parameters, invalid demands,
    /// malformed transition rows under the baseline `env`).
    pub(crate) fn compile(
        assembly: &Assembly,
        service: &ServiceId,
        env: &Bindings,
        plans: &Arc<PlanCache>,
        options: EvalOptions,
    ) -> Result<Option<StagedSweep>> {
        if options.solver != SolverPolicy::Compiled {
            return Ok(None);
        }
        let Some(Service::Composite(composite)) = assembly.service(service) else {
            return Ok(None);
        };

        // Intern every call target / connector; any non-simple callee means
        // recursive resolution the recipe form cannot express.
        let mut simples: Vec<SimpleEntry> = Vec::new();
        let mut calls: Vec<CallRecipe> = Vec::new();
        let mut states: Vec<StateRecipe> = Vec::new();
        let mut state_recipe_of: BTreeMap<StateId, usize> = BTreeMap::new();
        for state in composite.flow().states() {
            let mut call_idx = Vec::with_capacity(state.calls.len());
            for call in &state.calls {
                let Some(recipe) = compile_call(assembly, call, env, &mut simples)? else {
                    return Ok(None);
                };
                let idx = match calls.iter().position(|c| *c == recipe) {
                    Some(idx) => idx,
                    None => {
                        calls.push(recipe);
                        calls.len() - 1
                    }
                };
                call_idx.push(idx);
            }
            let recipe = StateRecipe {
                completion: state.completion,
                dependency: state.dependency,
                calls: call_idx,
            };
            let idx = match states.iter().position(|s| *s == recipe) {
                Some(idx) => idx,
                None => {
                    states.push(recipe);
                    states.len() - 1
                }
            };
            state_recipe_of.insert(state.id.clone(), idx);
        }

        // Baseline per-recipe requests and state failure probabilities —
        // the same functions `resolve_states` runs, on the same inputs.
        let mut base_reqs = Vec::with_capacity(calls.len());
        for call in &calls {
            base_reqs.push(base_request(&simples, call)?);
        }
        let mut base_fps = Vec::with_capacity(states.len());
        let mut state_reqs = Vec::new();
        for recipe in &states {
            state_reqs.clear();
            state_reqs.extend(recipe.calls.iter().map(|&c| base_reqs[c]));
            base_fps.push(state_failure_probability(
                recipe.completion,
                recipe.dependency,
                &state_reqs,
            )?);
        }

        // Transition table + merged edges, replicating the augment step's
        // evaluation order, validation, and BTreeMap merge order.
        let mut transitions = Vec::new();
        let mut trans_base = Vec::new();
        for t in composite.flow().transitions() {
            let p = t.probability.eval(env)?;
            if !(0.0..=1.0 + 1e-9).contains(&p) {
                return Err(CoreError::BadTransitions {
                    service: composite.id().to_string(),
                    state: t.from.to_string(),
                    sum: p,
                });
            }
            transitions.push(TransRecipe {
                from: t.from.clone(),
                expr: t.probability.clone(),
            });
            trans_base.push((t.from.clone(), t.to.clone(), p));
        }
        let mut row_map: BTreeMap<StateId, Vec<usize>> = BTreeMap::new();
        for (ti, (from, _, _)) in trans_base.iter().enumerate() {
            row_map.entry(from.clone()).or_default().push(ti);
        }
        let rows: Vec<RowCheck> = row_map
            .into_iter()
            .map(|(from, trans)| RowCheck { from, trans })
            .collect();
        for rc in &rows {
            let sum: f64 = rc.trans.iter().fold(0.0, |s, &ti| s + trans_base[ti].2);
            if (sum - 1.0).abs() > 1e-9 {
                return Err(CoreError::BadTransitions {
                    service: composite.id().to_string(),
                    state: rc.from.to_string(),
                    sum,
                });
            }
        }
        let mut merged: BTreeMap<(StateId, StateId), (f64, Vec<usize>)> = BTreeMap::new();
        for (ti, (from, to, p)) in trans_base.iter().enumerate() {
            let slot = merged.entry((from.clone(), to.clone())).or_default();
            slot.0 += p;
            slot.1.push(ti);
        }
        let mut edges = Vec::with_capacity(merged.len());
        let mut edge_of: BTreeMap<(StateId, StateId), usize> = BTreeMap::new();
        for ((from, to), (base_p, trans)) in merged {
            let state = match &from {
                StateId::Start => None,
                named => match state_recipe_of.get(named) {
                    Some(&idx) => Some(idx),
                    // A source state outside the flow's state list would be
                    // failure-free in augment; the builder rejects such
                    // flows, so just decline to stage.
                    None => return Ok(None),
                },
            };
            edge_of.insert((from, to), edges.len());
            edges.push(EdgeRecipe {
                base_p,
                trans,
                state,
                slot: None,
            });
        }

        // The real baseline chain and its plan. Going through the same
        // augment + cache entry the evaluator uses guarantees the staged
        // fingerprint matches the generic path's.
        let failures: BTreeMap<StateId, Probability> = state_recipe_of
            .iter()
            .map(|(id, &i)| (id.clone(), base_fps[i]))
            .collect();
        let chain = augmented_chain(composite, env, &failures)?;
        let start = AugmentedState::Flow(StateId::Start);
        let end = AugmentedState::Flow(StateId::End);
        let fingerprint = structure_fingerprint(&chain, &start, &end);
        let plan = match plans.entry(fingerprint, &chain, &start, &end, false) {
            Ok(PlanEntry::Plan(plan)) => plan,
            // Unreachable/cyclic markers and compile errors: the generic
            // path knows how to answer those; staging does not.
            Ok(_) | Err(_) => return Ok(None),
        };

        // Slot map: walk the chain's transient adjacency exactly as
        // `parameters_into` does and attribute each slot to its edge.
        let mut fail_slots = Vec::new();
        let mut slot = 0usize;
        for i in chain.transient_indices() {
            let from = chain.state_at(i);
            let Ok(successors) = chain.successors(from) else {
                return Ok(None);
            };
            for (to, _) in successors {
                match (from, to) {
                    (AugmentedState::Flow(f), AugmentedState::Flow(t)) => {
                        match edge_of.get(&(f.clone(), t.clone())) {
                            Some(&ei) => edges[ei].slot = Some(slot),
                            None => return Ok(None),
                        }
                    }
                    (AugmentedState::Flow(f), AugmentedState::Fail) => {
                        match state_recipe_of.get(f) {
                            Some(&si) => fail_slots.push((si, slot)),
                            None => return Ok(None),
                        }
                    }
                    (AugmentedState::Fail, _) => return Ok(None),
                }
                slot += 1;
            }
        }

        let mut base_row = Vec::new();
        if plan.parameters_into(&chain, &mut base_row).is_err() || base_row.len() != slot {
            return Ok(None);
        }

        let sweep = StagedSweep {
            service: service.clone(),
            plan,
            plans: Arc::clone(plans),
            base_row,
            simples,
            calls,
            states,
            base_fps,
            edges,
            fail_slots,
            transitions,
            rows,
        };

        // Self-check: both staging modes must reproduce the extracted
        // baseline row bit for bit before the sweep is trusted.
        let mut scratch = sweep.new_scratch();
        let baseline_ok = matches!(
            sweep.stage_factors(&StagedLevers::empty(), &[], &mut scratch),
            Ok(Staging::Row)
        ) && scratch.row == sweep.base_row;
        let env_ok = baseline_ok
            && matches!(sweep.stage_env(env, &mut scratch), Ok(Staging::Row))
            && scratch.row == sweep.base_row;
        if !env_ok {
            return Ok(None);
        }
        Ok(Some(sweep))
    }

    /// Fresh staging buffers sized for this sweep (one per worker thread).
    pub(crate) fn new_scratch(&self) -> StagedScratch {
        StagedScratch {
            row: Vec::with_capacity(self.base_row.len()),
            fps: vec![Probability::ZERO; self.states.len()],
            reqs: vec![RequestFailure::new(Probability::ZERO, Probability::ZERO); self.calls.len()],
            state_reqs: Vec::new(),
            models: Vec::with_capacity(self.simples.len()),
            internal_factors: Vec::new(),
            values: Vec::new(),
            cvalues: Vec::new(),
            trans_ps: Vec::with_capacity(self.transitions.len()),
            edge_ps: Vec::with_capacity(self.edges.len()),
            plan_scratch: PlanScratch::new(),
        }
    }

    /// The compiled plan staged rows replay through.
    pub(crate) fn plan(&self) -> &Arc<SolvePlan> {
        &self.plan
    }

    /// Index of a simple service in the staged table, if the sweep
    /// references it at all.
    pub(crate) fn simple_index(&self, id: &ServiceId) -> Option<usize> {
        self.simples.iter().position(|s| s.id == *id)
    }

    /// Number of interned simple services (the length override tables
    /// passed to [`StagedSweep::stage_models`] must have).
    pub(crate) fn simple_count(&self) -> usize {
        self.simples.len()
    }

    /// Classifies improvement levers against this sweep once, so factor
    /// points skip per-point service lookups. Replicates `apply_lever`'s
    /// existence and kind validation (and its exact errors).
    pub(crate) fn prepare_levers<'a>(
        &self,
        assembly: &Assembly,
        levers: impl IntoIterator<Item = &'a Lever>,
    ) -> Result<StagedLevers> {
        let mut effects = Vec::new();
        for lever in levers {
            let effect = match (lever, assembly.service(lever.service())) {
                (_, None) => {
                    return Err(CoreError::Model(
                        archrel_model::ModelError::UnknownService {
                            id: lever.service().to_string(),
                            referenced_from: "<improvement lever>".to_string(),
                        },
                    ))
                }
                (Lever::ServiceFailure(_), Some(Service::Composite(_)))
                | (Lever::InternalFailure(_), Some(Service::Simple(_))) => {
                    return Err(CoreError::Model(
                        archrel_model::ModelError::UnknownService {
                            id: format!("{} (wrong service kind for this lever)", lever.service()),
                            referenced_from: "<improvement lever>".to_string(),
                        },
                    ))
                }
                (Lever::ServiceFailure(id), Some(Service::Simple(_))) => self
                    .simple_index(id)
                    .map(LeverEffect::Simple)
                    .unwrap_or(LeverEffect::Inert),
                (Lever::InternalFailure(id), Some(Service::Composite(_))) => {
                    if *id == self.service {
                        LeverEffect::Internal
                    } else {
                        LeverEffect::Inert
                    }
                }
            };
            effects.push(effect);
        }
        Ok(StagedLevers { effects })
    }

    /// Stages one factor-sweep point (`factors[i]` applied to lever `i`, in
    /// lever order — the order `apply_all`/`apply_lever` folds them).
    ///
    /// # Errors
    ///
    /// The same errors the generic rebuild would raise: non-finite or
    /// negative factors, invalid demands under the scaled laws.
    pub(crate) fn stage_factors(
        &self,
        levers: &StagedLevers,
        factors: &[f64],
        scratch: &mut StagedScratch,
    ) -> Result<Staging> {
        debug_assert_eq!(levers.effects.len(), factors.len());
        scratch.models.clear();
        scratch
            .models
            .extend(self.simples.iter().map(|s| s.model.clone()));
        scratch.internal_factors.clear();
        for (effect, &factor) in levers.effects.iter().zip(factors) {
            if !factor.is_finite() || factor < 0.0 {
                return Err(CoreError::Model(
                    archrel_model::ModelError::InvalidAttribute {
                        name: "factor",
                        value: factor,
                    },
                ));
            }
            match *effect {
                LeverEffect::Simple(t) => {
                    scratch.models[t] = scale_failure_model(&scratch.models[t], factor)
                }
                LeverEffect::Internal => scratch.internal_factors.push(factor),
                LeverEffect::Inert => {}
            }
        }
        for i in 0..self.calls.len() {
            let call = &self.calls[i];
            let target_fail = scratch.models[call.target].failure_probability(call.demand())?;
            let connector_fail = match &call.connector {
                None => Probability::ZERO,
                Some(c) => scratch.models[c.target].failure_probability(c.demand())?,
            };
            let internal_model = scratch
                .internal_factors
                .iter()
                .fold(call.internal.clone(), |m, &f| scale_internal_model(&m, f));
            let internal = internal_model.failure_probability(call.first_demand)?;
            scratch.reqs[i] = RequestFailure::new(
                internal,
                RequestFailure::external_of(target_fail, connector_fail),
            );
        }
        self.state_fps(scratch)?;
        if self.structure_moved(scratch) {
            return Ok(Staging::Fallback);
        }
        self.fill_row_fixed_edges(scratch)
    }

    /// Stages one model-override point (the selection driver: slot
    /// candidates swap entire simple services). `overrides[i]`, when set,
    /// replaces simple-table entry `i` — formal parameter and failure law.
    ///
    /// # Errors
    ///
    /// Invalid demands under the overriding laws, as the generic
    /// evaluation of the rebuilt assembly would raise.
    pub(crate) fn stage_models(
        &self,
        overrides: &[Option<&SimpleService>],
        scratch: &mut StagedScratch,
    ) -> Result<Staging> {
        debug_assert_eq!(overrides.len(), self.simples.len());
        for i in 0..self.calls.len() {
            let call = &self.calls[i];
            let target_fail = match self.override_failure(call, overrides[call.target])? {
                Some(p) => p,
                None => return Ok(Staging::Fallback),
            };
            let connector_fail = match &call.connector {
                None => Probability::ZERO,
                Some(c) => match self.conn_override_failure(c, overrides[c.target])? {
                    Some(p) => p,
                    None => return Ok(Staging::Fallback),
                },
            };
            let internal = call.internal.failure_probability(call.first_demand)?;
            scratch.reqs[i] = RequestFailure::new(
                internal,
                RequestFailure::external_of(target_fail, connector_fail),
            );
        }
        self.state_fps(scratch)?;
        if self.structure_moved(scratch) {
            return Ok(Staging::Fallback);
        }
        self.fill_row_fixed_edges(scratch)
    }

    /// Stages one env-sweep point (the sensitivity driver: same assembly,
    /// perturbed formal-parameter bindings). Re-evaluates actual-parameter
    /// and transition expressions; everything structural stays staged.
    ///
    /// # Errors
    ///
    /// Expression evaluation failures, invalid demands, and malformed
    /// transition rows — each exactly as the generic path reports it.
    pub(crate) fn stage_env(&self, env: &Bindings, scratch: &mut StagedScratch) -> Result<Staging> {
        for i in 0..self.calls.len() {
            self.stage_call(i, env, scratch)?;
        }
        self.state_fps(scratch)?;

        // Transition re-evaluation with the augment step's validation
        // (range first, in flow order; then row sums, in state order).
        scratch.trans_ps.clear();
        for t in &self.transitions {
            let p = t.expr.eval(env)?;
            if !(0.0..=1.0 + 1e-9).contains(&p) {
                return Err(CoreError::BadTransitions {
                    service: self.service.to_string(),
                    state: t.from.to_string(),
                    sum: p,
                });
            }
            scratch.trans_ps.push(p);
        }
        for rc in &self.rows {
            let sum: f64 = rc.trans.iter().fold(0.0, |s, &ti| s + scratch.trans_ps[ti]);
            if (sum - 1.0).abs() > 1e-9 {
                return Err(CoreError::BadTransitions {
                    service: self.service.to_string(),
                    state: rc.from.to_string(),
                    sum,
                });
            }
        }
        scratch.edge_ps.clear();
        for e in &self.edges {
            let p: f64 = e.trans.iter().fold(0.0, |s, &ti| s + scratch.trans_ps[ti]);
            scratch.edge_ps.push(p);
        }

        if self.structure_moved(scratch) {
            return Ok(Staging::Fallback);
        }
        scratch.row.clear();
        scratch.row.resize(self.base_row.len(), 0.0);
        for (ei, e) in self.edges.iter().enumerate() {
            let comp = match e.state {
                Some(s) => scratch.fps[s].complement().value(),
                None => 1.0,
            };
            let scaled = scratch.edge_ps[ei] * comp;
            match e.slot {
                Some(k) => {
                    let v = scaled.min(1.0);
                    if v <= 0.0 {
                        // The edge would now be dropped by the chain
                        // builder: different structure.
                        return Ok(Staging::Fallback);
                    }
                    scratch.row[k] = v;
                }
                None => {
                    if scaled > 0.0 {
                        // A baseline-dropped edge came back.
                        return Ok(Staging::Fallback);
                    }
                }
            }
        }
        for &(s, k) in &self.fail_slots {
            scratch.row[k] = scratch.fps[s].value().min(1.0);
        }
        Ok(Staging::Row)
    }

    /// Stages the stencil-center env once and snapshots the result, so
    /// probes that move exactly **one** binding can be staged through
    /// [`StagedSweep::stage_env_delta`] instead of re-evaluating every
    /// expression per probe. Returns `Ok(None)` when the center itself
    /// does not stage a row (callers then keep full per-probe staging).
    ///
    /// # Errors
    ///
    /// The errors [`StagedSweep::stage_env`] raises for the center env.
    pub(crate) fn prepare_env_center(
        &self,
        env: &Bindings,
        scratch: &mut StagedScratch,
    ) -> Result<Option<StagedEnvCenter>> {
        if self.stage_env(env, scratch)? != Staging::Row {
            return Ok(None);
        }
        Ok(Some(self.snapshot_center(scratch)))
    }

    /// Snapshots the staging `scratch` currently holds into a fresh env
    /// center. Call only after a staging that returned [`Staging::Row`]
    /// (callers that already staged — fleet refresh recovering from a
    /// structural fallback — use this to skip
    /// [`StagedSweep::prepare_env_center`]'s redundant restage).
    pub(crate) fn snapshot_center(&self, scratch: &StagedScratch) -> StagedEnvCenter {
        StagedEnvCenter {
            reqs: scratch.reqs.clone(),
            fps: scratch.fps.clone(),
            trans_ps: scratch.trans_ps.clone(),
            edge_ps: scratch.edge_ps.clone(),
            row: scratch.row.clone(),
            deps: self.env_delta_deps(),
        }
    }

    /// Stages one env probe that differs from `center`'s env in exactly
    /// the binding `name` (the finite-difference stencil's contract).
    /// Restores the center snapshot and re-runs only the recipes inside
    /// `name`'s dependency cone — every recomputed entry goes through the
    /// same arithmetic as [`StagedSweep::stage_env`] on the same inputs
    /// and every untouched entry is copied from an identical evaluation,
    /// so the staged row is **bitwise** what full staging would produce.
    /// Errors and fallback decisions also agree: entries outside the cone
    /// were validated at the center with identical values, so the first
    /// failing entry (in staging order) is always inside the cone.
    ///
    /// # Errors
    ///
    /// See [`StagedSweep::stage_env`].
    pub(crate) fn stage_env_delta(
        &self,
        center: &StagedEnvCenter,
        name: &str,
        env: &Bindings,
        scratch: &mut StagedScratch,
    ) -> Result<Staging> {
        scratch.reqs.clear();
        scratch.reqs.extend_from_slice(&center.reqs);
        scratch.fps.clear();
        scratch.fps.extend_from_slice(&center.fps);
        scratch.trans_ps.clear();
        scratch.trans_ps.extend_from_slice(&center.trans_ps);
        scratch.edge_ps.clear();
        scratch.edge_ps.extend_from_slice(&center.edge_ps);
        scratch.row.clear();
        scratch.row.extend_from_slice(&center.row);
        let Some(deps) = center.deps.get(name) else {
            // Nothing reads this binding: the center row is the probe row.
            return Ok(Staging::Row);
        };
        for &i in &deps.calls {
            self.stage_call(i, env, scratch)?;
        }
        for &si in &deps.states {
            self.stage_state_fp(si, scratch)?;
        }
        for &ti in &deps.trans {
            let t = &self.transitions[ti];
            let p = t.expr.eval(env)?;
            if !(0.0..=1.0 + 1e-9).contains(&p) {
                return Err(CoreError::BadTransitions {
                    service: self.service.to_string(),
                    state: t.from.to_string(),
                    sum: p,
                });
            }
            scratch.trans_ps[ti] = p;
        }
        for &ri in &deps.rows {
            let rc = &self.rows[ri];
            let sum: f64 = rc.trans.iter().fold(0.0, |s, &ti| s + scratch.trans_ps[ti]);
            if (sum - 1.0).abs() > 1e-9 {
                return Err(CoreError::BadTransitions {
                    service: self.service.to_string(),
                    state: rc.from.to_string(),
                    sum,
                });
            }
        }
        for &ei in &deps.edges {
            let e = &self.edges[ei];
            scratch.edge_ps[ei] = e.trans.iter().fold(0.0, |s, &ti| s + scratch.trans_ps[ti]);
        }
        for &si in &deps.states {
            let (b, f) = (&self.base_fps[si], &scratch.fps[si]);
            if b.is_zero() != f.is_zero() || b.is_one() != f.is_one() {
                return Ok(Staging::Fallback);
            }
        }
        for &ei in &deps.edges {
            let e = &self.edges[ei];
            let comp = match e.state {
                Some(s) => scratch.fps[s].complement().value(),
                None => 1.0,
            };
            let scaled = scratch.edge_ps[ei] * comp;
            match e.slot {
                Some(k) => {
                    let v = scaled.min(1.0);
                    if v <= 0.0 {
                        return Ok(Staging::Fallback);
                    }
                    scratch.row[k] = v;
                }
                None => {
                    if scaled > 0.0 {
                        return Ok(Staging::Fallback);
                    }
                }
            }
        }
        for &(s, k) in &deps.fail_slots {
            scratch.row[k] = scratch.fps[s].value().min(1.0);
        }
        Ok(Staging::Row)
    }

    /// Stages one env probe that differs from `center`'s env in the
    /// bindings `names` — the multi-binding generalization of
    /// [`StagedSweep::stage_env_delta`] used by streaming fleet refresh,
    /// where one delta set can move several usage parameters of the same
    /// service at once. Restages the **union** of the named parameters'
    /// dependency cones, visiting each recipe class in ascending index
    /// order (the order full staging uses), so rows, errors, and fallback
    /// decisions are bitwise/first-error identical to
    /// [`StagedSweep::stage_env`] on the probe env.
    ///
    /// # Errors
    ///
    /// See [`StagedSweep::stage_env`].
    pub(crate) fn stage_env_deltas(
        &self,
        center: &StagedEnvCenter,
        names: &[String],
        env: &Bindings,
        scratch: &mut StagedScratch,
    ) -> Result<Staging> {
        if let [name] = names {
            return self.stage_env_delta(center, name, env, scratch);
        }
        scratch.reqs.clear();
        scratch.reqs.extend_from_slice(&center.reqs);
        scratch.fps.clear();
        scratch.fps.extend_from_slice(&center.fps);
        scratch.trans_ps.clear();
        scratch.trans_ps.extend_from_slice(&center.trans_ps);
        scratch.edge_ps.clear();
        scratch.edge_ps.extend_from_slice(&center.edge_ps);
        scratch.row.clear();
        scratch.row.extend_from_slice(&center.row);
        use std::collections::BTreeSet;
        let mut calls: BTreeSet<usize> = BTreeSet::new();
        let mut states: BTreeSet<usize> = BTreeSet::new();
        let mut trans: BTreeSet<usize> = BTreeSet::new();
        let mut rows: BTreeSet<usize> = BTreeSet::new();
        let mut edges: BTreeSet<usize> = BTreeSet::new();
        let mut fail_slots: BTreeSet<(usize, usize)> = BTreeSet::new();
        for name in names {
            let Some(deps) = center.deps.get(name) else {
                continue;
            };
            calls.extend(deps.calls.iter().copied());
            states.extend(deps.states.iter().copied());
            trans.extend(deps.trans.iter().copied());
            rows.extend(deps.rows.iter().copied());
            edges.extend(deps.edges.iter().copied());
            fail_slots.extend(deps.fail_slots.iter().copied());
        }
        for &i in &calls {
            self.stage_call(i, env, scratch)?;
        }
        for &si in &states {
            self.stage_state_fp(si, scratch)?;
        }
        for &ti in &trans {
            let t = &self.transitions[ti];
            let p = t.expr.eval(env)?;
            if !(0.0..=1.0 + 1e-9).contains(&p) {
                return Err(CoreError::BadTransitions {
                    service: self.service.to_string(),
                    state: t.from.to_string(),
                    sum: p,
                });
            }
            scratch.trans_ps[ti] = p;
        }
        for &ri in &rows {
            let rc = &self.rows[ri];
            let sum: f64 = rc.trans.iter().fold(0.0, |s, &ti| s + scratch.trans_ps[ti]);
            if (sum - 1.0).abs() > 1e-9 {
                return Err(CoreError::BadTransitions {
                    service: self.service.to_string(),
                    state: rc.from.to_string(),
                    sum,
                });
            }
        }
        for &ei in &edges {
            let e = &self.edges[ei];
            scratch.edge_ps[ei] = e.trans.iter().fold(0.0, |s, &ti| s + scratch.trans_ps[ti]);
        }
        for &si in &states {
            let (b, f) = (&self.base_fps[si], &scratch.fps[si]);
            if b.is_zero() != f.is_zero() || b.is_one() != f.is_one() {
                return Ok(Staging::Fallback);
            }
        }
        for &ei in &edges {
            let e = &self.edges[ei];
            let comp = match e.state {
                Some(s) => scratch.fps[s].complement().value(),
                None => 1.0,
            };
            let scaled = scratch.edge_ps[ei] * comp;
            match e.slot {
                Some(k) => {
                    let v = scaled.min(1.0);
                    if v <= 0.0 {
                        return Ok(Staging::Fallback);
                    }
                    scratch.row[k] = v;
                }
                None => {
                    if scaled > 0.0 {
                        return Ok(Staging::Fallback);
                    }
                }
            }
        }
        for &(s, k) in &fail_slots {
            scratch.row[k] = scratch.fps[s].value().min(1.0);
        }
        Ok(Staging::Row)
    }

    /// Moves `center` to the staging `scratch` currently holds, so the
    /// next delta can be expressed against the just-applied env instead of
    /// the original one. Streaming refresh applies delta sets
    /// sequentially: after each successful [`Staging::Row`], advancing the
    /// center keeps every later delta bitwise equal to full staging by
    /// induction (the snapshot always equals a full staging of the current
    /// env). Call only after a staging that returned [`Staging::Row`].
    pub(crate) fn advance_center(&self, center: &mut StagedEnvCenter, scratch: &StagedScratch) {
        center.reqs.clear();
        center.reqs.extend_from_slice(&scratch.reqs);
        center.fps.clear();
        center.fps.extend_from_slice(&scratch.fps);
        center.trans_ps.clear();
        center.trans_ps.extend_from_slice(&scratch.trans_ps);
        center.edge_ps.clear();
        center.edge_ps.extend_from_slice(&scratch.edge_ps);
        center.row.clear();
        center.row.extend_from_slice(&scratch.row);
    }

    /// Dependency cones of every formal parameter the staged expressions
    /// read: which call, state, transition, row, edge, and fail-slot
    /// recipes must be restaged when that parameter moves.
    fn env_delta_deps(&self) -> BTreeMap<String, ParamDeps> {
        use std::collections::BTreeSet;
        let mut deps: BTreeMap<String, ParamDeps> = BTreeMap::new();
        for (i, call) in self.calls.iter().enumerate() {
            let mut params: BTreeSet<String> = BTreeSet::new();
            for (_, expr) in &call.actuals {
                params.extend(expr.free_params());
            }
            if let Some(conn) = &call.connector {
                for (_, expr) in &conn.actuals {
                    params.extend(expr.free_params());
                }
            }
            for p in params {
                deps.entry(p).or_default().calls.push(i);
            }
        }
        for (ti, t) in self.transitions.iter().enumerate() {
            for p in t.expr.free_params() {
                deps.entry(p).or_default().trans.push(ti);
            }
        }
        for d in deps.values_mut() {
            let calls: BTreeSet<usize> = d.calls.iter().copied().collect();
            let trans: BTreeSet<usize> = d.trans.iter().copied().collect();
            for (si, s) in self.states.iter().enumerate() {
                if s.calls.iter().any(|c| calls.contains(c)) {
                    d.states.push(si);
                }
            }
            let states: BTreeSet<usize> = d.states.iter().copied().collect();
            for (ri, rc) in self.rows.iter().enumerate() {
                if rc.trans.iter().any(|t| trans.contains(t)) {
                    d.rows.push(ri);
                }
            }
            for (ei, e) in self.edges.iter().enumerate() {
                if e.trans.iter().any(|t| trans.contains(t))
                    || e.state.is_some_and(|s| states.contains(&s))
                {
                    d.edges.push(ei);
                }
            }
            for &(s, k) in &self.fail_slots {
                if states.contains(&s) {
                    d.fail_slots.push((s, k));
                }
            }
        }
        deps
    }

    /// Re-resolves one call recipe against `env` into `scratch.reqs[i]` —
    /// the arithmetic both full and delta env staging share.
    fn stage_call(&self, i: usize, env: &Bindings, scratch: &mut StagedScratch) -> Result<()> {
        let call = &self.calls[i];
        scratch.values.clear();
        let mut first_demand = 0.0;
        for (j, (_, expr)) in call.actuals.iter().enumerate() {
            let v = expr.eval(env)?;
            if j == 0 {
                first_demand = v;
            }
            scratch.values.push(v);
        }
        let target_fail = self.simples[call.target]
            .model
            .failure_probability(scratch.values[call.demand_idx])?;
        let connector_fail = match &call.connector {
            None => Probability::ZERO,
            Some(c) => {
                scratch.cvalues.clear();
                for (_, expr) in &c.actuals {
                    scratch.cvalues.push(expr.eval(env)?);
                }
                self.simples[c.target]
                    .model
                    .failure_probability(scratch.cvalues[c.demand_idx])?
            }
        };
        let internal = call.internal.failure_probability(first_demand)?;
        scratch.reqs[i] = RequestFailure::new(
            internal,
            RequestFailure::external_of(target_fail, connector_fail),
        );
        Ok(())
    }

    /// Evaluates the staged row in [`StagedScratch::row`] on the scalar
    /// plan path (for sequential callers such as the improvement
    /// bisection), returning the service **failure** probability —
    /// bitwise what the generic compiled route computes.
    ///
    /// # Errors
    ///
    /// Plan evaluation failures (trapped probability mass).
    pub(crate) fn evaluate_row(&self, scratch: &mut StagedScratch) -> Result<Probability> {
        let (value, kind) = self
            .plan
            .evaluate_scratch(&scratch.row, &mut scratch.plan_scratch)?;
        self.plans.record(kind);
        Ok(Probability::new(value)?.complement())
    }

    fn state_fps(&self, scratch: &mut StagedScratch) -> Result<()> {
        for i in 0..self.states.len() {
            self.stage_state_fp(i, scratch)?;
        }
        Ok(())
    }

    fn stage_state_fp(&self, i: usize, scratch: &mut StagedScratch) -> Result<()> {
        let recipe = &self.states[i];
        scratch.state_reqs.clear();
        scratch
            .state_reqs
            .extend(recipe.calls.iter().map(|&c| scratch.reqs[c]));
        scratch.fps[i] =
            state_failure_probability(recipe.completion, recipe.dependency, &scratch.state_reqs)?;
        Ok(())
    }

    /// Whether any state failure probability crossed 0 or 1 relative to
    /// the baseline — the moves that add/remove chain edges.
    fn structure_moved(&self, scratch: &StagedScratch) -> bool {
        self.base_fps
            .iter()
            .zip(&scratch.fps)
            .any(|(b, f)| b.is_zero() != f.is_zero() || b.is_one() != f.is_one())
    }

    /// Fills the row for modes where transition probabilities are fixed
    /// (factor and model-override sweeps): copy the baseline row and patch
    /// only failure-dependent slots.
    fn fill_row_fixed_edges(&self, scratch: &mut StagedScratch) -> Result<Staging> {
        scratch.row.clear();
        scratch.row.extend_from_slice(&self.base_row);
        for e in &self.edges {
            match (e.slot, e.state) {
                (Some(k), Some(s)) => {
                    let v = (e.base_p * scratch.fps[s].complement().value()).min(1.0);
                    if v <= 0.0 {
                        return Ok(Staging::Fallback);
                    }
                    scratch.row[k] = v;
                }
                // Start rows carry no failure scaling: unchanged.
                (Some(_), None) => {}
                (None, Some(s)) => {
                    // Dropped at baseline; a positive value now would
                    // resurrect the edge.
                    let v = (e.base_p * scratch.fps[s].complement().value()).min(1.0);
                    if v > 0.0 {
                        return Ok(Staging::Fallback);
                    }
                }
                (None, None) => {}
            }
        }
        for &(s, k) in &self.fail_slots {
            scratch.row[k] = scratch.fps[s].value().min(1.0);
        }
        Ok(Staging::Row)
    }

    fn override_failure(
        &self,
        call: &CallRecipe,
        with: Option<&SimpleService>,
    ) -> Result<Option<Probability>> {
        match with {
            None => self.simples[call.target]
                .model
                .failure_probability(call.demand())
                .map(Some)
                .map_err(Into::into),
            Some(s) => {
                let demand = if s.formal_param() == self.simples[call.target].formal {
                    call.demand()
                } else {
                    // Re-bind the demand against the override's formal
                    // (last-wins, like the callee environment).
                    match call
                        .actuals
                        .iter()
                        .rposition(|(name, _)| name == s.formal_param())
                    {
                        Some(j) => call.actual_values[j],
                        // The generic path reports the unbound formal; let
                        // it.
                        None => return Ok(None),
                    }
                };
                s.model()
                    .failure_probability(demand)
                    .map(Some)
                    .map_err(Into::into)
            }
        }
    }

    fn conn_override_failure(
        &self,
        conn: &ConnRecipe,
        with: Option<&SimpleService>,
    ) -> Result<Option<Probability>> {
        match with {
            None => self.simples[conn.target]
                .model
                .failure_probability(conn.demand())
                .map(Some)
                .map_err(Into::into),
            Some(s) => {
                let demand = if s.formal_param() == self.simples[conn.target].formal {
                    conn.demand()
                } else {
                    match conn
                        .actuals
                        .iter()
                        .rposition(|(name, _)| name == s.formal_param())
                    {
                        Some(j) => conn.actual_values[j],
                        None => return Ok(None),
                    }
                };
                s.model()
                    .failure_probability(demand)
                    .map(Some)
                    .map_err(Into::into)
            }
        }
    }
}

impl CallRecipe {
    fn demand(&self) -> f64 {
        self.actual_values[self.demand_idx]
    }
}

impl ConnRecipe {
    fn demand(&self) -> f64 {
        self.actual_values[self.demand_idx]
    }
}

/// Interns a simple service by id, or `None` when the id names anything
/// else (a composite, or nothing — both send the sweep back to the
/// generic path, which knows how to recurse or to report the error).
fn intern_simple(
    assembly: &Assembly,
    id: &ServiceId,
    simples: &mut Vec<SimpleEntry>,
) -> Option<usize> {
    if let Some(idx) = simples.iter().position(|s| s.id == *id) {
        return Some(idx);
    }
    match assembly.service(id) {
        Some(Service::Simple(s)) => {
            simples.push(SimpleEntry {
                id: id.clone(),
                formal: s.formal_param().to_string(),
                model: s.model().clone(),
            });
            Some(simples.len() - 1)
        }
        _ => None,
    }
}

/// Compiles one service call against the baseline `env`, mirroring
/// `resolve_request`'s evaluation order (actuals, target demand binding,
/// connector, internal) so error precedence is preserved.
fn compile_call(
    assembly: &Assembly,
    call: &ServiceCall,
    env: &Bindings,
    simples: &mut Vec<SimpleEntry>,
) -> Result<Option<CallRecipe>> {
    let Some(target) = intern_simple(assembly, &call.target, simples) else {
        return Ok(None);
    };
    let mut actual_values = Vec::with_capacity(call.actual_params.len());
    let mut first_demand = 0.0;
    for (j, (_, expr)) in call.actual_params.iter().enumerate() {
        let v = expr.eval(env)?;
        if j == 0 {
            first_demand = v;
        }
        actual_values.push(v);
    }
    let formal = simples[target].formal.clone();
    let Some(demand_idx) = call
        .actual_params
        .iter()
        .rposition(|(name, _)| *name == formal)
    else {
        return Err(CoreError::Expr(archrel_expr::ExprError::UnboundParameter {
            name: formal,
        }));
    };
    let connector = match &call.connector {
        None => None,
        Some(binding) => {
            let Some(ctarget) = intern_simple(assembly, &binding.connector, simples) else {
                return Ok(None);
            };
            let mut cvalues = Vec::with_capacity(binding.actual_params.len());
            for (_, expr) in &binding.actual_params {
                cvalues.push(expr.eval(env)?);
            }
            let cformal = simples[ctarget].formal.clone();
            let Some(cdemand_idx) = binding
                .actual_params
                .iter()
                .rposition(|(name, _)| *name == cformal)
            else {
                return Err(CoreError::Expr(archrel_expr::ExprError::UnboundParameter {
                    name: cformal,
                }));
            };
            Some(ConnRecipe {
                target: ctarget,
                actuals: binding.actual_params.clone(),
                actual_values: cvalues,
                demand_idx: cdemand_idx,
            })
        }
    };
    Ok(Some(CallRecipe {
        target,
        actuals: call.actual_params.clone(),
        actual_values,
        first_demand,
        demand_idx,
        internal: call.internal_failure.clone(),
        connector,
    }))
}

/// The baseline failure record of one call recipe — `resolve_request`'s
/// arithmetic on interned inputs.
fn base_request(simples: &[SimpleEntry], call: &CallRecipe) -> Result<RequestFailure> {
    let target_fail = simples[call.target]
        .model
        .failure_probability(call.demand())?;
    let connector_fail = match &call.connector {
        None => Probability::ZERO,
        Some(c) => simples[c.target].model.failure_probability(c.demand())?,
    };
    let internal = call.internal.failure_probability(call.first_demand)?;
    Ok(RequestFailure::new(
        internal,
        RequestFailure::external_of(target_fail, connector_fail),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Evaluator;
    use archrel_model::{
        AssemblyBuilder, ConnectorBinding, FlowBuilder, FlowState, InternalFailureModel,
    };

    fn simple(name: &str, rate: f64) -> Service {
        Service::Simple(SimpleService::new(
            name,
            "ops",
            FailureModel::ExponentialRate {
                rate,
                capacity: 1.0,
            },
        ))
    }

    /// `Start → a → b → End` with a retry loop edge `b → a`, calls with a
    /// connector and an internal failure law, and a parametric demand.
    fn assembly() -> Assembly {
        let call_a = ServiceCall {
            target: "cpu".into(),
            actual_params: vec![("ops".to_string(), Expr::param("n"))],
            connector: Some(ConnectorBinding {
                connector: "net".into(),
                actual_params: vec![("bytes".to_string(), Expr::num(64.0))],
            }),
            internal_failure: InternalFailureModel::PerOperation { phi: 1e-4 },
        };
        let call_b = ServiceCall {
            target: "disk".into(),
            actual_params: vec![("ops".to_string(), Expr::num(3.0))],
            connector: None,
            internal_failure: InternalFailureModel::None,
        };
        let flow = FlowBuilder::new()
            .state(FlowState::new("a", vec![call_a]))
            .state(FlowState::new("b", vec![call_b]))
            .transition(StateId::Start, "a", Expr::one())
            .transition("a", "b", Expr::one())
            .transition("b", "a", Expr::num(0.1))
            .transition("b", StateId::End, Expr::num(0.9))
            .build()
            .unwrap();
        let net = Service::Simple(SimpleService::new(
            "net",
            "bytes",
            FailureModel::PerUnit { probability: 1e-6 },
        ));
        AssemblyBuilder::new()
            .service(simple("cpu", 0.02))
            .service(simple("disk", 0.01))
            .service(net)
            .service(Service::Composite(
                archrel_model::CompositeService::new("app", vec!["n".to_string()], flow).unwrap(),
            ))
            .build()
            .unwrap()
    }

    fn compiled_options() -> EvalOptions {
        EvalOptions {
            solver: SolverPolicy::Compiled,
            ..EvalOptions::default()
        }
    }

    fn compile_app(assembly: &Assembly, env: &Bindings) -> (Arc<PlanCache>, Option<StagedSweep>) {
        let plans = Arc::new(PlanCache::new());
        let sweep =
            StagedSweep::compile(assembly, &"app".into(), env, &plans, compiled_options()).unwrap();
        (plans, sweep)
    }

    #[test]
    fn compiles_and_reproduces_baseline_row() {
        let assembly = assembly();
        let env = Bindings::new().with("n", 5.0);
        let (_, sweep) = compile_app(&assembly, &env);
        let sweep = sweep.expect("eligible sweep should stage");
        let mut scratch = sweep.new_scratch();
        assert_eq!(
            sweep
                .stage_factors(&StagedLevers::empty(), &[], &mut scratch)
                .unwrap(),
            Staging::Row
        );
        assert_eq!(scratch.row, sweep.base_row);
    }

    #[test]
    fn requires_compiled_policy() {
        let assembly = assembly();
        let env = Bindings::new().with("n", 5.0);
        let plans = Arc::new(PlanCache::new());
        let sweep = StagedSweep::compile(
            &assembly,
            &"app".into(),
            &env,
            &plans,
            EvalOptions {
                solver: SolverPolicy::Auto,
                ..EvalOptions::default()
            },
        )
        .unwrap();
        assert!(sweep.is_none());
    }

    #[test]
    fn declines_simple_targets() {
        let assembly = assembly();
        let env = Bindings::new();
        let plans = Arc::new(PlanCache::new());
        let sweep =
            StagedSweep::compile(&assembly, &"cpu".into(), &env, &plans, compiled_options())
                .unwrap();
        assert!(sweep.is_none());
    }

    #[test]
    fn factor_rows_match_generic_rebuild_bitwise() {
        let assembly = assembly();
        let env = Bindings::new().with("n", 5.0);
        let (plans, sweep) = compile_app(&assembly, &env);
        let sweep = sweep.unwrap();
        let levers = vec![
            Lever::ServiceFailure("cpu".into()),
            Lever::InternalFailure("app".into()),
        ];
        let staged_levers = sweep.prepare_levers(&assembly, &levers).unwrap();
        let mut scratch = sweep.new_scratch();
        for factors in [[0.5, 1.3], [1.0, 1.0], [2.0, 0.25], [0.9, 3.0]] {
            assert_eq!(
                sweep
                    .stage_factors(&staged_levers, &factors, &mut scratch)
                    .unwrap(),
                Staging::Row
            );
            let staged = sweep.evaluate_row(&mut scratch).unwrap();
            // Generic route: rebuild the assembly lever by lever and run a
            // fresh evaluator over the shared plan cache.
            let mut perturbed = assembly.clone();
            for (lever, &factor) in levers.iter().zip(&factors) {
                perturbed = crate::improvement::apply_lever(&perturbed, lever, factor).unwrap();
            }
            let evaluator =
                Evaluator::with_plan_cache(&perturbed, compiled_options(), Arc::clone(&plans));
            let generic = evaluator.failure_probability(&"app".into(), &env).unwrap();
            assert_eq!(staged.value().to_bits(), generic.value().to_bits());
        }
    }

    #[test]
    fn env_rows_match_generic_evaluation_bitwise() {
        let assembly = assembly();
        let env = Bindings::new().with("n", 5.0);
        let (plans, sweep) = compile_app(&assembly, &env);
        let sweep = sweep.unwrap();
        let mut scratch = sweep.new_scratch();
        for n in [1.0, 4.75, 5.0, 20.0] {
            let point = Bindings::new().with("n", n);
            assert_eq!(sweep.stage_env(&point, &mut scratch).unwrap(), Staging::Row);
            let staged = sweep.evaluate_row(&mut scratch).unwrap();
            let evaluator =
                Evaluator::with_plan_cache(&assembly, compiled_options(), Arc::clone(&plans));
            let generic = evaluator
                .failure_probability(&"app".into(), &point)
                .unwrap();
            assert_eq!(staged.value().to_bits(), generic.value().to_bits());
        }
    }

    #[test]
    fn env_delta_rows_match_full_staging_bitwise() {
        let assembly = assembly();
        // An extra binding nothing reads: its probes must reuse the center
        // row unchanged.
        let env = Bindings::new().with("n", 5.0).with("unused", 2.0);
        let (_, sweep) = compile_app(&assembly, &env);
        let sweep = sweep.unwrap();
        let mut center_scratch = sweep.new_scratch();
        let center = sweep
            .prepare_env_center(&env, &mut center_scratch)
            .unwrap()
            .expect("center stages a row");
        let mut full = sweep.new_scratch();
        let mut delta = sweep.new_scratch();
        for (name, x) in [
            ("n", 5.0005),
            ("n", 4.9995),
            ("n", 5.0),
            ("n", 1.0),
            ("n", 20.0),
            ("unused", 2.5),
        ] {
            let mut probe = env.clone();
            probe.insert(name, x);
            assert_eq!(sweep.stage_env(&probe, &mut full).unwrap(), Staging::Row);
            assert_eq!(
                sweep
                    .stage_env_delta(&center, name, &probe, &mut delta)
                    .unwrap(),
                Staging::Row
            );
            assert_eq!(full.row.len(), delta.row.len());
            for (f, d) in full.row.iter().zip(&delta.row) {
                assert_eq!(f.to_bits(), d.to_bits());
            }
        }
    }

    /// Like [`assembly`], but with the retry loop driven by a `loop`
    /// usage parameter — two independent cones (`n` → calls, `loop` →
    /// transitions) for multi-binding delta staging.
    fn parametric_assembly() -> Assembly {
        let call_a = ServiceCall {
            target: "cpu".into(),
            actual_params: vec![("ops".to_string(), Expr::param("n"))],
            connector: None,
            internal_failure: InternalFailureModel::None,
        };
        let call_b = ServiceCall {
            target: "disk".into(),
            actual_params: vec![("ops".to_string(), Expr::num(3.0))],
            connector: None,
            internal_failure: InternalFailureModel::None,
        };
        let flow = FlowBuilder::new()
            .state(FlowState::new("a", vec![call_a]))
            .state(FlowState::new("b", vec![call_b]))
            .transition(StateId::Start, "a", Expr::one())
            .transition("a", "b", Expr::one())
            .transition("b", "a", Expr::param("loop"))
            .transition("b", StateId::End, Expr::one() - Expr::param("loop"))
            .build()
            .unwrap();
        AssemblyBuilder::new()
            .service(simple("cpu", 0.02))
            .service(simple("disk", 0.01))
            .service(Service::Composite(
                archrel_model::CompositeService::new(
                    "app",
                    vec!["n".to_string(), "loop".to_string()],
                    flow,
                )
                .unwrap(),
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn env_multi_delta_rows_match_full_staging_bitwise() {
        let assembly = parametric_assembly();
        let env = Bindings::new()
            .with("n", 5.0)
            .with("loop", 0.1)
            .with("unused", 2.0);
        let (_, sweep) = compile_app(&assembly, &env);
        let sweep = sweep.unwrap();
        let mut center_scratch = sweep.new_scratch();
        let center = sweep
            .prepare_env_center(&env, &mut center_scratch)
            .unwrap()
            .expect("center stages a row");
        let mut full = sweep.new_scratch();
        let mut delta = sweep.new_scratch();
        type DeltaCase<'a> = (&'a [(&'a str, f64)], &'a [&'a str]);
        let cases: [DeltaCase; 4] = [
            (&[("n", 7.0), ("loop", 0.25)], &["n", "loop"]),
            (&[("loop", 0.01)], &["loop", "unused"]),
            (&[("n", 1.5)], &["n"]),
            (&[], &["unused"]),
        ];
        for (moves, names) in cases {
            let mut probe = env.clone();
            for (name, x) in moves {
                probe.insert(*name, *x);
            }
            let names: Vec<String> = names.iter().map(|s| s.to_string()).collect();
            assert_eq!(sweep.stage_env(&probe, &mut full).unwrap(), Staging::Row);
            assert_eq!(
                sweep
                    .stage_env_deltas(&center, &names, &probe, &mut delta)
                    .unwrap(),
                Staging::Row
            );
            assert_eq!(full.row.len(), delta.row.len());
            for (f, d) in full.row.iter().zip(&delta.row) {
                assert_eq!(f.to_bits(), d.to_bits());
            }
        }
    }

    #[test]
    fn advance_center_keeps_sequential_deltas_bitwise() {
        let assembly = parametric_assembly();
        let mut env = Bindings::new().with("n", 5.0).with("loop", 0.1);
        let (_, sweep) = compile_app(&assembly, &env);
        let sweep = sweep.unwrap();
        let mut scratch = sweep.new_scratch();
        let mut center = sweep
            .prepare_env_center(&env, &mut scratch)
            .unwrap()
            .expect("center stages a row");
        let mut full = sweep.new_scratch();
        let steps: [&[(&str, f64)]; 4] = [
            &[("loop", 0.2)],
            &[("n", 8.0), ("loop", 0.05)],
            &[("n", 2.0)],
            &[("loop", 0.5)],
        ];
        for moves in steps {
            for (name, x) in moves {
                env.insert(*name, *x);
            }
            let names: Vec<String> = moves.iter().map(|(n, _)| n.to_string()).collect();
            assert_eq!(
                sweep
                    .stage_env_deltas(&center, &names, &env, &mut scratch)
                    .unwrap(),
                Staging::Row
            );
            sweep.advance_center(&mut center, &scratch);
            // Each advanced center stays bitwise equal to staging the
            // cumulative env from scratch.
            assert_eq!(sweep.stage_env(&env, &mut full).unwrap(), Staging::Row);
            for (f, d) in full.row.iter().zip(&scratch.row) {
                assert_eq!(f.to_bits(), d.to_bits());
            }
        }
    }

    #[test]
    fn env_delta_reports_full_staging_errors() {
        let assembly = assembly();
        let env = Bindings::new().with("n", 5.0);
        let (_, sweep) = compile_app(&assembly, &env);
        let sweep = sweep.unwrap();
        let mut scratch = sweep.new_scratch();
        let center = sweep
            .prepare_env_center(&env, &mut scratch)
            .unwrap()
            .expect("center stages a row");
        // A negative demand breaks the exponential law's domain; both
        // staging modes must raise the identical error.
        let mut probe = env.clone();
        probe.insert("n", -3.0);
        let full_err = sweep.stage_env(&probe, &mut scratch).unwrap_err();
        let delta_err = sweep
            .stage_env_delta(&center, "n", &probe, &mut scratch)
            .unwrap_err();
        assert_eq!(full_err.to_string(), delta_err.to_string());
    }

    #[test]
    fn structural_change_falls_back() {
        let assembly = assembly();
        let env = Bindings::new().with("n", 5.0);
        let (_, sweep) = compile_app(&assembly, &env);
        let sweep = sweep.unwrap();
        // Zeroing every failure mechanism of state `b` (its only call has
        // no internal/connector failure) drives its state failure to zero:
        // the `b → Fail` edge vanishes from the chain.
        let levers = vec![Lever::ServiceFailure("disk".into())];
        let staged_levers = sweep.prepare_levers(&assembly, &levers).unwrap();
        let mut scratch = sweep.new_scratch();
        assert_eq!(
            sweep
                .stage_factors(&staged_levers, &[0.0], &mut scratch)
                .unwrap(),
            Staging::Fallback
        );
    }

    #[test]
    fn lever_validation_matches_apply_lever() {
        let assembly = assembly();
        let env = Bindings::new().with("n", 5.0);
        let (_, sweep) = compile_app(&assembly, &env);
        let sweep = sweep.unwrap();
        let missing = Lever::ServiceFailure("ghost".into());
        let staged_err = sweep
            .prepare_levers(&assembly, [&missing])
            .unwrap_err()
            .to_string();
        let generic_err = crate::improvement::apply_lever(&assembly, &missing, 0.5)
            .unwrap_err()
            .to_string();
        assert_eq!(staged_err, generic_err);
        let wrong_kind = Lever::InternalFailure("cpu".into());
        let staged_err = sweep
            .prepare_levers(&assembly, [&wrong_kind])
            .unwrap_err()
            .to_string();
        let generic_err = crate::improvement::apply_lever(&assembly, &wrong_kind, 0.5)
            .unwrap_err()
            .to_string();
        assert_eq!(staged_err, generic_err);
    }

    #[test]
    fn invalid_factor_matches_apply_lever_error() {
        let assembly = assembly();
        let env = Bindings::new().with("n", 5.0);
        let (_, sweep) = compile_app(&assembly, &env);
        let sweep = sweep.unwrap();
        let lever = Lever::ServiceFailure("cpu".into());
        let staged_levers = sweep.prepare_levers(&assembly, [&lever]).unwrap();
        let mut scratch = sweep.new_scratch();
        let staged_err = sweep
            .stage_factors(&staged_levers, &[-1.0], &mut scratch)
            .unwrap_err()
            .to_string();
        let generic_err = crate::improvement::apply_lever(&assembly, &lever, -1.0)
            .unwrap_err()
            .to_string();
        assert_eq!(staged_err, generic_err);
    }

    #[test]
    fn model_override_matches_generic_swap_bitwise() {
        let assembly = assembly();
        let env = Bindings::new().with("n", 5.0);
        let (plans, sweep) = compile_app(&assembly, &env);
        let sweep = sweep.unwrap();
        let candidate =
            SimpleService::new("cpu", "ops", FailureModel::Constant { probability: 0.03 });
        let idx = sweep.simple_index(&"cpu".into()).unwrap();
        let mut overrides: Vec<Option<&SimpleService>> = vec![None; 3];
        overrides[idx] = Some(&candidate);
        let mut scratch = sweep.new_scratch();
        assert_eq!(
            sweep.stage_models(&overrides, &mut scratch).unwrap(),
            Staging::Row
        );
        let staged = sweep.evaluate_row(&mut scratch).unwrap();
        // Generic route: rebuild the assembly with the candidate swapped in.
        let mut builder = AssemblyBuilder::new();
        for service in assembly.services() {
            let rebuilt = match service {
                Service::Simple(s) if s.id() == &ServiceId::from("cpu") => {
                    Service::Simple(candidate.clone())
                }
                other => other.clone(),
            };
            builder = builder.service(rebuilt);
        }
        let swapped = builder.build().unwrap();
        let evaluator =
            Evaluator::with_plan_cache(&swapped, compiled_options(), Arc::clone(&plans));
        let generic = evaluator.failure_probability(&"app".into(), &env).unwrap();
        assert_eq!(staged.value().to_bits(), generic.value().to_bits());
    }
}
