//! Reliability-driven service selection.
//!
//! The paper's §1 motivation: "the prediction of such characteristics is
//! important to drive the **selection** of the services to be assembled".
//! This module closes that loop: given an assembly with *slots* — positions
//! for which several candidate services are available (different providers
//! of the same interface) — it enumerates the candidate combinations, builds
//! and validates each concrete assembly, predicts the target service's
//! reliability, and ranks the combinations.

use std::sync::Arc;

use archrel_expr::Bindings;
use archrel_model::{Assembly, AssemblyBuilder, Probability, Service, ServiceId};

use crate::batch::parallel_map_indexed;
use crate::sensitivity::default_workers;
use crate::{CoreError, EvalOptions, Evaluator, PlanCache, Result};

/// One selectable position in the assembly: any of the `candidates` can fill
/// it. Every candidate must offer the same service id and formal parameters
/// (same abstract interface, different provider).
#[derive(Debug, Clone)]
pub struct Slot {
    /// Human-readable slot label, used in results.
    pub label: String,
    /// Candidate services (all sharing one service id).
    pub candidates: Vec<Service>,
}

impl Slot {
    /// Creates a slot.
    pub fn new(label: impl Into<String>, candidates: Vec<Service>) -> Self {
        Slot {
            label: label.into(),
            candidates,
        }
    }
}

/// A service-selection problem.
#[derive(Debug, Clone)]
pub struct SelectionProblem {
    /// Services common to every combination.
    pub fixed: Vec<Service>,
    /// Selectable slots.
    pub slots: Vec<Slot>,
    /// The service whose reliability is optimized.
    pub target: ServiceId,
    /// Formal-parameter bindings of the target invocation.
    pub bindings: Bindings,
    /// Cap on the number of combinations explored (guards against
    /// combinatorial explosion); defaults to 100 000.
    pub max_combinations: u128,
    /// Evaluator options applied to every combination — in particular the
    /// [`crate::SolverPolicy`] used for the absorbing-chain solves.
    pub eval_options: EvalOptions,
}

impl SelectionProblem {
    /// Creates a problem with the default combination cap.
    pub fn new(
        fixed: Vec<Service>,
        slots: Vec<Slot>,
        target: impl Into<ServiceId>,
        bindings: Bindings,
    ) -> Self {
        SelectionProblem {
            fixed,
            slots,
            target: target.into(),
            bindings,
            max_combinations: 100_000,
            eval_options: EvalOptions::default(),
        }
    }

    /// Overrides the evaluator options used for every combination.
    #[must_use]
    pub fn with_eval_options(mut self, options: EvalOptions) -> Self {
        self.eval_options = options;
        self
    }
}

/// One evaluated combination.
#[derive(Debug, Clone)]
pub struct SelectionResult {
    /// Chosen candidate index per slot (parallel to `SelectionProblem::slots`).
    pub choices: Vec<usize>,
    /// Human-readable choice description: `(slot label, candidate index)`.
    pub description: Vec<(String, usize)>,
    /// Predicted failure probability of the target.
    pub failure_probability: Probability,
}

impl SelectionResult {
    /// Predicted reliability.
    pub fn reliability(&self) -> Probability {
        self.failure_probability.complement()
    }
}

/// Enumerates all candidate combinations and returns them ranked by
/// ascending failure probability (best first).
///
/// Combinations whose assembly fails validation (e.g. a candidate whose
/// interface does not match the flow that calls it) are skipped, so the
/// caller can mix partially compatible catalogs.
///
/// Runs on the batch path: the Cartesian product is enumerated up front and
/// the per-combination builds/evaluations are spread across worker threads.
/// Each combination is its **own** assembly, so combinations cannot share
/// the value-level solve cache — but they *do* share one compiled-plan
/// cache: candidates filling the same slot leave the flow structures
/// unchanged, so under a compiled-plan policy each structure is compiled
/// once and every combination replays the tape.
///
/// # Errors
///
/// - [`CoreError::SelectionSpaceTooLarge`] when the Cartesian product
///   exceeds the cap;
/// - evaluation errors for combinations that validate but fail to evaluate.
pub fn select(problem: &SelectionProblem) -> Result<Vec<SelectionResult>> {
    select_with_workers(problem, default_workers())
}

/// [`select`] with an explicit worker-thread count.
///
/// # Errors
///
/// See [`select`].
pub fn select_with_workers(
    problem: &SelectionProblem,
    workers: usize,
) -> Result<Vec<SelectionResult>> {
    let combinations: u128 = problem
        .slots
        .iter()
        .map(|s| s.candidates.len() as u128)
        .product();
    if combinations > problem.max_combinations {
        return Err(CoreError::SelectionSpaceTooLarge {
            combinations,
            cap: problem.max_combinations,
        });
    }
    if problem.slots.iter().any(|s| s.candidates.is_empty()) {
        return Ok(Vec::new());
    }

    // Enumerate the mixed-radix counter up front (the cap above bounds it).
    let mut all_choices: Vec<Vec<usize>> = Vec::with_capacity(combinations as usize);
    let mut choices = vec![0usize; problem.slots.len()];
    'enumerate: loop {
        all_choices.push(choices.clone());
        let mut pos = 0;
        loop {
            if pos == problem.slots.len() {
                break 'enumerate;
            }
            choices[pos] += 1;
            if choices[pos] < problem.slots[pos].candidates.len() {
                break;
            }
            choices[pos] = 0;
            pos += 1;
        }
    }

    let plans = Arc::new(PlanCache::new());
    let evaluated = parallel_map_indexed(workers, &all_choices, |_, combination| {
        evaluate_combination(problem, combination, &plans)
    });
    let mut results = Vec::with_capacity(all_choices.len());
    for r in evaluated {
        if let Some(result) = r? {
            results.push(result);
        }
    }
    // Stable sort: ties keep enumeration order, independent of `workers`.
    results.sort_by(|a, b| {
        a.failure_probability
            .value()
            .partial_cmp(&b.failure_probability.value())
            .expect("probabilities are finite")
    });
    Ok(results)
}

/// Returns the best combination, if any validates.
///
/// # Errors
///
/// See [`select`].
pub fn select_best(problem: &SelectionProblem) -> Result<Option<SelectionResult>> {
    Ok(select(problem)?.into_iter().next())
}

fn evaluate_combination(
    problem: &SelectionProblem,
    choices: &[usize],
    plans: &Arc<PlanCache>,
) -> Result<Option<SelectionResult>> {
    let mut builder = AssemblyBuilder::new().services(problem.fixed.iter().cloned());
    for (slot, &choice) in problem.slots.iter().zip(choices) {
        builder = builder.service(slot.candidates[choice].clone());
    }
    let assembly: Assembly = match builder.build() {
        Ok(a) => a,
        Err(_) => return Ok(None), // incompatible combination: skip
    };
    let evaluator = Evaluator::with_plan_cache(&assembly, problem.eval_options, Arc::clone(plans));
    let failure_probability = evaluator.failure_probability(&problem.target, &problem.bindings)?;
    Ok(Some(SelectionResult {
        choices: choices.to_vec(),
        description: problem
            .slots
            .iter()
            .zip(choices)
            .map(|(s, &c)| (s.label.clone(), c))
            .collect(),
        failure_probability,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use archrel_expr::Expr;
    use archrel_model::{catalog, CompositeService, FlowBuilder, FlowState, ServiceCall, StateId};

    fn app_calling(target: &str) -> Service {
        let flow = FlowBuilder::new()
            .state(FlowState::new(
                "1",
                vec![ServiceCall::new(target).with_param("x", Expr::num(1.0))],
            ))
            .transition(StateId::Start, "1", Expr::one())
            .transition("1", StateId::End, Expr::one())
            .build()
            .unwrap();
        Service::Composite(CompositeService::new("app", vec![], flow).unwrap())
    }

    fn provider(pfail: f64) -> Service {
        catalog::blackbox_service("dep", "x", pfail)
    }

    #[test]
    fn picks_the_most_reliable_provider() {
        let problem = SelectionProblem::new(
            vec![app_calling("dep")],
            vec![Slot::new(
                "dep-provider",
                vec![provider(0.10), provider(0.01), provider(0.05)],
            )],
            "app",
            Bindings::new(),
        );
        let results = select(&problem).unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].choices, vec![1]);
        assert!((results[0].failure_probability.value() - 0.01).abs() < 1e-12);
        assert!((results[0].reliability().value() - 0.99).abs() < 1e-12);
        // Ranked ascending by failure probability.
        assert!(results[1].failure_probability <= results[2].failure_probability);
        let best = select_best(&problem).unwrap().unwrap();
        assert_eq!(best.choices, vec![1]);
    }

    #[test]
    fn multi_slot_cartesian_product() {
        let flow = FlowBuilder::new()
            .state(FlowState::new(
                "1",
                vec![
                    ServiceCall::new("a").with_param("x", Expr::num(1.0)),
                    ServiceCall::new("b").with_param("x", Expr::num(1.0)),
                ],
            ))
            .transition(StateId::Start, "1", Expr::one())
            .transition("1", StateId::End, Expr::one())
            .build()
            .unwrap();
        let app = Service::Composite(CompositeService::new("app", vec![], flow).unwrap());
        let cand = |name: &str, p: f64| catalog::blackbox_service(name, "x", p);
        let problem = SelectionProblem::new(
            vec![app],
            vec![
                Slot::new("a", vec![cand("a", 0.2), cand("a", 0.1)]),
                Slot::new("b", vec![cand("b", 0.3), cand("b", 0.05)]),
            ],
            "app",
            Bindings::new(),
        );
        let results = select(&problem).unwrap();
        assert_eq!(results.len(), 4);
        assert_eq!(results[0].choices, vec![1, 1]);
        let expected = 1.0 - 0.9 * 0.95;
        assert!((results[0].failure_probability.value() - expected).abs() < 1e-12);
    }

    #[test]
    fn incompatible_candidates_are_skipped() {
        let wrong_interface = catalog::blackbox_service("dep", "y", 0.001);
        let problem = SelectionProblem::new(
            vec![app_calling("dep")],
            vec![Slot::new("dep", vec![wrong_interface, provider(0.2)])],
            "app",
            Bindings::new(),
        );
        let results = select(&problem).unwrap();
        // The y-parameter candidate fails assembly validation and is skipped.
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].choices, vec![1]);
    }

    #[test]
    fn worker_count_does_not_change_the_ranking() {
        let cand = |name: &str, p: f64| catalog::blackbox_service(name, "x", p);
        let flow = FlowBuilder::new()
            .state(FlowState::new(
                "1",
                vec![
                    ServiceCall::new("a").with_param("x", Expr::num(1.0)),
                    ServiceCall::new("b").with_param("x", Expr::num(1.0)),
                ],
            ))
            .transition(StateId::Start, "1", Expr::one())
            .transition("1", StateId::End, Expr::one())
            .build()
            .unwrap();
        let app = Service::Composite(CompositeService::new("app", vec![], flow).unwrap());
        let problem = SelectionProblem::new(
            vec![app],
            vec![
                Slot::new(
                    "a",
                    (0..5).map(|i| cand("a", 0.01 * (i + 1) as f64)).collect(),
                ),
                Slot::new(
                    "b",
                    (0..4).map(|i| cand("b", 0.02 * (i + 1) as f64)).collect(),
                ),
            ],
            "app",
            Bindings::new(),
        );
        let reference = select_with_workers(&problem, 1).unwrap();
        for workers in [2, 8] {
            let got = select_with_workers(&problem, workers).unwrap();
            assert_eq!(reference.len(), got.len());
            for (r, g) in reference.iter().zip(&got) {
                assert_eq!(r.choices, g.choices, "{workers} workers");
                assert_eq!(
                    r.failure_probability.value().to_bits(),
                    g.failure_probability.value().to_bits()
                );
            }
        }
    }

    #[test]
    fn solver_policy_does_not_change_the_ranking() {
        use crate::SolverPolicy;
        let problem = SelectionProblem::new(
            vec![app_calling("dep")],
            vec![Slot::new(
                "dep-provider",
                vec![provider(0.10), provider(0.01), provider(0.05)],
            )],
            "app",
            Bindings::new(),
        );
        let dense = select(&problem.clone().with_eval_options(EvalOptions {
            solver: SolverPolicy::Dense,
            ..EvalOptions::default()
        }))
        .unwrap();
        let sparse = select(&problem.with_eval_options(EvalOptions {
            solver: SolverPolicy::Sparse,
            ..EvalOptions::default()
        }))
        .unwrap();
        assert_eq!(dense.len(), sparse.len());
        for (d, s) in dense.iter().zip(&sparse) {
            assert_eq!(d.choices, s.choices);
            assert!((d.failure_probability.value() - s.failure_probability.value()).abs() < 1e-10);
        }
    }

    #[test]
    fn space_cap_enforced() {
        let mut problem = SelectionProblem::new(
            vec![app_calling("dep")],
            vec![Slot::new("dep", vec![provider(0.1), provider(0.2)])],
            "app",
            Bindings::new(),
        );
        problem.max_combinations = 1;
        assert!(matches!(
            select(&problem),
            Err(CoreError::SelectionSpaceTooLarge { .. })
        ));
    }

    #[test]
    fn empty_slot_yields_no_results() {
        let problem = SelectionProblem::new(
            vec![app_calling("dep")],
            vec![Slot::new("dep", vec![])],
            "app",
            Bindings::new(),
        );
        assert!(select(&problem).unwrap().is_empty());
    }
}
