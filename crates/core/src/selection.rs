//! Reliability-driven service selection.
//!
//! The paper's §1 motivation: "the prediction of such characteristics is
//! important to drive the **selection** of the services to be assembled".
//! This module closes that loop: given an assembly with *slots* — positions
//! for which several candidate services are available (different providers
//! of the same interface) — it enumerates the candidate combinations, builds
//! and validates each concrete assembly, predicts the target service's
//! reliability, and ranks the combinations.

use std::sync::Arc;
use std::time::Instant;

use archrel_expr::Bindings;
use archrel_model::{Assembly, AssemblyBuilder, Probability, Service, ServiceId, SimpleService};

use crate::batch::parallel_map_indexed;
use crate::eval::FlowBlockAccumulator;
use crate::sensitivity::default_workers;
use crate::staged::{StagedSweep, Staging};
use crate::{CoreError, EvalOptions, Evaluator, PlanCache, Result};

/// One selectable position in the assembly: any of the `candidates` can fill
/// it. Every candidate must offer the same service id and formal parameters
/// (same abstract interface, different provider).
#[derive(Debug, Clone)]
pub struct Slot {
    /// Human-readable slot label, used in results.
    pub label: String,
    /// Candidate services (all sharing one service id).
    pub candidates: Vec<Service>,
}

impl Slot {
    /// Creates a slot.
    pub fn new(label: impl Into<String>, candidates: Vec<Service>) -> Self {
        Slot {
            label: label.into(),
            candidates,
        }
    }
}

/// A service-selection problem.
#[derive(Debug, Clone)]
pub struct SelectionProblem {
    /// Services common to every combination.
    pub fixed: Vec<Service>,
    /// Selectable slots.
    pub slots: Vec<Slot>,
    /// The service whose reliability is optimized.
    pub target: ServiceId,
    /// Formal-parameter bindings of the target invocation.
    pub bindings: Bindings,
    /// Cap on the number of combinations explored (guards against
    /// combinatorial explosion); defaults to 100 000.
    pub max_combinations: u128,
    /// Evaluator options applied to every combination — in particular the
    /// [`crate::SolverPolicy`] used for the absorbing-chain solves.
    pub eval_options: EvalOptions,
}

impl SelectionProblem {
    /// Creates a problem with the default combination cap.
    pub fn new(
        fixed: Vec<Service>,
        slots: Vec<Slot>,
        target: impl Into<ServiceId>,
        bindings: Bindings,
    ) -> Self {
        SelectionProblem {
            fixed,
            slots,
            target: target.into(),
            bindings,
            max_combinations: 100_000,
            eval_options: EvalOptions::default(),
        }
    }

    /// Overrides the evaluator options used for every combination.
    #[must_use]
    pub fn with_eval_options(mut self, options: EvalOptions) -> Self {
        self.eval_options = options;
        self
    }
}

/// One evaluated combination.
#[derive(Debug, Clone)]
pub struct SelectionResult {
    /// Chosen candidate index per slot (parallel to `SelectionProblem::slots`).
    pub choices: Vec<usize>,
    /// Human-readable choice description: `(slot label, candidate index)`.
    pub description: Vec<(String, usize)>,
    /// Predicted failure probability of the target.
    pub failure_probability: Probability,
}

impl SelectionResult {
    /// Predicted reliability.
    pub fn reliability(&self) -> Probability {
        self.failure_probability.complement()
    }
}

/// Enumerates all candidate combinations and returns them ranked by
/// ascending failure probability (best first).
///
/// Combinations whose assembly fails validation (e.g. a candidate whose
/// interface does not match the flow that calls it) are skipped, so the
/// caller can mix partially compatible catalogs.
///
/// Runs on the batch path: the Cartesian product is enumerated up front and
/// the per-combination builds/evaluations are spread across worker threads.
/// Each combination is its **own** assembly, so combinations cannot share
/// the value-level solve cache — but they *do* share one compiled-plan
/// cache: candidates filling the same slot leave the flow structures
/// unchanged, so under a compiled-plan policy each structure is compiled
/// once and every combination replays the tape.
///
/// # Errors
///
/// - [`CoreError::SelectionSpaceTooLarge`] when the Cartesian product
///   exceeds the cap;
/// - evaluation errors for combinations that validate but fail to evaluate.
pub fn select(problem: &SelectionProblem) -> Result<Vec<SelectionResult>> {
    select_with_workers(problem, default_workers())
}

/// [`select`] with an explicit worker-thread count.
///
/// # Errors
///
/// See [`select`].
pub fn select_with_workers(
    problem: &SelectionProblem,
    workers: usize,
) -> Result<Vec<SelectionResult>> {
    let combinations: u128 = problem
        .slots
        .iter()
        .map(|s| s.candidates.len() as u128)
        .product();
    if combinations > problem.max_combinations {
        return Err(CoreError::SelectionSpaceTooLarge {
            combinations,
            cap: problem.max_combinations,
        });
    }
    if problem.slots.iter().any(|s| s.candidates.is_empty()) {
        return Ok(Vec::new());
    }

    // Enumerate the mixed-radix counter up front (the cap above bounds it).
    let mut all_choices: Vec<Vec<usize>> = Vec::with_capacity(combinations as usize);
    let mut choices = vec![0usize; problem.slots.len()];
    'enumerate: loop {
        all_choices.push(choices.clone());
        let mut pos = 0;
        loop {
            if pos == problem.slots.len() {
                break 'enumerate;
            }
            choices[pos] += 1;
            if choices[pos] < problem.slots[pos].candidates.len() {
                break;
            }
            choices[pos] = 0;
            pos += 1;
        }
    }

    let plans = Arc::new(PlanCache::new());
    // Staged fast path: when every slot holds simple-service candidates and
    // the target compiles to a staged sweep, each combination stages its
    // candidates as whole-model overrides on one compiled plan — no
    // per-combination assembly build, no `Bindings`, and lane-blocked tape
    // replay across combinations. Ineligible problems (and combinations
    // whose overrides change the flow structure) run the generic
    // build-and-evaluate path below, unchanged.
    let staged = staged_selection(problem, &plans)?;
    let evaluated = match &staged {
        Some(sel) => staged_results(sel, problem, &all_choices, &plans, workers),
        None => parallel_map_indexed(workers, &all_choices, |_, combination| {
            evaluate_combination(problem, combination, &plans)
        }),
    };
    let mut results = Vec::with_capacity(all_choices.len());
    for r in evaluated {
        if let Some(result) = r? {
            results.push(result);
        }
    }
    // Stable sort: ties keep enumeration order, independent of `workers`.
    results.sort_by(|a, b| {
        a.failure_probability
            .value()
            .partial_cmp(&b.failure_probability.value())
            .expect("probabilities are finite")
    });
    Ok(results)
}

/// Returns the best combination, if any validates.
///
/// # Errors
///
/// See [`select`].
pub fn select_best(problem: &SelectionProblem) -> Result<Option<SelectionResult>> {
    Ok(select(problem)?.into_iter().next())
}

/// A selection problem compiled for staged evaluation: the sweep over the
/// baseline (all-zero) combination, plus each slot's position in the
/// sweep's simple-service table (`None` when the slot's service is not
/// referenced by the target, so swapping it cannot move the prediction).
struct StagedSelection {
    sweep: StagedSweep,
    slot_index: Vec<Option<usize>>,
    /// Per slot, per candidate: whether substituting just that candidate
    /// into the baseline builds a valid assembly. Assembly validation is
    /// slot-local (ids and call targets are fixed by the baseline), so a
    /// combination validates iff all its candidates do — invalid ones are
    /// routed through the generic path, which skips them.
    valid: Vec<Vec<bool>>,
}

/// Compiles the staged form of `problem`, or `None` when it is not
/// eligible: staging needs every candidate to be a simple service sharing
/// its slot's id (a pure model swap), a baseline combination that builds,
/// and a target the sweep compiler accepts.
fn staged_selection(
    problem: &SelectionProblem,
    plans: &Arc<PlanCache>,
) -> Result<Option<StagedSelection>> {
    let mut slot_ids: Vec<&ServiceId> = Vec::with_capacity(problem.slots.len());
    for slot in &problem.slots {
        let mut ids = slot.candidates.iter().map(|c| match c {
            Service::Simple(s) => Some(s.id()),
            Service::Composite(_) => None,
        });
        let Some(Some(first)) = ids.next() else {
            return Ok(None);
        };
        if !ids.all(|id| id == Some(first)) {
            return Ok(None);
        }
        slot_ids.push(first);
    }
    let mut builder = AssemblyBuilder::new().services(problem.fixed.iter().cloned());
    for slot in &problem.slots {
        builder = builder.service(slot.candidates[0].clone());
    }
    let Ok(baseline) = builder.build() else {
        return Ok(None);
    };
    let Some(sweep) = StagedSweep::compile(
        &baseline,
        &problem.target,
        &problem.bindings,
        plans,
        problem.eval_options,
    )?
    else {
        return Ok(None);
    };
    let slot_index = slot_ids.iter().map(|id| sweep.simple_index(id)).collect();
    let valid = problem
        .slots
        .iter()
        .enumerate()
        .map(|(s, slot)| {
            slot.candidates
                .iter()
                .enumerate()
                .map(|(c, candidate)| {
                    if c == 0 {
                        return true; // the baseline built above
                    }
                    let mut builder =
                        AssemblyBuilder::new().services(problem.fixed.iter().cloned());
                    for (s2, slot2) in problem.slots.iter().enumerate() {
                        let pick = if s2 == s {
                            candidate
                        } else {
                            &slot2.candidates[0]
                        };
                        builder = builder.service(pick.clone());
                    }
                    builder.build().is_ok()
                })
                .collect()
        })
        .collect();
    Ok(Some(StagedSelection {
        sweep,
        slot_index,
        valid,
    }))
}

/// Evaluates every combination through the staged sweep, striping across
/// workers; combinations the sweep cannot stage run the generic path.
fn staged_results(
    sel: &StagedSelection,
    problem: &SelectionProblem,
    all_choices: &[Vec<usize>],
    plans: &Arc<PlanCache>,
    workers: usize,
) -> Vec<Result<Option<SelectionResult>>> {
    let options = problem.eval_options;
    let result_for = |choices: &[usize], failure_probability: Probability| SelectionResult {
        choices: choices.to_vec(),
        description: problem
            .slots
            .iter()
            .zip(choices)
            .map(|(s, &c)| (s.label.clone(), c))
            .collect(),
        failure_probability,
    };
    let run_stripe = |stripe: Vec<usize>| -> Vec<(usize, Result<Option<SelectionResult>>)> {
        let mut acc =
            FlowBlockAccumulator::new(Arc::clone(plans), options.plan_lanes, options.simd);
        let mut success = vec![f64::NAN; stripe.len()];
        let mut results: Vec<Option<Result<Option<SelectionResult>>>> =
            Vec::with_capacity(stripe.len());
        results.resize_with(stripe.len(), || None);
        let mut deferred: Vec<usize> = Vec::new();
        let mut scratch = sel.sweep.new_scratch();
        let mut overrides: Vec<Option<&SimpleService>> = Vec::new();
        let mut stage_nanos = 0u64;
        for (pos, &i) in stripe.iter().enumerate() {
            let choices = &all_choices[i];
            if choices.iter().zip(&sel.valid).any(|(&c, valid)| !valid[c]) {
                results[pos] = Some(evaluate_combination(problem, choices, plans));
                continue;
            }
            overrides.clear();
            overrides.resize(sel.sweep.simple_count(), None);
            for ((slot, &c), idx) in problem.slots.iter().zip(choices).zip(&sel.slot_index) {
                if let (Some(idx), Service::Simple(simple)) = (idx, &slot.candidates[c]) {
                    overrides[*idx] = Some(simple);
                }
            }
            let started = Instant::now();
            let staging = sel.sweep.stage_models(&overrides, &mut scratch);
            stage_nanos += u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            match staging {
                Ok(Staging::Row) => {
                    match acc.submit_row(sel.sweep.plan(), &scratch.row, pos, &mut success) {
                        Ok(()) => deferred.push(pos),
                        Err(err) => results[pos] = Some(Err(err.into())),
                    }
                }
                Ok(Staging::Fallback) => {
                    results[pos] = Some(evaluate_combination(problem, choices, plans));
                }
                Err(err) => results[pos] = Some(Err(err)),
            }
        }
        plans.record_stage_nanos(stage_nanos);
        acc.finish(&mut success);
        for (tag, err) in acc.take_errors() {
            results[tag] = Some(Err(err));
        }
        for pos in deferred {
            if results[pos].is_some() {
                continue;
            }
            results[pos] = Some(
                Probability::new(success[pos])
                    .map_err(CoreError::from)
                    .map(|p| Some(result_for(&all_choices[stripe[pos]], p.complement()))),
            );
        }
        stripe
            .into_iter()
            .zip(results)
            .map(|(i, r)| (i, r.expect("every combination resolved")))
            .collect()
    };

    let workers = workers.max(1).min(all_choices.len().max(1));
    let mut results: Vec<Option<Result<Option<SelectionResult>>>> =
        Vec::with_capacity(all_choices.len());
    results.resize_with(all_choices.len(), || None);
    if workers == 1 {
        for (i, r) in run_stripe((0..all_choices.len()).collect()) {
            results[i] = Some(r);
        }
    } else {
        let run_stripe = &run_stripe;
        let collected: Vec<Vec<(usize, Result<Option<SelectionResult>>)>> =
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        let stripe: Vec<usize> = (w..all_choices.len()).step_by(workers).collect();
                        scope.spawn(move |_| run_stripe(stripe))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("selection worker panicked"))
                    .collect()
            })
            .expect("selection worker panicked");
        for stripe in collected {
            for (i, r) in stripe {
                results[i] = Some(r);
            }
        }
    }
    results
        .into_iter()
        .map(|r| r.expect("every combination resolved"))
        .collect()
}

fn evaluate_combination(
    problem: &SelectionProblem,
    choices: &[usize],
    plans: &Arc<PlanCache>,
) -> Result<Option<SelectionResult>> {
    let mut builder = AssemblyBuilder::new().services(problem.fixed.iter().cloned());
    for (slot, &choice) in problem.slots.iter().zip(choices) {
        builder = builder.service(slot.candidates[choice].clone());
    }
    let assembly: Assembly = match builder.build() {
        Ok(a) => a,
        Err(_) => return Ok(None), // incompatible combination: skip
    };
    let evaluator = Evaluator::with_plan_cache(&assembly, problem.eval_options, Arc::clone(plans));
    let failure_probability = evaluator.failure_probability(&problem.target, &problem.bindings)?;
    Ok(Some(SelectionResult {
        choices: choices.to_vec(),
        description: problem
            .slots
            .iter()
            .zip(choices)
            .map(|(s, &c)| (s.label.clone(), c))
            .collect(),
        failure_probability,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use archrel_expr::Expr;
    use archrel_model::{catalog, CompositeService, FlowBuilder, FlowState, ServiceCall, StateId};

    fn app_calling(target: &str) -> Service {
        let flow = FlowBuilder::new()
            .state(FlowState::new(
                "1",
                vec![ServiceCall::new(target).with_param("x", Expr::num(1.0))],
            ))
            .transition(StateId::Start, "1", Expr::one())
            .transition("1", StateId::End, Expr::one())
            .build()
            .unwrap();
        Service::Composite(CompositeService::new("app", vec![], flow).unwrap())
    }

    fn provider(pfail: f64) -> Service {
        catalog::blackbox_service("dep", "x", pfail)
    }

    #[test]
    fn picks_the_most_reliable_provider() {
        let problem = SelectionProblem::new(
            vec![app_calling("dep")],
            vec![Slot::new(
                "dep-provider",
                vec![provider(0.10), provider(0.01), provider(0.05)],
            )],
            "app",
            Bindings::new(),
        );
        let results = select(&problem).unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].choices, vec![1]);
        assert!((results[0].failure_probability.value() - 0.01).abs() < 1e-12);
        assert!((results[0].reliability().value() - 0.99).abs() < 1e-12);
        // Ranked ascending by failure probability.
        assert!(results[1].failure_probability <= results[2].failure_probability);
        let best = select_best(&problem).unwrap().unwrap();
        assert_eq!(best.choices, vec![1]);
    }

    #[test]
    fn multi_slot_cartesian_product() {
        let flow = FlowBuilder::new()
            .state(FlowState::new(
                "1",
                vec![
                    ServiceCall::new("a").with_param("x", Expr::num(1.0)),
                    ServiceCall::new("b").with_param("x", Expr::num(1.0)),
                ],
            ))
            .transition(StateId::Start, "1", Expr::one())
            .transition("1", StateId::End, Expr::one())
            .build()
            .unwrap();
        let app = Service::Composite(CompositeService::new("app", vec![], flow).unwrap());
        let cand = |name: &str, p: f64| catalog::blackbox_service(name, "x", p);
        let problem = SelectionProblem::new(
            vec![app],
            vec![
                Slot::new("a", vec![cand("a", 0.2), cand("a", 0.1)]),
                Slot::new("b", vec![cand("b", 0.3), cand("b", 0.05)]),
            ],
            "app",
            Bindings::new(),
        );
        let results = select(&problem).unwrap();
        assert_eq!(results.len(), 4);
        assert_eq!(results[0].choices, vec![1, 1]);
        let expected = 1.0 - 0.9 * 0.95;
        assert!((results[0].failure_probability.value() - expected).abs() < 1e-12);
    }

    #[test]
    fn incompatible_candidates_are_skipped() {
        let wrong_interface = catalog::blackbox_service("dep", "y", 0.001);
        let problem = SelectionProblem::new(
            vec![app_calling("dep")],
            vec![Slot::new("dep", vec![wrong_interface, provider(0.2)])],
            "app",
            Bindings::new(),
        );
        let results = select(&problem).unwrap();
        // The y-parameter candidate fails assembly validation and is skipped.
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].choices, vec![1]);
    }

    #[test]
    fn worker_count_does_not_change_the_ranking() {
        let cand = |name: &str, p: f64| catalog::blackbox_service(name, "x", p);
        let flow = FlowBuilder::new()
            .state(FlowState::new(
                "1",
                vec![
                    ServiceCall::new("a").with_param("x", Expr::num(1.0)),
                    ServiceCall::new("b").with_param("x", Expr::num(1.0)),
                ],
            ))
            .transition(StateId::Start, "1", Expr::one())
            .transition("1", StateId::End, Expr::one())
            .build()
            .unwrap();
        let app = Service::Composite(CompositeService::new("app", vec![], flow).unwrap());
        let problem = SelectionProblem::new(
            vec![app],
            vec![
                Slot::new(
                    "a",
                    (0..5).map(|i| cand("a", 0.01 * (i + 1) as f64)).collect(),
                ),
                Slot::new(
                    "b",
                    (0..4).map(|i| cand("b", 0.02 * (i + 1) as f64)).collect(),
                ),
            ],
            "app",
            Bindings::new(),
        );
        let reference = select_with_workers(&problem, 1).unwrap();
        for workers in [2, 8] {
            let got = select_with_workers(&problem, workers).unwrap();
            assert_eq!(reference.len(), got.len());
            for (r, g) in reference.iter().zip(&got) {
                assert_eq!(r.choices, g.choices, "{workers} workers");
                assert_eq!(
                    r.failure_probability.value().to_bits(),
                    g.failure_probability.value().to_bits()
                );
            }
        }
    }

    #[test]
    fn solver_policy_does_not_change_the_ranking() {
        use crate::SolverPolicy;
        let problem = SelectionProblem::new(
            vec![app_calling("dep")],
            vec![Slot::new(
                "dep-provider",
                vec![provider(0.10), provider(0.01), provider(0.05)],
            )],
            "app",
            Bindings::new(),
        );
        let dense = select(&problem.clone().with_eval_options(EvalOptions {
            solver: SolverPolicy::Dense,
            ..EvalOptions::default()
        }))
        .unwrap();
        let sparse = select(&problem.with_eval_options(EvalOptions {
            solver: SolverPolicy::Sparse,
            ..EvalOptions::default()
        }))
        .unwrap();
        assert_eq!(dense.len(), sparse.len());
        for (d, s) in dense.iter().zip(&sparse) {
            assert_eq!(d.choices, s.choices);
            assert!((d.failure_probability.value() - s.failure_probability.value()).abs() < 1e-10);
        }
    }

    /// Under the compiled-plan policy the staged path takes over; it must
    /// be **bitwise** identical to the generic build-per-combination path
    /// on acyclic flows (block ≡ scalar covers the straight-line tape),
    /// at every worker count.
    #[test]
    fn staged_selection_matches_generic_rebuild_bitwise() {
        use crate::SolverPolicy;
        let cand = |name: &str, p: f64| catalog::blackbox_service(name, "x", p);
        let flow = FlowBuilder::new()
            .state(FlowState::new(
                "1",
                vec![
                    ServiceCall::new("a").with_param("x", Expr::num(1.0)),
                    ServiceCall::new("b").with_param("x", Expr::num(2.0)),
                ],
            ))
            .state(FlowState::new(
                "2",
                vec![ServiceCall::new("a").with_param("x", Expr::num(3.0))],
            ))
            .transition(StateId::Start, "1", Expr::one())
            .transition("1", "2", Expr::one())
            .transition("2", StateId::End, Expr::one())
            .build()
            .unwrap();
        let app = Service::Composite(CompositeService::new("app", vec![], flow).unwrap());
        let problem = SelectionProblem::new(
            vec![app],
            vec![
                Slot::new(
                    "a",
                    (0..5).map(|i| cand("a", 0.01 * (i + 1) as f64)).collect(),
                ),
                Slot::new(
                    "b",
                    (0..4).map(|i| cand("b", 0.02 * (i + 1) as f64)).collect(),
                ),
            ],
            "app",
            Bindings::new(),
        )
        .with_eval_options(EvalOptions {
            solver: SolverPolicy::Compiled,
            ..EvalOptions::default()
        });
        // Generic reference: the same combinations, rebuilt and evaluated
        // one at a time on the same compiled-plan policy.
        let plans = Arc::new(PlanCache::new());
        let staged = staged_selection(&problem, &plans).unwrap();
        assert!(staged.is_some(), "problem is stageable");
        let mut reference: Vec<SelectionResult> = Vec::new();
        for a in 0..5 {
            for b in 0..4 {
                if let Some(r) = evaluate_combination(&problem, &[a, b], &plans).unwrap() {
                    reference.push(r);
                }
            }
        }
        reference.sort_by(|x, y| {
            x.failure_probability
                .value()
                .partial_cmp(&y.failure_probability.value())
                .unwrap()
        });
        for workers in [1usize, 3] {
            let got = select_with_workers(&problem, workers).unwrap();
            assert_eq!(reference.len(), got.len());
            for (r, g) in reference.iter().zip(&got) {
                assert_eq!(r.choices, g.choices, "{workers} workers");
                assert_eq!(
                    r.failure_probability.value().to_bits(),
                    g.failure_probability.value().to_bits()
                );
            }
        }
        // Incompatible candidates are still skipped on the staged path.
        let mut slots = problem.slots.clone();
        slots[1]
            .candidates
            .push(catalog::blackbox_service("b", "y", 0.001));
        let problem = SelectionProblem { slots, ..problem };
        let results = select(&problem).unwrap();
        assert_eq!(results.len(), 20, "the y-interface candidate is skipped");
    }

    #[test]
    fn space_cap_enforced() {
        let mut problem = SelectionProblem::new(
            vec![app_calling("dep")],
            vec![Slot::new("dep", vec![provider(0.1), provider(0.2)])],
            "app",
            Bindings::new(),
        );
        problem.max_combinations = 1;
        assert!(matches!(
            select(&problem),
            Err(CoreError::SelectionSpaceTooLarge { .. })
        ));
    }

    #[test]
    fn empty_slot_yields_no_results() {
        let problem = SelectionProblem::new(
            vec![app_calling("dep")],
            vec![Slot::new("dep", vec![])],
            "app",
            Bindings::new(),
        );
        assert!(select(&problem).unwrap().is_empty());
    }
}
