//! Failure-structure augmentation (paper §3.2, Fig. 5, and the loop of
//! `Pfail_Alg` lines 8–12).
//!
//! Given a composite service's flow, concrete bindings for its formal
//! parameters, and the already-computed per-state failure probabilities
//! `p(i, Fail)`, this module produces the concrete absorbing DTMC: a new
//! `Fail` absorbing state, a transition `i → Fail` with probability
//! `p(i, Fail)` from every request-carrying state, and every pre-existing
//! transition out of `i` reweighted by `1 − p(i, Fail)`. Transitions out of
//! `Start` are left untouched — `Start` represents no real behavior, so no
//! failure can occur in it.

use std::collections::BTreeMap;

use archrel_expr::Bindings;
use archrel_markov::{Dtmc, DtmcBuilder};
use archrel_model::{CompositeService, Probability, StateId};

use crate::{CoreError, Result};

/// A state of the failure-augmented chain: the flow's own states plus the
/// added `Fail` absorbing state.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AugmentedState {
    /// A state of the original flow (`Start`, `End`, or named).
    Flow(StateId),
    /// The added absorbing failure state.
    Fail,
}

impl std::fmt::Display for AugmentedState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AugmentedState::Flow(s) => write!(f, "{s}"),
            AugmentedState::Fail => f.write_str("Fail"),
        }
    }
}

/// Builds the failure-augmented DTMC of `service` under `env`.
///
/// `state_failures` maps each named flow state to its `p(i, Fail)`; states
/// absent from the map are treated as failure-free (pure routing states).
///
/// # Errors
///
/// - [`CoreError::Expr`] when a transition probability fails to evaluate;
/// - [`CoreError::BadTransitions`] when a state's evaluated outgoing
///   probabilities do not sum to one (within 1e-9) or leave `[0, 1]`;
/// - [`CoreError::Markov`] when the resulting chain is malformed.
pub fn augmented_chain(
    service: &CompositeService,
    env: &Bindings,
    state_failures: &BTreeMap<StateId, Probability>,
) -> Result<Dtmc<AugmentedState>> {
    let flow = service.flow();

    // Evaluate all transition probabilities and validate row sums first so
    // the error messages speak flow language, not Markov language.
    let mut evaluated: Vec<(StateId, StateId, f64)> = Vec::new();
    let mut row_sums: BTreeMap<StateId, f64> = BTreeMap::new();
    for t in flow.transitions() {
        let p = t.probability.eval(env)?;
        if !(0.0..=1.0 + 1e-9).contains(&p) {
            return Err(CoreError::BadTransitions {
                service: service.id().to_string(),
                state: t.from.to_string(),
                sum: p,
            });
        }
        *row_sums.entry(t.from.clone()).or_insert(0.0) += p;
        evaluated.push((t.from.clone(), t.to.clone(), p));
    }
    for (state, sum) in &row_sums {
        if (sum - 1.0).abs() > 1e-9 {
            return Err(CoreError::BadTransitions {
                service: service.id().to_string(),
                state: state.to_string(),
                sum: *sum,
            });
        }
    }

    let mut builder = DtmcBuilder::new()
        .state(AugmentedState::Flow(StateId::End))
        .state(AugmentedState::Fail);

    // Merge parallel edges (same from/to) before declaring them: distinct
    // flow transitions may collapse after evaluation.
    let mut merged: BTreeMap<(StateId, StateId), f64> = BTreeMap::new();
    for (from, to, p) in evaluated {
        *merged.entry((from, to)).or_insert(0.0) += p;
    }

    for ((from, to), p) in merged {
        let failure = match &from {
            StateId::Start => Probability::ZERO,
            named => state_failures
                .get(named)
                .copied()
                .unwrap_or(Probability::ZERO),
        };
        let scaled = p * failure.complement().value();
        builder = builder.transition(AugmentedState::Flow(from), AugmentedState::Flow(to), scaled);
    }
    for (state, failure) in state_failures {
        if failure.is_zero() {
            continue;
        }
        builder = builder.transition(
            AugmentedState::Flow(state.clone()),
            AugmentedState::Fail,
            failure.value(),
        );
    }

    Ok(builder.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use archrel_expr::Expr;
    use archrel_markov::AbsorbingAnalysis;
    use archrel_model::{FlowBuilder, FlowState};

    fn two_state_service(q: f64) -> CompositeService {
        let flow = FlowBuilder::new()
            .state(FlowState::new("1", vec![]))
            .state(FlowState::new("2", vec![]))
            .transition(StateId::Start, "1", Expr::num(q))
            .transition(StateId::Start, "2", Expr::num(1.0 - q))
            .transition("1", "2", Expr::one())
            .transition("2", StateId::End, Expr::one())
            .build()
            .unwrap();
        CompositeService::new("svc", vec![], flow).unwrap()
    }

    fn failures(f1: f64, f2: f64) -> BTreeMap<StateId, Probability> {
        BTreeMap::from([
            (StateId::named("1"), Probability::new(f1).unwrap()),
            (StateId::named("2"), Probability::new(f2).unwrap()),
        ])
    }

    /// The search-flow shape of Fig. 5: Pfail = (1-q)·f2 + q·(1-(1-f1)(1-f2)).
    #[test]
    fn absorption_matches_hand_computation() {
        let (q, f1, f2) = (0.9, 0.01, 0.002);
        let svc = two_state_service(q);
        let chain = augmented_chain(&svc, &Bindings::new(), &failures(f1, f2)).unwrap();
        let analysis = AbsorbingAnalysis::new(&chain).unwrap();
        let p_end = analysis
            .absorption_probability(
                &AugmentedState::Flow(StateId::Start),
                &AugmentedState::Flow(StateId::End),
            )
            .unwrap();
        let expected_success = q * (1.0 - f1) * (1.0 - f2) + (1.0 - q) * (1.0 - f2);
        assert!((p_end - expected_success).abs() < 1e-12);
        // Complement goes to Fail.
        let p_fail = analysis
            .absorption_probability(&AugmentedState::Flow(StateId::Start), &AugmentedState::Fail)
            .unwrap();
        assert!((p_end + p_fail - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_failures_reach_end_certainly() {
        let svc = two_state_service(0.5);
        let chain = augmented_chain(&svc, &Bindings::new(), &BTreeMap::new()).unwrap();
        let analysis = AbsorbingAnalysis::new(&chain).unwrap();
        let p_end = analysis
            .absorption_probability(
                &AugmentedState::Flow(StateId::Start),
                &AugmentedState::Flow(StateId::End),
            )
            .unwrap();
        assert!((p_end - 1.0).abs() < 1e-12);
        // Fail state exists but is unreachable.
        assert!(chain.index_of(&AugmentedState::Fail).is_some());
    }

    #[test]
    fn certain_failure_absorbs_everything() {
        let svc = two_state_service(1.0);
        let chain = augmented_chain(&svc, &Bindings::new(), &failures(1.0, 1.0)).unwrap();
        let analysis = AbsorbingAnalysis::new(&chain).unwrap();
        let p_fail = analysis
            .absorption_probability(&AugmentedState::Flow(StateId::Start), &AugmentedState::Fail)
            .unwrap();
        assert!((p_fail - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parametric_transitions_use_bindings() {
        let flow = FlowBuilder::new()
            .state(FlowState::new("1", vec![]))
            .state(FlowState::new("2", vec![]))
            .transition(StateId::Start, "1", Expr::param("q"))
            .transition(StateId::Start, "2", Expr::one() - Expr::param("q"))
            .transition("1", StateId::End, Expr::one())
            .transition("2", StateId::End, Expr::one())
            .build()
            .unwrap();
        let svc = CompositeService::new("svc", vec!["q".to_string()], flow).unwrap();
        let env = Bindings::new().with("q", 0.25);
        let chain = augmented_chain(&svc, &env, &failures(1.0, 0.0)).unwrap();
        let analysis = AbsorbingAnalysis::new(&chain).unwrap();
        let p_end = analysis
            .absorption_probability(
                &AugmentedState::Flow(StateId::Start),
                &AugmentedState::Flow(StateId::End),
            )
            .unwrap();
        // Only the 1-q branch survives (state 1 always fails).
        assert!((p_end - 0.75).abs() < 1e-12);
    }

    #[test]
    fn unbound_parameter_is_reported() {
        let flow = FlowBuilder::new()
            .state(FlowState::new("1", vec![]))
            .transition(StateId::Start, "1", Expr::param("q"))
            .transition("1", StateId::End, Expr::one())
            .build()
            .unwrap();
        let svc = CompositeService::new("svc", vec!["q".to_string()], flow).unwrap();
        let err = augmented_chain(&svc, &Bindings::new(), &BTreeMap::new()).unwrap_err();
        assert!(matches!(err, CoreError::Expr(_)));
    }

    #[test]
    fn bad_row_sum_is_reported() {
        let flow = FlowBuilder::new()
            .state(FlowState::new("1", vec![]))
            .transition(StateId::Start, "1", Expr::param("q"))
            .transition("1", StateId::End, Expr::one())
            .build()
            .unwrap();
        let svc = CompositeService::new("svc", vec!["q".to_string()], flow).unwrap();
        let env = Bindings::new().with("q", 0.5);
        let err = augmented_chain(&svc, &env, &BTreeMap::new()).unwrap_err();
        assert!(matches!(err, CoreError::BadTransitions { .. }));
    }

    #[test]
    fn out_of_range_probability_is_reported() {
        let flow = FlowBuilder::new()
            .state(FlowState::new("1", vec![]))
            .transition(StateId::Start, "1", Expr::param("q"))
            .transition("1", StateId::End, Expr::one())
            .build()
            .unwrap();
        let svc = CompositeService::new("svc", vec!["q".to_string()], flow).unwrap();
        let env = Bindings::new().with("q", 1.5);
        let err = augmented_chain(&svc, &env, &BTreeMap::new()).unwrap_err();
        assert!(matches!(err, CoreError::BadTransitions { .. }));
    }
}
