//! Batch evaluation: many `(service, bindings)` queries over one assembly.
//!
//! Parameter sweeps — reliability curves over a demand range (Fig. 6),
//! sensitivity stencils, Monte Carlo uncertainty samples, service-selection
//! enumerations — all reduce to evaluating one [`Assembly`] at many points.
//! [`BatchEvaluator`] partitions such a query list across worker threads
//! that share a single [`Evaluator`], and therefore a single
//! content-addressed solve cache keyed by `(service, resolved-parameter
//! fingerprint)`: each distinct per-service absorbing-chain solve happens
//! exactly once per sweep no matter which worker reaches it first.
//!
//! Output ordering is deterministic — results come back in query order
//! regardless of the worker count — and the computed *values* are identical
//! to a sequential run: every cache entry is the result of the same pure
//! evaluation procedure, so a cache hit returns bit-for-bit the number the
//! worker would have computed itself.
//!
//! Results are **not** shared across queries when the evaluator runs in
//! [`CycleMode::FixedPoint`](crate::CycleMode::FixedPoint) and the assembly
//! actually contains a cycle: values computed from intermediate estimates
//! are approximations, so the evaluator never persists them (see
//! `Evaluator::eval_fixed_point`), and each query pays for its own fixed
//! point.

use archrel_expr::Bindings;
use archrel_model::{Probability, ServiceId};

use crate::eval::CacheStats;
use crate::{EvalOptions, Evaluator, Result, SolverPolicy};

/// One evaluation request: a target service and its parameter bindings.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The service whose failure probability is requested.
    pub service: ServiceId,
    /// Bindings for the service's formal parameters.
    pub env: Bindings,
}

impl Query {
    /// Builds a query.
    pub fn new(service: impl Into<ServiceId>, env: Bindings) -> Self {
        Query {
            service: service.into(),
            env,
        }
    }
}

/// Summary of one `evaluate_all` sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchSummary {
    /// Queries evaluated.
    pub queries: u64,
    /// Worker threads used.
    pub workers: u64,
    /// Cache activity during this sweep (difference of before/after
    /// snapshots of the shared evaluator's counters).
    pub cache: CacheStats,
}

/// Multi-threaded batch front-end over a shared [`Evaluator`].
///
/// # Examples
///
/// ```
/// use archrel_core::batch::{BatchEvaluator, Query};
/// use archrel_model::paper;
///
/// let assembly = paper::remote_assembly(&paper::PaperParams::default()).unwrap();
/// let batch = BatchEvaluator::new(&assembly).with_workers(4);
/// let queries: Vec<Query> = (1..=64)
///     .map(|i| Query::new(paper::SEARCH, paper::search_bindings(4.0, (i * 64) as f64, 1.0)))
///     .collect();
/// let results = batch.evaluate_all(&queries);
/// assert_eq!(results.len(), queries.len());
/// assert!(results.iter().all(|r| r.is_ok()));
/// ```
#[derive(Debug)]
pub struct BatchEvaluator<'a> {
    evaluator: Evaluator<'a>,
    workers: usize,
}

impl<'a> BatchEvaluator<'a> {
    /// Builds a batch evaluator with default options and a worker count
    /// matching the machine's available parallelism.
    pub fn new(assembly: &'a archrel_model::Assembly) -> Self {
        BatchEvaluator::with_options(assembly, EvalOptions::default())
    }

    /// Builds a batch evaluator with explicit evaluation options.
    pub fn with_options(assembly: &'a archrel_model::Assembly, options: EvalOptions) -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        BatchEvaluator {
            evaluator: Evaluator::with_options(assembly, options),
            workers,
        }
    }

    /// Builds a batch evaluator with an explicit [`SolverPolicy`] and
    /// otherwise-default options.
    pub fn with_solver(assembly: &'a archrel_model::Assembly, solver: SolverPolicy) -> Self {
        BatchEvaluator::with_options(
            assembly,
            EvalOptions {
                solver,
                ..EvalOptions::default()
            },
        )
    }

    /// Wraps an existing evaluator (sharing its warm cache).
    pub fn from_evaluator(evaluator: Evaluator<'a>) -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        BatchEvaluator { evaluator, workers }
    }

    /// Sets the worker-thread count (clamped to at least 1).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Attaches a cooperative cancellation token to the underlying
    /// evaluator (see [`Evaluator::with_cancellation`]): every worker
    /// checks it, so one tripped token aborts the whole sweep with typed
    /// per-query errors.
    #[must_use]
    pub fn with_cancellation(mut self, token: crate::CancelToken) -> Self {
        self.evaluator = self.evaluator.with_cancellation(token);
        self
    }

    /// The underlying shared evaluator.
    pub fn evaluator(&self) -> &Evaluator<'a> {
        &self.evaluator
    }

    /// Worker threads the next sweep will use.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Cache counters accumulated over the evaluator's whole lifetime.
    pub fn cache_stats(&self) -> CacheStats {
        self.evaluator.cache_stats()
    }

    /// Evaluates `Pfail` for every query, in query order.
    ///
    /// Queries are striped across the worker threads; every worker writes
    /// results into its own disjoint slots, so the output order never
    /// depends on scheduling. Within its stripe each worker groups queries
    /// by target service and answers every group through
    /// [`Evaluator::failure_probabilities_block`], so points sharing a
    /// compiled structure are solved in lane-sized blocks by one tape
    /// replay. Block and scalar results are bitwise-identical on compiled
    /// acyclic structures, so the grouping is invisible in the output.
    /// Failures are per-query: one malformed query yields an `Err` in its
    /// slot without poisoning the rest.
    pub fn evaluate_all(&self, queries: &[Query]) -> Vec<Result<Probability>> {
        self.blocked_sweep(queries, false)
    }

    /// Like [`BatchEvaluator::evaluate_all`], returning reliabilities.
    pub fn reliabilities(&self, queries: &[Query]) -> Vec<Result<Probability>> {
        self.blocked_sweep(queries, true)
    }

    /// Evaluates every query and also reports the sweep's cache activity.
    pub fn evaluate_all_summarized(
        &self,
        queries: &[Query],
    ) -> (Vec<Result<Probability>>, BatchSummary) {
        let before = self.evaluator.cache_stats();
        let results = self.evaluate_all(queries);
        let after = self.evaluator.cache_stats();
        let summary = BatchSummary {
            queries: queries.len() as u64,
            workers: self.workers as u64,
            cache: CacheStats {
                hits: after.hits - before.hits,
                misses: after.misses - before.misses,
                solves: after.solves - before.solves,
                solve_nanos: after.solve_nanos - before.solve_nanos,
                plan_hits: after.plan_hits - before.plan_hits,
                plan_misses: after.plan_misses - before.plan_misses,
                rank1_solves: after.rank1_solves - before.rank1_solves,
                full_solves: after.full_solves - before.full_solves,
                block_points: after.block_points - before.block_points,
                block_flushes: after.block_flushes - before.block_flushes,
                extract_nanos: after.extract_nanos - before.extract_nanos,
                stage_nanos: after.stage_nanos - before.stage_nanos,
                replay_nanos: after.replay_nanos - before.replay_nanos,
                plan_evictions: after.plan_evictions - before.plan_evictions,
                memo_hits: after.memo_hits - before.memo_hits,
                memo_misses: after.memo_misses - before.memo_misses,
                pin_hits: after.pin_hits - before.pin_hits,
                programs_compiled: after.programs_compiled - before.programs_compiled,
                fixed_point_sweeps: after.fixed_point_sweeps - before.fixed_point_sweeps,
                aitken_accels: after.aitken_accels - before.aitken_accels,
                aitken_fallbacks: after.aitken_fallbacks - before.aitken_fallbacks,
                program_loop_sccs: after.program_loop_sccs - before.program_loop_sccs,
                scc_iterations: after.scc_iterations - before.scc_iterations,
                store_hits: after.store_hits - before.store_hits,
                store_misses: after.store_misses - before.store_misses,
                store_validate_rejects: after.store_validate_rejects
                    - before.store_validate_rejects,
                store_writes: after.store_writes - before.store_writes,
            },
        };
        (results, summary)
    }

    /// Striped, service-grouped sweep over the blocked evaluation path.
    fn blocked_sweep(&self, queries: &[Query], complement: bool) -> Vec<Result<Probability>> {
        let workers = self.workers.max(1).min(queries.len().max(1));
        let evaluator = &self.evaluator;
        let run_stripe = |indices: Vec<usize>| -> Vec<(usize, Result<Probability>)> {
            // Group the stripe's queries by service, preserving stripe
            // order within each group; every group becomes one blocked
            // evaluation call.
            let mut groups: Vec<(&ServiceId, Vec<usize>)> = Vec::new();
            for &i in &indices {
                let service = &queries[i].service;
                match groups.iter_mut().find(|(s, _)| *s == service) {
                    Some((_, group)) => group.push(i),
                    None => groups.push((service, vec![i])),
                }
            }
            let mut out = Vec::with_capacity(indices.len());
            for (service, group) in groups {
                let envs: Vec<&Bindings> = group.iter().map(|&i| &queries[i].env).collect();
                let results = evaluator.failure_probabilities_block(service, &envs);
                for (&i, r) in group.iter().zip(results) {
                    let r = if complement {
                        r.map(|p| p.complement())
                    } else {
                        r
                    };
                    out.push((i, r));
                }
            }
            out
        };

        let mut results: Vec<Option<Result<Probability>>> = Vec::with_capacity(queries.len());
        results.resize_with(queries.len(), || None);
        if workers == 1 {
            for (i, r) in run_stripe((0..queries.len()).collect()) {
                results[i] = Some(r);
            }
        } else {
            let run_stripe = &run_stripe;
            let collected: Vec<Vec<(usize, Result<Probability>)>> =
                crossbeam::thread::scope(|scope| {
                    let handles: Vec<_> = (0..workers)
                        .map(|w| {
                            let stripe: Vec<usize> = (w..queries.len()).step_by(workers).collect();
                            scope.spawn(move |_| run_stripe(stripe))
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("batch worker panicked"))
                        .collect()
                })
                .expect("batch worker panicked");
            for pairs in collected {
                for (i, r) in pairs {
                    results[i] = Some(r);
                }
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every query answered"))
            .collect()
    }
}

/// Answers `Pfail` for many parameter points of one service, striping the
/// points across up to `workers` threads; every stripe runs through
/// [`Evaluator::failure_probabilities_block`]. Output is in input order and
/// bitwise-independent of the worker count (block ≡ scalar per lane).
pub(crate) fn blocked_probabilities(
    evaluator: &Evaluator<'_>,
    service: &ServiceId,
    envs: &[&Bindings],
    workers: usize,
) -> Vec<Result<Probability>> {
    let workers = workers.max(1).min(envs.len().max(1));
    if workers == 1 {
        return evaluator.failure_probabilities_block(service, envs);
    }
    let mut results: Vec<Option<Result<Probability>>> = Vec::with_capacity(envs.len());
    results.resize_with(envs.len(), || None);
    let run_stripe = |stripe: Vec<usize>| -> Vec<(usize, Result<Probability>)> {
        let stripe_envs: Vec<&Bindings> = stripe.iter().map(|&i| envs[i]).collect();
        stripe
            .iter()
            .copied()
            .zip(evaluator.failure_probabilities_block(service, &stripe_envs))
            .collect()
    };
    let run_stripe = &run_stripe;
    let collected: Vec<Vec<(usize, Result<Probability>)>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let stripe: Vec<usize> = (w..envs.len()).step_by(workers).collect();
                scope.spawn(move |_| run_stripe(stripe))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("blocked worker panicked"))
            .collect()
    })
    .expect("blocked worker panicked");
    for pairs in collected {
        for (i, r) in pairs {
            results[i] = Some(r);
        }
    }
    results
        .into_iter()
        .map(|r| r.expect("every point answered"))
        .collect()
}

/// Runs `f` over `items` on up to `workers` scoped threads, returning the
/// outputs **in input order**.
///
/// Items are striped (worker `w` takes items `w`, `w + workers`, ...): for
/// sweep-shaped inputs, neighbouring items usually share sub-solves, so
/// striping spreads the cache-warming misses across workers instead of
/// letting one worker take all of them. Each worker owns a disjoint set of
/// output slots, which makes the order deterministic by construction.
///
/// `f` receives the item's input index alongside the item.
pub(crate) fn parallel_map_indexed<T, U, F>(workers: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let workers = workers.max(1).min(items.len().max(1));
    if workers == 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let mut results: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
    let slots: Vec<&mut Option<U>> = results.iter_mut().collect();

    // Give each worker every `workers`-th slot, preserving the slot's index.
    let mut per_worker: Vec<Vec<(usize, &mut Option<U>)>> =
        (0..workers).map(|_| Vec::new()).collect();
    for (i, slot) in slots.into_iter().enumerate() {
        per_worker[i % workers].push((i, slot));
    }

    let f = &f;
    crossbeam::thread::scope(|scope| {
        for stripe in per_worker {
            scope.spawn(move |_| {
                for (i, slot) in stripe {
                    *slot = Some(f(i, &items[i]));
                }
            });
        }
    })
    .expect("batch worker panicked");

    results
        .into_iter()
        .map(|r| r.expect("every slot was written by exactly one worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CycleMode;
    use archrel_model::paper;

    fn paper_queries(n: usize) -> (archrel_model::Assembly, Vec<Query>) {
        let assembly = paper::remote_assembly(&paper::PaperParams::default()).unwrap();
        let queries = (0..n)
            .map(|i| {
                Query::new(
                    paper::SEARCH,
                    paper::search_bindings(4.0, 64.0 * (1 + i % 32) as f64, 1.0),
                )
            })
            .collect();
        (assembly, queries)
    }

    #[test]
    fn batch_matches_sequential_bitwise() {
        let (assembly, queries) = paper_queries(96);
        let sequential: Vec<_> = {
            let eval = Evaluator::new(&assembly);
            queries
                .iter()
                .map(|q| eval.failure_probability(&q.service, &q.env).unwrap())
                .collect()
        };
        for workers in [1, 2, 5, 8] {
            let batch = BatchEvaluator::new(&assembly).with_workers(workers);
            let got = batch.evaluate_all(&queries);
            for (s, g) in sequential.iter().zip(&got) {
                let g = g.as_ref().unwrap();
                assert_eq!(
                    s.value().to_bits(),
                    g.value().to_bits(),
                    "{workers} workers"
                );
            }
        }
    }

    #[test]
    fn per_query_errors_do_not_poison_the_batch() {
        let (assembly, mut queries) = paper_queries(8);
        queries[3] = Query::new("no-such-service", Bindings::new());
        let batch = BatchEvaluator::new(&assembly).with_workers(4);
        let results = batch.evaluate_all(&queries);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.is_err(), i == 3, "slot {i}");
        }
    }

    #[test]
    fn repeated_queries_hit_the_shared_cache() {
        let (assembly, _) = paper_queries(0);
        let env = paper::search_bindings(4.0, 4096.0, 1.0);
        let queries: Vec<Query> = (0..64)
            .map(|_| Query::new(paper::SEARCH, env.clone()))
            .collect();
        let batch = BatchEvaluator::new(&assembly).with_workers(4);
        let (results, summary) = batch.evaluate_all_summarized(&queries);
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(summary.queries, 64);
        // 64 identical queries: at most a few top-level misses while the
        // first evaluations race, then hits all the way.
        assert!(summary.cache.hits >= 32, "{:?}", summary.cache);
        assert!(summary.cache.solves < 64, "{:?}", summary.cache);
    }

    #[test]
    fn reliabilities_complement_failures() {
        let (assembly, queries) = paper_queries(16);
        let batch = BatchEvaluator::new(&assembly).with_workers(3);
        let fail = batch.evaluate_all(&queries);
        let rel = batch.reliabilities(&queries);
        for (f, r) in fail.iter().zip(&rel) {
            let (f, r) = (f.as_ref().unwrap(), r.as_ref().unwrap());
            assert!((f.value() + r.value() - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn every_solver_policy_batches_and_agrees() {
        let (assembly, queries) = paper_queries(24);
        let dense =
            BatchEvaluator::with_solver(&assembly, SolverPolicy::Dense).evaluate_all(&queries);
        for policy in [SolverPolicy::Auto, SolverPolicy::Sparse] {
            let got = BatchEvaluator::with_solver(&assembly, policy)
                .with_workers(4)
                .evaluate_all(&queries);
            for (d, g) in dense.iter().zip(&got) {
                let (d, g) = (d.as_ref().unwrap(), g.as_ref().unwrap());
                assert!(
                    (d.value() - g.value()).abs() < 1e-10,
                    "{policy:?}: {} vs {}",
                    d.value(),
                    g.value()
                );
            }
        }
    }

    #[test]
    fn fixed_point_mode_is_supported_per_query() {
        use archrel_expr::Expr;
        use archrel_model::{
            AssemblyBuilder, CompositeService, FailureModel, FlowBuilder, FlowState, Service,
            ServiceCall, SimpleService, StateId,
        };
        // svc: with prob 0.5 recurse, else call a leaf with Pfail 0.2.
        let flow = FlowBuilder::new()
            .state(FlowState::new("again", vec![ServiceCall::new("svc")]))
            .state(FlowState::new(
                "base",
                vec![ServiceCall::new("leaf").with_param("x", Expr::zero())],
            ))
            .transition(StateId::Start, "again", Expr::num(0.5))
            .transition(StateId::Start, "base", Expr::num(0.5))
            .transition("again", StateId::End, Expr::one())
            .transition("base", StateId::End, Expr::one())
            .build()
            .unwrap();
        let assembly = AssemblyBuilder::new()
            .service(Service::Simple(SimpleService::new(
                "leaf",
                "x",
                FailureModel::Constant { probability: 0.2 },
            )))
            .service(Service::Composite(
                CompositeService::new("svc", vec![], flow).unwrap(),
            ))
            .build()
            .unwrap();
        let batch = BatchEvaluator::with_options(
            &assembly,
            EvalOptions {
                cycle_mode: CycleMode::FixedPoint {
                    max_iterations: 200,
                    tolerance: 1e-12,
                },
                ..EvalOptions::default()
            },
        )
        .with_workers(4);
        let queries: Vec<Query> = (0..8).map(|_| Query::new("svc", Bindings::new())).collect();
        let results = batch.evaluate_all(&queries);
        for r in &results {
            assert!((r.as_ref().unwrap().value() - 0.2).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let (assembly, _) = paper_queries(0);
        let batch = BatchEvaluator::new(&assembly);
        assert!(batch.evaluate_all(&[]).is_empty());
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..103).collect();
        for workers in [1, 2, 3, 8, 64, 200] {
            let out = parallel_map_indexed(workers, &items, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }
}
