//! Property-based tests for the model crate's probability algebra and
//! failure laws.

use archrel_model::{CompletionModel, DependencyModel, FailureModel, Probability};
use proptest::prelude::*;

fn prob() -> impl Strategy<Value = Probability> {
    (0.0..=1.0f64).prop_map(|v| Probability::new(v).expect("in range"))
}

proptest! {
    #[test]
    fn complement_is_involutive(p in prob()) {
        let twice = p.complement().complement();
        prop_assert!((twice.value() - p.value()).abs() < 1e-15);
    }

    #[test]
    fn both_and_either_are_commutative((p, q) in (prob(), prob())) {
        prop_assert!((p.both(q).value() - q.both(p).value()).abs() < 1e-15);
        prop_assert!((p.either(q).value() - q.either(p).value()).abs() < 1e-15);
    }

    #[test]
    fn de_morgan_for_independent_events((p, q) in (prob(), prob())) {
        // P(A or B) = 1 - P(!A and !B)
        let lhs = p.either(q).value();
        let rhs = 1.0 - p.complement().both(q.complement()).value();
        prop_assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn at_least_is_monotone_decreasing_in_k(ps in proptest::collection::vec(prob(), 1..8)) {
        let mut last = f64::INFINITY;
        for k in 0..=ps.len() {
            let v = Probability::at_least(k, &ps).value();
            prop_assert!(v <= last + 1e-12, "k={k}: {v} > {last}");
            prop_assert!((0.0..=1.0).contains(&v));
            last = v;
        }
    }

    #[test]
    fn at_least_matches_exhaustive_enumeration(
        ps in proptest::collection::vec(prob(), 1..6),
        k in 0usize..6,
    ) {
        let k = k.min(ps.len());
        let mut total = 0.0;
        for mask in 0u32..(1 << ps.len()) {
            if (mask.count_ones() as usize) < k {
                continue;
            }
            let mut prob_mass = 1.0;
            for (i, p) in ps.iter().enumerate() {
                prob_mass *= if mask & (1 << i) != 0 {
                    p.value()
                } else {
                    1.0 - p.value()
                };
            }
            total += prob_mass;
        }
        let fast = Probability::at_least(k, &ps).value();
        prop_assert!((fast - total).abs() < 1e-10, "k={k}: {fast} vs {total}");
    }

    #[test]
    fn failure_laws_are_monotone_in_demand(
        rate in 0.0..1.0f64,
        capacity in 0.1..1e6f64,
        d1 in 0.0..1e6f64,
        d2 in 0.0..1e6f64,
    ) {
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        for model in [
            FailureModel::ExponentialRate { rate, capacity },
            FailureModel::PerUnit { probability: rate.min(0.999) },
        ] {
            let p_lo = model.failure_probability(lo).unwrap().value();
            let p_hi = model.failure_probability(hi).unwrap().value();
            prop_assert!(p_lo <= p_hi + 1e-12, "{model:?}: {p_lo} > {p_hi}");
        }
    }

    #[test]
    fn failure_laws_stay_in_unit_interval(
        rate in 0.0..100.0f64,
        capacity in 0.001..1e9f64,
        demand in 0.0..1e12f64,
    ) {
        let p = FailureModel::ExponentialRate { rate, capacity }
            .failure_probability(demand)
            .unwrap()
            .value();
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn state_failure_bounds_under_all_models(
        ints in proptest::collection::vec(0.0..1.0f64, 1..5),
        exts in proptest::collection::vec(0.0..1.0f64, 1..5),
    ) {
        use archrel_core::{state_failure_probability, RequestFailure};
        let n = ints.len().min(exts.len());
        let requests: Vec<RequestFailure> = (0..n)
            .map(|i| {
                RequestFailure::new(
                    Probability::new(ints[i]).unwrap(),
                    Probability::new(exts[i]).unwrap(),
                )
            })
            .collect();
        for completion in [
            CompletionModel::And,
            CompletionModel::Or,
            CompletionModel::KOutOfN { k: 1.max(n / 2) },
        ] {
            for dependency in [DependencyModel::Independent, DependencyModel::Shared] {
                let f = state_failure_probability(completion, dependency, &requests)
                    .unwrap()
                    .value();
                prop_assert!((0.0..=1.0).contains(&f));
                // OR is never harder to satisfy than AND.
                let f_and = state_failure_probability(CompletionModel::And, dependency, &requests)
                    .unwrap()
                    .value();
                let f_or = state_failure_probability(CompletionModel::Or, dependency, &requests)
                    .unwrap()
                    .value();
                prop_assert!(f_or <= f_and + 1e-12);
                prop_assert!(f_or <= f + 1e-12 || f <= f_and + 1e-12);
            }
        }
    }
}
