use serde::{Deserialize, Serialize};

use crate::{ModelError, Probability, Result};

/// Published failure law of a *simple service* (paper §3.1).
///
/// Simple services do not require other services; their reliability is a
/// known closed-form function of the abstract demand parameter (number of
/// operations for CPUs, bytes for networks).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FailureModel {
    /// Exponential failure law with a service capacity (eqs. 1–2):
    /// `Pfail(demand) = 1 − e^(−rate · demand / capacity)`.
    ///
    /// For a CPU, `rate` is λ (failures/time-unit) and `capacity` is the
    /// speed `s` (operations/time-unit); for a network, `rate` is the link
    /// failure rate and `capacity` the bandwidth (bytes/time-unit).
    ExponentialRate {
        /// Failure rate per time unit.
        rate: f64,
        /// Work units served per time unit (must be positive).
        capacity: f64,
    },
    /// A perfectly reliable service, used for pure-modeling connectors such
    /// as the paper's "local processing" deployment links (§3.1: "their
    /// failure probability is equal to zero").
    Perfect,
    /// A demand-independent failure probability, useful for black-box
    /// services that publish a single reliability number.
    Constant {
        /// Failure probability per invocation.
        probability: f64,
    },
    /// Per-unit failure probability: `Pfail(demand) = 1 − (1 − p)^demand`.
    ///
    /// The discrete analogue of [`FailureModel::ExponentialRate`]; also the
    /// software-failure law of eq. 14 lifted to a simple service.
    PerUnit {
        /// Failure probability per unit of demand.
        probability: f64,
    },
}

impl FailureModel {
    /// Validates the model's attributes.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidAttribute`] or
    /// [`ModelError::InvalidProbability`] on out-of-range values.
    pub fn validate(&self) -> Result<()> {
        match *self {
            FailureModel::ExponentialRate { rate, capacity } => {
                if !rate.is_finite() || rate < 0.0 {
                    return Err(ModelError::InvalidAttribute {
                        name: "rate",
                        value: rate,
                    });
                }
                if !capacity.is_finite() || capacity <= 0.0 {
                    return Err(ModelError::InvalidAttribute {
                        name: "capacity",
                        value: capacity,
                    });
                }
                Ok(())
            }
            FailureModel::Perfect => Ok(()),
            FailureModel::Constant { probability } | FailureModel::PerUnit { probability } => {
                Probability::new(probability).map(|_| ())
            }
        }
    }

    /// Failure probability when serving `demand` abstract work units.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidDemand`] for negative or non-finite
    /// demand, and attribute errors as in [`FailureModel::validate`].
    pub fn failure_probability(&self, demand: f64) -> Result<Probability> {
        if !demand.is_finite() || demand < 0.0 {
            return Err(ModelError::InvalidDemand { value: demand });
        }
        self.validate()?;
        match *self {
            FailureModel::ExponentialRate { rate, capacity } => {
                Probability::new(1.0 - (-rate * demand / capacity).exp())
            }
            FailureModel::Perfect => Ok(Probability::ZERO),
            FailureModel::Constant { probability } => Probability::new(probability),
            FailureModel::PerUnit { probability } => {
                Probability::new(1.0 - (1.0 - probability).powf(demand))
            }
        }
    }
}

/// Internal-failure law of a service *request* (paper §3.2, discussion of
/// `Pfail_int(Aij)` and eq. 14).
///
/// When a composite service issues a request, the request can fail for
/// reasons internal to the *caller*: for a plain method call this is usually
/// negligible (case a), while for a `call(cpu, N)` that runs the caller's own
/// code it is the probability that the code's software faults manifest
/// (case b, eq. 14).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum InternalFailureModel {
    /// The call operation itself is perfectly reliable (the paper's default
    /// for method calls).
    #[default]
    None,
    /// A fixed per-request internal failure probability.
    Constant {
        /// Failure probability per request.
        probability: f64,
    },
    /// Software-reliability law of eq. 14:
    /// `Pfail_int = 1 − (1 − ϕ)^N`, with `N` the evaluated demand of the
    /// request (the same expression used as the actual parameter).
    PerOperation {
        /// Software failure rate ϕ (probability of failure per operation).
        phi: f64,
    },
}

impl InternalFailureModel {
    /// Validates the model's attributes.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidProbability`] when ϕ or the constant is
    /// out of range.
    pub fn validate(&self) -> Result<()> {
        match *self {
            InternalFailureModel::None => Ok(()),
            InternalFailureModel::Constant { probability } => {
                Probability::new(probability).map(|_| ())
            }
            InternalFailureModel::PerOperation { phi } => Probability::new(phi).map(|_| ()),
        }
    }

    /// Internal failure probability for a request whose evaluated demand is
    /// `operations` (ignored by the demand-independent variants).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidDemand`] for negative or non-finite
    /// demand and probability errors as in
    /// [`InternalFailureModel::validate`].
    pub fn failure_probability(&self, operations: f64) -> Result<Probability> {
        self.validate()?;
        match *self {
            InternalFailureModel::None => Ok(Probability::ZERO),
            InternalFailureModel::Constant { probability } => Probability::new(probability),
            InternalFailureModel::PerOperation { phi } => {
                if !operations.is_finite() || operations < 0.0 {
                    return Err(ModelError::InvalidDemand { value: operations });
                }
                Probability::new(1.0 - (1.0 - phi).powf(operations))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_rate_matches_eq1() {
        // Pfail(cpu, N) = 1 - e^(-λN/s)
        let m = FailureModel::ExponentialRate {
            rate: 1e-9,
            capacity: 2e9,
        };
        let p = m.failure_probability(1e6).unwrap().value();
        let expected = 1.0 - (-1e-9 * 1e6 / 2e9f64).exp();
        assert!((p - expected).abs() < 1e-18);
    }

    #[test]
    fn zero_demand_never_fails() {
        let m = FailureModel::ExponentialRate {
            rate: 0.5,
            capacity: 1.0,
        };
        assert_eq!(m.failure_probability(0.0).unwrap(), Probability::ZERO);
        let m = FailureModel::PerUnit { probability: 0.3 };
        assert_eq!(m.failure_probability(0.0).unwrap(), Probability::ZERO);
    }

    #[test]
    fn perfect_service() {
        assert_eq!(
            FailureModel::Perfect.failure_probability(1e12).unwrap(),
            Probability::ZERO
        );
    }

    #[test]
    fn constant_ignores_demand() {
        let m = FailureModel::Constant { probability: 0.25 };
        assert_eq!(m.failure_probability(1.0).unwrap().value(), 0.25);
        assert_eq!(m.failure_probability(1e9).unwrap().value(), 0.25);
    }

    #[test]
    fn per_unit_is_monotone_in_demand() {
        let m = FailureModel::PerUnit { probability: 1e-3 };
        let p10 = m.failure_probability(10.0).unwrap().value();
        let p100 = m.failure_probability(100.0).unwrap().value();
        assert!(p10 < p100);
        assert!((p10 - (1.0 - 0.999f64.powi(10))).abs() < 1e-15);
    }

    #[test]
    fn invalid_attributes_rejected() {
        assert!(FailureModel::ExponentialRate {
            rate: -1.0,
            capacity: 1.0
        }
        .validate()
        .is_err());
        assert!(FailureModel::ExponentialRate {
            rate: 1.0,
            capacity: 0.0
        }
        .validate()
        .is_err());
        assert!(FailureModel::Constant { probability: 1.5 }
            .validate()
            .is_err());
        assert!(FailureModel::PerUnit { probability: -0.1 }
            .validate()
            .is_err());
    }

    #[test]
    fn negative_demand_rejected() {
        let m = FailureModel::Perfect;
        assert!(matches!(
            m.failure_probability(-1.0),
            Err(ModelError::InvalidDemand { .. })
        ));
    }

    #[test]
    fn internal_per_operation_matches_eq14() {
        // Pfail_int = 1 - (1-ϕ)^N
        let m = InternalFailureModel::PerOperation { phi: 1e-6 };
        let p = m.failure_probability(1000.0).unwrap().value();
        let expected = 1.0 - (1.0 - 1e-6f64).powf(1000.0);
        assert!((p - expected).abs() < 1e-15);
    }

    #[test]
    fn internal_none_is_zero() {
        assert_eq!(
            InternalFailureModel::None.failure_probability(1e9).unwrap(),
            Probability::ZERO
        );
    }

    #[test]
    fn internal_invalid_phi_rejected() {
        assert!(InternalFailureModel::PerOperation { phi: 2.0 }
            .failure_probability(10.0)
            .is_err());
    }
}
