use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::{DependencyModel, ModelError, Result, Service, ServiceId};

/// A validated, closed assembly of services (paper §2: the architecture as a
/// set of resources and connectors wired through offered/required services).
///
/// Construction through [`AssemblyBuilder`] guarantees:
///
/// - service identifiers are unique;
/// - every call and connector reference resolves to a registered service;
/// - actual parameters cover the callee's formal parameters **exactly**
///   (the analytic-interface matching of §2);
/// - every `Shared`-dependency state really addresses a single service
///   through a single connector (§3.2's sharing restriction).
///
/// # Examples
///
/// ```
/// use archrel_model::{catalog, paper, Assembly};
///
/// let assembly = paper::local_assembly(&paper::PaperParams::default()).unwrap();
/// assert!(assembly.service(&"search".into()).is_some());
/// assert!(assembly.service(&"nonexistent".into()).is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Assembly {
    services: BTreeMap<ServiceId, Service>,
}

impl Assembly {
    /// Looks up a service.
    pub fn service(&self, id: &ServiceId) -> Option<&Service> {
        self.services.get(id)
    }

    /// Looks up a service or returns a typed error.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownService`] when absent.
    pub fn require(&self, id: &ServiceId) -> Result<&Service> {
        self.service(id).ok_or_else(|| ModelError::UnknownService {
            id: id.to_string(),
            referenced_from: "<caller>".to_string(),
        })
    }

    /// Iterates over all services in identifier order.
    pub fn services(&self) -> impl Iterator<Item = &Service> {
        self.services.values()
    }

    /// Number of registered services.
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// Whether the assembly is empty.
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }

    /// Direct dependencies of a service: the targets and connectors of every
    /// call its flow issues.
    pub fn dependencies(&self, id: &ServiceId) -> Result<BTreeSet<ServiceId>> {
        match self.require(id)? {
            Service::Simple(_) => Ok(BTreeSet::new()),
            Service::Composite(c) => Ok(c.flow().referenced_services()),
        }
    }

    /// Topological order of all services (dependencies first), or the cycle
    /// that prevents one.
    ///
    /// Recursive assemblies are representable (the engine's fixed-point mode
    /// handles them) but have no topological order.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::MalformedFlow`] naming a service on a
    /// dependency cycle.
    pub fn topological_order(&self) -> Result<Vec<ServiceId>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Gray,
            Black,
        }
        let mut marks: BTreeMap<&ServiceId, Mark> =
            self.services.keys().map(|k| (k, Mark::White)).collect();
        let mut order = Vec::new();

        // Iterative DFS with an explicit stack to avoid recursion limits on
        // deep assemblies.
        for root in self.services.keys() {
            if marks[root] != Mark::White {
                continue;
            }
            let mut stack: Vec<(&ServiceId, bool)> = vec![(root, false)];
            while let Some((node, expanded)) = stack.pop() {
                if expanded {
                    marks.insert(node, Mark::Black);
                    order.push(node.clone());
                    continue;
                }
                match marks[node] {
                    Mark::Black => continue,
                    Mark::Gray => continue,
                    Mark::White => {}
                }
                marks.insert(node, Mark::Gray);
                stack.push((node, true));
                let deps = self.dependencies(node)?;
                for dep in deps {
                    let dep_ref = self
                        .services
                        .keys()
                        .find(|k| **k == dep)
                        .expect("validated assembly has no dangling references");
                    match marks[dep_ref] {
                        Mark::White => stack.push((dep_ref, false)),
                        Mark::Gray => {
                            return Err(ModelError::MalformedFlow {
                                service: dep.to_string(),
                                reason: "service participates in a dependency cycle".to_string(),
                            })
                        }
                        Mark::Black => {}
                    }
                }
            }
        }
        Ok(order)
    }
}

/// Builder for [`Assembly`].
#[derive(Debug, Clone, Default)]
pub struct AssemblyBuilder {
    services: Vec<Service>,
}

impl AssemblyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        AssemblyBuilder::default()
    }

    /// Registers a service.
    #[must_use]
    pub fn service(mut self, service: Service) -> Self {
        self.services.push(service);
        self
    }

    /// Registers many services.
    #[must_use]
    pub fn services(mut self, services: impl IntoIterator<Item = Service>) -> Self {
        self.services.extend(services);
        self
    }

    /// Validates and builds the assembly.
    ///
    /// # Errors
    ///
    /// - [`ModelError::DuplicateService`] for repeated identifiers;
    /// - [`ModelError::UnknownService`] for dangling call/connector targets;
    /// - [`ModelError::ParameterMismatch`] when actual parameters do not
    ///   cover the callee's formals exactly;
    /// - [`ModelError::InvalidSharing`] when a `Shared` state mixes targets
    ///   or connectors.
    pub fn build(self) -> Result<Assembly> {
        let mut map: BTreeMap<ServiceId, Service> = BTreeMap::new();
        for s in self.services {
            let id = s.id().clone();
            if map.insert(id.clone(), s).is_some() {
                return Err(ModelError::DuplicateService { id: id.to_string() });
            }
        }
        let assembly = Assembly { services: map };
        assembly_check_references(&assembly)?;
        assembly_check_sharing(&assembly)?;
        Ok(assembly)
    }
}

fn param_names(actuals: &[(String, archrel_expr::Expr)]) -> BTreeSet<&str> {
    actuals.iter().map(|(n, _)| n.as_str()).collect()
}

fn check_param_cover(
    caller: &ServiceId,
    callee: &Service,
    actuals: &[(String, archrel_expr::Expr)],
) -> Result<()> {
    let formals: BTreeSet<&str> = callee.formal_params().into_iter().collect();
    let actual_names = param_names(actuals);
    if formals == actual_names {
        return Ok(());
    }
    Err(ModelError::ParameterMismatch {
        caller: caller.to_string(),
        callee: callee.id().to_string(),
        missing: formals
            .difference(&actual_names)
            .map(|s| s.to_string())
            .collect(),
        extraneous: actual_names
            .difference(&formals)
            .map(|s| s.to_string())
            .collect(),
    })
}

fn assembly_check_references(assembly: &Assembly) -> Result<()> {
    for service in assembly.services() {
        let Service::Composite(c) = service else {
            continue;
        };
        for state in c.flow().states() {
            for call in &state.calls {
                let target =
                    assembly
                        .service(&call.target)
                        .ok_or_else(|| ModelError::UnknownService {
                            id: call.target.to_string(),
                            referenced_from: c.id().to_string(),
                        })?;
                check_param_cover(c.id(), target, &call.actual_params)?;
                if let Some(binding) = &call.connector {
                    let connector = assembly.service(&binding.connector).ok_or_else(|| {
                        ModelError::UnknownService {
                            id: binding.connector.to_string(),
                            referenced_from: c.id().to_string(),
                        }
                    })?;
                    check_param_cover(c.id(), connector, &binding.actual_params)?;
                }
            }
        }
    }
    Ok(())
}

fn assembly_check_sharing(assembly: &Assembly) -> Result<()> {
    for service in assembly.services() {
        let Service::Composite(c) = service else {
            continue;
        };
        for state in c.flow().states() {
            if state.dependency != DependencyModel::Shared {
                continue;
            }
            let invalid = |reason: String| ModelError::InvalidSharing {
                service: c.id().to_string(),
                state: state.id.to_string(),
                reason,
            };
            let Some(first) = state.calls.first() else {
                return Err(invalid("shared state has no calls".to_string()));
            };
            let first_connector = first.connector.as_ref().map(|b| &b.connector);
            for call in &state.calls[1..] {
                if call.target != first.target {
                    return Err(invalid(format!(
                        "mixed targets `{}` and `{}`",
                        first.target, call.target
                    )));
                }
                let this_connector = call.connector.as_ref().map(|b| &b.connector);
                if this_connector != first_connector {
                    return Err(invalid("mixed connectors".to_string()));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        CompletionModel, CompositeService, ConnectorBinding, FailureModel, FlowBuilder, FlowState,
        ServiceCall, SimpleService, StateId,
    };
    use archrel_expr::Expr;

    fn cpu() -> Service {
        Service::Simple(SimpleService::new(
            "cpu",
            "n",
            FailureModel::ExponentialRate {
                rate: 1e-9,
                capacity: 1e9,
            },
        ))
    }

    fn composite_calling_cpu(param: &str) -> Service {
        let flow = FlowBuilder::new()
            .state(FlowState::new(
                "1",
                vec![ServiceCall::new("cpu").with_param(param, Expr::num(100.0))],
            ))
            .transition(StateId::Start, "1", Expr::one())
            .transition("1", StateId::End, Expr::one())
            .build()
            .unwrap();
        Service::Composite(CompositeService::new("app", vec![], flow).unwrap())
    }

    #[test]
    fn valid_assembly_builds() {
        let a = AssemblyBuilder::new()
            .service(cpu())
            .service(composite_calling_cpu("n"))
            .build()
            .unwrap();
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
        assert!(a.require(&"app".into()).is_ok());
        assert!(a.require(&"ghost".into()).is_err());
    }

    #[test]
    fn duplicate_service_rejected() {
        let err = AssemblyBuilder::new()
            .service(cpu())
            .service(cpu())
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::DuplicateService { .. }));
    }

    #[test]
    fn dangling_call_target_rejected() {
        let err = AssemblyBuilder::new()
            .service(composite_calling_cpu("n"))
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::UnknownService { .. }));
    }

    #[test]
    fn wrong_parameter_name_rejected() {
        let err = AssemblyBuilder::new()
            .service(cpu())
            .service(composite_calling_cpu("bytes"))
            .build()
            .unwrap_err();
        match err {
            ModelError::ParameterMismatch {
                missing,
                extraneous,
                ..
            } => {
                assert_eq!(missing, vec!["n".to_string()]);
                assert_eq!(extraneous, vec!["bytes".to_string()]);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn missing_connector_rejected() {
        let flow = FlowBuilder::new()
            .state(FlowState::new(
                "1",
                vec![ServiceCall::new("cpu")
                    .with_param("n", Expr::num(1.0))
                    .via(ConnectorBinding::new("ghost-connector"))],
            ))
            .transition(StateId::Start, "1", Expr::one())
            .transition("1", StateId::End, Expr::one())
            .build()
            .unwrap();
        let app = Service::Composite(CompositeService::new("app", vec![], flow).unwrap());
        let err = AssemblyBuilder::new()
            .service(cpu())
            .service(app)
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::UnknownService { .. }));
    }

    #[test]
    fn connector_parameter_mismatch_rejected() {
        let connector = Service::Simple(SimpleService::new("link", "b", FailureModel::Perfect));
        let flow = FlowBuilder::new()
            .state(FlowState::new(
                "1",
                vec![ServiceCall::new("cpu")
                    .with_param("n", Expr::num(1.0))
                    .via(ConnectorBinding::new("link").with_param("bytes", Expr::num(8.0)))],
            ))
            .transition(StateId::Start, "1", Expr::one())
            .transition("1", StateId::End, Expr::one())
            .build()
            .unwrap();
        let app = Service::Composite(CompositeService::new("app", vec![], flow).unwrap());
        let err = AssemblyBuilder::new()
            .service(cpu())
            .service(connector)
            .service(app)
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::ParameterMismatch { .. }));
    }

    fn shared_state_assembly(second_target: &str) -> Result<Assembly> {
        let calls = vec![
            ServiceCall::new("cpu").with_param("n", Expr::num(10.0)),
            ServiceCall::new(second_target).with_param("n", Expr::num(20.0)),
        ];
        let flow = FlowBuilder::new()
            .state(
                FlowState::new("1", calls)
                    .with_completion(CompletionModel::And)
                    .with_dependency(DependencyModel::Shared),
            )
            .transition(StateId::Start, "1", Expr::one())
            .transition("1", StateId::End, Expr::one())
            .build()
            .unwrap();
        let app = Service::Composite(CompositeService::new("app", vec![], flow).unwrap());
        let cpu2 = Service::Simple(SimpleService::new("cpu2", "n", FailureModel::Perfect));
        AssemblyBuilder::new()
            .service(cpu())
            .service(cpu2)
            .service(app)
            .build()
    }

    #[test]
    fn sharing_requires_single_target() {
        assert!(shared_state_assembly("cpu").is_ok());
        let err = shared_state_assembly("cpu2").unwrap_err();
        assert!(matches!(err, ModelError::InvalidSharing { .. }));
    }

    #[test]
    fn sharing_requires_single_connector() {
        let loc = Service::Simple(SimpleService::new("loc", "x", FailureModel::Perfect));
        let calls = vec![
            ServiceCall::new("cpu")
                .with_param("n", Expr::num(1.0))
                .via(ConnectorBinding::new("loc").with_param("x", Expr::num(0.0))),
            ServiceCall::new("cpu").with_param("n", Expr::num(2.0)),
        ];
        let flow = FlowBuilder::new()
            .state(FlowState::new("1", calls).with_dependency(DependencyModel::Shared))
            .transition(StateId::Start, "1", Expr::one())
            .transition("1", StateId::End, Expr::one())
            .build()
            .unwrap();
        let app = Service::Composite(CompositeService::new("app", vec![], flow).unwrap());
        let err = AssemblyBuilder::new()
            .service(cpu())
            .service(loc)
            .service(app)
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::InvalidSharing { .. }));
    }

    #[test]
    fn topological_order_puts_dependencies_first() {
        let a = AssemblyBuilder::new()
            .service(cpu())
            .service(composite_calling_cpu("n"))
            .build()
            .unwrap();
        let order = a.topological_order().unwrap();
        let cpu_pos = order.iter().position(|s| s.as_str() == "cpu").unwrap();
        let app_pos = order.iter().position(|s| s.as_str() == "app").unwrap();
        assert!(cpu_pos < app_pos);
    }

    #[test]
    fn cycle_detected_in_topological_order() {
        // a calls b, b calls a.
        let make = |name: &str, target: &str| {
            let flow = FlowBuilder::new()
                .state(FlowState::new("1", vec![ServiceCall::new(target)]))
                .transition(StateId::Start, "1", Expr::one())
                .transition("1", StateId::End, Expr::one())
                .build()
                .unwrap();
            Service::Composite(CompositeService::new(name, vec![], flow).unwrap())
        };
        let a = AssemblyBuilder::new()
            .service(make("a", "b"))
            .service(make("b", "a"))
            .build()
            .unwrap();
        assert!(matches!(
            a.topological_order(),
            Err(ModelError::MalformedFlow { .. })
        ));
    }

    #[test]
    fn dependencies_of_simple_service_are_empty() {
        let a = AssemblyBuilder::new().service(cpu()).build().unwrap();
        assert!(a.dependencies(&"cpu".into()).unwrap().is_empty());
    }
}
