use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::sync::Arc;

use archrel_expr::Expr;
use serde::{Deserialize, Serialize};

use crate::{InternalFailureModel, ModelError, Result, ServiceId};

/// Identifier of a state in a service flow.
///
/// `Start` and `End` are the distinguished entry and success states of every
/// flow (paper §3); user states carry a name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StateId {
    /// Entry point of the flow; represents no real behavior, so no failure
    /// can occur in it (paper §3.2).
    Start,
    /// Absorbing state representing successful completion.
    End,
    /// A user-defined state holding service requests.
    Named(Arc<str>),
}

impl StateId {
    /// Creates a named state id.
    pub fn named(name: impl AsRef<str>) -> StateId {
        StateId::Named(Arc::from(name.as_ref()))
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateId::Start => f.write_str("Start"),
            StateId::End => f.write_str("End"),
            StateId::Named(n) => f.write_str(n),
        }
    }
}

impl From<&str> for StateId {
    fn from(s: &str) -> StateId {
        StateId::named(s)
    }
}

impl From<String> for StateId {
    fn from(s: String) -> StateId {
        StateId::named(&s)
    }
}

/// Completion model of a flow state (paper §3.2): when is the transition to
/// the next state enabled, given that some requests may have failed?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompletionModel {
    /// All requests in the state must succeed (eq. 4).
    And,
    /// At least one request must succeed (eq. 5) — models fault-tolerant
    /// replication inside a component.
    Or,
    /// At least `k` requests must succeed — the "k out of n" extension the
    /// paper names but does not analyze; implemented here for the ablation
    /// experiments.
    KOutOfN {
        /// Required number of successful requests.
        k: usize,
    },
}

/// Dependency model of a flow state (paper §3.2): are the requests
/// stochastically independent?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum DependencyModel {
    /// Requests share no common service — failures are independent
    /// (eqs. 6–8).
    #[default]
    Independent,
    /// All requests in the state address the **same service through the same
    /// connector** (eqs. 9–13): one external failure takes all of them down.
    Shared,
}

/// Binding of a request to the connector that transports it, with the
/// connector's own actual parameters (the `[Sj, apj]` of the paper: e.g. the
/// RPC connector's `ip`/`op` sizes as functions of the caller's formals).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConnectorBinding {
    /// The connector service.
    pub connector: ServiceId,
    /// Actual parameters handed to the connector, keyed by the connector's
    /// formal parameter names.
    pub actual_params: Vec<(String, Expr)>,
}

impl ConnectorBinding {
    /// Creates a binding with no parameters.
    pub fn new(connector: impl Into<ServiceId>) -> Self {
        ConnectorBinding {
            connector: connector.into(),
            actual_params: Vec::new(),
        }
    }

    /// Adds an actual parameter.
    #[must_use]
    pub fn with_param(mut self, name: impl Into<String>, expr: Expr) -> Self {
        self.actual_params.push((name.into(), expr));
        self
    }
}

/// A single cascading service request `Aij = call(Sj, apj)` (paper §3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceCall {
    /// The requested service.
    pub target: ServiceId,
    /// Actual parameters, keyed by the target's formal parameter names; each
    /// expression is over the **caller's** formal parameters.
    pub actual_params: Vec<(String, Expr)>,
    /// The connector transporting the request; `None` models a direct,
    /// perfectly reliable association (like the paper's "local processing"
    /// connectors).
    pub connector: Option<ConnectorBinding>,
    /// Internal-failure law of the request (the caller-side `Pfail_int`).
    pub internal_failure: InternalFailureModel,
}

impl ServiceCall {
    /// Creates a call with no parameters, no connector, and no internal
    /// failure.
    pub fn new(target: impl Into<ServiceId>) -> Self {
        ServiceCall {
            target: target.into(),
            actual_params: Vec::new(),
            connector: None,
            internal_failure: InternalFailureModel::None,
        }
    }

    /// Adds an actual parameter.
    #[must_use]
    pub fn with_param(mut self, name: impl Into<String>, expr: Expr) -> Self {
        self.actual_params.push((name.into(), expr));
        self
    }

    /// Routes the request through a connector.
    #[must_use]
    pub fn via(mut self, binding: ConnectorBinding) -> Self {
        self.connector = Some(binding);
        self
    }

    /// Sets the internal-failure law.
    #[must_use]
    pub fn with_internal(mut self, model: InternalFailureModel) -> Self {
        self.internal_failure = model;
        self
    }
}

/// A state of a service flow: a set of requests plus the models governing
/// their joint completion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowState {
    /// State identifier (always [`StateId::Named`] for states with calls).
    pub id: StateId,
    /// The requests `Ai1 ... Ain` issued in this state.
    pub calls: Vec<ServiceCall>,
    /// Completion model for the requests.
    pub completion: CompletionModel,
    /// Dependency model for the requests.
    pub dependency: DependencyModel,
}

impl FlowState {
    /// Creates a state with AND completion and independent requests — the
    /// paper's default combination.
    pub fn new(id: impl Into<StateId>, calls: Vec<ServiceCall>) -> Self {
        FlowState {
            id: id.into(),
            calls,
            completion: CompletionModel::And,
            dependency: DependencyModel::Independent,
        }
    }

    /// Sets the completion model.
    #[must_use]
    pub fn with_completion(mut self, completion: CompletionModel) -> Self {
        self.completion = completion;
        self
    }

    /// Sets the dependency model.
    #[must_use]
    pub fn with_dependency(mut self, dependency: DependencyModel) -> Self {
        self.dependency = dependency;
        self
    }
}

impl From<&str> for StateIdOrRef {
    fn from(s: &str) -> Self {
        StateIdOrRef(StateId::named(s))
    }
}

impl From<StateId> for StateIdOrRef {
    fn from(s: StateId) -> Self {
        StateIdOrRef(s)
    }
}

/// Conversion helper so builder methods accept `"name"`, `StateId::Start`,
/// and `StateId::End` uniformly.
#[derive(Debug, Clone)]
pub struct StateIdOrRef(StateId);

/// A transition of a service flow with a (possibly parametric) probability.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transition {
    /// Source state.
    pub from: StateId,
    /// Target state.
    pub to: StateId,
    /// Transition probability as an expression over the service's formal
    /// parameters (paper §2: "both the transition probabilities and the
    /// actual parameters ... may be defined as functions of the formal
    /// parameters").
    pub probability: Expr,
}

/// The probabilistic flow (usage profile) of a composite service: a DTMC
/// skeleton whose nodes carry sets of service requests (paper §2, Fig. 1–2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Flow {
    states: Vec<FlowState>,
    transitions: Vec<Transition>,
}

impl Flow {
    /// The named states (in declaration order).
    pub fn states(&self) -> &[FlowState] {
        &self.states
    }

    /// Looks up a named state.
    pub fn state(&self, id: &StateId) -> Option<&FlowState> {
        self.states.iter().find(|s| &s.id == id)
    }

    /// All transitions.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Outgoing transitions of a state.
    pub fn outgoing<'a>(&'a self, from: &'a StateId) -> impl Iterator<Item = &'a Transition> + 'a {
        self.transitions.iter().filter(move |t| &t.from == from)
    }

    /// Every service id referenced by any call or connector in the flow.
    pub fn referenced_services(&self) -> BTreeSet<ServiceId> {
        let mut out = BTreeSet::new();
        for state in &self.states {
            for call in &state.calls {
                out.insert(call.target.clone());
                if let Some(c) = &call.connector {
                    out.insert(c.connector.clone());
                }
            }
        }
        out
    }
}

/// Builder for [`Flow`].
///
/// # Examples
///
/// The paper's `sort` flow (Fig. 1): a single state requesting
/// `cpu(list · log₂ list)`:
///
/// ```
/// use archrel_expr::Expr;
/// use archrel_model::{FlowBuilder, FlowState, ServiceCall, StateId};
///
/// # fn main() -> Result<(), archrel_model::ModelError> {
/// let cost = Expr::param("list") * Expr::param("list").log2();
/// let flow = FlowBuilder::new()
///     .state(FlowState::new(
///         "1",
///         vec![ServiceCall::new("cpu1").with_param("n", cost)],
///     ))
///     .transition(StateId::Start, "1", Expr::one())
///     .transition("1", StateId::End, Expr::one())
///     .build()?;
/// assert_eq!(flow.states().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlowBuilder {
    states: Vec<FlowState>,
    transitions: Vec<Transition>,
}

impl FlowBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        FlowBuilder::default()
    }

    /// Adds a state.
    #[must_use]
    pub fn state(mut self, state: FlowState) -> Self {
        self.states.push(state);
        self
    }

    /// Adds a transition; `from`/`to` accept `"name"`, [`StateId::Start`],
    /// and [`StateId::End`].
    #[must_use]
    pub fn transition(
        mut self,
        from: impl Into<StateIdOrRef>,
        to: impl Into<StateIdOrRef>,
        probability: Expr,
    ) -> Self {
        self.transitions.push(Transition {
            from: from.into().0,
            to: to.into().0,
            probability,
        });
        self
    }

    /// Validates and builds the flow.
    ///
    /// Structural checks (parameter checks against callees happen later, at
    /// assembly validation):
    ///
    /// - state ids are unique and named;
    /// - every transition endpoint is `Start`, `End`, or a declared state;
    /// - `Start` has outgoing transitions and no incoming ones;
    /// - `End` has no outgoing transitions;
    /// - every named state has at least one outgoing transition;
    /// - `End` is reachable from `Start`;
    /// - constant transition probabilities lie in `[0, 1]`, and rows whose
    ///   probabilities are all constant sum to 1;
    /// - `k`-out-of-`n` states satisfy `1 ≤ k ≤ n`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::MalformedFlow`] (or
    /// [`ModelError::InvalidKOutOfN`]) describing the first defect found.
    pub fn build(self) -> Result<Flow> {
        let malformed = |reason: String| ModelError::MalformedFlow {
            service: "<unattached flow>".to_string(),
            reason,
        };

        let mut seen = BTreeSet::new();
        for s in &self.states {
            match &s.id {
                StateId::Named(_) => {}
                other => {
                    return Err(malformed(format!(
                        "state `{other}` is reserved and cannot carry calls"
                    )))
                }
            }
            if !seen.insert(s.id.clone()) {
                return Err(malformed(format!("duplicate state `{}`", s.id)));
            }
            if let CompletionModel::KOutOfN { k } = s.completion {
                if k == 0 || k > s.calls.len() {
                    return Err(ModelError::InvalidKOutOfN {
                        k,
                        n: s.calls.len(),
                    });
                }
            }
        }

        let known = |id: &StateId| match id {
            StateId::Start | StateId::End => true,
            named => seen.contains(named),
        };
        for t in &self.transitions {
            if !known(&t.from) {
                return Err(malformed(format!(
                    "transition from unknown state `{}`",
                    t.from
                )));
            }
            if !known(&t.to) {
                return Err(malformed(format!("transition to unknown state `{}`", t.to)));
            }
            if t.from == StateId::End {
                return Err(malformed(
                    "End state has an outgoing transition".to_string(),
                ));
            }
            if t.to == StateId::Start {
                return Err(malformed(
                    "Start state has an incoming transition".to_string(),
                ));
            }
            if let Some(p) = t.probability.as_const() {
                if !(0.0..=1.0).contains(&p) {
                    return Err(malformed(format!(
                        "constant transition probability {p} on `{}` -> `{}`",
                        t.from, t.to
                    )));
                }
            }
        }

        // Outgoing coverage: Start and every named state must emit.
        let mut has_outgoing: BTreeMap<StateId, bool> = BTreeMap::new();
        has_outgoing.insert(StateId::Start, false);
        for s in &self.states {
            has_outgoing.insert(s.id.clone(), false);
        }
        for t in &self.transitions {
            if let Some(flag) = has_outgoing.get_mut(&t.from) {
                *flag = true;
            }
        }
        for (id, emitted) in &has_outgoing {
            if !emitted {
                return Err(malformed(format!(
                    "state `{id}` has no outgoing transition"
                )));
            }
        }

        // Constant-only rows must sum to one.
        for id in has_outgoing.keys() {
            let outgoing: Vec<&Transition> =
                self.transitions.iter().filter(|t| &t.from == id).collect();
            let consts: Vec<f64> = outgoing
                .iter()
                .filter_map(|t| t.probability.as_const())
                .collect();
            if consts.len() == outgoing.len() {
                let sum: f64 = consts.iter().sum();
                if (sum - 1.0).abs() > 1e-9 {
                    return Err(malformed(format!(
                        "outgoing probabilities of `{id}` sum to {sum}"
                    )));
                }
            }
        }

        // End reachable from Start (ignoring probabilities).
        let mut reached: BTreeSet<StateId> = BTreeSet::new();
        let mut queue = VecDeque::from([StateId::Start]);
        reached.insert(StateId::Start);
        while let Some(v) = queue.pop_front() {
            for t in self.transitions.iter().filter(|t| t.from == v) {
                if reached.insert(t.to.clone()) {
                    queue.push_back(t.to.clone());
                }
            }
        }
        if !reached.contains(&StateId::End) {
            return Err(malformed("End is unreachable from Start".to_string()));
        }

        Ok(Flow {
            states: self.states,
            transitions: self.transitions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call() -> ServiceCall {
        ServiceCall::new("cpu").with_param("n", Expr::num(10.0))
    }

    fn simple_flow() -> Result<Flow> {
        FlowBuilder::new()
            .state(FlowState::new("work", vec![call()]))
            .transition(StateId::Start, "work", Expr::one())
            .transition("work", StateId::End, Expr::one())
            .build()
    }

    #[test]
    fn valid_flow_builds() {
        let flow = simple_flow().unwrap();
        assert_eq!(flow.states().len(), 1);
        assert_eq!(flow.transitions().len(), 2);
        assert_eq!(flow.outgoing(&StateId::Start).count(), 1);
        assert!(flow.state(&StateId::named("work")).is_some());
        assert!(flow.state(&StateId::named("zzz")).is_none());
    }

    #[test]
    fn referenced_services_include_connectors() {
        let c = ServiceCall::new("sort")
            .with_param("list", Expr::param("list"))
            .via(ConnectorBinding::new("rpc").with_param("ip", Expr::param("list")));
        let flow = FlowBuilder::new()
            .state(FlowState::new("s", vec![c]))
            .transition(StateId::Start, "s", Expr::one())
            .transition("s", StateId::End, Expr::one())
            .build()
            .unwrap();
        let refs = flow.referenced_services();
        assert!(refs.contains(&ServiceId::new("sort")));
        assert!(refs.contains(&ServiceId::new("rpc")));
    }

    #[test]
    fn duplicate_state_rejected() {
        let err = FlowBuilder::new()
            .state(FlowState::new("a", vec![]))
            .state(FlowState::new("a", vec![]))
            .transition(StateId::Start, "a", Expr::one())
            .transition("a", StateId::End, Expr::one())
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::MalformedFlow { .. }));
    }

    #[test]
    fn reserved_state_ids_rejected() {
        let err = FlowBuilder::new()
            .state(FlowState {
                id: StateId::Start,
                calls: vec![],
                completion: CompletionModel::And,
                dependency: DependencyModel::Independent,
            })
            .transition(StateId::Start, StateId::End, Expr::one())
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::MalformedFlow { .. }));
    }

    #[test]
    fn unknown_endpoint_rejected() {
        let err = FlowBuilder::new()
            .transition(StateId::Start, "ghost", Expr::one())
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::MalformedFlow { .. }));
    }

    #[test]
    fn end_cannot_emit_and_start_cannot_receive() {
        let err = FlowBuilder::new()
            .state(FlowState::new("a", vec![]))
            .transition(StateId::Start, "a", Expr::one())
            .transition("a", StateId::End, Expr::one())
            .transition(StateId::End, "a", Expr::one())
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::MalformedFlow { .. }));

        let err = FlowBuilder::new()
            .state(FlowState::new("a", vec![]))
            .transition(StateId::Start, "a", Expr::one())
            .transition("a", StateId::Start, Expr::one())
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::MalformedFlow { .. }));
    }

    #[test]
    fn dangling_state_rejected() {
        let err = FlowBuilder::new()
            .state(FlowState::new("a", vec![]))
            .state(FlowState::new("sink", vec![]))
            .transition(StateId::Start, "a", Expr::one())
            .transition("a", StateId::End, Expr::num(0.5))
            .transition("a", "sink", Expr::num(0.5))
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::MalformedFlow { .. }));
    }

    #[test]
    fn unreachable_end_rejected() {
        // "a" loops forever.
        let err = FlowBuilder::new()
            .state(FlowState::new("a", vec![]))
            .transition(StateId::Start, "a", Expr::one())
            .transition("a", "a", Expr::one())
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::MalformedFlow { .. }));
    }

    #[test]
    fn constant_rows_must_sum_to_one() {
        let err = FlowBuilder::new()
            .state(FlowState::new("a", vec![]))
            .transition(StateId::Start, "a", Expr::num(0.7))
            .transition("a", StateId::End, Expr::one())
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::MalformedFlow { .. }));
    }

    #[test]
    fn parametric_rows_are_deferred() {
        // q + (1-q) can't be checked statically; accepted at build time.
        let q = Expr::param("q");
        let flow = FlowBuilder::new()
            .state(FlowState::new("a", vec![]))
            .state(FlowState::new("b", vec![]))
            .transition(StateId::Start, "a", q.clone())
            .transition(StateId::Start, "b", Expr::one() - q)
            .transition("a", StateId::End, Expr::one())
            .transition("b", StateId::End, Expr::one())
            .build();
        assert!(flow.is_ok());
    }

    #[test]
    fn out_of_range_constant_probability_rejected() {
        let err = FlowBuilder::new()
            .state(FlowState::new("a", vec![]))
            .transition(StateId::Start, "a", Expr::num(1.5))
            .transition("a", StateId::End, Expr::one())
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::MalformedFlow { .. }));
    }

    #[test]
    fn k_out_of_n_bounds_checked() {
        let state = FlowState::new("a", vec![call(), call()])
            .with_completion(CompletionModel::KOutOfN { k: 3 });
        let err = FlowBuilder::new()
            .state(state)
            .transition(StateId::Start, "a", Expr::one())
            .transition("a", StateId::End, Expr::one())
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::InvalidKOutOfN { k: 3, n: 2 }));
    }

    #[test]
    fn state_id_display() {
        assert_eq!(StateId::Start.to_string(), "Start");
        assert_eq!(StateId::End.to_string(), "End");
        assert_eq!(StateId::named("x").to_string(), "x");
    }
}
