//! Ready-made interaction connectors with the flows of the paper's Figure 2.
//!
//! Connectors are first-class services in the unified model: an RPC connector
//! *offers* a connection service (implicitly invoked around a remote call)
//! and *requires* processing and communication services to
//! marshal/transmit/unmarshal the request and response. Both connectors here
//! expose the formal parameters `ip` (client→server payload bytes) and `op`
//! (server→client payload bytes).

use archrel_expr::Expr;

use crate::{
    catalog, CompositeService, FlowBuilder, FlowState, Result, Service, ServiceCall, ServiceId,
    StateId,
};

/// Formal parameter: size of the data transmitted client → server.
pub const IP_PARAM: &str = "ip";

/// Formal parameter: size of the data transmitted server → client.
pub const OP_PARAM: &str = "op";

/// A "local procedure call" connector (paper Fig. 2, left).
///
/// Shared-memory communication: only a constant number `control_ops` of
/// processing operations on `cpu` is needed for the control transfer,
/// independent of `ip`/`op`. The connector's own software failure rate is
/// assumed zero (the paper's assumption), so requests carry no internal
/// failure.
///
/// # Errors
///
/// Propagates flow-construction errors (none for valid inputs).
pub fn lpc_connector(
    name: impl Into<ServiceId>,
    cpu: impl Into<ServiceId>,
    control_ops: f64,
) -> Result<Service> {
    let flow = FlowBuilder::new()
        .state(FlowState::new(
            "transfer",
            vec![ServiceCall::new(cpu).with_param(catalog::CPU_PARAM, Expr::num(control_ops))],
        ))
        .transition(StateId::Start, "transfer", Expr::one())
        .transition("transfer", StateId::End, Expr::one())
        .build()?;
    Ok(Service::Composite(CompositeService::new(
        name,
        vec![IP_PARAM.to_string(), OP_PARAM.to_string()],
        flow,
    )?))
}

/// Configuration of an RPC connector (paper Fig. 2, right).
#[derive(Debug, Clone, PartialEq)]
pub struct RpcConfig {
    /// Connector service name.
    pub name: ServiceId,
    /// Processing service of the client node (marshals `ip`, unmarshals `op`).
    pub client_cpu: ServiceId,
    /// Processing service of the server node (unmarshals `ip`, marshals `op`).
    pub server_cpu: ServiceId,
    /// Communication service between the nodes.
    pub network: ServiceId,
    /// Marshalling/unmarshalling cost `c` in operations per payload byte.
    pub marshal_ops_per_byte: f64,
    /// Wire expansion `m`: bytes transmitted per payload byte.
    pub bytes_per_byte: f64,
}

/// A "remote procedure call" connector (paper Fig. 2, right).
///
/// Two AND-completion states:
///
/// 1. request leg — `cpu_client(c·ip)` marshal, `net(m·ip)` transmit,
///    `cpu_server(c·ip)` unmarshal;
/// 2. response leg — `cpu_server(c·op)` marshal, `net(m·op)` transmit,
///    `cpu_client(c·op)` unmarshal.
///
/// The connector's software failure rate is assumed zero, so the requests
/// carry no internal failure; its unreliability comes entirely from the
/// resources it uses (yielding the paper's eq. 20).
///
/// # Errors
///
/// Propagates flow-construction errors (none for valid inputs).
pub fn rpc_connector(config: &RpcConfig) -> Result<Service> {
    let c = Expr::num(config.marshal_ops_per_byte);
    let m = Expr::num(config.bytes_per_byte);
    let ip = Expr::param(IP_PARAM);
    let op = Expr::param(OP_PARAM);

    let request_leg = FlowState::new(
        "request",
        vec![
            ServiceCall::new(config.client_cpu.clone())
                .with_param(catalog::CPU_PARAM, c.clone() * ip.clone()),
            ServiceCall::new(config.network.clone())
                .with_param(catalog::NET_PARAM, m.clone() * ip.clone()),
            ServiceCall::new(config.server_cpu.clone())
                .with_param(catalog::CPU_PARAM, c.clone() * ip),
        ],
    );
    let response_leg = FlowState::new(
        "response",
        vec![
            ServiceCall::new(config.server_cpu.clone())
                .with_param(catalog::CPU_PARAM, c.clone() * op.clone()),
            ServiceCall::new(config.network.clone()).with_param(catalog::NET_PARAM, m * op.clone()),
            ServiceCall::new(config.client_cpu.clone()).with_param(catalog::CPU_PARAM, c * op),
        ],
    );

    let flow = FlowBuilder::new()
        .state(request_leg)
        .state(response_leg)
        .transition(StateId::Start, "request", Expr::one())
        .transition("request", "response", Expr::one())
        .transition("response", StateId::End, Expr::one())
        .build()?;
    Ok(Service::Composite(CompositeService::new(
        config.name.clone(),
        vec![IP_PARAM.to_string(), OP_PARAM.to_string()],
        flow,
    )?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Service;

    #[test]
    fn lpc_has_single_constant_state() {
        let svc = lpc_connector("lpc", "cpu1", 100.0).unwrap();
        let Service::Composite(c) = &svc else {
            panic!("lpc is composite");
        };
        assert_eq!(c.formal_params(), &[IP_PARAM, OP_PARAM]);
        assert_eq!(c.flow().states().len(), 1);
        let state = &c.flow().states()[0];
        assert_eq!(state.calls.len(), 1);
        // Cost is the constant l, independent of ip/op.
        assert_eq!(state.calls[0].actual_params[0].1.as_const(), Some(100.0));
    }

    #[test]
    fn rpc_has_request_and_response_legs() {
        let svc = rpc_connector(&RpcConfig {
            name: "rpc".into(),
            client_cpu: "cpu1".into(),
            server_cpu: "cpu2".into(),
            network: "net12".into(),
            marshal_ops_per_byte: 50.0,
            bytes_per_byte: 1.0,
        })
        .unwrap();
        let Service::Composite(c) = &svc else {
            panic!("rpc is composite");
        };
        assert_eq!(c.flow().states().len(), 2);
        for state in c.flow().states() {
            assert_eq!(state.calls.len(), 3, "each leg touches cpu, net, cpu");
        }
        // Request leg costs depend on ip only.
        let req = &c.flow().states()[0];
        for call in &req.calls {
            let free = call.actual_params[0].1.free_params();
            assert!(free.contains("ip") && !free.contains("op"));
        }
        let resp = &c.flow().states()[1];
        for call in &resp.calls {
            let free = call.actual_params[0].1.free_params();
            assert!(free.contains("op") && !free.contains("ip"));
        }
    }

    #[test]
    fn rpc_references_its_three_resources() {
        let svc = rpc_connector(&RpcConfig {
            name: "rpc".into(),
            client_cpu: "cpu1".into(),
            server_cpu: "cpu2".into(),
            network: "net12".into(),
            marshal_ops_per_byte: 1.0,
            bytes_per_byte: 1.0,
        })
        .unwrap();
        let refs = svc.as_composite().unwrap().flow().referenced_services();
        assert_eq!(refs.len(), 3);
    }
}
