use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{ModelError, Result};

/// A validated probability in `[0, 1]`.
///
/// Every probability the engine computes flows through this newtype; its
/// combinators implement the complement-product algebra used throughout the
/// paper's equations (4)–(13) and clamp away the ±1e-15 float dust that
/// long products accumulate.
///
/// # Examples
///
/// ```
/// use archrel_model::Probability;
///
/// # fn main() -> Result<(), archrel_model::ModelError> {
/// let p = Probability::new(0.2)?;
/// let q = Probability::new(0.5)?;
/// // Probability that at least one of two independent events occurs:
/// assert!((p.either(q).value() - 0.6).abs() < 1e-15);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Probability(f64);

/// Slack accepted when validating raw floats: values within this distance
/// outside `[0, 1]` are clamped rather than rejected, absorbing accumulated
/// rounding from long complement products.
const CLAMP_SLACK: f64 = 1e-9;

impl Probability {
    /// The impossible event.
    pub const ZERO: Probability = Probability(0.0);
    /// The certain event.
    pub const ONE: Probability = Probability(1.0);

    /// Validates a raw float as a probability.
    ///
    /// Values within `1e-9` outside `[0, 1]` are clamped; anything further
    /// out (or non-finite) is rejected.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidProbability`].
    pub fn new(value: f64) -> Result<Probability> {
        if !value.is_finite() || !(-CLAMP_SLACK..=1.0 + CLAMP_SLACK).contains(&value) {
            return Err(ModelError::InvalidProbability {
                value,
                context: "Probability::new".to_string(),
            });
        }
        Ok(Probability(value.clamp(0.0, 1.0)))
    }

    /// The underlying float.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Complement `1 - p`.
    #[must_use]
    pub fn complement(self) -> Probability {
        Probability(1.0 - self.0)
    }

    /// Probability that two independent events both occur.
    #[must_use]
    pub fn both(self, other: Probability) -> Probability {
        Probability(self.0 * other.0)
    }

    /// Probability that at least one of two independent events occurs:
    /// `1 - (1-p)(1-q)`.
    #[must_use]
    pub fn either(self, other: Probability) -> Probability {
        Probability(1.0 - (1.0 - self.0) * (1.0 - other.0))
    }

    /// Probability that **all** independent events in `iter` occur.
    ///
    /// Empty input yields [`Probability::ONE`] (vacuous conjunction).
    pub fn all(iter: impl IntoIterator<Item = Probability>) -> Probability {
        Probability(iter.into_iter().fold(1.0, |acc, p| acc * p.0))
    }

    /// Probability that **at least one** independent event in `iter` occurs.
    ///
    /// Empty input yields [`Probability::ZERO`] (vacuous disjunction).
    pub fn any(iter: impl IntoIterator<Item = Probability>) -> Probability {
        Probability(1.0 - iter.into_iter().fold(1.0, |acc, p| acc * (1.0 - p.0)))
    }

    /// Probability that **at least `k`** of the given independent events
    /// occur (the "k out of n" completion model the paper mentions as a
    /// natural extension of AND/OR in §3.2).
    ///
    /// Computed by dynamic programming over the Poisson-binomial
    /// distribution; `O(n·k)` time.
    pub fn at_least(k: usize, probs: &[Probability]) -> Probability {
        let n = probs.len();
        if k == 0 {
            return Probability::ONE;
        }
        if k > n {
            return Probability::ZERO;
        }
        // dp[j] = P(j successes so far), with bucket k absorbing "k or more".
        let mut dp = vec![0.0_f64; k + 1];
        dp[0] = 1.0;
        for p in probs {
            let p = p.0;
            let mut next = vec![0.0_f64; k + 1];
            next[k] = dp[k]; // mass at the cap never leaves
            for j in 0..k {
                next[j] += dp[j] * (1.0 - p);
                next[j + 1] += dp[j] * p;
            }
            dp = next;
        }
        Probability(dp[k].clamp(0.0, 1.0))
    }

    /// Whether the probability is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Whether the probability is exactly one.
    pub fn is_one(self) -> bool {
        self.0 == 1.0
    }
}

impl Default for Probability {
    fn default() -> Self {
        Probability::ZERO
    }
}

impl fmt::Display for Probability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<Probability> for f64 {
    fn from(p: Probability) -> f64 {
        p.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    #[test]
    fn validation() {
        assert!(Probability::new(0.5).is_ok());
        assert!(Probability::new(0.0).is_ok());
        assert!(Probability::new(1.0).is_ok());
        assert!(Probability::new(1.2).is_err());
        assert!(Probability::new(-0.2).is_err());
        assert!(Probability::new(f64::NAN).is_err());
        assert!(Probability::new(f64::INFINITY).is_err());
    }

    #[test]
    fn tiny_overshoot_is_clamped() {
        let q = Probability::new(1.0 + 1e-12).unwrap();
        assert_eq!(q.value(), 1.0);
        let q = Probability::new(-1e-12).unwrap();
        assert_eq!(q.value(), 0.0);
    }

    #[test]
    fn complement() {
        assert!((p(0.3).complement().value() - 0.7).abs() < 1e-15);
        assert_eq!(Probability::ONE.complement(), Probability::ZERO);
    }

    #[test]
    fn both_and_either() {
        assert!((p(0.5).both(p(0.4)).value() - 0.2).abs() < 1e-15);
        assert!((p(0.5).either(p(0.5)).value() - 0.75).abs() < 1e-15);
    }

    #[test]
    fn all_and_any() {
        let ps = [p(0.9), p(0.8), p(0.5)];
        assert!((Probability::all(ps).value() - 0.36).abs() < 1e-15);
        let qs = [p(0.1), p(0.2)];
        assert!((Probability::any(qs).value() - 0.28).abs() < 1e-15);
        assert_eq!(Probability::all([]), Probability::ONE);
        assert_eq!(Probability::any([]), Probability::ZERO);
    }

    #[test]
    fn at_least_reduces_to_any_and_all() {
        let ps = [p(0.3), p(0.5), p(0.9)];
        let any = Probability::any(ps);
        let all = Probability::all(ps);
        assert!((Probability::at_least(1, &ps).value() - any.value()).abs() < 1e-12);
        assert!((Probability::at_least(3, &ps).value() - all.value()).abs() < 1e-12);
        assert_eq!(Probability::at_least(0, &ps), Probability::ONE);
        assert_eq!(Probability::at_least(4, &ps), Probability::ZERO);
    }

    #[test]
    fn at_least_two_of_three_known_value() {
        // Three fair coins: P(>= 2 heads) = 0.5.
        let ps = [p(0.5), p(0.5), p(0.5)];
        assert!((Probability::at_least(2, &ps).value() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn at_least_matches_exhaustive_enumeration() {
        let ps = [p(0.2), p(0.7), p(0.4), p(0.9)];
        for k in 0..=4 {
            // Exhaustive: sum over all outcome masks.
            let mut total = 0.0;
            for mask in 0..16u32 {
                let successes = mask.count_ones() as usize;
                if successes < k {
                    continue;
                }
                let mut prob = 1.0;
                for (i, pi) in ps.iter().enumerate() {
                    prob *= if mask & (1 << i) != 0 {
                        pi.value()
                    } else {
                        1.0 - pi.value()
                    };
                }
                total += prob;
            }
            let fast = Probability::at_least(k, &ps).value();
            assert!((fast - total).abs() < 1e-12, "k={k}: {fast} vs {total}");
        }
    }

    #[test]
    fn display_and_conversion() {
        assert_eq!(p(0.25).to_string(), "0.25");
        let raw: f64 = p(0.25).into();
        assert_eq!(raw, 0.25);
    }
}
